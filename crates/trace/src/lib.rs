//! # iwc-trace
//!
//! Trace infrastructure for the paper's trace-driven methodology (§5.1):
//!
//! * [`mod@format`] — a compact binary execution-mask trace format, plus
//!   conversion from the simulator's mask-capture hook;
//! * [`mod@source`] — the [`source::TraceSource`] streaming abstraction:
//!   every analysis path consumes chunked record streams, so peak memory
//!   is O(chunk) whatever the corpus size;
//! * [`mod@hash`] — canonical FNV-1a content hashing of record streams
//!   (pack index entries and cache keys both derive from it);
//! * [`mod@pack`] — the `.iwcc` corpus pack container: many traces in one
//!   content-indexed file with sequential chunked reads and random access;
//! * [`mod@store`] — the corpus directory layout (`IWC_CORPUS_DIR`) and
//!   the content-addressed results cache;
//! * [`mod@analyze`] — per-trace compaction analysis (SIMD efficiency,
//!   Fig. 9 utilization buckets, Fig. 10 BCC/SCC cycle reductions),
//!   streaming at the core with slice adapters on top, plus sharded
//!   whole-pack analysis;
//! * [`synth`] — parameterized synthetic generators standing in for the
//!   paper's proprietary ~600-trace corpus (LuxMark, GLBench, Sandra,
//!   BulletPhysics, Face-Detection, …), documented as a substitution in
//!   DESIGN.md, with a deterministic expander toward paper scale.
//!
//! # Examples
//!
//! ```
//! use iwc_trace::{analyze, synth};
//! use iwc_compaction::CompactionMode;
//!
//! let profile = &synth::corpus()[0]; // LuxMark-sky
//! let report = analyze::analyze_source(&mut profile.source(10_000)).unwrap();
//! assert!(!report.is_coherent());
//! assert!(report.reduction(CompactionMode::Scc) >= report.reduction(CompactionMode::Bcc));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod format;
pub mod hash;
pub mod pack;
pub mod source;
pub mod store;
pub mod synth;

pub use analyze::{
    analyze, analyze_corpus, analyze_corpus_engines, analyze_engines, analyze_pack_file,
    analyze_pack_file_engines, analyze_source, analyze_source_engines, corpus_snapshot,
    EngineReport, TraceReport,
};
pub use format::{Trace, TraceIoError, TraceRecord};
pub use hash::trace_hash;
pub use pack::{CorpusPack, PackEntry, PackWriter};
pub use source::{for_each_run, SliceSource, TraceSource, CHUNK_RECORDS};
pub use store::{cache_max_bytes, corpus_dir, ResultsCache};
pub use synth::{corpus, expanded_corpus, MaskStyle, Profile};
