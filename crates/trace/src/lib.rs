//! # iwc-trace
//!
//! Trace infrastructure for the paper's trace-driven methodology (§5.1):
//!
//! * [`mod@format`] — a compact binary execution-mask trace format, plus
//!   conversion from the simulator's mask-capture hook;
//! * [`mod@analyze`] — per-trace compaction analysis (SIMD efficiency,
//!   Fig. 9 utilization buckets, Fig. 10 BCC/SCC cycle reductions);
//! * [`synth`] — parameterized synthetic generators standing in for the
//!   paper's proprietary ~600-trace corpus (LuxMark, GLBench, Sandra,
//!   BulletPhysics, Face-Detection, …), documented as a substitution in
//!   DESIGN.md.
//!
//! # Examples
//!
//! ```
//! use iwc_trace::{analyze, synth};
//! use iwc_compaction::CompactionMode;
//!
//! let profile = &synth::corpus()[0]; // LuxMark-sky
//! let trace = profile.generate(10_000);
//! let report = analyze::analyze(&trace);
//! assert!(!report.is_coherent());
//! assert!(report.reduction(CompactionMode::Scc) >= report.reduction(CompactionMode::Bcc));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod format;
pub mod synth;

pub use analyze::{
    analyze, analyze_corpus, analyze_corpus_engines, analyze_engines, corpus_snapshot,
    EngineReport, TraceReport,
};
pub use format::{Trace, TraceIoError, TraceRecord};
pub use synth::{corpus, MaskStyle, Profile};
