//! Synthetic trace generation for the trace-only workload corpus.
//!
//! The paper's ~600 OpenCL/OpenGL traces (LuxMark, BulletPhysics, Sandra,
//! RightWare, GLBench, Face-Detection, …) are proprietary. Per the
//! substitution rule (DESIGN.md §3) this module generates mask streams with
//! the same *aggregate structure* — SIMD-width mix, efficiency, and mask
//! shape — because the trace-based results of the paper are pure functions
//! of that stream.
//!
//! Each [`Profile`] controls:
//!
//! * `efficiency` — the target SIMD efficiency (read off Fig. 3);
//! * `simd8_fraction` — how many instructions are SIMD8 (register-pressure
//!   limited kernels, §5.3);
//! * `style` — how disabled channels are positioned, which decides whether
//!   BCC or SCC harvests them:
//!   [`MaskStyle::QuadAligned`] (whole quads off → BCC-optimal),
//!   [`MaskStyle::Blocky`] (contiguous runs → BCC-friendly, IVB sometimes),
//!   [`MaskStyle::Scattered`] (random positions → mostly SCC),
//!   [`MaskStyle::Strided`] (regular stride → SCC-only);
//! * `burst_len` — divergence arrives in bursts of this length, modeling
//!   control-flow regions rather than i.i.d. masks.
//!
//! Generation is *streaming*: [`Profile::source`] returns a
//! [`SynthSource`] that synthesizes records one chunk at a time (the
//! analyzer never holds a whole trace), and [`Profile::generate`] is the
//! materializing adapter over the same record stream — both walk the RNG
//! in the identical order, so a streamed trace is byte-identical to a
//! generated one.
//!
//! [`expanded_corpus`] grows the base 22-profile suite toward the paper's
//! ~600-trace scale with a deterministic parameter sweep (seeded variants
//! of every base profile), which is what `iwc pack` writes into the
//! default corpus pack.

use crate::format::{Trace, TraceRecord};
use crate::source::{TraceSource, CHUNK_RECORDS};
use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Positioning of disabled channels within divergent masks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskStyle {
    /// Active channels fill whole aligned quads.
    QuadAligned,
    /// Active channels form one contiguous run at a random offset.
    Blocky,
    /// Active channels are uniformly random positions.
    Scattered,
    /// Active channels sit at a regular stride (2 or 4).
    Strided,
}

impl MaskStyle {
    /// All styles, in the order the corpus expander rotates through them.
    pub const ALL: [MaskStyle; 4] = [
        MaskStyle::QuadAligned,
        MaskStyle::Blocky,
        MaskStyle::Scattered,
        MaskStyle::Strided,
    ];
}

/// A synthetic workload profile.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Workload name (matches the paper's trace tables; expanded variants
    /// carry an `@vNN` suffix).
    pub name: String,
    /// `true` for 3D-graphics (OpenGL) traces, `false` for OpenCL.
    pub opengl: bool,
    /// Target SIMD efficiency in (0, 1].
    pub efficiency: f64,
    /// Fraction of SIMD8 instructions (rest are SIMD16).
    pub simd8_fraction: f64,
    /// Mask style of divergent instructions.
    pub style: MaskStyle,
    /// Mean divergent-burst length in instructions.
    pub burst_len: u32,
    /// RNG seed (fixed per profile for reproducibility).
    pub seed: u64,
}

/// Mean density of active channels inside divergent bursts.
const DIVERGENT_DENSITY: f64 = 0.45;

/// The record-level generation state machine: one profile's RNG plus the
/// burst bookkeeping, yielding records on demand. Both the streaming and
/// the materializing entry points drive this, so they visit the RNG in
/// the identical order and produce identical streams.
struct SynthStream {
    profile: Profile,
    rng: SmallRng,
    /// Fraction of divergent instructions solving
    /// `eff = (1 - p) + p * density`.
    p: f64,
    divergent_left: u32,
    coherent_left: u32,
    remaining: usize,
}

impl SynthStream {
    fn new(profile: &Profile, len: usize) -> Self {
        let p = ((1.0 - profile.efficiency) / (1.0 - DIVERGENT_DENSITY)).clamp(0.0, 1.0);
        Self {
            profile: profile.clone(),
            rng: SmallRng::seed_from_u64(profile.seed),
            p,
            divergent_left: 0,
            coherent_left: 0,
            remaining: len,
        }
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.divergent_left == 0 && self.coherent_left == 0 {
            // Start a new segment. Both segment kinds share the same
            // length distribution, so the instruction-level divergent
            // fraction converges to `p`.
            let seg = 1 + self.rng.gen_range(0..self.profile.burst_len.max(1) * 2);
            if self.rng.gen_bool(self.p) {
                self.divergent_left = seg;
            } else {
                self.coherent_left = seg;
            }
        }
        let width = if self.rng.gen_bool(self.profile.simd8_fraction) {
            8
        } else {
            16
        };
        let mask = if self.divergent_left > 0 {
            self.divergent_left -= 1;
            self.profile.divergent_mask(&mut self.rng, width)
        } else {
            self.coherent_left -= 1;
            ExecMask::all(width)
        };
        Some(TraceRecord::new(mask, DataType::F))
    }
}

/// A bounded-memory [`TraceSource`] synthesizing one profile's trace on
/// the fly: resident state is the RNG plus one [`CHUNK_RECORDS`]-sized
/// buffer, whatever the requested length.
pub struct SynthSource {
    stream: SynthStream,
    total: u64,
    buf: Vec<TraceRecord>,
}

impl TraceSource for SynthSource {
    fn name(&self) -> &str {
        &self.stream.profile.name
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }

    fn next_chunk(&mut self) -> Result<Option<&[TraceRecord]>, crate::format::TraceIoError> {
        self.buf.clear();
        while self.buf.len() < CHUNK_RECORDS {
            match self.stream.next_record() {
                Some(r) => self.buf.push(r),
                None => break,
            }
        }
        Ok(if self.buf.is_empty() {
            None
        } else {
            Some(&self.buf)
        })
    }
}

impl Profile {
    /// Streams a trace of `len` instructions matching the profile, never
    /// materializing more than one chunk.
    pub fn source(&self, len: usize) -> SynthSource {
        SynthSource {
            stream: SynthStream::new(self, len),
            total: len as u64,
            buf: Vec::with_capacity(CHUNK_RECORDS.min(len)),
        }
    }

    /// Generates a trace of `len` instructions matching the profile — the
    /// materializing adapter over [`Profile::source`] (identical stream).
    pub fn generate(&self, len: usize) -> Trace {
        crate::source::collect(&mut self.source(len)).expect("synthesis cannot fail")
    }

    fn divergent_mask(&self, rng: &mut SmallRng, width: u32) -> ExecMask {
        // Active-channel count: clamped binomial-ish around the density.
        let mean = DIVERGENT_DENSITY * f64::from(width);
        let k = (mean + rng.gen_range(-0.35..0.35) * f64::from(width))
            .round()
            .clamp(1.0, f64::from(width)) as u32;
        let bits = match self.style {
            MaskStyle::QuadAligned => {
                let quads = width / 4;
                let active_quads = k.div_ceil(4).min(quads).max(1);
                let mut bits = 0u32;
                let mut placed = 0;
                while placed < active_quads {
                    let q = rng.gen_range(0..quads);
                    if bits >> (q * 4) & 0xF == 0 {
                        bits |= 0xF << (q * 4);
                        placed += 1;
                    }
                }
                bits
            }
            MaskStyle::Blocky => {
                let start = rng.gen_range(0..width);
                let mut bits = 0u32;
                for i in 0..k {
                    bits |= 1 << ((start + i) % width);
                }
                bits
            }
            MaskStyle::Scattered => {
                let mut bits = 0u32;
                let mut placed = 0;
                while placed < k {
                    let c = rng.gen_range(0..width);
                    if bits >> c & 1 == 0 {
                        bits |= 1 << c;
                        placed += 1;
                    }
                }
                bits
            }
            MaskStyle::Strided => {
                let stride = if k * 2 > width { 2 } else { 4 };
                let phase = rng.gen_range(0..stride);
                let mut bits = 0u32;
                let mut placed = 0;
                let mut c = phase;
                while placed < k && c < width {
                    bits |= 1 << c;
                    c += stride;
                    placed += 1;
                }
                // Wrap remaining channels onto a second phase.
                let mut c = (phase + 1) % stride;
                while placed < k {
                    if bits >> c & 1 == 0 {
                        bits |= 1 << c;
                        placed += 1;
                    }
                    c = (c + stride) % width + u32::from(c + stride >= width);
                    if c >= width {
                        c %= width;
                    }
                }
                bits
            }
        };
        ExecMask::new(bits, width)
    }
}

/// The trace-only corpus: divergent OpenCL and OpenGL workloads from the
/// paper's trace study (§5.1, Figs. 3, 9, 10), with efficiencies read off
/// Fig. 3 and styles chosen to match the paper's observation of where the
/// SCC share of the benefit is large (Face Detection, GLBench) versus
/// BCC-dominated (tree search, cp).
pub fn corpus() -> Vec<Profile> {
    use MaskStyle::*;
    let p = |name: &str, opengl, efficiency, simd8_fraction, style, burst_len, seed| Profile {
        name: name.to_string(),
        opengl,
        efficiency,
        simd8_fraction,
        style,
        burst_len,
        seed,
    };
    vec![
        p("LuxMark-sky", false, 0.58, 0.9, Scattered, 24, 1001),
        p("LuxMark_sala", false, 0.52, 0.9, Scattered, 24, 1002),
        p("luxmark_ocl", false, 0.55, 0.9, Scattered, 20, 1003),
        p("LuxMark_hdr", false, 0.66, 0.9, Scattered, 20, 1004),
        p("cp", false, 0.72, 0.1, Blocky, 12, 1005),
        p("bulletphysics", false, 0.56, 0.2, Scattered, 16, 1006),
        p("oclprofv1p0", false, 0.64, 0.2, Blocky, 12, 1007),
        p(
            "rightware_mandelbulb",
            false,
            0.48,
            0.3,
            Scattered,
            32,
            1008,
        ),
        p("tree_search", false, 0.62, 0.1, Blocky, 10, 1009),
        p("OptSAA", false, 0.70, 0.2, QuadAligned, 8, 1010),
        p("sandra_ocl", false, 0.60, 0.2, Scattered, 16, 1011),
        p("ati-eigenval", false, 0.55, 0.1, Blocky, 14, 1012),
        p("ati_floydwarshall", false, 0.61, 0.1, QuadAligned, 10, 1013),
        p("glbench_egypt", true, 0.63, 0.4, Strided, 18, 1014),
        p("glbench_pro", true, 0.66, 0.4, Strided, 18, 1015),
        p("FD_IntelFinalists", false, 0.54, 0.3, Strided, 26, 1016),
        p("FD_politicians", false, 0.50, 0.3, Strided, 26, 1017),
        // Additional 3D-graphics (OpenGL) traces: pixel-shader divergence
        // from alpha tests and material branches — the paper's trace study
        // covered ~380 OpenGL traces, 80 of which showed >10% benefit.
        p("ogl_shadowmap", true, 0.68, 0.5, Blocky, 14, 1018),
        p("ogl_particles", true, 0.57, 0.5, Scattered, 22, 1019),
        p("ogl_deferred", true, 0.61, 0.4, Strided, 16, 1020),
        p("ogl_terrain", true, 0.73, 0.3, QuadAligned, 10, 1021),
        p("ogl_hdr_bloom", true, 0.65, 0.4, Scattered, 12, 1022),
    ]
}

/// Default size of the expanded corpus — the paper's trace-study scale
/// (§5.1: ~600 OpenCL/OpenGL traces).
pub const DEFAULT_EXPANDED_TRACES: usize = 600;

/// Grows the base [`corpus`] toward the paper's trace-study scale with a
/// deterministic parameter sweep: the 22 base profiles come first, then
/// seeded variants of each (efficiency/SIMD8-mix/burst jitter plus a mask
/// style rotation every fourth round) until `target` profiles exist.
/// Everything is a pure function of `target` — same input, same corpus,
/// whatever machine or thread count — so a pack written from this corpus
/// is reproducible byte-for-byte.
pub fn expanded_corpus(target: usize) -> Vec<Profile> {
    let base = corpus();
    let mut out = Vec::with_capacity(target.max(base.len()));
    out.extend(base.iter().cloned());
    let mut round = 1u64;
    while out.len() < target {
        for (i, b) in base.iter().enumerate() {
            if out.len() >= target {
                break;
            }
            // Deterministic jitter streams, decorrelated across the two
            // knobs by different multipliers.
            let jitter = |mult: u64, span: f64| {
                let lane = (round * mult + i as u64 * 3) % 11;
                (lane as f64 - 5.0) / 5.0 * span
            };
            let style = if round % 4 == 3 {
                // Rotate the mask style to cover (style × efficiency)
                // combinations the base suite lacks.
                let at = MaskStyle::ALL
                    .iter()
                    .position(|&s| s == b.style)
                    .expect("style in ALL");
                MaskStyle::ALL[(at + 1) % MaskStyle::ALL.len()]
            } else {
                b.style
            };
            out.push(Profile {
                name: format!("{}@v{round:02}", b.name),
                opengl: b.opengl,
                efficiency: (b.efficiency + jitter(7, 0.08)).clamp(0.32, 0.90),
                simd8_fraction: (b.simd8_fraction + jitter(5, 0.15)).clamp(0.0, 1.0),
                style,
                burst_len: b.burst_len + u32::try_from(round % 5).expect("small") * 4,
                seed: b.seed + 10_000 * round,
            });
        }
        round += 1;
    }
    out
}

/// Default trace length used by the harness.
pub const DEFAULT_TRACE_LEN: usize = 50_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use iwc_compaction::CompactionMode;

    #[test]
    fn efficiency_matches_target() {
        for prof in corpus() {
            let t = prof.generate(30_000);
            let r = analyze(&t);
            let got = r.simd_efficiency();
            assert!(
                (got - prof.efficiency).abs() < 0.08,
                "{}: efficiency {got:.3}, target {:.3}",
                prof.name,
                prof.efficiency
            );
        }
    }

    #[test]
    fn strided_profiles_are_scc_dominated() {
        let prof = corpus()
            .into_iter()
            .find(|p| p.name == "FD_politicians")
            .unwrap();
        let r = analyze(&prof.generate(30_000));
        let bcc = r.reduction(CompactionMode::Bcc);
        let scc = r.reduction(CompactionMode::Scc);
        assert!(
            scc > 2.0 * bcc,
            "FD: scc {scc:.3} should dominate bcc {bcc:.3}"
        );
        assert!(scc > 0.15, "FD: scc {scc:.3} should be sizeable");
    }

    #[test]
    fn quad_aligned_profiles_are_bcc_dominated() {
        let prof = corpus().into_iter().find(|p| p.name == "OptSAA").unwrap();
        let r = analyze(&prof.generate(30_000));
        let bcc = r.reduction(CompactionMode::Bcc);
        let extra = r.scc_extra();
        assert!(bcc > 0.10, "OptSAA: bcc {bcc:.3}");
        assert!(
            extra < bcc / 2.0,
            "OptSAA: scc extra {extra:.3} should be small"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let prof = &corpus()[0];
        assert_eq!(prof.generate(1000), prof.generate(1000));
    }

    #[test]
    fn streamed_equals_generated() {
        use crate::source::TraceSource;
        for prof in corpus().iter().take(4) {
            let materialized = prof.generate(9_000);
            let mut streamed = Vec::new();
            let mut src = prof.source(9_000);
            assert_eq!(src.len_hint(), Some(9_000));
            while let Some(chunk) = src.next_chunk().expect("synthesis cannot fail") {
                assert!(chunk.len() <= crate::source::CHUNK_RECORDS);
                streamed.extend_from_slice(chunk);
            }
            assert_eq!(streamed, materialized.records, "{}", prof.name);
        }
    }

    #[test]
    fn all_profiles_divergent() {
        for prof in corpus() {
            let r = analyze(&prof.generate(10_000));
            assert!(!r.is_coherent(), "{} should be divergent", prof.name);
        }
    }

    #[test]
    fn masks_never_empty() {
        for prof in corpus() {
            let t = prof.generate(5_000);
            for rec in &t.records {
                assert!(rec.mask().active_channels() >= 1, "{}", prof.name);
            }
        }
    }

    #[test]
    fn expanded_corpus_is_deterministic_and_unique() {
        let a = expanded_corpus(450);
        let b = expanded_corpus(450);
        assert_eq!(a, b, "expansion must be a pure function of target");
        assert_eq!(a.len(), 450);
        // Base profiles come first, unchanged.
        assert_eq!(a[..corpus().len()], corpus()[..]);
        let mut names: Vec<&str> = a.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 450, "names must be unique");
        let mut seeds: Vec<u64> = a.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 450, "seeds must be unique");
    }

    #[test]
    fn expanded_corpus_stays_in_generator_range() {
        for p in expanded_corpus(500) {
            assert!(
                (0.30..=0.92).contains(&p.efficiency),
                "{}: efficiency {}",
                p.name,
                p.efficiency
            );
            assert!((0.0..=1.0).contains(&p.simd8_fraction), "{}", p.name);
            assert!(p.burst_len >= 1, "{}", p.name);
        }
    }

    #[test]
    fn expanded_corpus_smaller_than_base_is_the_base_prefix() {
        let a = expanded_corpus(5);
        assert_eq!(a.len(), corpus().len(), "base profiles always included");
    }
}
