//! Corpus store layout and the content-addressed results cache.
//!
//! Packs and cached analysis results live under one directory, selected
//! by the `IWC_CORPUS_DIR` env knob (warn-once-and-default convention,
//! matching `IWC_SERVE_*`; default `results/corpus/`):
//!
//! ```text
//! results/corpus/
//!   corpus.iwcc        # default expanded-corpus pack (regenerable)
//!   cache/<key>.iwcr   # results cache, one payload per key
//! ```
//!
//! The cache is *content-addressed*: a key is the FNV-1a combination of a
//! pack (or trace) content hash, the engine set, and a consumer-chosen
//! config fingerprint — nothing positional, so a re-pack of identical
//! traces hits, and any content or config change misses. Payloads are
//! opaque strings (the consumers store their own deterministic report
//! blocks); each cache file carries a `IWCR 1 <key>` header line that is
//! validated on load, and any mismatch or unreadable file is a miss,
//! never an error. FNV-1a is not adversarially collision-resistant; the
//! cache treats a key hit as identity for well-behaved inputs, same as
//! the serve decode cache.

use crate::hash::Fnv1a;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

fn warn_once(key: &str, msg: &str) {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let mut warned = WARNED.lock().expect("warn_once poisoned");
    if warned.insert(key.to_string()) {
        eprintln!("iwc-trace: {msg}");
    }
}

/// Default corpus directory, relative to the working directory.
pub const DEFAULT_CORPUS_DIR: &str = "results/corpus";

fn corpus_dir_from(raw: Option<std::ffi::OsString>) -> PathBuf {
    match raw {
        Some(v) if !v.as_os_str().is_empty() => PathBuf::from(v),
        Some(_) => {
            warn_once(
                "IWC_CORPUS_DIR",
                &format!("ignoring empty IWC_CORPUS_DIR (using {DEFAULT_CORPUS_DIR})"),
            );
            PathBuf::from(DEFAULT_CORPUS_DIR)
        }
        None => PathBuf::from(DEFAULT_CORPUS_DIR),
    }
}

/// Where packs and the results cache live: `IWC_CORPUS_DIR`, defaulting
/// to [`DEFAULT_CORPUS_DIR`] (warning once when the knob is set but
/// empty).
pub fn corpus_dir() -> PathBuf {
    corpus_dir_from(std::env::var_os("IWC_CORPUS_DIR"))
}

/// Conventional path of the default expanded-corpus pack.
pub fn default_pack_path() -> PathBuf {
    corpus_dir().join("corpus.iwcc")
}

fn cache_max_bytes_from(raw: Option<std::ffi::OsString>) -> u64 {
    match raw {
        None => 0,
        Some(v) => match v.to_str().and_then(|s| s.trim().parse::<u64>().ok()) {
            Some(n) => n,
            None => {
                warn_once(
                    "IWC_CACHE_MAX_BYTES",
                    "ignoring unparseable IWC_CACHE_MAX_BYTES (cache unbounded)",
                );
                0
            }
        },
    }
}

/// Results-cache size bound in bytes: `IWC_CACHE_MAX_BYTES`, with `0`
/// (also the default when unset) meaning unbounded. An unparseable value
/// warns once and leaves the cache unbounded.
pub fn cache_max_bytes() -> u64 {
    cache_max_bytes_from(std::env::var_os("IWC_CACHE_MAX_BYTES"))
}

/// Magic of a cache payload file's header line.
const CACHE_MAGIC: &str = "IWCR";
/// Cache payload format version.
const CACHE_VERSION: u32 = 1;

/// A disk cache of analysis results, keyed by content.
///
/// Consumers derive a key with [`ResultsCache::key`] from the content
/// hash of what was analyzed, the engine set, and a fingerprint string
/// covering every config knob that changes the output (trace length,
/// shard-invariant settings excluded — thread count must *not* go into
/// the fingerprint, the whole point being that results are
/// thread-count-invariant).
pub struct ResultsCache {
    dir: PathBuf,
    max_bytes: u64,
}

impl ResultsCache {
    /// A cache rooted at `dir`, bounded by [`cache_max_bytes`] (the
    /// `IWC_CACHE_MAX_BYTES` knob; `0` = unbounded).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_bytes: cache_max_bytes(),
        }
    }

    /// Overrides the size bound (`0` = unbounded). Mainly for tests —
    /// production callers get the env-derived bound from [`Self::new`].
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The cache under the configured corpus directory
    /// (`IWC_CORPUS_DIR`/cache).
    pub fn open_default() -> Self {
        Self::new(corpus_dir().join("cache"))
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Derives a cache key from a content hash (pack or single trace),
    /// the engine labels, and a consumer fingerprint. Engine order
    /// matters — the cached payload is a rendered report whose column
    /// order follows the engine set.
    pub fn key(content_hash: u64, engine_labels: &[String], fingerprint: &str) -> u64 {
        let mut h = Fnv1a::new();
        h.write(&content_hash.to_le_bytes());
        for label in engine_labels {
            h.write(label.as_bytes());
            h.write(&[0xff]);
        }
        h.write(fingerprint.as_bytes());
        h.finish()
    }

    /// Path of the payload file for `key`.
    pub fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.iwcr"))
    }

    /// Loads the payload cached under `key`, or `None` on a miss. A
    /// missing, unreadable, or corrupted file (bad header magic, version,
    /// or key) is a miss — the cache is advisory, never authoritative.
    pub fn load(&self, key: u64) -> Option<String> {
        let text = fs::read_to_string(self.path_of(key)).ok()?;
        let (header, payload) = text.split_once('\n')?;
        let mut parts = header.split(' ');
        if parts.next() != Some(CACHE_MAGIC) {
            return None;
        }
        if parts.next().and_then(|v| v.parse::<u32>().ok()) != Some(CACHE_VERSION) {
            return None;
        }
        let stamped = parts.next().and_then(|k| u64::from_str_radix(k, 16).ok())?;
        if stamped != key || parts.next().is_some() {
            return None;
        }
        Some(payload.to_string())
    }

    /// Stores `payload` under `key` (parent directories created; the
    /// write goes through a temp file plus rename, so concurrent readers
    /// only ever see complete payloads).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, key: u64, payload: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_of(key);
        let tmp = self.dir.join(format!("{key:016x}.tmp"));
        fs::write(
            &tmp,
            format!("{CACHE_MAGIC} {CACHE_VERSION} {key:016x}\n{payload}"),
        )?;
        fs::rename(&tmp, &path)?;
        if self.max_bytes > 0 {
            self.evict_to_bound(&path);
        }
        Ok(path)
    }

    /// Best-effort eviction down to `max_bytes`: oldest-mtime payloads go
    /// first (path as the tie-break for determinism), the just-stored one
    /// never does — an oversized single payload stays cached rather than
    /// thrashing. Scan or unlink failures are ignored; the bound is
    /// advisory, like the cache itself.
    fn evict_to_bound(&self, keep: &Path) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut payloads: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut total: u64 = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "iwcr") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            total += meta.len();
            if path != keep {
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                payloads.push((mtime, path, meta.len()));
            }
        }
        payloads.sort();
        for (_, path, len) in payloads {
            if total <= self.max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> ResultsCache {
        let dir =
            std::env::temp_dir().join(format!("iwc-results-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultsCache::new(dir)
    }

    #[test]
    fn corpus_dir_knob_defaults_and_rejects_empty() {
        assert_eq!(corpus_dir_from(None), PathBuf::from(DEFAULT_CORPUS_DIR));
        assert_eq!(
            corpus_dir_from(Some("".into())),
            PathBuf::from(DEFAULT_CORPUS_DIR)
        );
        assert_eq!(
            corpus_dir_from(Some("/tmp/elsewhere".into())),
            PathBuf::from("/tmp/elsewhere")
        );
    }

    #[test]
    fn key_covers_every_component() {
        let engines = vec!["ivb".to_string(), "bcc".to_string()];
        let k = ResultsCache::key(1, &engines, "fp/v1");
        assert_eq!(k, ResultsCache::key(1, &engines, "fp/v1"), "deterministic");
        assert_ne!(k, ResultsCache::key(2, &engines, "fp/v1"), "content hash");
        assert_ne!(
            k,
            ResultsCache::key(1, &engines[..1], "fp/v1"),
            "engine set"
        );
        assert_ne!(k, ResultsCache::key(1, &engines, "fp/v2"), "fingerprint");
        let swapped = vec!["bcc".to_string(), "ivb".to_string()];
        assert_ne!(k, ResultsCache::key(1, &swapped, "fp/v1"), "engine order");
    }

    #[test]
    fn roundtrip_and_misses() {
        let cache = tmp_cache("roundtrip");
        let key = ResultsCache::key(42, &[], "t");
        assert_eq!(cache.load(key), None, "cold cache misses");
        cache.store(key, "line one\nline two\n").unwrap();
        assert_eq!(cache.load(key).as_deref(), Some("line one\nline two\n"));
        assert_eq!(cache.load(key ^ 1), None, "other keys still miss");

        // A payload stamped with the wrong key is a miss, not a panic.
        fs::write(cache.path_of(7), "IWCR 1 0000000000000001\nstale").unwrap();
        assert_eq!(cache.load(7), None);
        // Corrupted headers are misses.
        fs::write(cache.path_of(8), "not a cache file").unwrap();
        assert_eq!(cache.load(8), None);
        fs::write(cache.path_of(9), "IWCR 999 0000000000000009\nx").unwrap();
        assert_eq!(cache.load(9), None);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_max_bytes_knob_defaults_and_rejects_garbage() {
        assert_eq!(cache_max_bytes_from(None), 0);
        assert_eq!(cache_max_bytes_from(Some("4096".into())), 4096);
        assert_eq!(cache_max_bytes_from(Some(" 512 ".into())), 512);
        assert_eq!(cache_max_bytes_from(Some("lots".into())), 0);
        assert_eq!(cache_max_bytes_from(Some("-1".into())), 0);
    }

    #[test]
    fn store_evicts_oldest_payloads_past_the_bound() {
        let header = CACHE_MAGIC.len() + 1 + 1 + 1 + 16 + 1; // "IWCR 1 <key>\n"
        let body = "x".repeat(100);
        let file_len = (header + body.len()) as u64;
        let cache = tmp_cache("evict").with_max_bytes(2 * file_len);

        // Age the entries by explicit mtime so the test needs no sleeps.
        let age = |key: u64, secs_ago: u64| {
            let t = std::time::SystemTime::now() - std::time::Duration::from_secs(secs_ago);
            fs::File::options()
                .write(true)
                .open(cache.path_of(key))
                .unwrap()
                .set_modified(t)
                .unwrap();
        };
        cache.store(1, &body).unwrap();
        age(1, 300);
        cache.store(2, &body).unwrap();
        age(2, 200);
        // Third store pushes the total to 3x the bound of 2x: the oldest
        // payload (key 1) must go, the fresh write must survive.
        cache.store(3, &body).unwrap();
        assert_eq!(cache.load(1), None, "oldest payload evicted");
        assert_eq!(cache.load(2).as_deref(), Some(body.as_str()));
        assert_eq!(cache.load(3).as_deref(), Some(body.as_str()));

        // An oversized single payload is stored anyway (never evict the
        // entry just written), displacing everything else.
        let big = "y".repeat(5 * file_len as usize);
        age(2, 200);
        age(3, 100);
        cache.store(4, &big).unwrap();
        assert_eq!(cache.load(2), None);
        assert_eq!(cache.load(3), None);
        assert_eq!(cache.load(4).as_deref(), Some(big.as_str()));

        // Unbounded caches never evict.
        let unbounded = ResultsCache::new(cache.dir().to_path_buf()).with_max_bytes(0);
        unbounded.store(5, &body).unwrap();
        unbounded.store(6, &body).unwrap();
        assert_eq!(unbounded.load(4).as_deref(), Some(big.as_str()));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let cache = tmp_cache("empty");
        let key = ResultsCache::key(9, &["scc".to_string()], "");
        cache.store(key, "").unwrap();
        assert_eq!(cache.load(key).as_deref(), Some(""));
        let _ = fs::remove_dir_all(cache.dir());
    }
}
