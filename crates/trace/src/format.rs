//! Execution-mask trace format.
//!
//! A trace is a sequence of `(mask, width, dtype)` records — everything the
//! intra-warp compaction analysis needs (§5.1: the functional model was
//! instrumented "to obtain SIMD execution masks for every executed
//! instruction"). Traces serialize to a compact little-endian binary format
//! with a magic header, and deserialize with full validation.

use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// One executed SIMD instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Execution-mask bits.
    pub bits: u32,
    /// SIMD width (1, 4, 8, 16, 32).
    pub width: u8,
    /// Execution data type.
    pub dtype: DataType,
}

impl TraceRecord {
    /// Creates a record from a mask and type.
    pub fn new(mask: ExecMask, dtype: DataType) -> Self {
        Self {
            bits: mask.bits(),
            width: mask.width() as u8,
            dtype,
        }
    }

    /// The execution mask.
    pub fn mask(&self) -> ExecMask {
        ExecMask::new(self.bits, u32::from(self.width))
    }
}

/// A named execution-mask trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name.
    pub name: String,
    /// Executed instructions, in order.
    pub records: Vec<TraceRecord>,
}

/// Magic bytes of the binary trace format.
pub const TRACE_MAGIC: [u8; 4] = *b"IWCT";

/// Trace I/O failure.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a trace (bad magic or field).
    Malformed(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace i/o error: {e}"),
            Self::Malformed(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Wire size of one record: bits (u32 LE) + width + dtype code.
pub(crate) const RECORD_WIRE_BYTES: usize = 6;

/// Encodes one record in the `IWCT` wire layout (shared with the pack
/// payload section).
pub(crate) fn record_to_wire(r: &TraceRecord) -> [u8; RECORD_WIRE_BYTES] {
    let b = r.bits.to_le_bytes();
    [b[0], b[1], b[2], b[3], r.width, dtype_code(r.dtype)]
}

/// Decodes one record from the `IWCT` wire layout, validating width and
/// dtype.
pub(crate) fn record_from_wire(rec: &[u8; RECORD_WIRE_BYTES]) -> Result<TraceRecord, TraceIoError> {
    let bits = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
    let width = rec[4];
    if !matches!(width, 1 | 4 | 8 | 16 | 32) {
        return Err(TraceIoError::Malformed(format!("bad width {width}")));
    }
    let dtype = dtype_from(rec[5])?;
    Ok(TraceRecord { bits, width, dtype })
}

fn dtype_code(d: DataType) -> u8 {
    match d {
        DataType::Ub => 0,
        DataType::B => 1,
        DataType::Uw => 2,
        DataType::W => 3,
        DataType::Hf => 4,
        DataType::Ud => 5,
        DataType::D => 6,
        DataType::F => 7,
        DataType::Uq => 8,
        DataType::Q => 9,
        DataType::Df => 10,
    }
}

fn dtype_from(code: u8) -> Result<DataType, TraceIoError> {
    Ok(match code {
        0 => DataType::Ub,
        1 => DataType::B,
        2 => DataType::Uw,
        3 => DataType::W,
        4 => DataType::Hf,
        5 => DataType::Ud,
        6 => DataType::D,
        7 => DataType::F,
        8 => DataType::Uq,
        9 => DataType::Q,
        10 => DataType::Df,
        other => return Err(TraceIoError::Malformed(format!("bad dtype code {other}"))),
    })
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one instruction.
    pub fn push(&mut self, mask: ExecMask, dtype: DataType) {
        self.records.push(TraceRecord::new(mask, dtype));
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Builds a trace from the simulator's captured mask stream
    /// (`SimResult::eu.mask_trace`, recorded under
    /// `GpuConfig::with_mask_capture(true)`). Data types are not captured by
    /// the hook, so records are tagged `F` (the common case); cycle analysis
    /// is type-scaled only for 64-bit types, which the capture path does not
    /// produce.
    pub fn from_mask_stream(name: impl Into<String>, masks: &[(u32, u8)]) -> Self {
        Self {
            name: name.into(),
            records: masks
                .iter()
                .map(|&(bits, width)| TraceRecord {
                    bits,
                    width,
                    dtype: DataType::F,
                })
                .collect(),
        }
    }

    /// Serializes to the compact binary format.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceIoError> {
        w.write_all(&TRACE_MAGIC)?;
        let name = self.name.as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            w.write_all(&record_to_wire(r))?;
        }
        Ok(())
    }

    /// Deserializes from the compact binary format, validating every record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Malformed`] on bad magic, widths, or types.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(TraceIoError::Malformed("bad magic".into()));
        }
        let mut len4 = [0u8; 4];
        r.read_exact(&mut len4)?;
        let name_len = u32::from_le_bytes(len4) as usize;
        if name_len > 4096 {
            return Err(TraceIoError::Malformed("unreasonable name length".into()));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| TraceIoError::Malformed("name is not UTF-8".into()))?;
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let count = u64::from_le_bytes(len8);
        let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            let mut rec = [0u8; RECORD_WIRE_BYTES];
            r.read_exact(&mut rec)?;
            records.push(record_from_wire(&rec)?);
        }
        Ok(Self { name, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut t = Trace::new("unit");
        t.push(ExecMask::new(0xAAAA, 16), DataType::F);
        t.push(ExecMask::new(0x0F, 8), DataType::Df);
        t.push(ExecMask::all(32), DataType::Ud);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let e = Trace::read_from(&b"NOPE\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(e, TraceIoError::Malformed(_)));
    }

    #[test]
    fn rejects_bad_width() {
        let mut buf = Vec::new();
        Trace {
            name: "x".into(),
            records: vec![],
        }
        .write_to(&mut buf)
        .unwrap();
        // Append a fake record with width 3 after patching the count.
        let count_pos = buf.len() - 8;
        buf[count_pos..count_pos + 8].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0, 0, 3, 7]);
        let e = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(e, TraceIoError::Malformed(_)), "{e}");
    }

    #[test]
    fn from_mask_stream() {
        let t = Trace::from_mask_stream("cap", &[(0xF0F0, 16), (0x0F, 8)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.records[0].mask(), ExecMask::new(0xF0F0, 16));
        assert_eq!(t.records[1].mask().width(), 8);
    }

    #[test]
    fn all_dtypes_roundtrip() {
        let mut t = Trace::new("types");
        for d in [
            DataType::Ub,
            DataType::B,
            DataType::Uw,
            DataType::W,
            DataType::Hf,
            DataType::Ud,
            DataType::D,
            DataType::F,
            DataType::Uq,
            DataType::Q,
            DataType::Df,
        ] {
            t.push(ExecMask::all(16), d);
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(Trace::read_from(&buf[..]).unwrap(), t);
    }
}
