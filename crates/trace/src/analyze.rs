//! Trace analysis: cycle compaction benefit from a mask stream.
//!
//! The paper's trace-based methodology (§5.1): given the execution masks of
//! every executed instruction, evaluate each under the Baseline / Ivy Bridge
//! / BCC / SCC cycle models and report savings. This is a pure function of
//! the trace — the same arithmetic the simulator applies online.

use crate::format::{Trace, TraceIoError};
use crate::pack::CorpusPack;
use crate::source::{for_each_run, SliceSource, TraceSource};
use iwc_compaction::{
    CompactionMode, CompactionTally, EngineId, EngineTally, TallyMemo, UtilBucket,
};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Analysis result of one trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Workload name.
    pub name: String,
    /// Full compaction accounting.
    pub tally: CompactionTally,
    /// Number of maximal `(mask, dtype)` runs the record stream folded
    /// into — `instructions / runs` is the mean run length, the direct
    /// predictor of how much the run-length fast path saves. Reports
    /// serialized before this field existed deserialize to 0.
    #[serde(default)]
    pub runs: u64,
}

impl TraceReport {
    /// SIMD efficiency of the trace (Fig. 3).
    pub fn simd_efficiency(&self) -> f64 {
        self.tally.simd_efficiency()
    }

    /// Coherent/divergent classification at the paper's 95 % threshold.
    pub fn is_coherent(&self) -> bool {
        self.tally.is_coherent()
    }

    /// EU-cycle reduction of the engine over the Ivy Bridge baseline
    /// (Fig. 10). Accepts a [`CompactionMode`] or the [`EngineId`] of one of
    /// the four canonical engines; for ablation engines use
    /// [`analyze_engines`], which accounts arbitrary engine sets.
    ///
    /// # Panics
    ///
    /// Panics when the engine is not one of the paper's four modes.
    pub fn reduction(&self, engine: impl Into<EngineId>) -> f64 {
        let id: EngineId = engine.into();
        let mode = id.mode().unwrap_or_else(|| {
            panic!("TraceReport accounts the four canonical modes only; use analyze_engines")
        });
        self.tally.reduction_vs_ivb(mode)
    }

    /// Additional SCC benefit beyond BCC, in absolute percentage points of
    /// the Ivy Bridge cycle count (the stacked segment of Fig. 10).
    pub fn scc_extra(&self) -> f64 {
        self.reduction(CompactionMode::Scc) - self.reduction(CompactionMode::Bcc)
    }

    /// Utilization-bucket fractions (Fig. 9).
    pub fn buckets(&self) -> [(UtilBucket, f64); 7] {
        self.tally.bucket_fractions()
    }
}

/// Analyzes a streaming source chunk by chunk — the core entry point;
/// peak memory is O(chunk) whatever the trace length.
///
/// Records are folded into maximal `(mask, dtype)` runs first
/// ([`for_each_run`]) and each run is charged multiplicatively through a
/// [`TallyMemo`], so the four cycle models and the SCC swizzle cost are
/// evaluated once per *distinct mask in the working set* instead of once
/// per record. Every tally field is an integer sum, so the result is
/// exactly equal to the per-record accounting — the scalar path survives
/// as [`CompactionTally::add`] and the differential tests pin the
/// equivalence.
///
/// # Errors
///
/// Propagates stream failures (unreadable or malformed sources).
pub fn analyze_source(src: &mut dyn TraceSource) -> Result<TraceReport, TraceIoError> {
    // Divergence traces carry tens of thousands of distinct masks with a
    // mean run length near 1 on the synthetic corpus, so the memo — not
    // the run fold — decides whether the cycle models are evaluated per
    // run or per distinct mask. One analyzer-sized memo per thread,
    // reused across traces: keys are (mask, dtype) alone, so cross-trace
    // reuse is sound (the memo is transparent by contract), and the
    // ~6 MiB table is paid once per worker instead of zeroed per trace.
    thread_local! {
        static MEMO: std::cell::RefCell<TallyMemo> =
            std::cell::RefCell::new(TallyMemo::with_ways(TallyMemo::ANALYZER_WAYS));
    }
    let name = src.name().to_owned();
    let mut tally = CompactionTally::new();
    let runs = MEMO.with(|memo| {
        let memo = &mut *memo.borrow_mut();
        for_each_run(src, |r, n| {
            let d = memo.delta(r.mask(), r.dtype);
            tally.add_delta_scaled(&d, n);
        })
    })?;
    Ok(TraceReport { name, tally, runs })
}

/// Analyzes a materialized trace (adapter over [`analyze_source`]).
pub fn analyze(trace: &Trace) -> TraceReport {
    analyze_source(&mut SliceSource::from(trace)).expect("slice sources cannot fail")
}

/// Analysis of one trace under an arbitrary set of compaction engines —
/// the engine-generic counterpart of [`TraceReport`], used by ablation
/// sweeps that include non-canonical engines (e.g. distance-limited
/// swizzle networks).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineReport {
    /// Workload name.
    pub name: String,
    /// Per-engine cycle accounting.
    pub tally: EngineTally,
}

/// Analyzes a streaming source under the given engines, chunk by chunk.
///
/// # Errors
///
/// Propagates stream failures (unreadable or malformed sources).
pub fn analyze_source_engines(
    src: &mut dyn TraceSource,
    ids: &[EngineId],
) -> Result<EngineReport, TraceIoError> {
    let name = src.name().to_owned();
    let mut tally = EngineTally::new(ids);
    for_each_run(src, |r, n| {
        tally.add_run(r.mask(), r.dtype, n);
    })?;
    Ok(EngineReport { name, tally })
}

/// Analyzes a materialized trace under the given engines (adapter over
/// [`analyze_source_engines`]).
pub fn analyze_engines(trace: &Trace, ids: &[EngineId]) -> EngineReport {
    analyze_source_engines(&mut SliceSource::from(trace), ids).expect("slice sources cannot fail")
}

/// Deterministic order-preserving fan-out over `n` independent shards:
/// workers claim indices off a shared atomic counter and deposit results
/// into per-index slots, so the output order matches the input order
/// whatever the thread count. Each shard is a pure function of its index
/// — the thread count changes only the wall clock, never the results.
fn fanout<R, F>(n: usize, threads: usize, run_one: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pool = threads.max(1).min(n);
    if pool <= 1 {
        return (0..n).map(&run_one).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..pool {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let report = run_one(i);
                *slots[i].lock().expect("report slot poisoned") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("report slot poisoned")
                .expect("every shard ran")
        })
        .collect()
}

/// Deterministic order-preserving fan-out over a corpus: each profile is
/// generated and reduced to a report on a scoped worker pool.
fn corpus_fanout<R, F>(profiles: &[crate::synth::Profile], threads: usize, analyze_one: F) -> Vec<R>
where
    R: Send,
    F: Fn(&crate::synth::Profile) -> R + Sync,
{
    fanout(profiles.len(), threads, |i| analyze_one(&profiles[i]))
}

/// Generates and analyzes every profile of a corpus on a scoped worker
/// pool, returning reports in corpus order regardless of the thread count
/// (`threads` is clamped to at least 1; pass 1 for a serial sweep).
///
/// Each (profile, generate, analyze) triple is independent — synthesis is
/// seeded per profile — so this is a plain deterministic fan-out, the
/// trace-corpus counterpart of the simulator harness's cell runner.
pub fn analyze_corpus(
    profiles: &[crate::synth::Profile],
    len: usize,
    threads: usize,
) -> Vec<TraceReport> {
    corpus_fanout(profiles, threads, |p| {
        analyze_source(&mut p.source(len)).expect("synthesis cannot fail")
    })
}

/// [`analyze_corpus`] under an arbitrary engine set: the same deterministic
/// fan-out, but every instruction is accounted by each engine in `ids`.
pub fn analyze_corpus_engines(
    profiles: &[crate::synth::Profile],
    len: usize,
    threads: usize,
    ids: &[EngineId],
) -> Vec<EngineReport> {
    corpus_fanout(profiles, threads, |p| {
        analyze_source_engines(&mut p.source(len), ids).expect("synthesis cannot fail")
    })
}

/// Sharded streaming analysis of a pack file: every worker opens its own
/// handle on `path` and streams whole traces, so peak memory is
/// O(threads × chunk) and results are in pack order whatever the thread
/// count (each trace is a pure function of its payload — the PR 4
/// commutative-merge design extended to disk).
///
/// # Errors
///
/// Propagates the first open or stream failure, including per-trace
/// content-hash mismatches.
pub fn analyze_pack_file(path: &Path, threads: usize) -> Result<Vec<TraceReport>, TraceIoError> {
    analyze_pack_file_with(path, threads, |src| analyze_source(src))
}

/// [`analyze_pack_file`] under an arbitrary engine set.
///
/// # Errors
///
/// Propagates the first open or stream failure.
pub fn analyze_pack_file_engines(
    path: &Path,
    threads: usize,
    ids: &[EngineId],
) -> Result<Vec<EngineReport>, TraceIoError> {
    analyze_pack_file_with(path, threads, |src| analyze_source_engines(src, ids))
}

fn analyze_pack_file_with<R, F>(
    path: &Path,
    threads: usize,
    analyze_one: F,
) -> Result<Vec<R>, TraceIoError>
where
    R: Send,
    F: Fn(&mut dyn TraceSource) -> Result<R, TraceIoError> + Sync,
{
    // One open up front surfaces header/index errors before any worker
    // spawns and fixes the shard count.
    let mut first = CorpusPack::open_path(path)?;
    let n = first.len();
    let pool = threads.max(1).min(n.max(1));
    if pool <= 1 {
        return (0..n).map(|i| analyze_one(&mut first.stream(i)?)).collect();
    }
    drop(first);
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, TraceIoError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..pool {
            s.spawn(|| {
                // One handle per worker: the index is tiny next to the
                // payload, and seeks never contend across handles.
                let mut pack = match CorpusPack::open_path(path) {
                    Ok(p) => p,
                    Err(e) => {
                        // Park the failure on the next unclaimed shard;
                        // peers still drain the rest.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if let Some(slot) = slots.get(i) {
                            *slot.lock().expect("report slot poisoned") = Some(Err(e));
                        }
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let report = pack.stream(i).and_then(|mut src| analyze_one(&mut src));
                    *slots[i].lock().expect("report slot poisoned") = Some(report);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("report slot poisoned")
                .unwrap_or_else(|| {
                    Err(TraceIoError::Malformed(
                        "pack shard never ran (worker failed to open the pack)".into(),
                    ))
                })
        })
        .collect()
}

/// Aggregate telemetry snapshot of a corpus analysis: every report's
/// compaction tally merged and published under `corpus/…` — the trace-side
/// counterpart of the snapshot every simulator result carries (DESIGN.md
/// §7.1). Merging tallies commutes, so the snapshot is identical whatever
/// thread count produced the reports.
pub fn corpus_snapshot(reports: &[TraceReport]) -> iwc_telemetry::TelemetrySnapshot {
    let mut total = CompactionTally::new();
    let mut runs = 0u64;
    for r in reports {
        total.merge(&r.tally);
        runs += r.runs;
    }
    let mut snap = iwc_telemetry::TelemetrySnapshot::new();
    snap.set_counter("corpus/traces", reports.len() as u64);
    snap.publish("corpus", &total);
    // Run-length coherence of the analyzed streams: records / runs is the
    // mean run length, i.e. how much the multiplicative tally fast path
    // collapsed the per-record work.
    snap.set_counter("trace/rle/runs", runs);
    snap.set_counter("trace/rle/records", total.instructions);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::mask::ExecMask;
    use iwc_isa::types::DataType;

    #[test]
    fn report_reductions() {
        let mut t = Trace::new("t");
        // Two instructions: 0xF0F0 (bcc halves it) and full.
        t.push(ExecMask::new(0xF0F0, 16), DataType::F);
        t.push(ExecMask::all(16), DataType::F);
        let r = analyze(&t);
        // ivb = 4 + 4 = 8; bcc = 2 + 4 = 6 → 25% reduction.
        assert_eq!(r.reduction(CompactionMode::Bcc), 0.25);
        assert_eq!(r.scc_extra(), 0.0);
        assert_eq!(r.simd_efficiency(), 0.75);
        assert!(!r.is_coherent());
    }

    #[test]
    fn scc_extra_on_strided() {
        let mut t = Trace::new("t");
        t.push(ExecMask::new(0xAAAA, 16), DataType::F);
        let r = analyze(&t);
        assert_eq!(r.reduction(CompactionMode::Bcc), 0.0);
        assert_eq!(r.reduction(CompactionMode::Scc), 0.5);
        assert_eq!(r.scc_extra(), 0.5);
    }

    #[test]
    fn empty_trace_is_coherent() {
        let r = analyze(&Trace::new("empty"));
        assert!(r.is_coherent());
        assert_eq!(r.reduction(CompactionMode::Scc), 0.0);
    }

    #[test]
    fn corpus_snapshot_sums_the_tallies() {
        let profiles = crate::synth::corpus();
        let reports = analyze_corpus(&profiles, 200, 1);
        let snap = corpus_snapshot(&reports);
        assert_eq!(snap.counter("corpus/traces"), Some(reports.len() as u64));
        let total: u64 = reports.iter().map(|r| r.tally.instructions).sum();
        assert_eq!(snap.counter("corpus/instructions"), Some(total));
        let runs: u64 = reports.iter().map(|r| r.runs).sum();
        assert_eq!(snap.counter("trace/rle/runs"), Some(runs));
        assert_eq!(snap.counter("trace/rle/records"), Some(total));
        assert!(runs > 0 && runs <= total, "runs partition the records");
    }

    #[test]
    fn run_length_analysis_matches_scalar_reference() {
        // The run-length fast path must be value-identical to per-record
        // accounting on every corpus profile — the whole point of the
        // multiplicative charge is that it is exact, not approximate.
        let profiles = crate::synth::corpus();
        for p in &profiles {
            let fast = analyze_source(&mut p.source(300)).unwrap();
            let mut scalar = CompactionTally::new();
            let mut records = 0u64;
            let mut src = p.source(300);
            while let Some(chunk) = src.next_chunk().unwrap() {
                for r in chunk {
                    scalar.add(r.mask(), r.dtype);
                    records += 1;
                }
            }
            assert_eq!(fast.tally, scalar, "{}", p.name);
            assert_eq!(fast.tally.instructions, records, "{}", p.name);
        }
    }

    #[test]
    fn corpus_analysis_thread_count_invariant() {
        let profiles = crate::synth::corpus();
        let serial = analyze_corpus(&profiles, 400, 1);
        let parallel = analyze_corpus(&profiles, 400, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), profiles.len());
        for (report, profile) in serial.iter().zip(&profiles) {
            assert_eq!(report.name, profile.name);
        }
    }
}
