//! `.iwcc` corpus packs: many traces in one content-indexed container.
//!
//! A pack turns corpus size from a memory limit into a disk/bandwidth
//! problem: the payload is the raw `IWCT` record wire format (6 bytes per
//! instruction, no per-trace framing), and a trailing index carries each
//! trace's name, record count, FNV-1a content hash, and payload offset —
//! enough for both sequential chunked streaming and random access by
//! index without touching the payload.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic "IWCC"
//!      4     4  version (u32 LE, currently 1)
//!      8     8  trace count (u64 LE)
//!     16     8  index offset (u64 LE, from file start)
//!     24     …  payload: per-trace runs of 6-byte IWCT records
//!  index     …  per trace: name len (u32 LE) | name (UTF-8)
//!               | record count (u64 LE) | content hash (u64 LE)
//!               | payload offset (u64 LE)
//! ```
//!
//! Every read-side failure — truncation, bad magic/version, an index or
//! payload range past EOF, an unknown width/dtype, or a content-hash
//! mismatch — surfaces as [`TraceIoError::Malformed`]; the reader never
//! panics and never silently truncates a stream. Hashes are verified
//! incrementally while streaming, so verification costs no extra pass.

use crate::format::{
    record_from_wire, record_to_wire, Trace, TraceIoError, TraceRecord, RECORD_WIRE_BYTES,
};
use crate::hash::{Fnv1a, RecordHasher};
use crate::source::{TraceSource, CHUNK_RECORDS};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes of the pack container.
pub const PACK_MAGIC: [u8; 4] = *b"IWCC";
/// Current pack format version.
pub const PACK_VERSION: u32 = 1;
/// Byte length of the fixed pack header.
pub const PACK_HEADER_BYTES: u64 = 24;
/// Conventional file extension of pack files.
pub const PACK_EXTENSION: &str = "iwcc";

/// Upper bound on trace names, matching the `IWCT` reader.
const MAX_NAME_BYTES: usize = 4096;

/// One trace's index entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackEntry {
    /// Trace name (not necessarily unique within a pack).
    pub name: String,
    /// Number of records in the payload run.
    pub records: u64,
    /// FNV-1a content hash of the record stream ([`crate::hash`]).
    pub content_hash: u64,
    /// Payload offset of the first record, from file start.
    pub offset: u64,
}

impl PackEntry {
    /// Byte length of the payload run.
    pub fn byte_len(&self) -> u64 {
        self.records * RECORD_WIRE_BYTES as u64
    }
}

fn read_exact_or_malformed<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    what: &str,
) -> Result<(), TraceIoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceIoError::Malformed(format!("truncated pack: short read in {what}"))
        } else {
            TraceIoError::Io(e)
        }
    })
}

/// Streaming pack writer: traces are appended one chunk at a time and the
/// index plus final header land in [`PackWriter::finish`]. Peak memory is
/// O(chunk) plus the index.
pub struct PackWriter<W: Write + Seek> {
    w: W,
    at: u64,
    entries: Vec<PackEntry>,
}

impl<W: Write + Seek> PackWriter<W> {
    /// Starts a pack on `w`, writing a placeholder header (patched by
    /// [`PackWriter::finish`]).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn new(mut w: W) -> Result<Self, TraceIoError> {
        w.write_all(&PACK_MAGIC)?;
        w.write_all(&PACK_VERSION.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        Ok(Self {
            w,
            at: PACK_HEADER_BYTES,
            entries: Vec::new(),
        })
    }

    /// Streams one trace out of `src` into the payload section, hashing
    /// records on the way through.
    ///
    /// # Errors
    ///
    /// Propagates source and writer failures; rejects oversized names.
    pub fn add_source(&mut self, src: &mut dyn TraceSource) -> Result<&PackEntry, TraceIoError> {
        let name = src.name().to_owned();
        if name.len() > MAX_NAME_BYTES {
            return Err(TraceIoError::Malformed(format!(
                "trace name of {} bytes exceeds the {MAX_NAME_BYTES}-byte cap",
                name.len()
            )));
        }
        let offset = self.at;
        let mut hasher = RecordHasher::new();
        let mut records = 0u64;
        let mut wire = Vec::with_capacity(CHUNK_RECORDS * RECORD_WIRE_BYTES);
        while let Some(chunk) = src.next_chunk()? {
            hasher.push_all(chunk);
            records += chunk.len() as u64;
            wire.clear();
            for r in chunk {
                wire.extend_from_slice(&record_to_wire(r));
            }
            self.w.write_all(&wire)?;
            self.at += wire.len() as u64;
        }
        self.entries.push(PackEntry {
            name,
            records,
            content_hash: hasher.finish(),
            offset,
        });
        Ok(self.entries.last().expect("just pushed"))
    }

    /// Appends a materialized trace (adapter over [`PackWriter::add_source`]).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn add_trace(&mut self, trace: &Trace) -> Result<&PackEntry, TraceIoError> {
        self.add_source(&mut crate::source::SliceSource::from(trace))
    }

    /// Entries written so far.
    pub fn entries(&self) -> &[PackEntry] {
        &self.entries
    }

    /// Writes the index, patches the header, and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        let index_offset = self.at;
        for e in &self.entries {
            let name = e.name.as_bytes();
            self.w.write_all(&(name.len() as u32).to_le_bytes())?;
            self.w.write_all(name)?;
            self.w.write_all(&e.records.to_le_bytes())?;
            self.w.write_all(&e.content_hash.to_le_bytes())?;
            self.w.write_all(&e.offset.to_le_bytes())?;
        }
        self.w.seek(SeekFrom::Start(8))?;
        self.w
            .write_all(&(self.entries.len() as u64).to_le_bytes())?;
        self.w.write_all(&index_offset.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// An open pack: parsed, validated index over a seekable byte stream.
pub struct CorpusPack<R: Read + Seek> {
    r: R,
    entries: Vec<PackEntry>,
}

impl CorpusPack<BufReader<File>> {
    /// Opens and validates a pack file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] when the file is unreadable and
    /// [`TraceIoError::Malformed`] when its contents are not a valid pack.
    pub fn open_path(path: &Path) -> Result<Self, TraceIoError> {
        Self::open(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> CorpusPack<R> {
    /// Opens a pack over `r`, reading and validating the header and index.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Malformed`] on truncation, bad
    /// magic/version, or index/payload ranges that fall outside the file.
    pub fn open(mut r: R) -> Result<Self, TraceIoError> {
        let end = r.seek(SeekFrom::End(0))?;
        r.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; PACK_HEADER_BYTES as usize];
        read_exact_or_malformed(&mut r, &mut header, "header")?;
        if header[0..4] != PACK_MAGIC {
            return Err(TraceIoError::Malformed("bad pack magic".into()));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != PACK_VERSION {
            return Err(TraceIoError::Malformed(format!(
                "unsupported pack version {version} (expected {PACK_VERSION})"
            )));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let index_offset = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        if index_offset < PACK_HEADER_BYTES || index_offset > end {
            return Err(TraceIoError::Malformed(format!(
                "index offset {index_offset} outside file of {end} bytes"
            )));
        }
        // Names can legally be empty, so the only hard per-entry floor is
        // the three u64 fields plus the name length — enough to reject
        // counts that cannot possibly fit before EOF.
        let floor = count.saturating_mul(28);
        if floor > end - index_offset {
            return Err(TraceIoError::Malformed(format!(
                "index of {count} traces cannot fit in {} bytes",
                end - index_offset
            )));
        }
        r.seek(SeekFrom::Start(index_offset))?;
        let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
        for i in 0..count {
            let mut len4 = [0u8; 4];
            read_exact_or_malformed(&mut r, &mut len4, "index entry")?;
            let name_len = u32::from_le_bytes(len4) as usize;
            if name_len > MAX_NAME_BYTES {
                return Err(TraceIoError::Malformed(format!(
                    "index entry {i}: unreasonable name length {name_len}"
                )));
            }
            let mut name = vec![0u8; name_len];
            read_exact_or_malformed(&mut r, &mut name, "index entry name")?;
            let name = String::from_utf8(name).map_err(|_| {
                TraceIoError::Malformed(format!("index entry {i}: name is not UTF-8"))
            })?;
            let mut fields = [0u8; 24];
            read_exact_or_malformed(&mut r, &mut fields, "index entry fields")?;
            let records = u64::from_le_bytes(fields[0..8].try_into().expect("8 bytes"));
            let content_hash = u64::from_le_bytes(fields[8..16].try_into().expect("8 bytes"));
            let offset = u64::from_le_bytes(fields[16..24].try_into().expect("8 bytes"));
            let entry = PackEntry {
                name,
                records,
                content_hash,
                offset,
            };
            if offset < PACK_HEADER_BYTES
                || offset > index_offset
                || entry.byte_len() > index_offset - offset
            {
                return Err(TraceIoError::Malformed(format!(
                    "index entry {i} ({}): payload range {offset}+{} outside payload section",
                    entry.name,
                    entry.byte_len()
                )));
            }
            entries.push(entry);
        }
        Ok(Self { r, entries })
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the pack holds no traces.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The index.
    pub fn entries(&self) -> &[PackEntry] {
        &self.entries
    }

    /// Index of the first trace named `name`, if any.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Content hash of the whole pack: FNV-1a over every entry's name,
    /// record count, and content hash, in index order. Derived from the
    /// index alone — O(index), no payload pass — and stable across
    /// re-packs of the same traces. This is the cache key component the
    /// content-addressed results cache uses ([`crate::store`]).
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        for e in &self.entries {
            h.write(e.name.as_bytes());
            h.write(&[0xff]);
            h.write(&e.records.to_le_bytes());
            h.write(&e.content_hash.to_le_bytes());
        }
        h.finish()
    }

    /// A streaming reader over trace `index`, verifying the content hash
    /// as the stream drains.
    ///
    /// # Errors
    ///
    /// Propagates seek failures.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds (the index is caller-visible
    /// via [`CorpusPack::entries`]).
    pub fn stream(&mut self, index: usize) -> Result<PackTraceReader<'_, R>, TraceIoError> {
        let entry = self.entries[index].clone();
        self.r.seek(SeekFrom::Start(entry.offset))?;
        Ok(PackTraceReader {
            r: &mut self.r,
            entry,
            yielded: 0,
            verified: false,
            hasher: RecordHasher::new(),
            buf: Vec::new(),
        })
    }

    /// Materializes trace `index` (adapter over [`CorpusPack::stream`]).
    ///
    /// # Errors
    ///
    /// Propagates stream failures, including hash mismatches.
    pub fn read_trace(&mut self, index: usize) -> Result<Trace, TraceIoError> {
        crate::source::collect(&mut self.stream(index)?)
    }
}

/// [`TraceSource`] over one pack entry's payload run. Chunks are decoded
/// through the shared `IWCT` record validation and hashed incrementally;
/// the final `None` is withheld until the computed hash matches the index
/// (mismatch → [`TraceIoError::Malformed`]).
pub struct PackTraceReader<'a, R: Read + Seek> {
    r: &'a mut R,
    entry: PackEntry,
    /// Records already yielded.
    yielded: u64,
    verified: bool,
    hasher: RecordHasher,
    buf: Vec<TraceRecord>,
}

impl<R: Read + Seek> PackTraceReader<'_, R> {
    fn records_left(&self) -> u64 {
        self.entry.records - self.yielded
    }
}

impl<R: Read + Seek> TraceSource for PackTraceReader<'_, R> {
    fn name(&self) -> &str {
        &self.entry.name
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.entry.records)
    }

    fn next_chunk(&mut self) -> Result<Option<&[TraceRecord]>, TraceIoError> {
        let left = self.records_left();
        if left == 0 {
            if !self.verified {
                self.verified = true;
                if self.hasher.finish() != self.entry.content_hash {
                    return Err(TraceIoError::Malformed(format!(
                        "content hash mismatch for trace '{}': index says {:#018x}, payload hashes to {:#018x}",
                        self.entry.name,
                        self.entry.content_hash,
                        self.hasher.finish()
                    )));
                }
            }
            return Ok(None);
        }
        let take = left.min(CHUNK_RECORDS as u64) as usize;
        let mut wire = vec![0u8; take * RECORD_WIRE_BYTES];
        read_exact_or_malformed(self.r, &mut wire, "trace payload")?;
        self.buf.clear();
        self.buf.reserve(take);
        for rec in wire.chunks_exact(RECORD_WIRE_BYTES) {
            let rec: &[u8; RECORD_WIRE_BYTES] = rec.try_into().expect("exact chunks");
            self.buf.push(record_from_wire(rec)?);
        }
        self.hasher.push_all(&self.buf);
        self.yielded += take as u64;
        Ok(Some(&self.buf))
    }
}

/// Writes `traces` into a pack file at `path` (parent directories
/// created), returning the entries written.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pack_file<'a>(
    path: &Path,
    traces: impl IntoIterator<Item = &'a Trace>,
) -> Result<Vec<PackEntry>, TraceIoError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = PackWriter::new(BufWriter::new(File::create(path)?))?;
    for t in traces {
        w.add_trace(t)?;
    }
    let entries = w.entries().to_vec();
    w.finish()?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::mask::ExecMask;
    use iwc_isa::types::DataType;
    use std::io::Cursor;

    fn sample(name: &str, n: usize, seed: u32) -> Trace {
        let mut t = Trace::new(name);
        for i in 0..n {
            let bits = 1 + (seed.wrapping_mul(0x9E37).wrapping_add(i as u32) % 0xFFFF);
            t.push(ExecMask::new(bits, 16), DataType::F);
        }
        t
    }

    fn pack_bytes(traces: &[Trace]) -> Vec<u8> {
        let mut w = PackWriter::new(Cursor::new(Vec::new())).unwrap();
        for t in traces {
            w.add_trace(t).unwrap();
        }
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn roundtrip_multiple_traces() {
        let traces = vec![
            sample("a", CHUNK_RECORDS + 5, 1),
            sample("b", 17, 2),
            Trace::new("empty"),
        ];
        let bytes = pack_bytes(&traces);
        let mut pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
        assert_eq!(pack.len(), 3);
        assert_eq!(pack.find("b"), Some(1));
        assert_eq!(pack.find("missing"), None);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(pack.entries()[i].records, t.len() as u64);
            assert_eq!(pack.entries()[i].content_hash, crate::hash::trace_hash(t));
            assert_eq!(&pack.read_trace(i).unwrap(), t);
        }
        // Random access is order-independent.
        assert_eq!(pack.read_trace(1).unwrap(), traces[1]);
        assert_eq!(pack.read_trace(0).unwrap(), traces[0]);
    }

    #[test]
    fn stream_chunks_and_len_hint() {
        let t = sample("chunky", 2 * CHUNK_RECORDS + 3, 7);
        let bytes = pack_bytes(std::slice::from_ref(&t));
        let mut pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
        let mut src = pack.stream(0).unwrap();
        assert_eq!(src.name(), "chunky");
        assert_eq!(src.len_hint(), Some(t.len() as u64));
        let mut seen = 0usize;
        while let Some(chunk) = src.next_chunk().unwrap() {
            assert!(chunk.len() <= CHUNK_RECORDS);
            seen += chunk.len();
        }
        assert_eq!(seen, t.len());
        assert!(src.next_chunk().unwrap().is_none(), "None is sticky");
    }

    #[test]
    fn content_hash_is_index_derived_and_name_sensitive() {
        let a = pack_bytes(&[sample("x", 100, 3)]);
        let b = pack_bytes(&[sample("x", 100, 3)]);
        let c = pack_bytes(&[sample("y", 100, 3)]);
        let hash = |bytes: Vec<u8>| CorpusPack::open(Cursor::new(bytes)).unwrap().content_hash();
        assert_eq!(hash(a.clone()), hash(b));
        assert_ne!(hash(a), hash(c), "pack hash covers trace names");
    }

    #[test]
    fn empty_pack_roundtrips() {
        let bytes = pack_bytes(&[]);
        assert_eq!(bytes.len() as u64, PACK_HEADER_BYTES);
        let pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
        assert!(pack.is_empty());
    }
}
