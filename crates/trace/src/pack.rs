//! `.iwcc` corpus packs: many traces in one content-indexed container.
//!
//! A pack turns corpus size from a memory limit into a disk/bandwidth
//! problem: the payload is the raw `IWCT` record wire format (6 bytes per
//! instruction, no per-trace framing), and a trailing index carries each
//! trace's name, record count, FNV-1a content hash, and payload offset —
//! enough for both sequential chunked streaming and random access by
//! index without touching the payload.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic "IWCC"
//!      4     4  version (u32 LE, currently 2; 1 still readable)
//!      8     8  trace count (u64 LE)
//!     16     8  index offset (u64 LE, from file start)
//!     24     …  payload: per-trace runs of 6-byte IWCT records,
//!               or the RLE item encoding for flagged entries
//!  index     …  per trace: name len (u32 LE) | name (UTF-8)
//!               | record count (u64 LE) | content hash (u64 LE)
//!               | payload offset (u64 LE)
//!               | v2 only: flags (u32 LE) | payload bytes (u64 LE)
//! ```
//!
//! ## RLE payload encoding (version 2, per-entry flag bit 0)
//!
//! Execution masks arrive in long runs of identical records, so a
//! version-2 entry may carry a run-length-encoded payload: a sequence of
//! *items*, where a plain item is the 6-byte record wire format and a
//! flagged item (bit 7 of the width byte — never set by a legal width —
//! masked off before decoding) is the 6-byte record followed by a u32 LE
//! repeat count `n ≥ 2`, standing for `n` consecutive copies. Runs never
//! expand (10 bytes encode ≥ 2 records), the decoded stream hashes
//! identically to the plain encoding, and the index-derived pack content
//! hash is unchanged — so RLE re-packs of the same traces hit the same
//! results-cache keys. The writer encodes RLE only when asked
//! ([`PackWriter::set_rle`]); version-1 packs and unflagged entries use
//! the plain fixed-stride payload unchanged.
//!
//! Every read-side failure — truncation, bad magic/version, an index or
//! payload range past EOF, an unknown width/dtype, a malformed RLE item
//! (repeat below 2, run past the record count, trailing or truncated
//! payload bytes), or a content-hash mismatch — surfaces as
//! [`TraceIoError::Malformed`]; the reader never panics and never
//! silently truncates a stream. Hashes are verified incrementally while
//! streaming, so verification costs no extra pass.

use crate::format::{
    record_from_wire, record_to_wire, Trace, TraceIoError, TraceRecord, RECORD_WIRE_BYTES,
};
use crate::hash::{Fnv1a, RecordHasher};
use crate::source::{TraceSource, CHUNK_RECORDS};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes of the pack container.
pub const PACK_MAGIC: [u8; 4] = *b"IWCC";
/// Current pack format version. Version-1 packs (no per-entry flags or
/// payload byte counts, plain payloads only) remain readable.
pub const PACK_VERSION: u32 = 2;
/// Oldest pack format version [`CorpusPack::open`] accepts.
pub const PACK_VERSION_MIN: u32 = 1;
/// Byte length of the fixed pack header.
pub const PACK_HEADER_BYTES: u64 = 24;
/// Conventional file extension of pack files.
pub const PACK_EXTENSION: &str = "iwcc";

/// Entry flag bit: the payload is run-length encoded (module docs).
pub const PACK_FLAG_RLE: u32 = 1;
/// All entry flag bits a version-2 reader understands.
const PACK_FLAGS_KNOWN: u32 = PACK_FLAG_RLE;
/// Bit 7 of the wire width byte marks an RLE item carrying a repeat
/// count; legal widths (1–32) never set it.
const RLE_WIDTH_FLAG: u8 = 0x80;
/// Byte length of a flagged RLE item: a record plus its u32 repeat count.
const RLE_ITEM_BYTES: usize = RECORD_WIRE_BYTES + 4;

/// Upper bound on trace names, matching the `IWCT` reader.
const MAX_NAME_BYTES: usize = 4096;

/// One trace's index entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackEntry {
    /// Trace name (not necessarily unique within a pack).
    pub name: String,
    /// Number of records in the payload run.
    pub records: u64,
    /// FNV-1a content hash of the record stream ([`crate::hash`]).
    pub content_hash: u64,
    /// Payload offset of the first record, from file start.
    pub offset: u64,
    /// Entry flags ([`PACK_FLAG_RLE`]); always 0 in version-1 packs.
    pub flags: u32,
    /// Encoded payload byte length. Equals `records * 6` for plain
    /// entries; at most that for RLE entries.
    pub payload_bytes: u64,
}

impl PackEntry {
    /// Byte length of the encoded payload run.
    pub fn byte_len(&self) -> u64 {
        self.payload_bytes
    }

    /// True when the payload is run-length encoded.
    pub fn is_rle(&self) -> bool {
        self.flags & PACK_FLAG_RLE != 0
    }
}

/// Appends one run to an RLE payload buffer: a plain 6-byte item for a
/// lone record, a width-flagged item plus u32 repeat count otherwise,
/// splitting runs longer than `u32::MAX`.
fn emit_run(wire: &mut Vec<u8>, rec: &TraceRecord, mut n: u64) {
    while n > 0 {
        if n == 1 {
            wire.extend_from_slice(&record_to_wire(rec));
            return;
        }
        let take = n.min(u64::from(u32::MAX));
        let mut item = record_to_wire(rec);
        item[4] |= RLE_WIDTH_FLAG;
        wire.extend_from_slice(&item);
        wire.extend_from_slice(&(take as u32).to_le_bytes());
        n -= take;
    }
}

fn read_exact_or_malformed<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    what: &str,
) -> Result<(), TraceIoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceIoError::Malformed(format!("truncated pack: short read in {what}"))
        } else {
            TraceIoError::Io(e)
        }
    })
}

/// Streaming pack writer: traces are appended one chunk at a time and the
/// index plus final header land in [`PackWriter::finish`]. Peak memory is
/// O(chunk) plus the index.
pub struct PackWriter<W: Write + Seek> {
    w: W,
    at: u64,
    rle: bool,
    entries: Vec<PackEntry>,
}

impl<W: Write + Seek> PackWriter<W> {
    /// Starts a pack on `w`, writing a placeholder header (patched by
    /// [`PackWriter::finish`]).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn new(mut w: W) -> Result<Self, TraceIoError> {
        w.write_all(&PACK_MAGIC)?;
        w.write_all(&PACK_VERSION.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        Ok(Self {
            w,
            at: PACK_HEADER_BYTES,
            rle: false,
            entries: Vec::new(),
        })
    }

    /// Selects the payload encoding for subsequently added traces: `true`
    /// run-length encodes mask runs (module docs), `false` (the default)
    /// writes the plain fixed-stride record stream. Content hashes — and
    /// so results-cache keys — are identical either way.
    pub fn set_rle(&mut self, rle: bool) {
        self.rle = rle;
    }

    /// Streams one trace out of `src` into the payload section, hashing
    /// records on the way through.
    ///
    /// # Errors
    ///
    /// Propagates source and writer failures; rejects oversized names.
    pub fn add_source(&mut self, src: &mut dyn TraceSource) -> Result<&PackEntry, TraceIoError> {
        let name = src.name().to_owned();
        if name.len() > MAX_NAME_BYTES {
            return Err(TraceIoError::Malformed(format!(
                "trace name of {} bytes exceeds the {MAX_NAME_BYTES}-byte cap",
                name.len()
            )));
        }
        let offset = self.at;
        let mut hasher = RecordHasher::new();
        let mut records = 0u64;
        let mut wire = Vec::with_capacity(CHUNK_RECORDS * RECORD_WIRE_BYTES);
        // A run straddling chunk boundaries must land as one item, so the
        // open run is carried across chunks and flushed at end of stream.
        let mut pending: Option<(TraceRecord, u64)> = None;
        while let Some(chunk) = src.next_chunk()? {
            hasher.push_all(chunk);
            records += chunk.len() as u64;
            wire.clear();
            if self.rle {
                let mut i = 0;
                while i < chunk.len() {
                    let rec = chunk[i];
                    let mut j = i + 1;
                    while j < chunk.len() && chunk[j] == rec {
                        j += 1;
                    }
                    let n = (j - i) as u64;
                    match pending {
                        Some((p, c)) if p == rec => pending = Some((p, c + n)),
                        Some((p, c)) => {
                            emit_run(&mut wire, &p, c);
                            pending = Some((rec, n));
                        }
                        None => pending = Some((rec, n)),
                    }
                    i = j;
                }
            } else {
                for r in chunk {
                    wire.extend_from_slice(&record_to_wire(r));
                }
            }
            self.w.write_all(&wire)?;
            self.at += wire.len() as u64;
        }
        if let Some((p, c)) = pending {
            wire.clear();
            emit_run(&mut wire, &p, c);
            self.w.write_all(&wire)?;
            self.at += wire.len() as u64;
        }
        self.entries.push(PackEntry {
            name,
            records,
            content_hash: hasher.finish(),
            offset,
            flags: if self.rle { PACK_FLAG_RLE } else { 0 },
            payload_bytes: self.at - offset,
        });
        Ok(self.entries.last().expect("just pushed"))
    }

    /// Appends a materialized trace (adapter over [`PackWriter::add_source`]).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn add_trace(&mut self, trace: &Trace) -> Result<&PackEntry, TraceIoError> {
        self.add_source(&mut crate::source::SliceSource::from(trace))
    }

    /// Entries written so far.
    pub fn entries(&self) -> &[PackEntry] {
        &self.entries
    }

    /// Writes the index, patches the header, and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        let index_offset = self.at;
        for e in &self.entries {
            let name = e.name.as_bytes();
            self.w.write_all(&(name.len() as u32).to_le_bytes())?;
            self.w.write_all(name)?;
            self.w.write_all(&e.records.to_le_bytes())?;
            self.w.write_all(&e.content_hash.to_le_bytes())?;
            self.w.write_all(&e.offset.to_le_bytes())?;
            self.w.write_all(&e.flags.to_le_bytes())?;
            self.w.write_all(&e.payload_bytes.to_le_bytes())?;
        }
        self.w.seek(SeekFrom::Start(8))?;
        self.w
            .write_all(&(self.entries.len() as u64).to_le_bytes())?;
        self.w.write_all(&index_offset.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// An open pack: parsed, validated index over a seekable byte stream.
pub struct CorpusPack<R: Read + Seek> {
    r: R,
    entries: Vec<PackEntry>,
}

impl CorpusPack<BufReader<File>> {
    /// Opens and validates a pack file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] when the file is unreadable and
    /// [`TraceIoError::Malformed`] when its contents are not a valid pack.
    pub fn open_path(path: &Path) -> Result<Self, TraceIoError> {
        Self::open(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> CorpusPack<R> {
    /// Opens a pack over `r`, reading and validating the header and index.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Malformed`] on truncation, bad
    /// magic/version, or index/payload ranges that fall outside the file.
    pub fn open(mut r: R) -> Result<Self, TraceIoError> {
        let end = r.seek(SeekFrom::End(0))?;
        r.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; PACK_HEADER_BYTES as usize];
        read_exact_or_malformed(&mut r, &mut header, "header")?;
        if header[0..4] != PACK_MAGIC {
            return Err(TraceIoError::Malformed("bad pack magic".into()));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if !(PACK_VERSION_MIN..=PACK_VERSION).contains(&version) {
            return Err(TraceIoError::Malformed(format!(
                "unsupported pack version {version} (expected {PACK_VERSION_MIN}..={PACK_VERSION})"
            )));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let index_offset = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        if index_offset < PACK_HEADER_BYTES || index_offset > end {
            return Err(TraceIoError::Malformed(format!(
                "index offset {index_offset} outside file of {end} bytes"
            )));
        }
        // Names can legally be empty, so the only hard per-entry floor is
        // the fixed fields plus the name length — enough to reject counts
        // that cannot possibly fit before EOF. Version 2 appends a u32
        // flags word and a u64 payload byte count to each entry.
        let entry_fixed = if version >= 2 { 36usize } else { 24 };
        let floor = count.saturating_mul(entry_fixed as u64 + 4);
        if floor > end - index_offset {
            return Err(TraceIoError::Malformed(format!(
                "index of {count} traces cannot fit in {} bytes",
                end - index_offset
            )));
        }
        r.seek(SeekFrom::Start(index_offset))?;
        let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
        for i in 0..count {
            let mut len4 = [0u8; 4];
            read_exact_or_malformed(&mut r, &mut len4, "index entry")?;
            let name_len = u32::from_le_bytes(len4) as usize;
            if name_len > MAX_NAME_BYTES {
                return Err(TraceIoError::Malformed(format!(
                    "index entry {i}: unreasonable name length {name_len}"
                )));
            }
            let mut name = vec![0u8; name_len];
            read_exact_or_malformed(&mut r, &mut name, "index entry name")?;
            let name = String::from_utf8(name).map_err(|_| {
                TraceIoError::Malformed(format!("index entry {i}: name is not UTF-8"))
            })?;
            let mut fields = [0u8; 36];
            read_exact_or_malformed(&mut r, &mut fields[..entry_fixed], "index entry fields")?;
            let records = u64::from_le_bytes(fields[0..8].try_into().expect("8 bytes"));
            let content_hash = u64::from_le_bytes(fields[8..16].try_into().expect("8 bytes"));
            let offset = u64::from_le_bytes(fields[16..24].try_into().expect("8 bytes"));
            let (flags, payload_bytes) = if version >= 2 {
                (
                    u32::from_le_bytes(fields[24..28].try_into().expect("4 bytes")),
                    u64::from_le_bytes(fields[28..36].try_into().expect("8 bytes")),
                )
            } else {
                (0, records * RECORD_WIRE_BYTES as u64)
            };
            if flags & !PACK_FLAGS_KNOWN != 0 {
                return Err(TraceIoError::Malformed(format!(
                    "index entry {i} ({name}): unknown entry flags {flags:#x}"
                )));
            }
            let entry = PackEntry {
                name,
                records,
                content_hash,
                offset,
                flags,
                payload_bytes,
            };
            let plain_bytes = records.saturating_mul(RECORD_WIRE_BYTES as u64);
            if entry.is_rle() && payload_bytes > plain_bytes {
                return Err(TraceIoError::Malformed(format!(
                    "index entry {i} ({}): RLE payload of {payload_bytes} bytes exceeds \
                     the plain encoding of {records} records",
                    entry.name
                )));
            }
            // A plain reader consumes records*6 bytes whatever the index
            // claims, so bound the larger of the two; a record-count lie
            // within bounds is left for hash verification to catch.
            let reach = if entry.is_rle() {
                payload_bytes
            } else {
                plain_bytes.max(payload_bytes)
            };
            if offset < PACK_HEADER_BYTES || offset > index_offset || reach > index_offset - offset
            {
                return Err(TraceIoError::Malformed(format!(
                    "index entry {i} ({}): payload range {offset}+{} outside payload section",
                    entry.name,
                    entry.byte_len()
                )));
            }
            entries.push(entry);
        }
        Ok(Self { r, entries })
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the pack holds no traces.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The index.
    pub fn entries(&self) -> &[PackEntry] {
        &self.entries
    }

    /// Index of the first trace named `name`, if any.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Content hash of the whole pack: FNV-1a over every entry's name,
    /// record count, and content hash, in index order. Derived from the
    /// index alone — O(index), no payload pass — and stable across
    /// re-packs of the same traces. This is the cache key component the
    /// content-addressed results cache uses ([`crate::store`]).
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        for e in &self.entries {
            h.write(e.name.as_bytes());
            h.write(&[0xff]);
            h.write(&e.records.to_le_bytes());
            h.write(&e.content_hash.to_le_bytes());
        }
        h.finish()
    }

    /// A streaming reader over trace `index`, verifying the content hash
    /// as the stream drains.
    ///
    /// # Errors
    ///
    /// Propagates seek failures.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds (the index is caller-visible
    /// via [`CorpusPack::entries`]).
    pub fn stream(&mut self, index: usize) -> Result<PackTraceReader<'_, R>, TraceIoError> {
        let entry = self.entries[index].clone();
        self.r.seek(SeekFrom::Start(entry.offset))?;
        let payload_left = entry.payload_bytes;
        Ok(PackTraceReader {
            r: &mut self.r,
            entry,
            yielded: 0,
            verified: false,
            hasher: RecordHasher::new(),
            buf: Vec::new(),
            payload_left,
            stash: Vec::new(),
            stash_pos: 0,
            pending: None,
        })
    }

    /// Materializes trace `index` (adapter over [`CorpusPack::stream`]).
    ///
    /// # Errors
    ///
    /// Propagates stream failures, including hash mismatches.
    pub fn read_trace(&mut self, index: usize) -> Result<Trace, TraceIoError> {
        crate::source::collect(&mut self.stream(index)?)
    }
}

/// [`TraceSource`] over one pack entry's payload run. Chunks are decoded
/// through the shared `IWCT` record validation and hashed incrementally;
/// the final `None` is withheld until the computed hash matches the index
/// (mismatch → [`TraceIoError::Malformed`]).
pub struct PackTraceReader<'a, R: Read + Seek> {
    r: &'a mut R,
    entry: PackEntry,
    /// Records already yielded.
    yielded: u64,
    verified: bool,
    hasher: RecordHasher,
    buf: Vec<TraceRecord>,
    /// Encoded payload bytes not yet pulled into the stash (RLE path).
    payload_left: u64,
    /// Raw payload bytes awaiting item decode (RLE path); items may
    /// straddle refills, so parsed bytes advance `stash_pos` and the
    /// remainder compacts forward.
    stash: Vec<u8>,
    stash_pos: usize,
    /// A decoded run not yet fully expanded into yielded chunks.
    pending: Option<(TraceRecord, u64)>,
}

/// Stash refill granularity for RLE payloads, matching the plain path's
/// per-chunk read size.
const STASH_BYTES: usize = CHUNK_RECORDS * RECORD_WIRE_BYTES;

impl<R: Read + Seek> PackTraceReader<'_, R> {
    fn records_left(&self) -> u64 {
        self.entry.records - self.yielded
    }

    /// Ensures at least `need` un-parsed stash bytes, refilling from the
    /// payload as required. `Ok(false)` means the payload is cleanly
    /// exhausted (zero bytes left); a partial item left over is malformed.
    fn fill_stash(&mut self, need: usize) -> Result<bool, TraceIoError> {
        loop {
            let avail = self.stash.len() - self.stash_pos;
            if avail >= need {
                return Ok(true);
            }
            if self.payload_left == 0 {
                if avail == 0 {
                    return Ok(false);
                }
                return Err(TraceIoError::Malformed(format!(
                    "trace '{}': truncated RLE item at end of payload",
                    self.entry.name
                )));
            }
            self.stash.drain(..self.stash_pos);
            self.stash_pos = 0;
            let want = (STASH_BYTES - self.stash.len()).min(self.payload_left as usize);
            let start = self.stash.len();
            self.stash.resize(start + want, 0);
            read_exact_or_malformed(self.r, &mut self.stash[start..], "trace payload")?;
            self.payload_left -= want as u64;
        }
    }

    /// Decodes RLE items into `buf` until the chunk is full or the payload
    /// runs dry, carrying partially expanded runs in `pending`.
    fn next_chunk_rle(&mut self) -> Result<(), TraceIoError> {
        while self.buf.len() < CHUNK_RECORDS {
            if let Some((rec, n)) = self.pending.take() {
                let space = (CHUNK_RECORDS - self.buf.len()) as u64;
                let take = n.min(space);
                self.buf.resize(self.buf.len() + take as usize, rec);
                if n > take {
                    self.pending = Some((rec, n - take));
                }
                continue;
            }
            if !self.fill_stash(RECORD_WIRE_BYTES)? {
                break;
            }
            let base = self.stash_pos;
            let mut head: [u8; RECORD_WIRE_BYTES] = self.stash[base..base + RECORD_WIRE_BYTES]
                .try_into()
                .expect("exact slice");
            let already = self.yielded + self.buf.len() as u64 + self.pending.map_or(0, |(_, n)| n);
            if head[4] & RLE_WIDTH_FLAG != 0 {
                if !self.fill_stash(RLE_ITEM_BYTES)? {
                    unreachable!("fill_stash cannot report clean EOF with bytes stashed");
                }
                let base = self.stash_pos;
                head[4] &= !RLE_WIDTH_FLAG;
                let rec = record_from_wire(&head)?;
                let count = u64::from(u32::from_le_bytes(
                    self.stash[base + RECORD_WIRE_BYTES..base + RLE_ITEM_BYTES]
                        .try_into()
                        .expect("exact slice"),
                ));
                if count < 2 {
                    return Err(TraceIoError::Malformed(format!(
                        "trace '{}': RLE repeat count {count} below 2",
                        self.entry.name
                    )));
                }
                if count > self.entry.records - already {
                    return Err(TraceIoError::Malformed(format!(
                        "trace '{}': RLE run of {count} records overruns the \
                         record count {}",
                        self.entry.name, self.entry.records
                    )));
                }
                self.stash_pos += RLE_ITEM_BYTES;
                self.pending = Some((rec, count));
            } else {
                if already >= self.entry.records {
                    return Err(TraceIoError::Malformed(format!(
                        "trace '{}': payload continues past the record count {}",
                        self.entry.name, self.entry.records
                    )));
                }
                let rec = record_from_wire(&head)?;
                self.stash_pos += RECORD_WIRE_BYTES;
                self.buf.push(rec);
            }
        }
        Ok(())
    }
}

impl<R: Read + Seek> TraceSource for PackTraceReader<'_, R> {
    fn name(&self) -> &str {
        &self.entry.name
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.entry.records)
    }

    fn next_chunk(&mut self) -> Result<Option<&[TraceRecord]>, TraceIoError> {
        let left = self.records_left();
        if left == 0 {
            if !self.verified {
                if self.entry.is_rle()
                    && (self.payload_left > 0 || self.stash.len() > self.stash_pos)
                {
                    return Err(TraceIoError::Malformed(format!(
                        "trace '{}': trailing payload bytes after {} records",
                        self.entry.name, self.entry.records
                    )));
                }
                self.verified = true;
                if self.hasher.finish() != self.entry.content_hash {
                    return Err(TraceIoError::Malformed(format!(
                        "content hash mismatch for trace '{}': index says {:#018x}, payload hashes to {:#018x}",
                        self.entry.name,
                        self.entry.content_hash,
                        self.hasher.finish()
                    )));
                }
            }
            return Ok(None);
        }
        if self.entry.is_rle() {
            self.buf.clear();
            self.next_chunk_rle()?;
            if self.buf.is_empty() {
                return Err(TraceIoError::Malformed(format!(
                    "trace '{}': payload exhausted after {} of {} records",
                    self.entry.name, self.yielded, self.entry.records
                )));
            }
        } else {
            let take = left.min(CHUNK_RECORDS as u64) as usize;
            // The stash is otherwise unused on the plain path; reuse it as
            // the wire buffer so steady-state chunking never allocates
            // (stash_pos stays 0, and the RLE trailing-bytes check at EOF
            // is gated on is_rle).
            self.stash.resize(take * RECORD_WIRE_BYTES, 0);
            read_exact_or_malformed(self.r, &mut self.stash, "trace payload")?;
            self.buf.clear();
            self.buf.reserve(take);
            for rec in self.stash.chunks_exact(RECORD_WIRE_BYTES) {
                let rec: &[u8; RECORD_WIRE_BYTES] = rec.try_into().expect("exact chunks");
                self.buf.push(record_from_wire(rec)?);
            }
        }
        self.hasher.push_all(&self.buf);
        self.yielded += self.buf.len() as u64;
        Ok(Some(&self.buf))
    }
}

/// Writes `traces` into a pack file at `path` (parent directories
/// created), returning the entries written.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pack_file<'a>(
    path: &Path,
    traces: impl IntoIterator<Item = &'a Trace>,
) -> Result<Vec<PackEntry>, TraceIoError> {
    write_pack_file_with(path, traces, false)
}

/// [`write_pack_file`] with run-length-encoded payloads (module docs):
/// same traces, same content hashes, smaller file when masks run
/// coherently.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pack_file_rle<'a>(
    path: &Path,
    traces: impl IntoIterator<Item = &'a Trace>,
) -> Result<Vec<PackEntry>, TraceIoError> {
    write_pack_file_with(path, traces, true)
}

fn write_pack_file_with<'a>(
    path: &Path,
    traces: impl IntoIterator<Item = &'a Trace>,
    rle: bool,
) -> Result<Vec<PackEntry>, TraceIoError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = PackWriter::new(BufWriter::new(File::create(path)?))?;
    w.set_rle(rle);
    for t in traces {
        w.add_trace(t)?;
    }
    let entries = w.entries().to_vec();
    w.finish()?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::mask::ExecMask;
    use iwc_isa::types::DataType;
    use std::io::Cursor;

    fn sample(name: &str, n: usize, seed: u32) -> Trace {
        let mut t = Trace::new(name);
        for i in 0..n {
            let bits = 1 + (seed.wrapping_mul(0x9E37).wrapping_add(i as u32) % 0xFFFF);
            t.push(ExecMask::new(bits, 16), DataType::F);
        }
        t
    }

    fn pack_bytes(traces: &[Trace]) -> Vec<u8> {
        pack_bytes_with(traces, false)
    }

    fn pack_bytes_with(traces: &[Trace], rle: bool) -> Vec<u8> {
        let mut w = PackWriter::new(Cursor::new(Vec::new())).unwrap();
        w.set_rle(rle);
        for t in traces {
            w.add_trace(t).unwrap();
        }
        w.finish().unwrap().into_inner()
    }

    /// Hand-rolled version-1 pack (24-byte index entries, plain payload)
    /// — the on-disk format every pre-RLE pack in the wild uses.
    fn v1_pack_bytes(traces: &[Trace]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&PACK_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(traces.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // index offset, patched
        let mut offsets = Vec::new();
        for t in traces {
            offsets.push(bytes.len() as u64);
            for r in &t.records {
                bytes.extend_from_slice(&record_to_wire(r));
            }
        }
        let index_offset = bytes.len() as u64;
        for (t, &offset) in traces.iter().zip(&offsets) {
            bytes.extend_from_slice(&(t.name.len() as u32).to_le_bytes());
            bytes.extend_from_slice(t.name.as_bytes());
            bytes.extend_from_slice(&(t.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&crate::hash::trace_hash(t).to_le_bytes());
            bytes.extend_from_slice(&offset.to_le_bytes());
        }
        bytes[16..24].copy_from_slice(&index_offset.to_le_bytes());
        bytes
    }

    #[test]
    fn roundtrip_multiple_traces() {
        let traces = vec![
            sample("a", CHUNK_RECORDS + 5, 1),
            sample("b", 17, 2),
            Trace::new("empty"),
        ];
        let bytes = pack_bytes(&traces);
        let mut pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
        assert_eq!(pack.len(), 3);
        assert_eq!(pack.find("b"), Some(1));
        assert_eq!(pack.find("missing"), None);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(pack.entries()[i].records, t.len() as u64);
            assert_eq!(pack.entries()[i].content_hash, crate::hash::trace_hash(t));
            assert_eq!(&pack.read_trace(i).unwrap(), t);
        }
        // Random access is order-independent.
        assert_eq!(pack.read_trace(1).unwrap(), traces[1]);
        assert_eq!(pack.read_trace(0).unwrap(), traces[0]);
    }

    #[test]
    fn stream_chunks_and_len_hint() {
        let t = sample("chunky", 2 * CHUNK_RECORDS + 3, 7);
        let bytes = pack_bytes(std::slice::from_ref(&t));
        let mut pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
        let mut src = pack.stream(0).unwrap();
        assert_eq!(src.name(), "chunky");
        assert_eq!(src.len_hint(), Some(t.len() as u64));
        let mut seen = 0usize;
        while let Some(chunk) = src.next_chunk().unwrap() {
            assert!(chunk.len() <= CHUNK_RECORDS);
            seen += chunk.len();
        }
        assert_eq!(seen, t.len());
        assert!(src.next_chunk().unwrap().is_none(), "None is sticky");
    }

    #[test]
    fn content_hash_is_index_derived_and_name_sensitive() {
        let a = pack_bytes(&[sample("x", 100, 3)]);
        let b = pack_bytes(&[sample("x", 100, 3)]);
        let c = pack_bytes(&[sample("y", 100, 3)]);
        let hash = |bytes: Vec<u8>| CorpusPack::open(Cursor::new(bytes)).unwrap().content_hash();
        assert_eq!(hash(a.clone()), hash(b));
        assert_ne!(hash(a), hash(c), "pack hash covers trace names");
    }

    #[test]
    fn empty_pack_roundtrips() {
        let bytes = pack_bytes(&[]);
        assert_eq!(bytes.len() as u64, PACK_HEADER_BYTES);
        let pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
        assert!(pack.is_empty());
    }

    /// A coherent trace: long identical-mask runs with scattered breaks,
    /// exercising run carries across chunk boundaries.
    fn runny(name: &str, runs: &[(u32, DataType, usize)]) -> Trace {
        let mut t = Trace::new(name);
        for &(bits, dtype, n) in runs {
            for _ in 0..n {
                t.push(ExecMask::new(bits, 16), dtype);
            }
        }
        t
    }

    #[test]
    fn rle_roundtrips_and_matches_plain_hashes() {
        let traces = vec![
            runny(
                "coherent",
                &[
                    (0xFFFF, DataType::F, 3 * CHUNK_RECORDS + 11),
                    (0x00FF, DataType::F, 1),
                    (0xFFFF, DataType::Df, 2),
                    (0x0001, DataType::Uw, CHUNK_RECORDS),
                ],
            ),
            sample("incoherent", CHUNK_RECORDS + 9, 5),
            runny("giant", &[(0xAAAA, DataType::F, 5 * CHUNK_RECORDS)]),
            Trace::new("empty"),
        ];
        let plain = pack_bytes(&traces);
        let rle = pack_bytes_with(&traces, true);
        assert!(
            rle.len() < plain.len(),
            "RLE pack ({}) should undercut plain ({}) on a coherent corpus",
            rle.len(),
            plain.len()
        );

        let mut p = CorpusPack::open(Cursor::new(plain)).unwrap();
        let mut r = CorpusPack::open(Cursor::new(rle)).unwrap();
        assert_eq!(
            p.content_hash(),
            r.content_hash(),
            "pack hash is payload-encoding independent"
        );
        for (i, t) in traces.iter().enumerate() {
            assert!(r.entries()[i].is_rle());
            assert_eq!(r.entries()[i].content_hash, p.entries()[i].content_hash);
            assert!(r.entries()[i].byte_len() <= p.entries()[i].byte_len());
            assert_eq!(&r.read_trace(i).unwrap(), t);
            assert_eq!(&p.read_trace(i).unwrap(), t);
        }
    }

    #[test]
    fn rle_streams_in_chunk_sized_slices() {
        let t = runny("mono", &[(0xFFFF, DataType::F, 2 * CHUNK_RECORDS + 3)]);
        let bytes = pack_bytes_with(std::slice::from_ref(&t), true);
        // A single run compresses to one 10-byte item.
        let mut pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
        assert_eq!(pack.entries()[0].byte_len(), RLE_ITEM_BYTES as u64);
        let mut src = pack.stream(0).unwrap();
        let mut sizes = Vec::new();
        while let Some(chunk) = src.next_chunk().unwrap() {
            sizes.push(chunk.len());
        }
        assert_eq!(sizes, vec![CHUNK_RECORDS, CHUNK_RECORDS, 3]);
    }

    #[test]
    fn rle_rejects_corrupt_items() {
        let t = runny("mono", &[(0xFFFF, DataType::F, 100)]);
        let base = pack_bytes_with(std::slice::from_ref(&t), true);

        // Repeat count below 2.
        let mut low = base.clone();
        low[PACK_HEADER_BYTES as usize + RECORD_WIRE_BYTES..][..4]
            .copy_from_slice(&1u32.to_le_bytes());
        let err = CorpusPack::open(Cursor::new(low))
            .unwrap()
            .read_trace(0)
            .expect_err("count below 2");
        assert!(err.to_string().contains("below 2"), "{err}");

        // Run overrunning the record count.
        let mut over = base.clone();
        over[PACK_HEADER_BYTES as usize + RECORD_WIRE_BYTES..][..4]
            .copy_from_slice(&101u32.to_le_bytes());
        let err = CorpusPack::open(Cursor::new(over))
            .unwrap()
            .read_trace(0)
            .expect_err("overrun");
        assert!(err.to_string().contains("overruns"), "{err}");

        // Run undershooting the record count: payload dries up early.
        let mut under = base;
        under[PACK_HEADER_BYTES as usize + RECORD_WIRE_BYTES..][..4]
            .copy_from_slice(&99u32.to_le_bytes());
        let err = CorpusPack::open(Cursor::new(under))
            .unwrap()
            .read_trace(0)
            .expect_err("undershoot");
        assert!(err.to_string().contains("payload exhausted"), "{err}");
    }

    #[test]
    fn version_1_packs_stay_readable() {
        let traces = vec![sample("legacy-a", CHUNK_RECORDS + 5, 1), sample("b", 17, 2)];
        let v1 = v1_pack_bytes(&traces);
        let v2 = pack_bytes(&traces);
        assert_ne!(v1, v2, "the formats differ on disk");
        let mut old = CorpusPack::open(Cursor::new(v1)).unwrap();
        let new = CorpusPack::open(Cursor::new(v2)).unwrap();
        assert_eq!(
            old.content_hash(),
            new.content_hash(),
            "pack hash is version independent"
        );
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(old.entries()[i].flags, 0);
            assert_eq!(old.entries()[i].byte_len(), (t.len() * 6) as u64);
            assert_eq!(&old.read_trace(i).unwrap(), t);
        }
    }
}
