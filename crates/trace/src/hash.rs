//! Stable content hashing for execution-mask traces.
//!
//! The corpus pack format ([`crate::pack`]) and the content-addressed
//! results cache ([`crate::store`]) both key on the *content* of a record
//! stream, so the canonical trace hash lives here, next to the format it
//! hashes. `iwc_workloads::hash::trace_hash` delegates to this module —
//! one encoding, one hash, however the trace reaches the process (builder
//! DSL, `.iwct` file, pack payload, or base64 serve job).
//!
//! The encoding per record is `bits` (little-endian u32), `width` (one
//! byte), and the `Debug` form of the dtype — byte-compatible with the
//! pre-pack `iwc_workloads::hash` encoding, so hashes computed before this
//! module existed stay valid. Trace *names* are deliberately excluded:
//! identical record streams are the same content whatever they are called.
//!
//! FNV-1a is not collision-resistant against adversaries; callers treat a
//! hash hit as identity for *well-behaved* inputs (the serve cache and the
//! results cache both document this).

use crate::format::{Trace, TraceRecord};
use iwc_isa::types::DataType;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Incremental content hasher over a record stream — the streaming
/// counterpart of [`trace_hash`], used by the pack writer and reader to
/// hash traces chunk by chunk without materializing them.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecordHasher(Fnv1a);

impl RecordHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self(Fnv1a::new())
    }

    /// Absorbs one record.
    pub fn push(&mut self, r: &TraceRecord) {
        let name = dtype_debug_bytes(r.dtype);
        let mut buf = [0u8; 16];
        buf[..4].copy_from_slice(&r.bits.to_le_bytes());
        buf[4] = r.width;
        let used = 5 + name.len();
        buf[5..used].copy_from_slice(name);
        self.0.write(&buf[..used]);
    }

    /// Absorbs a chunk of records.
    pub fn push_all(&mut self, records: &[TraceRecord]) {
        for r in records {
            self.push(r);
        }
    }

    /// The hash of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// The `Debug` rendering of each dtype as static bytes. The hash
/// encoding predates this table (module docs: byte-compatible with the
/// original `write!("{:?}")` form), so every arm must match `Debug`
/// exactly — asserted by `debug_byte_table_matches_debug`. A lookup
/// beats the formatting machinery by an order of magnitude on the
/// hashing hot path (30M records per corpus pack scan).
fn dtype_debug_bytes(d: DataType) -> &'static [u8] {
    match d {
        DataType::Ub => b"Ub",
        DataType::B => b"B",
        DataType::Uw => b"Uw",
        DataType::W => b"W",
        DataType::Hf => b"Hf",
        DataType::Ud => b"Ud",
        DataType::D => b"D",
        DataType::F => b"F",
        DataType::Uq => b"Uq",
        DataType::Q => b"Q",
        DataType::Df => b"Df",
    }
}

/// Stable content hash of an execution-mask trace: the record stream
/// (mask bits, width, dtype), name excluded.
pub fn trace_hash(trace: &Trace) -> u64 {
    let mut h = RecordHasher::new();
    h.push_all(&trace.records);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::mask::ExecMask;
    use iwc_isa::types::DataType;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut t = Trace::new("t");
        t.push(ExecMask::new(0xAAAA, 16), DataType::F);
        t.push(ExecMask::new(0x0F, 8), DataType::Df);
        t.push(ExecMask::all(32), DataType::Ud);
        let mut h = RecordHasher::new();
        for r in &t.records {
            h.push(r);
        }
        assert_eq!(h.finish(), trace_hash(&t));

        // Chunked absorption is the same stream.
        let mut h2 = RecordHasher::new();
        h2.push_all(&t.records[..2]);
        h2.push_all(&t.records[2..]);
        assert_eq!(h2.finish(), trace_hash(&t));
    }

    #[test]
    fn name_is_excluded_and_records_matter() {
        let mut a = Trace::new("a");
        a.push(ExecMask::new(0b1010, 4), DataType::F);
        let mut b = Trace::new("b");
        b.push(ExecMask::new(0b1010, 4), DataType::F);
        assert_eq!(trace_hash(&a), trace_hash(&b));

        let mut c = Trace::new("a");
        c.push(ExecMask::new(0b1011, 4), DataType::F);
        assert_ne!(trace_hash(&a), trace_hash(&c));

        let mut d = Trace::new("a");
        d.push(ExecMask::new(0b1010, 4), DataType::D);
        assert_ne!(trace_hash(&a), trace_hash(&d));
    }

    const ALL_DTYPES: [DataType; 11] = [
        DataType::Ub,
        DataType::B,
        DataType::Uw,
        DataType::W,
        DataType::Hf,
        DataType::Ud,
        DataType::D,
        DataType::F,
        DataType::Uq,
        DataType::Q,
        DataType::Df,
    ];

    #[test]
    fn all_dtypes_encode_within_the_stack_buffer() {
        // RecordHasher packs bits+width+dtype-Debug into 16 bytes; every
        // dtype's Debug form must fit (longest is 2 chars).
        for d in ALL_DTYPES {
            let mut h = RecordHasher::new();
            h.push(&TraceRecord {
                bits: 1,
                width: 4,
                dtype: d,
            });
            let _ = h.finish();
        }
    }

    #[test]
    fn debug_byte_table_matches_debug() {
        // The static table IS the hash encoding; drifting from the Debug
        // rendering would silently change every content hash.
        for d in ALL_DTYPES {
            assert_eq!(
                dtype_debug_bytes(d),
                format!("{d:?}").as_bytes(),
                "table entry for {d:?}"
            );
        }
    }
}
