//! Streaming trace sources: bounded-memory record streams.
//!
//! Every analysis path in this crate consumes a [`TraceSource`] — a
//! chunked pull iterator of [`TraceRecord`]s with a known length hint —
//! instead of a materialized `Vec<TraceRecord>`. Peak memory is O(chunk)
//! whatever the trace length, which is what lets the corpus grow toward
//! the paper's ~600-trace scale (ROADMAP item 5) without the analyzer's
//! footprint growing with it.
//!
//! Implementations:
//!
//! * [`SliceSource`] — adapter over an in-memory record slice (the legacy
//!   `analyze(&Trace)` entry points are thin wrappers over this);
//! * [`crate::synth::SynthSource`] — records synthesized on the fly from a
//!   [`crate::synth::Profile`], never holding more than one chunk;
//! * [`crate::pack::PackTraceReader`] — sequential chunked reads of one
//!   trace out of a `.iwcc` corpus pack, with content-hash verification.

use crate::format::{TraceIoError, TraceRecord};

/// Records per chunk handed out by the streaming sources. Small enough
/// that a per-worker chunk buffer is cache-friendly (24 KiB at 6 bytes of
/// wire format, 32 KiB resident), large enough to amortize per-chunk
/// dispatch.
pub const CHUNK_RECORDS: usize = 4096;

/// A pull stream of trace records, consumed chunk by chunk.
///
/// Contract: `next_chunk` yields non-empty record slices until the stream
/// is exhausted, then `None` forever. Implementations validate lazily —
/// a malformed byte stream (bad record, hash mismatch, short read)
/// surfaces as [`TraceIoError::Malformed`] from `next_chunk`, never as a
/// panic or a silently truncated stream.
pub trait TraceSource {
    /// The trace's name.
    fn name(&self) -> &str;

    /// Total records this source will yield, when known up front. Streams
    /// of known length report `Some` so analyzers can pre-account; the
    /// value is a hint, not a contract — the stream is authoritative.
    fn len_hint(&self) -> Option<u64>;

    /// The next chunk of records, `None` once exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] when the underlying stream is unreadable
    /// or malformed.
    fn next_chunk(&mut self) -> Result<Option<&[TraceRecord]>, TraceIoError>;
}

/// [`TraceSource`] over an in-memory record slice — the adapter that keeps
/// the slice-based `analyze` entry points alive on top of the streaming
/// core. Yields the slice in [`CHUNK_RECORDS`]-sized chunks so code paths
/// downstream see the same chunking whatever the source.
pub struct SliceSource<'a> {
    name: &'a str,
    records: &'a [TraceRecord],
    at: usize,
}

impl<'a> SliceSource<'a> {
    /// A source over `records` named `name`.
    pub fn new(name: &'a str, records: &'a [TraceRecord]) -> Self {
        Self {
            name,
            records,
            at: 0,
        }
    }
}

impl<'a> From<&'a crate::format::Trace> for SliceSource<'a> {
    fn from(t: &'a crate::format::Trace) -> Self {
        Self::new(&t.name, &t.records)
    }
}

impl TraceSource for SliceSource<'_> {
    fn name(&self) -> &str {
        self.name
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }

    fn next_chunk(&mut self) -> Result<Option<&[TraceRecord]>, TraceIoError> {
        if self.at >= self.records.len() {
            return Ok(None);
        }
        let end = (self.at + CHUNK_RECORDS).min(self.records.len());
        let chunk = &self.records[self.at..end];
        self.at = end;
        Ok(Some(chunk))
    }
}

/// Folds a source into maximal runs of identical records, invoking
/// `f(record, count)` once per run and returning the number of runs.
///
/// Divergence arrives in runs — a loop body re-presents the same
/// `(mask, dtype)` for thousands of consecutive records — and every tally
/// is an integer sum, so downstream analyzers charge each run
/// multiplicatively in O(1) instead of per record. Runs span chunk
/// boundaries: a run that straddles `next_chunk` calls is reported once,
/// with its full count, so the grouping is a pure function of the record
/// stream and independent of [`CHUNK_RECORDS`].
///
/// # Errors
///
/// Propagates stream errors from the source.
pub fn for_each_run<F>(src: &mut dyn TraceSource, mut f: F) -> Result<u64, TraceIoError>
where
    F: FnMut(TraceRecord, u64),
{
    let mut runs = 0u64;
    let mut pending: Option<(TraceRecord, u64)> = None;
    while let Some(chunk) = src.next_chunk()? {
        let mut i = 0;
        while i < chunk.len() {
            let rec = chunk[i];
            let mut j = i + 1;
            while j < chunk.len() && chunk[j] == rec {
                j += 1;
            }
            let n = (j - i) as u64;
            match pending {
                Some((p, c)) if p == rec => pending = Some((p, c + n)),
                Some((p, c)) => {
                    f(p, c);
                    runs += 1;
                    pending = Some((rec, n));
                }
                None => pending = Some((rec, n)),
            }
            i = j;
        }
    }
    if let Some((p, c)) = pending {
        f(p, c);
        runs += 1;
    }
    Ok(runs)
}

/// Drains a source into a materialized [`crate::format::Trace`] — the
/// inverse adapter, used by `iwc unpack` and the round-trip tests.
///
/// # Errors
///
/// Propagates stream errors from the source.
pub fn collect(src: &mut dyn TraceSource) -> Result<crate::format::Trace, TraceIoError> {
    let mut t = crate::format::Trace::new(src.name());
    if let Some(n) = src.len_hint() {
        t.records
            .reserve(usize::try_from(n).unwrap_or(0).min(1 << 24));
    }
    while let Some(chunk) = src.next_chunk()? {
        t.records.extend_from_slice(chunk);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Trace;
    use iwc_isa::mask::ExecMask;
    use iwc_isa::types::DataType;

    #[test]
    fn slice_source_chunks_and_roundtrips() {
        let mut t = Trace::new("s");
        for i in 0..(CHUNK_RECORDS + 17) {
            t.push(ExecMask::new(1 + (i as u32 % 0xFFFF), 16), DataType::F);
        }
        let mut src = SliceSource::from(&t);
        assert_eq!(src.name(), "s");
        assert_eq!(src.len_hint(), Some(t.len() as u64));

        let first = src.next_chunk().unwrap().expect("first chunk");
        assert_eq!(first.len(), CHUNK_RECORDS);
        let second = src.next_chunk().unwrap().expect("second chunk");
        assert_eq!(second.len(), 17);
        assert!(src.next_chunk().unwrap().is_none());
        assert!(src.next_chunk().unwrap().is_none(), "None is sticky");

        let back = collect(&mut SliceSource::from(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_slice_yields_nothing() {
        let t = Trace::new("empty");
        let mut src = SliceSource::from(&t);
        assert!(src.next_chunk().unwrap().is_none());
        assert_eq!(src.len_hint(), Some(0));
    }

    #[test]
    fn runs_group_identical_records_across_chunks() {
        let mut t = Trace::new("runs");
        // A run that straddles the first chunk boundary, then a lone record,
        // then a short tail run.
        for _ in 0..(CHUNK_RECORDS + 10) {
            t.push(ExecMask::all(16), DataType::F);
        }
        t.push(ExecMask::new(0x00FF, 16), DataType::F);
        for _ in 0..3 {
            t.push(ExecMask::all(16), DataType::Df);
        }
        let mut seen = Vec::new();
        let runs = for_each_run(&mut SliceSource::from(&t), |r, n| {
            seen.push((r.bits, r.dtype, n));
        })
        .unwrap();
        assert_eq!(runs, 3);
        assert_eq!(
            seen,
            vec![
                (0xFFFF, DataType::F, (CHUNK_RECORDS + 10) as u64),
                (0x00FF, DataType::F, 1),
                (0xFFFF, DataType::Df, 3),
            ]
        );
    }

    #[test]
    fn runs_of_empty_source_are_empty() {
        let t = Trace::new("empty");
        let runs = for_each_run(&mut SliceSource::from(&t), |_, _| {
            panic!("no runs in an empty stream")
        })
        .unwrap();
        assert_eq!(runs, 0);
    }

    #[test]
    fn run_length_one_everywhere_degrades_to_per_record() {
        let mut t = Trace::new("alt");
        for i in 0..37u32 {
            // Alternate masks so every run has length exactly 1.
            t.push(ExecMask::new(1 + (i % 2), 16), DataType::F);
        }
        let mut total = 0u64;
        let runs = for_each_run(&mut SliceSource::from(&t), |_, n| {
            assert_eq!(n, 1);
            total += n;
        })
        .unwrap();
        assert_eq!(runs, 37);
        assert_eq!(total, 37);
    }
}
