//! Property-based tests of the trace layer: serialization round-trips and
//! synthetic-generator guarantees.

use iwc_compaction::CompactionMode;
use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use iwc_trace::{analyze, Trace};
use proptest::prelude::*;

fn arb_dtype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::F),
        Just(DataType::Df),
        Just(DataType::Ud),
        Just(DataType::D),
        Just(DataType::Hf),
        Just(DataType::W),
    ]
}

fn arb_record() -> impl Strategy<Value = (u32, u32, DataType)> {
    (
        any::<u32>(),
        prop_oneof![Just(8u32), Just(16), Just(32)],
        arb_dtype(),
    )
}

proptest! {
    /// Binary serialization round-trips arbitrary traces exactly.
    #[test]
    fn trace_roundtrip(
        name in "[a-zA-Z0-9_-]{0,24}",
        records in prop::collection::vec(arb_record(), 0..200),
    ) {
        let mut t = Trace::new(name);
        for (bits, w, dt) in records {
            t.push(ExecMask::new(bits, w), dt);
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        let back = Trace::read_from(&buf[..]).expect("read");
        prop_assert_eq!(t, back);
    }

    /// Truncated streams are rejected, never panicking.
    #[test]
    fn truncated_traces_rejected(cut in 1usize..40) {
        let mut t = Trace::new("cut");
        for i in 0..8u32 {
            t.push(ExecMask::new(0xFF << (i % 8), 16), DataType::F);
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        let cut = cut.min(buf.len() - 1);
        let short = &buf[..buf.len() - cut];
        prop_assert!(Trace::read_from(short).is_err());
    }

    /// Analysis is permutation-invariant: the compaction arithmetic is a
    /// pure function of the multiset of masks.
    #[test]
    fn analysis_order_invariant(records in prop::collection::vec(arb_record(), 1..100)) {
        let mut a = Trace::new("a");
        let mut b = Trace::new("a");
        for &(bits, w, dt) in &records {
            a.push(ExecMask::new(bits, w), dt);
        }
        for &(bits, w, dt) in records.iter().rev() {
            b.push(ExecMask::new(bits, w), dt);
        }
        let (ra, rb) = (analyze(&a), analyze(&b));
        prop_assert_eq!(ra.tally.cycles, rb.tally.cycles);
        prop_assert_eq!(ra.simd_efficiency(), rb.simd_efficiency());
    }

    /// Every synthetic profile generates reproducible traces whose
    /// reductions respect the mode ordering.
    #[test]
    fn synth_profiles_well_formed(idx in 0usize..17, len in 500usize..3000) {
        let profiles = iwc_trace::corpus();
        let p = &profiles[idx % profiles.len()];
        let t = p.generate(len);
        prop_assert_eq!(t.len(), len);
        let r = analyze(&t);
        let bcc = r.reduction(CompactionMode::Bcc);
        let scc = r.reduction(CompactionMode::Scc);
        prop_assert!(scc >= bcc - 1e-12);
        prop_assert!((0.0..=1.0).contains(&bcc));
        prop_assert!((0.0..=1.0).contains(&scc));
    }
}
