//! RLE-vs-plain differential goldens for the `.iwcc` pack format.
//!
//! The run-length payload encoding is a pure compression: for the same
//! traces, an RLE pack and a plain pack must stream byte-identical
//! records, carry identical per-trace and whole-pack content hashes, and
//! produce equal analysis reports at any shard count — on the full
//! 600-trace expanded corpus and on adversarial streams built to stress
//! the codec (runs straddling chunk boundaries, pure run-length-1
//! alternation, one trace-sized run).

use iwc_compaction::EngineId;
use iwc_isa::{DataType, ExecMask};
use iwc_trace::pack::{write_pack_file, write_pack_file_rle, CorpusPack};
use iwc_trace::synth::DEFAULT_EXPANDED_TRACES;
use iwc_trace::{
    analyze_pack_file, analyze_pack_file_engines, expanded_corpus, Trace, TraceRecord,
    CHUNK_RECORDS,
};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("iwc-rle-eq-{tag}-{}.iwcc", std::process::id()))
}

/// Writes `traces` both ways and asserts the packs are interchangeable
/// everywhere except on-disk size.
fn assert_rle_equivalent(traces: &[Trace], tag: &str) {
    let plain_path = tmp_path(&format!("{tag}-plain"));
    let rle_path = tmp_path(&format!("{tag}-rle"));
    let plain_entries = write_pack_file(&plain_path, traces).unwrap();
    let rle_entries = write_pack_file_rle(&rle_path, traces).unwrap();

    for (p, r) in plain_entries.iter().zip(&rle_entries) {
        assert_eq!(p.name, r.name);
        assert_eq!(p.records, r.records);
        assert_eq!(
            p.content_hash, r.content_hash,
            "{tag}/{}: hash is payload-encoding-independent",
            p.name
        );
    }

    let mut plain = CorpusPack::open_path(&plain_path).unwrap();
    let mut rle = CorpusPack::open_path(&rle_path).unwrap();
    assert_eq!(
        plain.content_hash(),
        rle.content_hash(),
        "{tag}: pack hash is payload-encoding-independent"
    );
    for i in 0..plain.len() {
        assert_eq!(
            plain.read_trace(i).unwrap(),
            rle.read_trace(i).unwrap(),
            "{tag}: trace {i} must stream back byte-identically"
        );
    }

    // Analysis (which consumes the streams run-by-run) cannot tell the
    // encodings apart, at any shard count.
    let on_plain = analyze_pack_file_engines(&plain_path, 2, &EngineId::CANONICAL).unwrap();
    let on_rle = analyze_pack_file_engines(&rle_path, 2, &EngineId::CANONICAL).unwrap();
    assert_eq!(on_plain, on_rle, "{tag}: analysis reports diverged");
    assert_eq!(
        analyze_pack_file(&rle_path, 1).unwrap(),
        analyze_pack_file(&rle_path, 4).unwrap(),
        "{tag}: RLE pack analysis is shard-invariant"
    );

    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&rle_path);
}

#[test]
fn rle_matches_plain_on_the_full_expanded_corpus() {
    // Trace length kept moderate so the debug-mode run stays quick; the
    // codec path is identical at any length.
    let traces: Vec<Trace> = expanded_corpus(DEFAULT_EXPANDED_TRACES)
        .iter()
        .map(|p| p.generate(400))
        .collect();
    assert_eq!(traces.len(), DEFAULT_EXPANDED_TRACES);
    assert_rle_equivalent(&traces, "corpus");

    // The synthetic corpus masks run coherently: RLE must actually pay.
    let plain_path = tmp_path("corpus-size-plain");
    let rle_path = tmp_path("corpus-size-rle");
    write_pack_file(&plain_path, &traces).unwrap();
    write_pack_file_rle(&rle_path, &traces).unwrap();
    let plain_len = std::fs::metadata(&plain_path).unwrap().len();
    let rle_len = std::fs::metadata(&rle_path).unwrap().len();
    assert!(
        rle_len < plain_len,
        "RLE pack ({rle_len} B) should beat plain ({plain_len} B) on a coherent corpus"
    );
    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&rle_path);
}

#[test]
fn rle_matches_plain_on_adversarial_streams() {
    let full = |dtype| TraceRecord::new(ExecMask::all(16), dtype);
    let lane = |bits: u32| TraceRecord::new(ExecMask::new(bits, 16), DataType::F);

    // Runs engineered to straddle the streaming chunk boundary: a run
    // ending exactly at CHUNK_RECORDS, one crossing it by a single
    // record, and one spanning several whole chunks.
    let straddle = Trace {
        name: "straddle".into(),
        records: std::iter::repeat_n(full(DataType::F), CHUNK_RECORDS)
            .chain(std::iter::repeat_n(full(DataType::D), CHUNK_RECORDS + 1))
            .chain(std::iter::repeat_n(lane(0x00ff), 3 * CHUNK_RECORDS - 1))
            .collect(),
    };
    // Pure alternation: every run has length 1, the RLE worst case (the
    // encoding must not inflate records into counted items).
    let alternating = Trace {
        name: "alternating".into(),
        records: (0..2 * CHUNK_RECORDS)
            .map(|i| lane(if i % 2 == 0 { 0x5555 } else { 0xaaaa }))
            .collect(),
    };
    // One giant run: the whole trace is a single RLE item.
    let giant = Trace {
        name: "giant".into(),
        records: vec![full(DataType::F); 4 * CHUNK_RECORDS + 7],
    };
    let empty = Trace {
        name: "empty".into(),
        records: vec![],
    };
    let one = Trace {
        name: "one".into(),
        records: vec![lane(1)],
    };

    let traces = vec![straddle, alternating, giant, empty, one];
    assert_rle_equivalent(&traces, "adversarial");
}
