//! Pack-format robustness and streaming-equivalence goldens (ISSUE 8).
//!
//! Robustness: every way a `.iwcc` file can be damaged — truncation,
//! corrupted magic/version, an index pointing past EOF, a record-count
//! mismatch, a flipped payload byte — must surface as
//! `TraceIoError::Malformed`, never a panic or a silent short read.
//!
//! Equivalence: streaming analysis over an expanded ≥400-trace pack is
//! byte-identical to the in-memory slice path, thread-count-invariant at
//! 1/2/4 shards, and the text (`IWCT`) ↔ pack round trip preserves the
//! analysis reports of the full base corpus exactly.

use iwc_compaction::EngineId;
use iwc_trace::pack::{CorpusPack, PackWriter, PACK_HEADER_BYTES};
use iwc_trace::{
    analyze_engines, analyze_pack_file, analyze_pack_file_engines, expanded_corpus, trace_hash,
    Trace, TraceIoError,
};
use std::io::Cursor;
use std::path::PathBuf;

fn sample_traces() -> Vec<Trace> {
    iwc_trace::corpus()
        .iter()
        .take(3)
        .map(|p| p.generate(700))
        .collect()
}

fn pack_bytes(traces: &[Trace]) -> Vec<u8> {
    let mut w = PackWriter::new(Cursor::new(Vec::new())).unwrap();
    for t in traces {
        w.add_trace(t).unwrap();
    }
    w.finish().unwrap().into_inner()
}

fn open_err(bytes: Vec<u8>) -> TraceIoError {
    CorpusPack::open(Cursor::new(bytes))
        .err()
        .expect("must fail")
}

/// Reads every trace of an opened pack to the end, returning the first
/// stream error.
fn drain(bytes: Vec<u8>) -> Result<Vec<Trace>, TraceIoError> {
    let mut pack = CorpusPack::open(Cursor::new(bytes))?;
    (0..pack.len()).map(|i| pack.read_trace(i)).collect()
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("iwc-pack-test-{tag}-{}.iwcc", std::process::id()))
}

#[test]
fn truncated_header_is_malformed() {
    let bytes = pack_bytes(&sample_traces());
    for cut in [0, 3, 7, 15, PACK_HEADER_BYTES as usize - 1] {
        let e = open_err(bytes[..cut].to_vec());
        assert!(matches!(e, TraceIoError::Malformed(_)), "cut {cut}: {e}");
    }
}

#[test]
fn truncated_index_and_payload_are_malformed() {
    let bytes = pack_bytes(&sample_traces());
    // Any truncation of the body leaves either the index short (open
    // fails) or the payload short of the index offset (open's range
    // validation fails) — never a silent short read.
    for cut in [
        bytes.len() - 1,
        bytes.len() - 20,
        bytes.len() / 2,
        PACK_HEADER_BYTES as usize + 5,
    ] {
        let e = open_err(bytes[..cut].to_vec());
        assert!(matches!(e, TraceIoError::Malformed(_)), "cut {cut}: {e}");
    }
}

#[test]
fn corrupted_magic_and_version_are_malformed() {
    let good = pack_bytes(&sample_traces());
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(matches!(open_err(bad_magic), TraceIoError::Malformed(_)));

    let mut bad_version = good;
    bad_version[4] = 99;
    let e = open_err(bad_version);
    assert!(matches!(e, TraceIoError::Malformed(_)));
    assert!(e.to_string().contains("version"), "{e}");
}

#[test]
fn index_offset_past_eof_is_malformed() {
    let mut bytes = pack_bytes(&sample_traces());
    let huge = (bytes.len() as u64 + 1000).to_le_bytes();
    bytes[16..24].copy_from_slice(&huge);
    let e = open_err(bytes);
    assert!(matches!(e, TraceIoError::Malformed(_)), "{e}");
}

#[test]
fn entry_payload_past_index_is_malformed() {
    let traces = sample_traces();
    let mut bytes = pack_bytes(&traces);
    // Inflate the first entry's record count so its payload range runs
    // past the payload section (a record-count mismatch).
    let index_offset = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let name_len = u32::from_le_bytes(bytes[index_offset..index_offset + 4].try_into().unwrap());
    let count_at = index_offset + 4 + name_len as usize;
    let fake = (traces[0].len() as u64 + 1_000_000).to_le_bytes();
    bytes[count_at..count_at + 8].copy_from_slice(&fake);
    let e = open_err(bytes);
    assert!(matches!(e, TraceIoError::Malformed(_)), "{e}");
}

#[test]
fn record_count_mismatch_is_malformed() {
    let traces = sample_traces();
    let mut bytes = pack_bytes(&traces);
    // Shrink the first entry's record count by one: ranges stay valid, so
    // the lie is only detectable by hashing — the streamed payload no
    // longer matches the index hash.
    let index_offset = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let name_len = u32::from_le_bytes(bytes[index_offset..index_offset + 4].try_into().unwrap());
    let count_at = index_offset + 4 + name_len as usize;
    let fake = (traces[0].len() as u64 - 1).to_le_bytes();
    bytes[count_at..count_at + 8].copy_from_slice(&fake);
    let e = drain(bytes).expect_err("must fail");
    assert!(matches!(e, TraceIoError::Malformed(_)), "{e}");
    assert!(e.to_string().contains("hash"), "{e}");
}

#[test]
fn payload_corruption_is_a_hash_mismatch() {
    let mut bytes = pack_bytes(&sample_traces());
    // Flip mask bits of a record in the middle of the first trace: the
    // record still parses, so only hash verification can catch it.
    let at = PACK_HEADER_BYTES as usize + 6 * 100;
    bytes[at] ^= 0x55;
    let e = drain(bytes).expect_err("must fail");
    assert!(matches!(e, TraceIoError::Malformed(_)), "{e}");
    assert!(e.to_string().contains("hash mismatch"), "{e}");
}

#[test]
fn payload_corruption_to_invalid_width_is_malformed() {
    let mut bytes = pack_bytes(&sample_traces());
    // Corrupt a width byte (record offset 4) to an invalid lane count.
    let at = PACK_HEADER_BYTES as usize + 6 * 50 + 4;
    bytes[at] = 3;
    let e = drain(bytes).expect_err("must fail");
    assert!(matches!(e, TraceIoError::Malformed(_)), "{e}");
}

#[test]
fn garbage_and_iwct_files_are_rejected() {
    assert!(matches!(open_err(vec![]), TraceIoError::Malformed(_)));
    assert!(matches!(
        open_err(b"complete garbage, not a pack at all".to_vec()),
        TraceIoError::Malformed(_)
    ));
    // A single-trace IWCT file is not a pack.
    let mut iwct = Vec::new();
    sample_traces()[0].write_to(&mut iwct).unwrap();
    assert!(matches!(open_err(iwct), TraceIoError::Malformed(_)));
}

#[test]
fn text_pack_round_trip_preserves_reports_on_the_full_corpus() {
    // Golden: IWCT bytes → pack → stream back → byte-identical traces and
    // analysis reports for every base-corpus profile.
    let traces: Vec<Trace> = iwc_trace::corpus()
        .iter()
        .map(|p| p.generate(1500))
        .collect();

    let mut w = PackWriter::new(Cursor::new(Vec::new())).unwrap();
    for t in &traces {
        // Route through the IWCT text encoding first, as `iwc pack` does.
        let mut iwct = Vec::new();
        t.write_to(&mut iwct).unwrap();
        let decoded = Trace::read_from(&iwct[..]).unwrap();
        w.add_trace(&decoded).unwrap();
    }
    let bytes = w.finish().unwrap().into_inner();

    let mut pack = CorpusPack::open(Cursor::new(bytes)).unwrap();
    assert_eq!(pack.len(), traces.len());
    for (i, t) in traces.iter().enumerate() {
        assert_eq!(pack.entries()[i].content_hash, trace_hash(t));
        let back = pack.read_trace(i).unwrap();
        assert_eq!(&back, t, "trace {i} must round-trip byte-identically");
        assert_eq!(
            analyze_engines(&back, &EngineId::CANONICAL),
            analyze_engines(t, &EngineId::CANONICAL),
            "analysis of {} must survive the round trip",
            t.name
        );
    }
}

#[test]
fn expanded_pack_streaming_matches_in_memory_and_is_shard_invariant() {
    // Acceptance: ≥400-trace expanded pack, streamed analysis ==
    // in-memory analysis (full catalog × canonical engines), invariant
    // at 1/2/4 shards. Trace length is kept small so the debug-mode test
    // stays fast; the record path is identical at any length.
    let profiles = expanded_corpus(420);
    let len = 600;
    let traces: Vec<Trace> = profiles.iter().map(|p| p.generate(len)).collect();

    let path = tmp_path("equivalence");
    iwc_trace::pack::write_pack_file(&path, &traces).unwrap();

    let in_memory: Vec<_> = traces
        .iter()
        .map(|t| analyze_engines(t, &EngineId::CANONICAL))
        .collect();
    let streamed = analyze_pack_file_engines(&path, 2, &EngineId::CANONICAL).unwrap();
    assert_eq!(streamed, in_memory, "streaming must match the slice path");

    let one = analyze_pack_file(&path, 1).unwrap();
    let two = analyze_pack_file(&path, 2).unwrap();
    let four = analyze_pack_file(&path, 4).unwrap();
    assert_eq!(one, two, "1 vs 2 shards");
    assert_eq!(two, four, "2 vs 4 shards");
    assert_eq!(one.len(), profiles.len());
    for (report, profile) in one.iter().zip(&profiles) {
        assert_eq!(report.name, profile.name, "pack order preserved");
    }

    // The corpus snapshot built from sharded results matches the serial
    // one — the commutative-merge invariant extended to disk.
    let snap1 = iwc_trace::corpus_snapshot(&one);
    let snap4 = iwc_trace::corpus_snapshot(&four);
    assert_eq!(snap1.to_json(), snap4.to_json());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn pack_file_content_hash_is_reproducible() {
    let traces: Vec<Trace> = expanded_corpus(30)
        .iter()
        .map(|p| p.generate(300))
        .collect();
    let a = tmp_path("hash-a");
    let b = tmp_path("hash-b");
    iwc_trace::pack::write_pack_file(&a, &traces).unwrap();
    iwc_trace::pack::write_pack_file(&b, &traces).unwrap();
    let ha = CorpusPack::open_path(&a).unwrap().content_hash();
    let hb = CorpusPack::open_path(&b).unwrap().content_hash();
    assert_eq!(ha, hb, "same corpus, same pack hash");
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "pack files are byte-reproducible"
    );
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}
