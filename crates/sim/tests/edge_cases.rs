//! Edge-case integration tests of the simulator: dual-pipe overlap, SLM
//! bank-conflict timing, barrier semantics across workgroups, scoreboard
//! hazards, and failure paths.

use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::{CondOp, Opcode};
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::{DataType, MemSpace};
use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage};

fn cfg1() -> GpuConfig {
    GpuConfig::single_eu()
}

/// Independent FPU and EM chains overlap: the mixed kernel is faster than
/// the sum of the two pipes run back to back.
#[test]
fn fpu_and_em_pipes_overlap() {
    let build = |fpu_ops: u32, em_ops: u32| {
        let mut b = KernelBuilder::new("mix", 16);
        b.mov(Operand::rf(6), Operand::imm_f(1.5));
        b.mov(Operand::rf(8), Operand::imm_f(2.5));
        for _ in 0..fpu_ops {
            b.mad(
                Operand::rf(6),
                Operand::rf(6),
                Operand::imm_f(1.0),
                Operand::imm_f(0.0),
            );
        }
        for _ in 0..em_ops {
            b.math(Opcode::Rsqrt, Operand::rf(8), Operand::rf(8));
        }
        b.finish().unwrap()
    };
    let run = |fpu: u32, em: u32| {
        let mut img = MemoryImage::new(1 << 12);
        simulate(&cfg1(), &Launch::new(build(fpu, em), 16, 16), &mut img)
            .unwrap()
            .cycles
    };
    let both = run(64, 64);
    let fpu_only = run(64, 0);
    let em_only = run(0, 64);
    assert!(
        both < fpu_only + em_only,
        "mixed {both} should beat serial {fpu_only}+{em_only}"
    );
}

/// SLM bank conflicts serialize: a 16-way conflicted access pattern is
/// slower than a unit-stride one.
#[test]
fn slm_bank_conflicts_cost_time() {
    let build = |stride_words: u32| {
        let mut b = KernelBuilder::new("slm", 16);
        // addr = lane * stride * 4
        b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(15));
        b.mul(
            Operand::rud(6),
            Operand::rud(6),
            Operand::imm_ud(stride_words * 4),
        );
        b.mov(Operand::rf(8), Operand::imm_f(1.0));
        for _ in 0..32 {
            b.store(MemSpace::Slm, Operand::rud(6), Operand::rf(8));
            b.load(MemSpace::Slm, Operand::rf(10), Operand::rud(6));
        }
        b.finish().unwrap()
    };
    let run = |stride: u32| {
        let mut img = MemoryImage::new(1 << 12);
        let launch = Launch::new(build(stride), 16, 16).with_slm(16 << 10);
        // Disable instruction-fetch modeling: this test isolates SLM timing
        // (a straight-line kernel would otherwise be I$-cold-start bound).
        let mut cfg = cfg1();
        cfg.icache_miss_latency = 0;
        simulate(&cfg, &launch, &mut img).unwrap().cycles
    };
    let unit = run(1); // 16 distinct banks
    let conflicted = run(16); // all lanes hit bank 0
    assert!(
        conflicted > unit + 100,
        "conflicted ({conflicted}) should clearly exceed unit-stride ({unit})"
    );
}

/// Two workgroups with barriers run independently: a barrier in one group
/// never blocks the other (they just share issue slots).
#[test]
fn barriers_are_per_workgroup() {
    let mut b = KernelBuilder::new("bar", 16);
    b.mov(Operand::rf(6), Operand::imm_f(1.0));
    b.barrier();
    b.add(Operand::rf(6), Operand::rf(6), Operand::imm_f(1.0));
    b.barrier();
    // out[gid] = 2.0
    b.shl(Operand::rud(8), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(8),
        Operand::rud(8),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(8), Operand::rf(6));
    let p = b.finish().unwrap();
    let mut img = MemoryImage::new(1 << 16);
    let out = img.alloc(256 * 4);
    // 4 workgroups of 64 on a single EU: they must time-share and all finish.
    let launch = Launch::new(p, 256, 64).with_args(&[out]);
    let r = simulate(&cfg1(), &launch, &mut img).unwrap();
    assert!(r.cycles > 0);
    for g in 0..256u32 {
        assert_eq!(img.read_f32(out + 4 * g), 2.0, "gid {g}");
    }
}

/// RAW hazard through the scoreboard: a dependent chain is slower than an
/// independent one of the same length.
#[test]
fn scoreboard_enforces_raw_latency() {
    let dependent = {
        let mut b = KernelBuilder::new("dep", 16);
        b.mov(Operand::rf(6), Operand::imm_f(1.0));
        for _ in 0..64 {
            b.mad(
                Operand::rf(6),
                Operand::rf(6),
                Operand::imm_f(1.0),
                Operand::imm_f(0.0),
            );
        }
        b.finish().unwrap()
    };
    let independent = {
        let mut b = KernelBuilder::new("indep", 16);
        for i in 0..4u8 {
            b.mov(Operand::rf(6 + 2 * i), Operand::imm_f(1.0));
        }
        for k in 0..64u8 {
            let r = Operand::rf(6 + 2 * (k % 4));
            b.mad(r, r, Operand::imm_f(1.0), Operand::imm_f(0.0));
        }
        b.finish().unwrap()
    };
    let run = |p: iwc_isa::Program| {
        let mut img = MemoryImage::new(1 << 12);
        simulate(&cfg1(), &Launch::new(p, 16, 16), &mut img)
            .unwrap()
            .cycles
    };
    let dep = run(dependent);
    let indep = run(independent);
    assert!(
        dep > indep,
        "dependent chain ({dep}) must be slower than independent ({indep})"
    );
}

/// A single thread exercising deep control-flow nesting completes and
/// reconverges (stress for the SIMT stack in the full pipeline).
#[test]
fn deep_nesting_reconverges() {
    let mut b = KernelBuilder::new("deep", 16);
    b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(15));
    b.mov(Operand::rf(8), Operand::imm_f(0.0));
    for bit in 0..4 {
        b.and(Operand::rud(10), Operand::rud(6), Operand::imm_ud(1 << bit));
        b.cmp(
            CondOp::Ne,
            FlagReg::F0,
            Operand::rud(10),
            Operand::imm_ud(0),
        );
        b.if_(Predicate::normal(FlagReg::F0));
        b.add(
            Operand::rf(8),
            Operand::rf(8),
            Operand::imm_f((1 << bit) as f32),
        );
    }
    for _ in 0..4 {
        b.end_if();
    }
    // out[gid] = sum of set bits = lane id (only lanes whose ALL tested bits
    // are set reach the innermost add, so expect the nested-sum semantics).
    b.shl(Operand::rud(12), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(12),
        Operand::rud(12),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(12), Operand::rf(8));
    let p = b.finish().unwrap();
    let mut img = MemoryImage::new(1 << 12);
    let out = img.alloc(16 * 4);
    let launch = Launch::new(p, 16, 16).with_args(&[out]);
    simulate(&cfg1(), &launch, &mut img).unwrap();
    for lane in 0..16u32 {
        // Nested structure: bit k's add only runs for lanes inside all
        // enclosing if-regions, i.e. lanes with bits 0..=k all set.
        let mut want = 0f32;
        for bit in 0..4 {
            if (0..=bit).all(|b| lane >> b & 1 == 1) {
                want += (1 << bit) as f32;
            }
        }
        assert_eq!(img.read_f32(out + 4 * lane), want, "lane {lane}");
    }
}

/// Issue-width knob: a wider front end is never slower.
#[test]
fn wider_frontend_not_slower() {
    let built = {
        let mut b = KernelBuilder::new("wide", 16);
        b.mov(Operand::rf(6), Operand::imm_f(1.0));
        b.mov(Operand::rf(8), Operand::imm_f(2.0));
        for k in 0..32u8 {
            if k % 2 == 0 {
                b.mad(
                    Operand::rf(6),
                    Operand::rf(6),
                    Operand::imm_f(1.0),
                    Operand::imm_f(0.0),
                );
            } else {
                b.math(Opcode::Rsqrt, Operand::rf(8), Operand::rf(8));
            }
        }
        b.finish().unwrap()
    };
    let run = |issue: u32| {
        let mut img = MemoryImage::new(1 << 12);
        let cfg = GpuConfig::single_eu().with_issue_per_cycle(issue);
        simulate(&cfg, &Launch::new(built.clone(), 96, 48), &mut img)
            .unwrap()
            .cycles
    };
    assert!(run(2) <= run(1));
}

/// SIMD32 kernels dispatch with a shifted argument base (r5) so global ids
/// in r1-r4 don't collide with arguments.
#[test]
fn simd32_dispatch_abi() {
    let mut b = KernelBuilder::new("wide32", 32);
    // out[gid] = gid * 3 (args at r5 for SIMD32).
    b.mul(Operand::rud(8), Operand::rud(1), Operand::imm_ud(3));
    b.shl(Operand::rud(12), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(12),
        Operand::rud(12),
        Operand::scalar(iwc_sim::arg_base_reg(32), 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(12), Operand::rud(8));
    let p = b.finish().unwrap();
    let mut img = MemoryImage::new(1 << 16);
    let out = img.alloc(128 * 4);
    let launch = Launch::new(p, 128, 64).with_args(&[out]);
    let r = simulate(&GpuConfig::paper_default(), &launch, &mut img).unwrap();
    assert!(r.cycles > 0);
    for gid in 0..128u32 {
        assert_eq!(img.read_u32(out + 4 * gid), gid * 3, "gid {gid}");
    }
    // SIMD32 instructions occupy 8 waves in the tally.
    assert_eq!(r.eu.simd_tally.cycles.baseline % 8, 0);
}

/// A persistent device keeps its caches warm across launches: re-running
/// the same read-heavy kernel on a `Gpu` is faster the second time, while
/// two cold `simulate` calls are identical.
#[test]
fn warm_caches_across_launches() {
    let mut b = KernelBuilder::new("reader", 16);
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(6),
        Operand::rud(6),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.load(MemSpace::Global, Operand::rf(8), Operand::rud(6));
    b.mad(
        Operand::rf(8),
        Operand::rf(8),
        Operand::imm_f(2.0),
        Operand::imm_f(1.0),
    );
    b.store(MemSpace::Global, Operand::rud(6), Operand::rf(8));
    let p = b.finish().unwrap();

    let mut img = MemoryImage::new(1 << 16);
    let buf = img.alloc(1024 * 4);
    let launch = Launch::new(p, 1024, 64).with_args(&[buf]);

    let mut gpu = iwc_sim::Gpu::new(GpuConfig::paper_default());
    let first = gpu.run(&launch, &mut img).unwrap();
    let second = gpu.run(&launch, &mut img).unwrap();
    assert!(
        second.cycles < first.cycles,
        "warm launch ({}) should beat cold launch ({})",
        second.cycles,
        first.cycles
    );
    assert!(second.l3_hit_rate > first.l3_hit_rate);
    assert_eq!(
        gpu.clock(),
        first.cycles + second.cycles,
        "device clock accumulates"
    );
    // Functional effect applied twice: buf[i] = ((i*? ) ...) — value is
    // 2*(2*0+1)+1 = 3 for initial zeroes.
    assert_eq!(img.read_f32(buf), 3.0);
}

/// Instruction-cache modeling: a kernel larger than the I$ capacity thrashes
/// the front end and runs slower than under a capacious I$.
#[test]
fn icache_capacity_matters() {
    // A loop whose body (130+ instructions) exceeds a tiny I$: trips after
    // the first hit in a capacious I$ but thrash a FIFO window of 8.
    let mut b = KernelBuilder::new("istream", 16);
    b.mov(Operand::rf(6), Operand::imm_f(1.0));
    b.mov(Operand::rud(10), Operand::imm_ud(0));
    b.do_();
    for _ in 0..128 {
        b.mad(
            Operand::rf(6),
            Operand::rf(6),
            Operand::imm_f(1.0),
            Operand::imm_f(0.0),
        );
    }
    b.add(Operand::rud(10), Operand::rud(10), Operand::imm_ud(1));
    b.cmp(
        CondOp::Lt,
        FlagReg::F0,
        Operand::rud(10),
        Operand::imm_ud(4),
    );
    b.while_(Predicate::normal(FlagReg::F0));
    let p = b.finish().unwrap();
    let run = |icache_insns: u32| {
        let mut cfg = cfg1();
        cfg.icache_insns = icache_insns;
        let mut img = MemoryImage::new(1 << 12);
        simulate(&cfg, &Launch::new(p.clone(), 16, 16), &mut img).unwrap()
    };
    let big = run(4096);
    let tiny = run(8);
    assert!(
        tiny.cycles > big.cycles,
        "tiny I$ ({}) should be slower than big I$ ({})",
        tiny.cycles,
        big.cycles
    );
    assert!(tiny.eu.icache_misses > big.eu.icache_misses);
}

/// §4.3 register-file timing options: the multi-cycle single-ported file is
/// slower than the pumped/banked organization, and compaction still helps
/// under both.
#[test]
fn rf_timing_options() {
    use iwc_compaction::CompactionMode;
    use iwc_sim::RfTiming;
    let mut b = KernelBuilder::new("rf", 16);
    b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(3));
    b.cmp(CondOp::Eq, FlagReg::F0, Operand::rud(6), Operand::imm_ud(0));
    b.mov(Operand::rf(8), Operand::imm_f(1.0));
    b.if_(Predicate::normal(FlagReg::F0));
    for _ in 0..32 {
        b.mad(
            Operand::rf(8),
            Operand::rf(8),
            Operand::imm_f(1.0),
            Operand::imm_f(0.0),
        );
    }
    b.end_if();
    let p = b.finish().unwrap();
    let run = |timing: RfTiming, mode: CompactionMode| {
        let cfg = cfg1().with_rf_timing(timing).with_compaction(mode);
        let mut img = MemoryImage::new(1 << 12);
        simulate(&cfg, &Launch::new(p.clone(), 96, 48), &mut img)
            .unwrap()
            .cycles
    };
    let multi_ivb = run(RfTiming::MultiCycle, CompactionMode::IvyBridge);
    let pumped_ivb = run(RfTiming::Pumped, CompactionMode::IvyBridge);
    assert!(
        multi_ivb > pumped_ivb,
        "multi-cycle RF ({multi_ivb}) vs pumped ({pumped_ivb})"
    );
    let multi_scc = run(RfTiming::MultiCycle, CompactionMode::Scc);
    let pumped_scc = run(RfTiming::Pumped, CompactionMode::Scc);
    assert!(multi_scc < multi_ivb, "SCC helps under multi-cycle RF");
    assert!(pumped_scc < pumped_ivb, "SCC helps under pumped RF");
}

/// `Gpu::run_modes` reuses one scratch memory image across the mode sweep;
/// every mode must still see pristine inputs and match an independent
/// fresh-image run exactly. The kernel overwrites its input in place, so
/// any state leaking from one mode's run into the next would change both
/// the functional output and the timing of later modes.
#[test]
fn run_modes_scratch_image_matches_independent_runs() {
    use iwc_compaction::EngineId;
    let mut b = KernelBuilder::new("inplace", 16);
    b.mad(
        Operand::rud(10),
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.load(MemSpace::Global, Operand::rud(12), Operand::rud(10));
    b.mad(
        Operand::rud(12),
        Operand::rud(12),
        Operand::imm_ud(3),
        Operand::imm_ud(1),
    );
    b.store(MemSpace::Global, Operand::rud(10), Operand::rud(12));
    let p = b.finish().unwrap();

    let mut img = MemoryImage::new(1 << 14);
    let buf = img.alloc(64 * 4);
    for i in 0..64 {
        img.write_u32(buf + 4 * i, i * 7 + 3);
    }
    let launch = Launch::new(p, 64, 16).with_args(&[buf]);
    let cfg = GpuConfig::paper_default();
    let swept = iwc_sim::Gpu::run_modes(&cfg, &launch, &img, &EngineId::CANONICAL).unwrap();
    assert_eq!(swept.len(), EngineId::CANONICAL.len());
    for (r, engine) in swept.iter().zip(EngineId::CANONICAL) {
        let mut fresh = img.clone();
        let solo = simulate(&cfg.with_compaction(engine), &launch, &mut fresh).unwrap();
        assert_eq!(r, &solo, "mode {engine} diverged from an independent run");
        for k in 0..64 {
            assert_eq!(
                fresh.read_u32(buf + 4 * k),
                (k * 7 + 3) * 3 + 1,
                "functional output wrong at index {k} under {engine}"
            );
        }
    }
}
