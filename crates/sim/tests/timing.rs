//! Timing-level integration tests of the simulator: compaction speeds up
//! divergent kernels, never changes results, and never hurts coherent code.

use iwc_compaction::CompactionMode;
use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::CondOp;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::{MemSpace, Program};
use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage, SimResult};

fn f0() -> Predicate {
    Predicate::normal(FlagReg::F0)
}

/// A coherent kernel: out[gid] = a[gid] * 3 + 1, no branches.
fn coherent_kernel() -> Program {
    let mut b = KernelBuilder::new("coherent", 16);
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(6),
        Operand::rud(6),
        Operand::scalar(3, 0, iwc_isa::DataType::Ud),
    );
    b.load(MemSpace::Global, Operand::rf(8), Operand::rud(6));
    b.mad(
        Operand::rf(10),
        Operand::rf(8),
        Operand::imm_f(3.0),
        Operand::imm_f(1.0),
    );
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(6),
        Operand::rud(6),
        Operand::scalar(3, 1, iwc_isa::DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(6), Operand::rf(10));
    b.finish().unwrap()
}

/// A heavily divergent kernel: lanes where gid % 16 < 2 do a long FP chain
/// (14/16 lanes idle → BCC-compressible after the first quad), mask pattern
/// chosen so BCC helps.
fn divergent_kernel(rounds: u32) -> Program {
    let mut b = KernelBuilder::new("divergent", 16);
    b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(15));
    b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(6), Operand::imm_ud(2));
    b.mov(Operand::rf(8), Operand::imm_f(1.5));
    b.if_(f0());
    for _ in 0..rounds {
        b.mad(
            Operand::rf(8),
            Operand::rf(8),
            Operand::imm_f(1.0001),
            Operand::imm_f(0.25),
        );
    }
    b.else_();
    b.mov(Operand::rf(8), Operand::imm_f(2.0));
    b.end_if();
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(6),
        Operand::rud(6),
        Operand::scalar(3, 0, iwc_isa::DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(6), Operand::rf(8));
    b.finish().unwrap()
}

fn run(kernel: Program, mode: CompactionMode, args: &[u32], img: &mut MemoryImage) -> SimResult {
    let cfg = GpuConfig::paper_default().with_compaction(mode);
    let launch = Launch::new(kernel, 256, 64).with_args(args);
    simulate(&cfg, &launch, img).expect("simulation completes")
}

#[test]
fn coherent_kernel_identical_across_modes() {
    let mut cycles = Vec::new();
    for mode in CompactionMode::ALL {
        let mut img = MemoryImage::new(1 << 20);
        let a = img.alloc_f32(&(0..256).map(|i| i as f32).collect::<Vec<_>>());
        let out = img.alloc(256 * 4);
        let r = run(coherent_kernel(), mode, &[a, out], &mut img);
        assert!(
            r.simd_efficiency() > 0.99,
            "coherent kernel efficiency {}",
            r.simd_efficiency()
        );
        for i in 0..256u32 {
            assert_eq!(
                img.read_f32(out + 4 * i),
                i as f32 * 3.0 + 1.0,
                "gid {i} under {mode}"
            );
        }
        cycles.push(r.cycles);
    }
    // No compaction mode may change coherent timing (invariant 5 of DESIGN.md).
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "coherent cycles {cycles:?}"
    );
}

#[test]
fn divergent_kernel_results_mode_invariant() {
    let mut reference: Option<Vec<f32>> = None;
    for mode in CompactionMode::ALL {
        let mut img = MemoryImage::new(1 << 20);
        let out = img.alloc(256 * 4);
        let _ = run(divergent_kernel(32), mode, &[out], &mut img);
        let vals = img.read_f32_slice(out, 256);
        match &reference {
            None => reference = Some(vals),
            Some(r) => assert_eq!(r, &vals, "functional mismatch under {mode}"),
        }
    }
}

#[test]
fn compaction_speeds_up_divergent_kernel() {
    let mut cycles = std::collections::HashMap::new();
    for mode in CompactionMode::ALL {
        let mut img = MemoryImage::new(1 << 20);
        let out = img.alloc(256 * 4);
        let r = run(divergent_kernel(64), mode, &[out], &mut img);
        cycles.insert(mode, r.cycles);
    }
    let base = cycles[&CompactionMode::Baseline];
    let bcc = cycles[&CompactionMode::Bcc];
    let scc = cycles[&CompactionMode::Scc];
    assert!(bcc < base, "BCC {bcc} should beat baseline {base}");
    assert!(scc <= bcc, "SCC {scc} should not lose to BCC {bcc}");
    // The if-side has 2/16 lanes active over a long chain: BCC saves ~3 of
    // every 4 waves there. Expect a sizeable win.
    let gain = 1.0 - bcc as f64 / base as f64;
    assert!(gain > 0.25, "expected >25% gain, got {:.1}%", gain * 100.0);
}

#[test]
fn eu_cycle_accounting_is_mode_independent() {
    // The analytical EU-cycle breakdown depends only on the mask stream, so
    // every run reports the same per-mode EU cycles regardless of which mode
    // it timed.
    let mut per_mode = Vec::new();
    for mode in CompactionMode::ALL {
        let mut img = MemoryImage::new(1 << 20);
        let out = img.alloc(256 * 4);
        let r = run(divergent_kernel(16), mode, &[out], &mut img);
        per_mode.push(r.compute_tally().cycles);
    }
    assert!(per_mode.windows(2).all(|w| w[0] == w[1]), "{per_mode:?}");
}

#[test]
fn memory_stream_is_mode_independent() {
    // Invariant 4: intra-warp compaction adds no memory divergence.
    let mut lines = Vec::new();
    for mode in CompactionMode::ALL {
        let mut img = MemoryImage::new(1 << 20);
        let out = img.alloc(256 * 4);
        let r = run(divergent_kernel(8), mode, &[out], &mut img);
        lines.push((r.mem.loads, r.mem.stores, r.mem.lines_requested));
    }
    assert!(lines.windows(2).all(|w| w[0] == w[1]), "{lines:?}");
}

#[test]
fn dc2_speeds_up_bandwidth_bound_gather() {
    // Each lane gathers from a distinct cache line (16 lines per message);
    // with a perfect L3, the data cluster is the only bottleneck, so DC2
    // must be decisively faster than DC1.
    let mut b = KernelBuilder::new("gather64", 16);
    // addr = base + gid*64 (one line per lane)
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(6));
    b.add(
        Operand::rud(6),
        Operand::rud(6),
        Operand::scalar(3, 0, iwc_isa::DataType::Ud),
    );
    for dst in [8u8, 10, 12, 14] {
        b.load(MemSpace::Global, Operand::rf(dst), Operand::rud(6));
    }
    let p = b.finish().unwrap();
    let mut t = Vec::new();
    for bw in [1.0, 2.0] {
        let mut img = MemoryImage::new(1 << 22);
        let a = img.alloc(2048 * 64);
        let cfg = GpuConfig::paper_default()
            .with_dc_bandwidth(bw)
            .with_perfect_l3(true);
        let launch = Launch::new(p.clone(), 2048, 64).with_args(&[a]);
        let r = simulate(&cfg, &launch, &mut img).unwrap();
        t.push(r.cycles);
    }
    assert!(
        (t[1] as f64) < 0.75 * t[0] as f64,
        "DC2 ({}) should be well under DC1 ({})",
        t[1],
        t[0]
    );
}

#[test]
fn barrier_and_slm_reduction() {
    // Workgroup reduction: each thread stores its value to SLM, barrier,
    // thread 0's lanes read all values back and sum into out[wg].
    // Simplified: every lane writes gid to SLM[lid], after the barrier lane
    // reads SLM[wg_size-1-lid] and stores to out[gid] (a cross-thread swap
    // that fails without a working barrier).
    let mut b = KernelBuilder::new("swap", 16);
    // lid = gid - wg*wg_size = gid % 64 (wg_size 64)
    b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(63));
    b.shl(Operand::rud(8), Operand::rud(6), Operand::imm_ud(2)); // lid*4
    b.store(MemSpace::Slm, Operand::rud(8), Operand::rud(1)); // slm[lid] = gid
    b.barrier();
    // addr = (63-lid)*4
    b.sub(Operand::rud(10), Operand::imm_ud(63), Operand::rud(6));
    b.shl(Operand::rud(10), Operand::rud(10), Operand::imm_ud(2));
    b.load(MemSpace::Slm, Operand::rud(12), Operand::rud(10));
    // out[gid] = loaded
    b.shl(Operand::rud(14), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(14),
        Operand::rud(14),
        Operand::scalar(3, 0, iwc_isa::DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(14), Operand::rud(12));
    let p = b.finish().unwrap();

    let mut img = MemoryImage::new(1 << 20);
    let out = img.alloc(256 * 4);
    let launch = Launch::new(p, 256, 64).with_args(&[out]).with_slm(64 * 4);
    let r = simulate(&GpuConfig::paper_default(), &launch, &mut img).unwrap();
    assert!(r.cycles > 0);
    for gid in 0..256u32 {
        let wg = gid / 64;
        let lid = gid % 64;
        let want = wg * 64 + (63 - lid);
        assert_eq!(img.read_u32(out + 4 * gid), want, "gid {gid}");
    }
}

#[test]
fn ndrange_tail_channels_disabled() {
    // global_size not a multiple of wg or simd: tail lanes must not store.
    let mut b = KernelBuilder::new("tail", 16);
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(6),
        Operand::rud(6),
        Operand::scalar(3, 0, iwc_isa::DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(6), Operand::imm_ud(7));
    let p = b.finish().unwrap();
    let mut img = MemoryImage::new(1 << 16);
    let out = img.alloc(64 * 4);
    let launch = Launch::new(p, 37, 32).with_args(&[out]);
    let _ = simulate(&GpuConfig::paper_default(), &launch, &mut img).unwrap();
    for gid in 0..64u32 {
        let want = if gid < 37 { 7 } else { 0 };
        assert_eq!(img.read_u32(out + 4 * gid), want, "gid {gid}");
    }
}

#[test]
fn workgroup_too_large_is_rejected() {
    let p = coherent_kernel();
    let mut img = MemoryImage::new(1 << 16);
    let launch = Launch::new(p, 1024, 1024); // 64 threads per wg > 6
    let err = simulate(&GpuConfig::paper_default(), &launch, &mut img).unwrap_err();
    assert!(matches!(
        err,
        iwc_sim::SimulateError::WorkgroupTooLarge { .. }
    ));
}

#[test]
fn more_eus_run_faster() {
    let mut t = Vec::new();
    for eus in [1u32, 6] {
        let mut cfg = GpuConfig::paper_default();
        cfg.eus = eus;
        let mut img = MemoryImage::new(1 << 22);
        let out = img.alloc(4096 * 4);
        let launch = Launch::new(divergent_kernel(16), 4096, 64).with_args(&[out]);
        let r = simulate(&cfg, &launch, &mut img).unwrap();
        t.push(r.cycles);
    }
    assert!(t[1] < t[0], "6 EUs ({}) should beat 1 EU ({})", t[1], t[0]);
}
