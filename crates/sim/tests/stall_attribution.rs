//! Directed stall-attribution tests: one micro-kernel per reachable
//! [`StallCause`], each built so a single root cause dominates, plus the
//! accounting identity every report rests on — `issue_cycles +
//! stall_causes.total() == eu_cycles`, i.e. every non-issuing EU cycle is
//! charged to exactly one cause (DESIGN.md §7.2).

use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::CondOp;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::{MemSpace, Program};
use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage, SimResult};

fn run(p: Program, cfg: &GpuConfig, global: u32, wg: u32) -> SimResult {
    let mut img = MemoryImage::new(1 << 20);
    simulate(cfg, &Launch::new(p, global, wg), &mut img).expect("simulation completes")
}

/// Instruction fetch is perfect (`icache_miss_latency = 0`), so the front
/// end never pollutes the cause under test.
fn warm_frontend(mut cfg: GpuConfig) -> GpuConfig {
    cfg.icache_miss_latency = 0;
    cfg
}

/// The accounting identity behind every stall report: each EU is charged
/// every launch cycle, and each non-issuing cycle lands in exactly one
/// [`iwc_sim::StallCause`] bucket.
fn assert_exhaustive(r: &SimResult, cfg: &GpuConfig) {
    assert_eq!(
        r.eu.eu_cycles,
        u64::from(cfg.eus) * r.cycles,
        "every EU sees every launch cycle"
    );
    assert_eq!(
        r.eu.issue_cycles + r.eu.stall_causes.total(),
        r.eu.eu_cycles,
        "attribution must cover exactly the non-issue cycles: {:?}",
        r.eu.stall_causes
    );
}

/// Straight-line code on a cold I$: every static instruction misses once,
/// so instruction delivery is the dominant stall.
#[test]
fn front_end_charged_for_cold_icache() {
    let mut b = KernelBuilder::new("fe", 16);
    for i in 0..8u8 {
        b.mov(Operand::rud(6 + 2 * i), Operand::imm_ud(u32::from(i)));
    }
    let cfg = GpuConfig::single_eu();
    assert!(cfg.icache_miss_latency > 0, "test needs a real I$");
    let r = run(b.finish().unwrap(), &cfg, 16, 16);
    assert_exhaustive(&r, &cfg);
    let s = &r.eu.stall_causes;
    assert!(s.front_end > 0, "cold fetches must be charged: {s:?}");
    assert!(
        s.front_end >= s.total() - s.drained - s.front_end,
        "instruction delivery should dominate a straight-line cold-I$ run: {s:?}"
    );
}

/// A serially dependent FPU chain: each `mad` reads the previous result,
/// so the scoreboard (not the pipe) is the binding constraint.
#[test]
fn scoreboard_dep_charged_for_dependent_chain() {
    let mut b = KernelBuilder::new("dep", 16);
    b.mov(Operand::rf(8), Operand::imm_f(1.0));
    for _ in 0..8 {
        b.mad(
            Operand::rf(8),
            Operand::rf(8),
            Operand::imm_f(1.0001),
            Operand::imm_f(0.25),
        );
    }
    let cfg = warm_frontend(GpuConfig::single_eu());
    let r = run(b.finish().unwrap(), &cfg, 16, 16);
    assert_exhaustive(&r, &cfg);
    let s = &r.eu.stall_causes;
    assert!(
        s.scoreboard_dep > 0,
        "result dependences must be charged: {s:?}"
    );
    assert_eq!(s.front_end, 0, "perfect I$ leaves nothing to the front end");
    assert_eq!(s.mem_latency, 0, "no memory traffic in this kernel: {s:?}");
}

/// Load-to-use: the consumer waits out the L3 round trip, charged to
/// memory latency (not the generic scoreboard bucket).
#[test]
fn mem_latency_charged_for_load_use() {
    let mut b = KernelBuilder::new("ld", 16);
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.load(MemSpace::Global, Operand::rf(8), Operand::rud(6));
    b.mad(
        Operand::rf(10),
        Operand::rf(8),
        Operand::imm_f(2.0),
        Operand::imm_f(1.0),
    );
    let cfg = warm_frontend(GpuConfig::single_eu());
    let r = run(b.finish().unwrap(), &cfg, 16, 16);
    assert_exhaustive(&r, &cfg);
    let s = &r.eu.stall_causes;
    assert!(
        s.mem_latency > 0,
        "the load-use wait must be charged: {s:?}"
    );
}

/// Independent wide ops back to back: operands are ready, but each SIMD16
/// op occupies the 4-wide FPU for 4 waves, so issue blocks on the pipe.
#[test]
fn pipe_busy_charged_for_independent_wide_ops() {
    let mut b = KernelBuilder::new("pipe", 16);
    b.mov(Operand::rf(8), Operand::imm_f(1.0));
    b.mov(Operand::rf(10), Operand::imm_f(2.0));
    for i in 0..4 {
        b.mad(
            Operand::rf(12 + 2 * i),
            Operand::rf(8),
            Operand::imm_f(1.5),
            Operand::imm_f(0.5),
        );
        b.mad(
            Operand::rf(20 + 2 * i),
            Operand::rf(10),
            Operand::imm_f(0.5),
            Operand::imm_f(1.5),
        );
    }
    let cfg = warm_frontend(GpuConfig::single_eu());
    let r = run(b.finish().unwrap(), &cfg, 16, 16);
    assert_exhaustive(&r, &cfg);
    let s = &r.eu.stall_causes;
    assert!(s.pipe_busy > 0, "pipe occupancy must be charged: {s:?}");
}

/// A tiny launch on the full 6-EU machine: the five EUs that never receive
/// a workgroup are charged `Drained` for the whole run.
#[test]
fn drained_charged_for_idle_eus() {
    let mut b = KernelBuilder::new("tiny", 16);
    b.mov(Operand::rud(6), Operand::imm_ud(7));
    let cfg = GpuConfig::paper_default();
    let r = run(b.finish().unwrap(), &cfg, 16, 16);
    assert_exhaustive(&r, &cfg);
    let s = &r.eu.stall_causes;
    assert!(
        s.drained >= u64::from(cfg.eus - 1) * r.cycles,
        "idle EUs must be charged Drained every cycle: {s:?} over {} cycles",
        r.cycles
    );
}

/// Barrier kernel with a divergence-staggered arrival: the attribution
/// stays exhaustive, and the two structurally-zero buckets stay zero.
/// `Barrier` cannot be charged in this dispatch model — a workgroup is
/// co-resident on one EU and releases in the same cycle its last thread
/// issues the barrier (an issue cycle), so an EU is never parked with
/// *every* thread at a barrier. `SendQueueFull` is likewise reserved (the
/// send queue is unbounded here). Both are kept in the taxonomy for
/// schema fidelity; see DESIGN.md §7.2.
#[test]
fn barrier_and_send_queue_stay_structurally_zero() {
    let mut b = KernelBuilder::new("bar", 16);
    b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(63));
    b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(6), Operand::imm_ud(5));
    b.mov(Operand::rf(8), Operand::imm_f(1.5));
    b.if_(Predicate::normal(FlagReg::F0));
    for _ in 0..12 {
        b.mad(
            Operand::rf(8),
            Operand::rf(8),
            Operand::imm_f(1.0001),
            Operand::imm_f(0.25),
        );
    }
    b.end_if();
    b.barrier();
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.store(MemSpace::Global, Operand::rud(6), Operand::rf(8));
    let cfg = GpuConfig::paper_default();
    let r = run(b.finish().unwrap(), &cfg, 64, 64);
    assert_exhaustive(&r, &cfg);
    let s = &r.eu.stall_causes;
    assert_eq!(
        s.barrier, 0,
        "barrier release lands in an issue cycle: {s:?}"
    );
    assert_eq!(s.send_queue_full, 0, "send queue is unbounded: {s:?}");
}

/// The breakdown survives aggregation: running the same kernel on more
/// workgroups scales `eu_cycles` with the EU count while keeping the
/// identity intact per launch.
#[test]
fn attribution_exhaustive_across_modes() {
    use iwc_compaction::CompactionMode;
    let mut b = KernelBuilder::new("mix", 16);
    b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(15));
    b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(6), Operand::imm_ud(3));
    b.mov(Operand::rf(8), Operand::imm_f(1.5));
    b.if_(Predicate::normal(FlagReg::F0));
    for _ in 0..6 {
        b.mad(
            Operand::rf(8),
            Operand::rf(8),
            Operand::imm_f(1.0001),
            Operand::imm_f(0.25),
        );
    }
    b.end_if();
    b.shl(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
    b.store(MemSpace::Global, Operand::rud(6), Operand::rf(8));
    let p = b.finish().unwrap();
    for mode in CompactionMode::ALL {
        let cfg = GpuConfig::paper_default().with_compaction(mode);
        let r = run(p.clone(), &cfg, 256, 64);
        assert_exhaustive(&r, &cfg);
        assert!(r.eu.stall_causes.total() > 0, "{mode}: some cycles stall");
    }
}
