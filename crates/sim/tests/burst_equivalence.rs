//! Differential equivalence of convergent burst issue.
//!
//! Bursting (`iwc_sim::config::BurstMode`, the production default) must
//! reproduce the one-plan-per-visit issue path's [`SimResult`] **exactly**
//! — cycles, every counter including the legacy per-pass stall events —
//! and leave a byte-identical memory image. The one permitted difference
//! is the `sim/burst` telemetry group itself, which only a run that
//! actually burst publishes; the comparison strips it and separately
//! asserts it is absent from burst-off results.
//!
//! Alongside the catalog sweep, a directed convergent loop kernel pins the
//! positive case — its ALU body becomes I$-resident after one iteration
//! and must engage the burst path — under both schedulers, since the
//! script replay and the event wheel interact (a scripted gap is what the
//! wheel sleeps over).

use iwc_compaction::EngineId;
use iwc_isa::{CondOp, DataType, FlagReg, KernelBuilder, MemSpace, Operand, Predicate};
use iwc_sim::{simulate, BurstMode, GpuConfig, Launch, MemoryImage, SchedMode, SimResult};
use iwc_telemetry::TelemetrySnapshot;
use iwc_workloads::catalog;

/// Snapshot with the `sim/burst/…` metrics removed (the fast path's own
/// traffic counters — everything else must match the per-plan path).
fn strip_burst(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    let mut out = TelemetrySnapshot::new();
    for (name, v) in snap.counters() {
        if !name.starts_with("sim/burst/") {
            out.set_counter(name, v);
        }
    }
    for (name, v) in snap.gauges() {
        if !name.starts_with("sim/burst/") {
            out.set_gauge(name, v);
        }
    }
    for (name, h) in snap.hists() {
        out.set_hist(name, *h);
    }
    out
}

fn assert_on_off_equal(
    on: &SimResult,
    img_on: &MemoryImage,
    off: &SimResult,
    img_off: &MemoryImage,
    ctx: &str,
) {
    assert_eq!(
        off.telemetry.counter("sim/burst/spans"),
        None,
        "{ctx}: burst-off must not publish the burst group"
    );
    let mut on_cmp = on.clone();
    on_cmp.telemetry = strip_burst(&on.telemetry);
    assert_eq!(&on_cmp, off, "{ctx}: SimResult diverged");

    assert_eq!(img_on.capacity(), img_off.capacity(), "{ctx}: capacity");
    for addr in (0..img_on.capacity()).step_by(4) {
        assert_eq!(
            img_on.read_u32(addr),
            img_off.read_u32(addr),
            "{ctx}: memory diverged at byte {addr:#x}"
        );
    }
}

fn sweep(names: Option<&[&str]>) {
    let entries = catalog();
    let picked: Vec<_> = match names {
        Some(names) => names
            .iter()
            .map(|n| {
                entries
                    .iter()
                    .find(|e| &e.name == n)
                    .unwrap_or_else(|| panic!("workload {n} not in catalog"))
            })
            .collect(),
        None => entries.iter().collect(),
    };
    for entry in picked {
        let built = (entry.build)(1);
        for engine in EngineId::CANONICAL {
            let cfg = GpuConfig::paper_default().with_compaction(engine);
            let ctx = format!("{} under {engine}", entry.name);
            let (on, img_on) = built
                .run(&cfg.with_burst(BurstMode::On))
                .unwrap_or_else(|e| panic!("{ctx}: burst-on run failed: {e}"));
            let (off, img_off) = built
                .run(&cfg.with_burst(BurstMode::Off))
                .unwrap_or_else(|e| panic!("{ctx}: burst-off run failed: {e}"));
            assert_on_off_equal(&on, &img_on, &off, &img_off, &ctx);
        }
    }
}

/// Representative slice — coherent, branch-divergent, and memory-divergent
/// workloads — under all four canonical engines. Always on.
#[test]
fn burst_matches_per_plan_issue_on_representative_workloads() {
    sweep(Some(&["VA", "Bsearch", "BFS"]));
}

/// The whole catalog under all four canonical engines. Release builds
/// only, like the other full-grid sweeps.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full catalog x engine grid, twice; run with cargo test --release"
)]
fn burst_matches_per_plan_issue_across_the_whole_suite() {
    sweep(None);
}

/// A single-thread loop whose body is a long hazard-free ALU span: cold
/// I$ keeps iteration 1 on the per-plan path, then iterations 2+ must
/// burst. 24 independent `mov`s plus the loop-counter `add` form the span;
/// `cmp` writes a flag and `while` reads it, which fences the span and
/// re-arms it each iteration.
fn convergent_loop(iters: u32) -> (Launch, MemoryImage) {
    let mut img = MemoryImage::new(1 << 16);
    let n = 16u32;
    let out = img.alloc(n * 4);

    let mut b = KernelBuilder::new("burst_loop", 16);
    b.mov(Operand::rud(6), Operand::imm_ud(0));
    b.do_();
    for k in 0..24u32 {
        b.mov(
            Operand::rf((20 + 2 * k) as u8),
            Operand::imm_f(0.5 + k as f32),
        );
    }
    b.add(Operand::rud(6), Operand::rud(6), Operand::imm_ud(1));
    b.cmp(
        CondOp::Lt,
        FlagReg::F0,
        Operand::rud(6),
        Operand::imm_ud(iters),
    );
    b.while_(Predicate::normal(FlagReg::F0));
    b.mad(
        Operand::rud(10),
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(10), Operand::rf(20));
    let program = b.finish().expect("valid kernel");
    let launch = Launch::new(program, n, 16).with_args(&[out]);
    (launch, img)
}

fn run_convergent(cfg: &GpuConfig, mode: BurstMode) -> (SimResult, MemoryImage) {
    let (launch, img) = convergent_loop(8);
    let mut run_img = img.clone();
    let r = simulate(&cfg.with_burst(mode), &launch, &mut run_img).expect("run");
    (r, run_img)
}

/// The directed loop must actually engage the burst path (under the
/// default wheel scheduler) and still match burst-off byte for byte.
#[test]
fn convergent_loop_bursts_and_matches_off() {
    let cfg = GpuConfig::paper_default().with_sched(SchedMode::Wheel);
    let (on, img_on) = run_convergent(&cfg, BurstMode::On);
    let (off, img_off) = run_convergent(&cfg, BurstMode::Off);
    let spans = on.telemetry.counter("sim/burst/spans").unwrap_or(0);
    assert!(spans > 0, "loop body never burst (spans = 0)");
    assert!(
        on.telemetry.counter("sim/burst/plans").unwrap_or(0) >= spans,
        "a burst must cover at least one plan beyond its lead"
    );
    assert!(
        on.telemetry.gauge("sim/burst/max_span").unwrap_or(0.0) >= 25.0,
        "the 25-plan span should burst whole once resident"
    );
    assert_on_off_equal(&on, &img_on, &off, &img_off, "convergent loop, wheel");
}

/// Same kernel under the tick scheduler: every scripted gap cycle is
/// visited one by one, pinning the per-visit pipe-busy replay against the
/// real arbitration it stands in for.
#[test]
fn convergent_loop_bursts_under_tick_scheduler() {
    let cfg = GpuConfig::paper_default().with_sched(SchedMode::Tick);
    let (on, img_on) = run_convergent(&cfg, BurstMode::On);
    let (off, img_off) = run_convergent(&cfg, BurstMode::Off);
    assert!(
        on.telemetry.counter("sim/burst/spans").unwrap_or(0) > 0,
        "loop body never burst under tick"
    );
    assert_on_off_equal(&on, &img_on, &off, &img_off, "convergent loop, tick");
}

/// Recording configurations (mask capture, issue log, instruction
/// profiles) must refuse to burst — their per-issue hooks need the
/// per-plan path — and therefore publish no burst group.
#[test]
fn recording_disables_bursting() {
    let cfg = GpuConfig::paper_default().with_issue_log(true);
    let (on, _img) = run_convergent(&cfg, BurstMode::On);
    assert_eq!(
        on.telemetry.counter("sim/burst/spans"),
        None,
        "recording runs must stay on the per-plan path"
    );
}
