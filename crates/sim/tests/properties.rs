//! Property-based tests of simulator state: SIMT stack discipline, register
//! file isolation, memory image round-trips, and cache behavior.

use iwc_isa::mask::ExecMask;
use iwc_isa::reg::{FlagReg, Operand};
use iwc_isa::types::{DataType, Scalar};
use iwc_sim::{MemoryImage, RegFile, SimtStack};
use proptest::prelude::*;

proptest! {
    /// Balanced if/else/endif sequences always restore the entry mask, for
    /// any sequence of branch conditions.
    #[test]
    fn simt_if_regions_restore(conds in prop::collection::vec(any::<u32>(), 1..6)) {
        let entry = ExecMask::all(16);
        let mut s = SimtStack::new(entry);
        for &c in &conds {
            let _ = s.exec_if(ExecMask::new(c, 16), 0);
        }
        for _ in &conds {
            let _ = s.exec_else(0);
            s.exec_endif();
        }
        prop_assert_eq!(s.exec(), entry);
        prop_assert_eq!(s.depth(), 0);
    }

    /// In an if region, the taken and else masks partition the entry mask.
    #[test]
    fn simt_if_partitions(entry_bits in any::<u32>(), cond_bits in any::<u32>()) {
        let entry = ExecMask::new(entry_bits | 1, 16); // non-empty
        let mut s = SimtStack::new(entry);
        let _ = s.exec_if(ExecMask::new(cond_bits, 16), 0);
        let taken = s.exec();
        let _ = s.exec_else(0);
        let else_m = s.exec();
        prop_assert_eq!(taken.or(else_m), entry);
        prop_assert!(taken.and(else_m).is_empty());
        s.exec_endif();
        prop_assert_eq!(s.exec(), entry);
    }

    /// Loops always terminate with the entry mask restored, for any break
    /// pattern applied along the way.
    #[test]
    fn simt_loops_reconverge(breaks in prop::collection::vec(any::<u32>(), 0..5)) {
        let entry = ExecMask::new(0xFFFF, 16);
        let mut s = SimtStack::new(entry);
        s.exec_do();
        for &b in &breaks {
            s.exec_break(ExecMask::new(b, 16));
            if s.exec().is_empty() {
                break;
            }
        }
        // Loop exits when no channel continues.
        let out = s.exec_while(ExecMask::none(16), 0);
        prop_assert_eq!(out, None);
        prop_assert_eq!(s.exec(), entry);
        prop_assert_eq!(s.depth(), 0);
    }

    /// Writes to distinct (operand, lane) slots never alias as long as the
    /// byte ranges are distinct.
    #[test]
    fn regfile_lane_isolation(
        reg_a in 0u8..60, lane_a in 0u32..16,
        reg_b in 64u8..120, lane_b in 0u32..16,
        va in any::<u32>(), vb in any::<u32>(),
    ) {
        let mut rf = RegFile::new();
        let a = Operand::rud(reg_a);
        let b = Operand::rud(reg_b);
        rf.write_lane(&a, lane_a, Scalar::U(u64::from(va)));
        rf.write_lane(&b, lane_b, Scalar::U(u64::from(vb)));
        prop_assert_eq!(rf.read_lane(&a, lane_a), Scalar::U(u64::from(va)));
        prop_assert_eq!(rf.read_lane(&b, lane_b), Scalar::U(u64::from(vb)));
    }

    /// Flag registers are independent of GRF contents and of each other.
    #[test]
    fn regfile_flags_independent(f0 in any::<u32>(), f1 in any::<u32>(), v in any::<u32>()) {
        let mut rf = RegFile::new();
        rf.set_flag(FlagReg::F0, f0);
        rf.set_flag(FlagReg::F1, f1);
        rf.write_lane(&Operand::rud(0), 0, Scalar::U(u64::from(v)));
        prop_assert_eq!(rf.flag(FlagReg::F0), f0);
        prop_assert_eq!(rf.flag(FlagReg::F1), f1);
    }

    /// Memory image typed round-trips at arbitrary aligned addresses.
    #[test]
    fn memimg_roundtrip(addr in 0u32..8000, f in any::<f32>(), u in any::<u32>()) {
        let mut img = MemoryImage::new(1 << 13);
        let addr = addr & !3;
        img.write_u32(addr, u);
        prop_assert_eq!(img.read_u32(addr), u);
        img.write_f32(addr, f);
        let got = img.read_f32(addr);
        prop_assert!(got == f || (got.is_nan() && f.is_nan()));
    }

    /// Scalar round-trips for every integer data type preserve values in
    /// range.
    #[test]
    fn memimg_scalar_roundtrip(v in any::<i16>()) {
        let mut img = MemoryImage::new(64);
        for dt in [DataType::W, DataType::D, DataType::Q] {
            img.write_scalar(0, dt, Scalar::I(i64::from(v)));
            prop_assert_eq!(img.read_scalar(0, dt), Scalar::I(i64::from(v)), "{}", dt);
        }
    }

    /// Cache: immediately repeated accesses always hit; hit rate is within
    /// [0, 1].
    #[test]
    fn cache_rehit(lines in prop::collection::vec(0u64..4096, 1..64)) {
        use iwc_sim::cache::Cache;
        use iwc_sim::CacheConfig;
        let mut c = Cache::new(
            CacheConfig { size_bytes: 16 << 10, ways: 4, banks: 1, latency: 1 },
            64,
        );
        for &l in &lines {
            let _ = c.access(l);
            prop_assert!(c.access(l), "line {l} must hit immediately after fill");
        }
        let rate = c.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }
}
