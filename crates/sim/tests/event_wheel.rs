//! Differential equivalence of the two simulation-loop schedulers.
//!
//! The event wheel (`iwc_sim::wheel`, the production scheduler) must
//! reproduce the tick loop's [`SimResult`] **exactly** — cycles, every
//! counter including the legacy per-pass stall events, the stall-span log —
//! and leave a byte-identical memory image. The one permitted difference is
//! the `sim/wheel` telemetry group itself, which only the wheel publishes;
//! the comparison strips it and separately asserts it is absent from
//! tick-mode results.
//!
//! Alongside the catalog sweep, directed kernels pin the event-ordering
//! edge cases: two EUs waking on the same cycle, a wake-up landing on the
//! next visited cycle (which must keep the EU awake, not round-trip the
//! wheel), and a barrier release racing a timed memory-completion wake-up.

use iwc_isa::{DataType, KernelBuilder, MemSpace, Operand};
use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage, SchedMode, SimResult};
use iwc_telemetry::TelemetrySnapshot;
use iwc_workloads::catalog;

/// Snapshot with the `sim/wheel/…` metrics removed (the scheduler's own
/// traffic counters — everything else must match the tick loop).
fn strip_wheel(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    let mut out = TelemetrySnapshot::new();
    for (name, v) in snap.counters() {
        if !name.starts_with("sim/wheel/") {
            out.set_counter(name, v);
        }
    }
    for (name, v) in snap.gauges() {
        if !name.starts_with("sim/wheel/") {
            out.set_gauge(name, v);
        }
    }
    for (name, h) in snap.hists() {
        out.set_hist(name, *h);
    }
    out
}

fn assert_scheds_equivalent(launch: &Launch, cfg: &GpuConfig, init: &MemoryImage, ctx: &str) {
    let run = |sched: SchedMode| -> (SimResult, MemoryImage) {
        let mut img = init.clone();
        let r = simulate(&cfg.with_sched(sched), launch, &mut img)
            .unwrap_or_else(|e| panic!("{ctx}: {sched:?} run failed: {e}"));
        (r, img)
    };
    let (wheel, img_wheel) = run(SchedMode::Wheel);
    let (tick, img_tick) = run(SchedMode::Tick);

    assert_eq!(
        tick.telemetry.counter("sim/wheel/events_scheduled"),
        None,
        "{ctx}: tick mode must not publish the wheel group"
    );
    let mut wheel_cmp = wheel.clone();
    wheel_cmp.telemetry = strip_wheel(&wheel.telemetry);
    let mut tick_cmp = tick;
    tick_cmp.telemetry = strip_wheel(&tick_cmp.telemetry); // no-op, by the assert above
    assert_eq!(wheel_cmp, tick_cmp, "{ctx}: SimResult diverged");

    assert_eq!(img_wheel.capacity(), img_tick.capacity(), "{ctx}: capacity");
    for addr in (0..img_wheel.capacity()).step_by(4) {
        assert_eq!(
            img_wheel.read_u32(addr),
            img_tick.read_u32(addr),
            "{ctx}: memory diverged at byte {addr:#x}"
        );
    }
}

/// Representative catalog slice under both schedulers, with recording
/// enabled so the stall-span log is part of the comparison.
#[test]
fn wheel_matches_tick_on_representative_workloads() {
    for name in ["VA", "Bsearch", "BFS"] {
        let entries = catalog();
        let entry = entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("workload {name} not in catalog"));
        let built = (entry.build)(1);
        let cfg = GpuConfig::paper_default().with_issue_log(true);
        assert_scheds_equivalent(&built.launch, &cfg, &built.img, name);
    }
}

/// The whole catalog under both schedulers. Release builds only, like the
/// other full-grid sweeps.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full catalog under both schedulers; run with cargo test --release"
)]
fn wheel_matches_tick_across_the_whole_suite() {
    for entry in catalog() {
        let built = (entry.build)(1);
        let cfg = GpuConfig::paper_default();
        assert_scheds_equivalent(&built.launch, &cfg, &built.img, entry.name);
    }
}

/// A load-then-compute kernel on `wgs` full-EU workgroups (6 threads of
/// SIMD16 each, so consecutive workgroups land on distinct EUs): every EU
/// blocks on memory, the shared data cluster staggers their completion
/// times, and the resulting wake-up events exercise the wheel for real —
/// including distinct EUs whose completions land on the same cycle.
fn load_compute_kernel(wgs: u32, stride: u32) -> (Launch, MemoryImage) {
    let n = wgs * 96; // 6 SIMD16 threads per workgroup
    let mut img = MemoryImage::new(1 << 22);
    let src: Vec<u32> = (0..n * stride.max(1)).map(|i| i * 3 + 7).collect();
    let a = img.alloc_u32(&src);
    let out = img.alloc(n * 4);

    let mut b = KernelBuilder::new("wheel_load", 16);
    let addr = Operand::rud(10);
    let x = Operand::rud(12);
    // addr = a + 4 * stride * gid  (stride spreads accesses over lines)
    b.mul(addr, Operand::rud(1), Operand::imm_ud(4 * stride.max(1)));
    b.add(addr, addr, Operand::scalar(3, 0, DataType::Ud));
    b.load(MemSpace::Global, x, addr);
    b.mul(x, x, Operand::imm_ud(5));
    b.add(x, x, Operand::imm_ud(1));
    b.mad(
        addr,
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 1, DataType::Ud),
    );
    b.store(MemSpace::Global, addr, x);
    let launch = Launch::new(b.finish().unwrap(), n, 96).with_args(&[a, out]);
    (launch, img)
}

/// Two (and more) EUs sleeping on identical memory latencies wake on the
/// same cycle; arbitration must proceed in EU-id order exactly as the tick
/// loop's linear scan does.
#[test]
fn simultaneous_wakes_match_tick_order() {
    for wgs in [2u32, 6] {
        let (launch, img) = load_compute_kernel(wgs, 16);
        let cfg = GpuConfig::paper_default().with_issue_log(true);
        assert_scheds_equivalent(&launch, &cfg, &img, &format!("simultaneous x{wgs}"));
    }
}

/// Short-latency dependent ALU chains produce wake-up hints that land on
/// the very next visited cycle; those must keep the EU awake (no wheel
/// round-trip) and still match the tick loop.
#[test]
fn next_cycle_wakes_stay_awake_and_match() {
    let n = 64u32;
    let mut img = MemoryImage::new(1 << 16);
    let out = img.alloc(n * 4);

    let mut b = KernelBuilder::new("wheel_chain", 16);
    let x = Operand::rf(12);
    b.mov(x, Operand::imm_f(1.5));
    // Each op depends on the previous: the FPU-latency hints are always
    // `now + small`, the stay-awake path of the sleep decision.
    for _ in 0..6 {
        b.mad(x, x, x, Operand::imm_f(0.25));
    }
    b.math(iwc_isa::Opcode::Rsqrt, Operand::rf(14), x);
    b.add(x, x, Operand::rf(14));
    b.mad(
        Operand::rud(10),
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(10), x);
    let launch = Launch::new(b.finish().unwrap(), n, 16).with_args(&[out]);
    let cfg = GpuConfig::paper_default().with_issue_log(true);
    assert_scheds_equivalent(&launch, &cfg, &img, "dependent chain");
}

/// Barrier-release racing memory completions: inside each workgroup one
/// divergently-slow load delays the barrier arrival, while other EUs sleep
/// on their own timed completions. Swept over strides so the release cycle
/// slides across (and collides with) the memory wake-ups.
#[test]
fn barrier_release_races_memory_completion() {
    for stride in [1u32, 4, 16, 64] {
        let n = 4 * 32u32; // 4 workgroups of 2 threads (SIMD16)
        let mut img = MemoryImage::new(1 << 18);
        let src: Vec<u32> = (0..n * stride).map(|i| i ^ 0x2A).collect();
        let a = img.alloc_u32(&src);
        let out = img.alloc(n * 4);

        let mut b = KernelBuilder::new("wheel_barrier", 16);
        let addr = Operand::rud(10);
        let x = Operand::rud(12);
        b.mul(addr, Operand::rud(1), Operand::imm_ud(4 * stride));
        b.add(addr, addr, Operand::scalar(3, 0, DataType::Ud));
        b.load(MemSpace::Global, x, addr);
        b.barrier();
        b.add(x, x, Operand::imm_ud(9));
        b.mad(
            addr,
            Operand::rud(1),
            Operand::imm_ud(4),
            Operand::scalar(3, 1, DataType::Ud),
        );
        b.store(MemSpace::Global, addr, x);
        let launch = Launch::new(b.finish().unwrap(), n, 32).with_args(&[a, out]);
        let cfg = GpuConfig::paper_default().with_issue_log(true);
        assert_scheds_equivalent(&launch, &cfg, &img, &format!("barrier race s={stride}"));
    }
}

/// The wheel must actually be doing its job on a memory-bound run: events
/// scheduled and fired, and a large share of cycles never visited.
#[test]
fn wheel_engages_on_memory_bound_runs() {
    let (launch, img) = load_compute_kernel(6, 64);
    let mut run_img = img.clone();
    let cfg = GpuConfig::paper_default().with_sched(SchedMode::Wheel);
    let r = simulate(&cfg, &launch, &mut run_img).expect("wheel run");
    let c = |n: &str| r.telemetry.counter(n).unwrap_or(0);
    assert!(c("sim/wheel/events_scheduled") > 0, "no events scheduled");
    assert!(c("sim/wheel/events_fired") > 0, "no events fired");
    assert!(
        c("sim/wheel/cycles_skipped") > 0,
        "a memory-bound run must skip cycles"
    );
    assert!(
        r.telemetry.gauge("sim/wheel/max_occupancy").unwrap_or(0.0) >= 1.0,
        "occupancy high-water missing"
    );
}

/// Stall spans must tile every non-issue cycle even when the scheduler
/// jumps over them in bulk: per EU, total span length equals the EU's
/// non-issuing cycles, spans are disjoint, in order, and within the run.
#[test]
fn stall_spans_cover_skipped_ranges() {
    let (launch, img) = load_compute_kernel(6, 64);
    let mut run_img = img.clone();
    let cfg = GpuConfig::paper_default()
        .with_sched(SchedMode::Wheel)
        .with_issue_log(true);
    let r = simulate(&cfg, &launch, &mut run_img).expect("wheel run");
    assert!(
        r.telemetry.counter("sim/wheel/cycles_skipped").unwrap_or(0) > 0,
        "run must exercise bulk skips for the span check to mean anything"
    );
    let eus = cfg.eus;
    let mut covered = vec![0u64; eus as usize];
    let mut last_end = vec![0u64; eus as usize];
    for s in &r.eu.stall_log {
        let i = s.eu as usize;
        assert!(s.len >= 1, "empty span on EU {i}");
        assert!(
            s.start >= last_end[i],
            "EU {i}: span at {} overlaps previous ending at {}",
            s.start,
            last_end[i]
        );
        assert!(
            s.start + s.len <= r.cycles,
            "EU {i}: span [{}, {}) exceeds run length {}",
            s.start,
            s.start + s.len,
            r.cycles
        );
        last_end[i] = s.start + s.len;
        covered[i] += s.len;
    }
    // Aggregate per-EU identity: spans cover exactly the non-issue cycles.
    let total_stall: u64 = covered.iter().sum();
    assert_eq!(
        total_stall,
        r.eu.eu_cycles - r.eu.issue_cycles,
        "stall spans must tile every non-issuing EU cycle"
    );
}
