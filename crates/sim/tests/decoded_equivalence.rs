//! Differential equivalence of the two functional interpreters.
//!
//! The decoded micro-op plans (`iwc_sim::plan`, the production backend)
//! must reproduce the reference interpreter's [`SimResult`] **exactly** —
//! cycles, every counter, the embedded telemetry snapshot — and leave a
//! byte-identical global-memory image, for every workload in the catalog
//! under every canonical compaction engine. Any divergence between the
//! raw-byte lane loops and the `Scalar` round-trip semantics shows up here
//! as a failed equality, not a subtle drift in published figures.
//!
//! The always-on tests cover a representative slice plus directed kernels
//! for each dtype fast path (F, D, and a generic-fallback dtype); the full
//! catalog × engine grid is release-gated like the other suite sweeps.

use iwc_compaction::EngineId;
use iwc_isa::{DataType, KernelBuilder, MemSpace, Operand};
use iwc_sim::{simulate, BurstMode, ExecBackend, GpuConfig, Launch, MemoryImage};
use iwc_workloads::{catalog, Built};

fn assert_images_equal(a: &MemoryImage, b: &MemoryImage, ctx: &str) {
    assert_eq!(a.capacity(), b.capacity(), "{ctx}: image capacity");
    let words = a.capacity() / 4;
    for w in 0..words {
        let addr = w * 4;
        assert_eq!(
            a.read_u32(addr),
            b.read_u32(addr),
            "{ctx}: memory diverged at byte {addr:#x}"
        );
    }
    for addr in words * 4..a.capacity() {
        assert_eq!(
            a.read_scalar(addr, DataType::Ub),
            b.read_scalar(addr, DataType::Ub),
            "{ctx}: memory diverged at tail byte {addr:#x}"
        );
    }
}

/// Runs `built` under both backends with otherwise identical configs and
/// asserts result + memory equivalence. Convergent bursts are pinned off:
/// only the decoded backend can burst (and would then publish the
/// `sim/burst` telemetry group the reference run lacks); burst-on-vs-off
/// identity has its own differential suite (`burst_equivalence.rs`).
fn assert_backends_equivalent(built: &Built, cfg: &GpuConfig, ctx: &str) {
    let cfg = cfg.with_burst(BurstMode::Off);
    let (decoded, img_decoded) = built
        .run(&cfg.with_exec(ExecBackend::Decoded))
        .unwrap_or_else(|e| panic!("{ctx}: decoded run failed: {e}"));
    let (reference, img_reference) = built
        .run(&cfg.with_exec(ExecBackend::Reference))
        .unwrap_or_else(|e| panic!("{ctx}: reference run failed: {e}"));
    assert_eq!(decoded, reference, "{ctx}: SimResult diverged");
    assert_images_equal(&img_decoded, &img_reference, ctx);
}

fn sweep(names: Option<&[&str]>) {
    let entries = catalog();
    let picked: Vec<_> = match names {
        Some(names) => names
            .iter()
            .map(|n| {
                entries
                    .iter()
                    .find(|e| &e.name == n)
                    .unwrap_or_else(|| panic!("workload {n} not in catalog"))
            })
            .collect(),
        None => entries.iter().collect(),
    };
    for entry in picked {
        let built = (entry.build)(1);
        for engine in EngineId::CANONICAL {
            let cfg = GpuConfig::paper_default().with_compaction(engine);
            assert_backends_equivalent(&built, &cfg, &format!("{} under {engine}", entry.name));
        }
    }
}

/// Representative slice — coherent, branch-divergent, and memory-divergent
/// workloads — under all four canonical engines. Always on.
#[test]
fn decoded_matches_reference_on_representative_workloads() {
    sweep(Some(&["VA", "Bsearch", "BFS"]));
}

/// The whole catalog under all four canonical engines. Release builds
/// only: this doubles the `fig3` grid (each cell runs twice), minutes of
/// sim in debug.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full catalog x engine grid, twice; run with cargo test --release"
)]
fn decoded_matches_reference_across_the_whole_suite() {
    sweep(None);
}

/// Recording features (mask capture, issue log, instruction profiles) must
/// also be byte-identical — they take the outlined cold path in the
/// decoded backend.
#[test]
fn decoded_matches_reference_with_recording_enabled() {
    let entries = catalog();
    let entry = entries
        .iter()
        .find(|e| e.name == "Bsearch")
        .expect("Bsearch in catalog");
    let built = (entry.build)(1);
    let cfg = GpuConfig::paper_default()
        .with_mask_capture(true)
        .with_issue_log(true)
        .with_insn_profile(true);
    assert_backends_equivalent(&built, &cfg, "Bsearch with recording");
}

/// Directed kernel per dtype path, run under both backends: F and D take
/// the specialized raw-byte loops, Uw falls back to the generic lane loop.
fn run_both(program: iwc_isa::Program, global: u32, wg: u32, args: &[u32], init: &MemoryImage) {
    let name = program.name().to_string();
    let launch = Launch::new(program, global, wg).with_args(args);
    let mut img_decoded = init.clone();
    let mut img_reference = init.clone();
    let cfg = GpuConfig::paper_default().with_burst(BurstMode::Off);
    let decoded = simulate(
        &cfg.with_exec(ExecBackend::Decoded),
        &launch,
        &mut img_decoded,
    )
    .expect("decoded run");
    let reference = simulate(
        &cfg.with_exec(ExecBackend::Reference),
        &launch,
        &mut img_reference,
    )
    .expect("reference run");
    assert_eq!(decoded, reference, "{name}: SimResult diverged");
    assert_images_equal(&img_decoded, &img_reference, &name);
}

#[test]
fn directed_float_fast_path() {
    // Exercises mad/mul/min/frc/rsqrt on F data including negatives,
    // subnormal-ish magnitudes and a NaN-producing rsqrt(-x).
    let mut img = MemoryImage::new(1 << 16);
    let n = 64u32;
    let src: Vec<f32> = (0..n).map(|i| (i as f32 - 31.5) * 0.75e-3).collect();
    let a = img.alloc_f32(&src);
    let out = img.alloc(n * 4);

    let mut b = KernelBuilder::new("directed_f", 16);
    let addr = Operand::rud(10);
    let x = Operand::rf(12);
    let y = Operand::rf(14);
    b.mad(
        addr,
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.load(MemSpace::Global, x, addr);
    b.mad(y, x, x, Operand::imm_f(0.125));
    b.mul(y, y, Operand::imm_f(-3.5));
    b.min(y, y, x);
    b.op(iwc_isa::Opcode::Frc, Operand::rf(16), &[y]);
    b.math(iwc_isa::Opcode::Rsqrt, Operand::rf(18), x);
    b.add(y, y, Operand::rf(18));
    b.mad(
        addr,
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 1, DataType::Ud),
    );
    b.store(MemSpace::Global, addr, y);
    run_both(b.finish().unwrap(), n, 16, &[a, out], &img);
}

#[test]
fn directed_signed_fast_path() {
    // Signed D arithmetic with wrapping, shifts with oversized amounts,
    // and division by zero (defined as 0).
    let mut img = MemoryImage::new(1 << 16);
    let n = 64u32;
    let out = img.alloc(n * 4);

    let mut b = KernelBuilder::new("directed_d", 16);
    let x = Operand::rd(12);
    let y = Operand::rd(14);
    b.mov(x, Operand::rd(1));
    b.sub(x, x, Operand::imm_d(32));
    b.mul(y, x, Operand::imm_d(0x4000_0001));
    b.shl(y, y, Operand::imm_d(70)); // masked to 6 bits
    b.op(iwc_isa::Opcode::Asr, y, &[y, Operand::imm_d(3)]);
    b.op(iwc_isa::Opcode::Idiv, Operand::rd(16), &[y, x]); // hits x == 0
    b.add(y, y, Operand::rd(16));
    b.mad(
        Operand::rud(10),
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(10), y);
    run_both(b.finish().unwrap(), n, 16, &[out], &img);
}

#[test]
fn directed_generic_fallback_uw() {
    // Uw (16-bit unsigned) has no specialized loop: the decoded backend
    // must route it through the generic read_lane/eval/write_lane path
    // with identical narrowing.
    let mut img = MemoryImage::new(1 << 16);
    let n = 32u32;
    let out = img.alloc(n * 4);

    let w = |reg| Operand::reg(reg, DataType::Uw);
    let mut b = KernelBuilder::new("directed_uw", 8);
    b.op(iwc_isa::Opcode::Mov, w(12), &[Operand::rud(1)]);
    b.op(
        iwc_isa::Opcode::Mad,
        w(12),
        &[w(12), w(12), Operand::imm_ud(0xFFF7)],
    );
    b.op(iwc_isa::Opcode::Mov, Operand::rud(14), &[w(12)]);
    b.mad(
        Operand::rud(10),
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(10), Operand::rud(14));
    run_both(b.finish().unwrap(), n, 8, &[out], &img);
}
