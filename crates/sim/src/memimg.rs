//! Flat global-memory image and host-side buffer allocation.
//!
//! Workloads allocate buffers out of a [`MemoryImage`] before launch (the
//! host side of an OpenCL program), initialize them with typed writes, and
//! read results back after simulation.

use iwc_isa::types::{DataType, Scalar};

/// Flat byte-addressable global memory with a bump allocator.
#[derive(Debug)]
pub struct MemoryImage {
    bytes: Vec<u8>,
    next_alloc: u32,
}

impl Clone for MemoryImage {
    fn clone(&self) -> Self {
        Self {
            bytes: self.bytes.clone(),
            next_alloc: self.next_alloc,
        }
    }

    /// Reuses the existing byte buffer instead of reallocating — back-to-back
    /// simulations of the same launch (e.g. [`Gpu::run_modes`](crate::Gpu))
    /// reset one scratch image per mode this way.
    fn clone_from(&mut self, source: &Self) {
        self.bytes.clear();
        self.bytes.extend_from_slice(&source.bytes);
        self.next_alloc = source.next_alloc;
    }
}

/// Alignment applied to every allocation (one cache line).
pub const ALLOC_ALIGN: u32 = 64;

impl MemoryImage {
    /// Creates an image of `capacity` bytes, zero-initialized.
    pub fn new(capacity: u32) -> Self {
        Self {
            bytes: vec![0; capacity as usize],
            next_alloc: ALLOC_ALIGN,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Allocates `len` bytes, cache-line aligned, returning the base address.
    ///
    /// # Panics
    ///
    /// Panics when the image is exhausted.
    pub fn alloc(&mut self, len: u32) -> u32 {
        let base = self.next_alloc;
        let end = base
            .checked_add(len)
            .and_then(|e| e.checked_next_multiple_of(ALLOC_ALIGN))
            .expect("allocation overflow");
        assert!(
            end <= self.capacity(),
            "memory image exhausted: need {end} bytes, have {}",
            self.capacity()
        );
        self.next_alloc = end;
        base
    }

    /// Allocates and fills a buffer of f32 values; returns the base address.
    pub fn alloc_f32(&mut self, data: &[f32]) -> u32 {
        let base = self.alloc((data.len() * 4) as u32);
        for (i, &v) in data.iter().enumerate() {
            self.write_f32(base + 4 * i as u32, v);
        }
        base
    }

    /// Allocates and fills a buffer of u32 values; returns the base address.
    pub fn alloc_u32(&mut self, data: &[u32]) -> u32 {
        let base = self.alloc((data.len() * 4) as u32);
        for (i, &v) in data.iter().enumerate() {
            self.write_u32(base + 4 * i as u32, v);
        }
        base
    }

    /// Allocates and fills a buffer of i32 values; returns the base address.
    pub fn alloc_i32(&mut self, data: &[i32]) -> u32 {
        let base = self.alloc((data.len() * 4) as u32);
        for (i, &v) in data.iter().enumerate() {
            self.write_i32(base + 4 * i as u32, v);
        }
        base
    }

    fn range(&self, addr: u32, len: u32) -> std::ops::Range<usize> {
        let lo = addr as usize;
        let hi = lo + len as usize;
        assert!(
            hi <= self.bytes.len(),
            "address {addr:#x}+{len} out of bounds"
        );
        lo..hi
    }

    /// Reads an f32 at `addr`.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_le_bytes(self.bytes[self.range(addr, 4)].try_into().unwrap())
    }

    /// Reads a u32 at `addr`.
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes(self.bytes[self.range(addr, 4)].try_into().unwrap())
    }

    /// Reads an i32 at `addr`.
    pub fn read_i32(&self, addr: u32) -> i32 {
        i32::from_le_bytes(self.bytes[self.range(addr, 4)].try_into().unwrap())
    }

    /// Writes an f32 at `addr`.
    pub fn write_f32(&mut self, addr: u32, v: f32) {
        let r = self.range(addr, 4);
        self.bytes[r].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes a u32 at `addr`.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let r = self.range(addr, 4);
        self.bytes[r].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes an i32 at `addr`.
    pub fn write_i32(&mut self, addr: u32, v: i32) {
        let r = self.range(addr, 4);
        self.bytes[r].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads one element of `dtype` at `addr` as a widened [`Scalar`].
    pub fn read_scalar(&self, addr: u32, dtype: DataType) -> Scalar {
        let n = dtype.size_bytes();
        let bytes = &self.bytes[self.range(addr, n)];
        let raw = bytes
            .iter()
            .rev()
            .fold(0u64, |acc, &b| acc << 8 | u64::from(b));
        match dtype {
            DataType::F => Scalar::F(f64::from(f32::from_bits(raw as u32))),
            DataType::Df => Scalar::F(f64::from_bits(raw)),
            DataType::Hf => Scalar::F(f64::from(half_to_f32(raw as u16))),
            DataType::B => Scalar::I(i64::from(raw as u8 as i8)),
            DataType::W => Scalar::I(i64::from(raw as u16 as i16)),
            DataType::D => Scalar::I(i64::from(raw as u32 as i32)),
            DataType::Q => Scalar::I(raw as i64),
            DataType::Ub | DataType::Uw | DataType::Ud | DataType::Uq => Scalar::U(raw),
        }
    }

    /// Writes one element of `dtype` at `addr`, narrowing `v`.
    pub fn write_scalar(&mut self, addr: u32, dtype: DataType, v: Scalar) {
        let n = dtype.size_bytes();
        let raw: u64 = match dtype {
            DataType::F => u64::from((v.as_f64() as f32).to_bits()),
            DataType::Df => v.as_f64().to_bits(),
            DataType::Hf => u64::from(f32_to_half(v.as_f64() as f32)),
            DataType::B | DataType::W | DataType::D | DataType::Q => v.as_i64() as u64,
            DataType::Ub | DataType::Uw | DataType::Ud | DataType::Uq => v.as_u64(),
        };
        let r = self.range(addr, n);
        for (i, b) in self.bytes[r].iter_mut().enumerate() {
            *b = (raw >> (8 * i)) as u8;
        }
    }

    /// Reads `n` consecutive f32 values starting at `addr`.
    pub fn read_f32_slice(&self, addr: u32, n: u32) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i)).collect()
    }

    /// Reads `n` consecutive u32 values starting at `addr`.
    pub fn read_u32_slice(&self, addr: u32, n: u32) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i)).collect()
    }
}

/// Minimal IEEE half-precision conversions (sufficient for HF workloads).
fn half_to_f32(h: u16) -> f32 {
    let sign = u32::from(h >> 15) << 31;
    let exp = (h >> 10 & 0x1F) as i32;
    let frac = u32::from(h & 0x3FF);
    let bits = if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let shift = frac.leading_zeros() - 21;
            let exp32 = (127 - 15 + 1) as u32 - shift - 1;
            sign | exp32 << 23 | ((frac << (shift + 14)) & 0x7F_FFFF)
        }
    } else if exp == 0x1F {
        sign | 0xFF << 23 | frac << 13
    } else {
        sign | ((exp + 127 - 15) as u32) << 23 | frac << 13
    };
    f32::from_bits(bits)
}

fn f32_to_half(f: f32) -> u16 {
    let bits = f.to_bits();
    let sign = ((bits >> 31) as u16) << 15;
    let exp = (bits >> 23 & 0xFF) as i32 - 127 + 15;
    let frac = (bits >> 13 & 0x3FF) as u16;
    if exp <= 0 {
        sign // flush to zero
    } else if exp >= 0x1F {
        sign | 0x7C00
    } else {
        sign | (exp as u16) << 10 | frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = MemoryImage::new(1 << 16);
        let a = m.alloc(100);
        let b = m.alloc(4);
        assert_eq!(a % ALLOC_ALIGN, 0);
        assert_eq!(b % ALLOC_ALIGN, 0);
        assert!(b >= a + 100);
        assert_ne!(a, 0, "address 0 reserved as null");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_checks_capacity() {
        let mut m = MemoryImage::new(256);
        let _ = m.alloc(512);
    }

    #[test]
    fn typed_roundtrip() {
        let mut m = MemoryImage::new(1024);
        m.write_f32(64, -1.5);
        m.write_u32(68, 0xDEADBEEF);
        m.write_i32(72, -42);
        assert_eq!(m.read_f32(64), -1.5);
        assert_eq!(m.read_u32(68), 0xDEADBEEF);
        assert_eq!(m.read_i32(72), -42);
    }

    #[test]
    fn scalar_roundtrip_all_types() {
        let mut m = MemoryImage::new(1024);
        let cases = [
            (DataType::F, Scalar::F(3.25)),
            (DataType::Df, Scalar::F(-1.0e100)),
            (DataType::D, Scalar::I(-123456)),
            (DataType::Ud, Scalar::U(0xFFFF_FFFF)),
            (DataType::W, Scalar::I(-32768)),
            (DataType::Uw, Scalar::U(65535)),
            (DataType::B, Scalar::I(-128)),
            (DataType::Ub, Scalar::U(255)),
            (DataType::Q, Scalar::I(i64::MIN)),
            (DataType::Uq, Scalar::U(u64::MAX)),
        ];
        for (dt, v) in cases {
            m.write_scalar(128, dt, v);
            assert_eq!(m.read_scalar(128, dt), v, "{dt}");
        }
    }

    #[test]
    fn half_precision_roundtrip() {
        let mut m = MemoryImage::new(64);
        m.write_scalar(0, DataType::Hf, Scalar::F(1.5));
        assert_eq!(m.read_scalar(0, DataType::Hf), Scalar::F(1.5));
        m.write_scalar(0, DataType::Hf, Scalar::F(-0.25));
        assert_eq!(m.read_scalar(0, DataType::Hf), Scalar::F(-0.25));
    }

    #[test]
    fn bulk_helpers() {
        let mut m = MemoryImage::new(4096);
        let base = m.alloc_f32(&[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f32_slice(base, 3), vec![1.0, 2.0, 3.0]);
        let ubase = m.alloc_u32(&[7, 8]);
        assert_eq!(m.read_u32_slice(ubase, 2), vec![7, 8]);
    }
}
