//! Timing model of the memory subsystem (§2.3, Table 3).
//!
//! All EUs reach the GPU data cache ("L3") through a shared *data cluster*
//! whose peak bandwidth — one or two cache lines per cycle — is the DC1/DC2
//! knob of the paper's execution-time study (Fig. 11). L3 misses go to the
//! CPU-shared LLC and then DRAM. Shared local memory is a separate,
//! highly-banked structure with a fixed pipeline latency plus bank-conflict
//! serialization.

use crate::cache::Cache;
use crate::config::MemConfig;
use serde::{Deserialize, Serialize};

/// Aggregate memory statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Gather-load messages processed.
    pub loads: u64,
    /// Scatter-store messages processed.
    pub stores: u64,
    /// Distinct cache lines requested by global messages (the memory
    /// divergence measure: lines per message).
    pub lines_requested: u64,
    /// L3 lookups that hit.
    pub l3_hits: u64,
    /// L3 lookups that missed.
    pub l3_misses: u64,
    /// LLC lookups that hit.
    pub llc_hits: u64,
    /// LLC lookups that missed (DRAM accesses).
    pub llc_misses: u64,
    /// SLM messages processed.
    pub slm_accesses: u64,
    /// Extra cycles serialized due to SLM bank conflicts.
    pub slm_conflict_cycles: u64,
}

impl MemStats {
    /// Field-wise difference `self - earlier`, used to report per-launch
    /// statistics when one [`MemSystem`] persists across kernel launches.
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            lines_requested: self.lines_requested - earlier.lines_requested,
            l3_hits: self.l3_hits - earlier.l3_hits,
            l3_misses: self.l3_misses - earlier.l3_misses,
            llc_hits: self.llc_hits - earlier.llc_hits,
            llc_misses: self.llc_misses - earlier.llc_misses,
            slm_accesses: self.slm_accesses - earlier.slm_accesses,
            slm_conflict_cycles: self.slm_conflict_cycles - earlier.slm_conflict_cycles,
        }
    }

    /// L3 hit rate of this (possibly delta) sample.
    pub fn l3_hit_rate(&self) -> f64 {
        let total = self.l3_hits + self.l3_misses;
        if total == 0 {
            1.0
        } else {
            self.l3_hits as f64 / total as f64
        }
    }

    /// Average distinct lines per global message (≥ 1 when any message was
    /// issued) — the paper's memory-divergence metric.
    pub fn lines_per_message(&self) -> f64 {
        let msgs = self.loads + self.stores;
        if msgs == 0 {
            0.0
        } else {
            self.lines_requested as f64 / msgs as f64
        }
    }
}

impl iwc_telemetry::Instrument for MemStats {
    fn publish(&self, prefix: &str, snap: &mut iwc_telemetry::TelemetrySnapshot) {
        let j = |name: &str| iwc_telemetry::join(prefix, name);
        snap.set_counter(&j("loads"), self.loads);
        snap.set_counter(&j("stores"), self.stores);
        snap.set_counter(&j("lines_requested"), self.lines_requested);
        snap.set_counter(&j("l3/hits"), self.l3_hits);
        snap.set_counter(&j("l3/misses"), self.l3_misses);
        snap.set_counter(&j("llc/hits"), self.llc_hits);
        snap.set_counter(&j("llc/misses"), self.llc_misses);
        snap.set_counter(&j("slm/accesses"), self.slm_accesses);
        snap.set_counter(&j("slm/conflict_cycles"), self.slm_conflict_cycles);
    }
}

/// The shared memory subsystem.
#[derive(Clone, Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    l3: Cache,
    llc: Cache,
    /// Next free data-cluster slot, in cycles (fractional to support
    /// non-integer lines/cycle rates).
    dc_free_at: f64,
    l3_bank_free: Vec<u64>,
    llc_bank_free: Vec<u64>,
    slm_port_free: u64,
    /// Memory statistics.
    pub stats: MemStats,
}

impl MemSystem {
    /// Builds the subsystem from its configuration.
    pub fn new(cfg: MemConfig) -> Self {
        Self {
            l3: Cache::new(cfg.l3, cfg.line_bytes),
            llc: Cache::new(cfg.llc, cfg.line_bytes),
            dc_free_at: 0.0,
            l3_bank_free: vec![0; cfg.l3.banks as usize],
            llc_bank_free: vec![0; cfg.llc.banks as usize],
            slm_port_free: 0,
            stats: MemStats::default(),
            cfg,
        }
    }

    /// Converts per-channel byte addresses into the sorted set of distinct
    /// line addresses.
    pub fn coalesce(&self, addrs: &[u32]) -> Vec<u64> {
        let mut lines = Vec::new();
        self.coalesce_into(addrs, &mut lines);
        lines
    }

    /// [`coalesce`](Self::coalesce) into a caller-owned buffer, so the
    /// per-issue hot path can reuse one allocation across sends.
    pub fn coalesce_into(&self, addrs: &[u32], lines: &mut Vec<u64>) {
        lines.clear();
        lines.extend(
            addrs
                .iter()
                .map(|&a| u64::from(a) / u64::from(self.cfg.line_bytes)),
        );
        lines.sort_unstable();
        lines.dedup();
    }

    /// Issues a global-memory message for the given distinct `lines` at time
    /// `now`; returns the completion time.
    ///
    /// Each line occupies one data-cluster slot (serialized at the
    /// configured lines/cycle rate) and then traverses the hierarchy:
    /// L3 hit, LLC hit, or DRAM.
    pub fn global_access(&mut self, now: u64, lines: &[u64], is_store: bool) -> u64 {
        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        self.stats.lines_requested += lines.len() as u64;
        let mut done = now;
        for &line in lines {
            // Data-cluster slot.
            let slot = self.dc_free_at.max(now as f64);
            self.dc_free_at = slot + 1.0 / self.cfg.dc_lines_per_cycle;
            let slot = slot.ceil() as u64;
            // L3 bank.
            let bank = (line % u64::from(self.cfg.l3.banks)) as usize;
            let l3_start = slot.max(self.l3_bank_free[bank]);
            self.l3_bank_free[bank] = l3_start + 1;
            let l3_hit = self.cfg.perfect_l3 || self.l3.access(line);
            let mut ready = l3_start + u64::from(self.cfg.l3.latency);
            if l3_hit {
                self.stats.l3_hits += 1;
            } else {
                self.stats.l3_misses += 1;
                let lbank = (line % u64::from(self.cfg.llc.banks)) as usize;
                let llc_start = ready.max(self.llc_bank_free[lbank]);
                self.llc_bank_free[lbank] = llc_start + 1;
                ready = llc_start + u64::from(self.cfg.llc.latency);
                if self.llc.access(line) {
                    self.stats.llc_hits += 1;
                } else {
                    self.stats.llc_misses += 1;
                    ready += u64::from(self.cfg.dram_latency);
                }
            }
            done = done.max(ready);
        }
        done
    }

    /// Issues an SLM message for the given per-channel byte offsets at time
    /// `now`; returns the completion time (fixed latency plus bank-conflict
    /// serialization over 4-byte-interleaved banks).
    pub fn slm_access(&mut self, now: u64, addrs: &[u32]) -> u64 {
        self.stats.slm_accesses += 1;
        let banks = self.cfg.slm_banks;
        let mut per_bank = vec![0u32; banks as usize];
        let mut distinct: Vec<u32> = addrs.iter().map(|&a| a / 4).collect();
        distinct.sort_unstable();
        distinct.dedup(); // broadcast from one word is conflict-free
        for w in distinct {
            per_bank[(w % banks) as usize] += 1;
        }
        let conflict = per_bank.iter().copied().max().unwrap_or(0).max(1);
        self.stats.slm_conflict_cycles += u64::from(conflict - 1);
        // The SLM message port serializes messages: each occupies the port
        // for its conflict-serialized bank cycles.
        let start = self.slm_port_free.max(now);
        self.slm_port_free = start + u64::from(conflict);
        start + u64::from(self.cfg.slm_latency) + u64::from(conflict - 1)
    }

    /// Hit rate of the L3 tag store.
    pub fn l3_hit_rate(&self) -> f64 {
        self.l3.hit_rate()
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.cfg.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn memsys() -> MemSystem {
        MemSystem::new(GpuConfig::paper_default().mem)
    }

    #[test]
    fn coalesce_dedups_lines() {
        let m = memsys();
        // 16 consecutive f32 addresses = one 64B line.
        let addrs: Vec<u32> = (0..16).map(|i| 1024 + 4 * i).collect();
        assert_eq!(m.coalesce(&addrs), vec![16]);
        // Strided by 64B: 16 distinct lines.
        let addrs: Vec<u32> = (0..16).map(|i| 1024 + 64 * i).collect();
        assert_eq!(m.coalesce(&addrs).len(), 16);
    }

    #[test]
    fn first_access_goes_to_dram() {
        let mut m = memsys();
        let t = m.global_access(0, &[100], false);
        // DC slot 0 + L3 miss (7) + LLC miss (10) + DRAM (200).
        assert!(t >= 217, "cold access took {t}");
        assert_eq!(m.stats.l3_misses, 1);
        assert_eq!(m.stats.llc_misses, 1);
    }

    #[test]
    fn second_access_hits_l3() {
        let mut m = memsys();
        let _ = m.global_access(0, &[100], false);
        let t0 = 1000;
        let t = m.global_access(t0, &[100], false);
        assert_eq!(t, t0 + 7, "L3 hit latency");
        assert_eq!(m.stats.l3_hits, 1);
    }

    #[test]
    fn perfect_l3_always_hits() {
        let mut m = MemSystem::new(GpuConfig::paper_default().with_perfect_l3(true).mem);
        let t = m.global_access(0, &[1, 2, 3], false);
        assert!(
            t <= 3 + 7 + 2,
            "perfect L3 bounded by bank+latency, got {t}"
        );
        assert_eq!(m.stats.l3_misses, 0);
    }

    #[test]
    fn dc_bandwidth_serializes_lines() {
        let mut m = MemSystem::new(GpuConfig::paper_default().with_perfect_l3(true).mem);
        let lines: Vec<u64> = (0..16).collect();
        let t_dc1 = m.global_access(0, &lines, false);
        let mut m2 = MemSystem::new(
            GpuConfig::paper_default()
                .with_perfect_l3(true)
                .with_dc_bandwidth(2.0)
                .mem,
        );
        let t_dc2 = m2.global_access(0, &lines, false);
        assert!(t_dc2 < t_dc1, "DC2 ({t_dc2}) must beat DC1 ({t_dc1})");
    }

    #[test]
    fn slm_conflict_free_broadcast() {
        let mut m = memsys();
        // All channels read the same word: no conflict.
        let t = m.slm_access(10, &[128; 16]);
        assert_eq!(t, 15);
        assert_eq!(m.stats.slm_conflict_cycles, 0);
    }

    #[test]
    fn slm_bank_conflicts_serialize() {
        let mut m = memsys();
        // All channels hit bank 0 with distinct words: 16-way conflict.
        let addrs: Vec<u32> = (0..16u32).map(|i| i * 16 * 4).collect();
        let t = m.slm_access(0, &addrs);
        assert_eq!(t, 5 + 15);
        assert_eq!(m.stats.slm_conflict_cycles, 15);
    }

    #[test]
    fn slm_conflict_free_unit_stride() {
        let mut m = memsys();
        let addrs: Vec<u32> = (0..16u32).map(|i| i * 4).collect();
        assert_eq!(m.slm_access(0, &addrs), 5);
    }

    #[test]
    fn lines_per_message_metric() {
        let mut m = memsys();
        let _ = m.global_access(0, &[1], false);
        let _ = m.global_access(0, &[2, 3, 4], false);
        assert_eq!(m.stats.lines_per_message(), 2.0);
    }
}
