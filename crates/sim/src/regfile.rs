//! Per-thread register file and flag state.

use iwc_isa::reg::{FlagReg, Operand, GRF_TOTAL_BYTES};
use iwc_isa::types::{DataType, Scalar};

/// One EU thread's general register file (128 × 256 bits) plus flag
/// registers.
#[derive(Clone)]
pub struct RegFile {
    bytes: Box<[u8]>,
    flags: [u32; 2],
}

impl std::fmt::Debug for RegFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RegFile(flags={:#x},{:#x})",
            self.flags[0], self.flags[1]
        )
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        Self {
            bytes: vec![0u8; GRF_TOTAL_BYTES as usize].into_boxed_slice(),
            flags: [0; 2],
        }
    }

    fn lane_addr(op: &Operand, lane: u32) -> (u32, DataType) {
        match *op {
            Operand::Grf { reg, dtype } => (u32::from(reg) * 32 + lane * dtype.size_bytes(), dtype),
            Operand::GrfScalar { reg, sub, dtype } => (
                u32::from(reg) * 32 + u32::from(sub) * dtype.size_bytes(),
                dtype,
            ),
            _ => panic!("operand {op:?} has no register address"),
        }
    }

    fn read_raw(&self, addr: u32, n: u32) -> u64 {
        let lo = addr as usize;
        let hi = lo + n as usize;
        assert!(
            hi <= self.bytes.len(),
            "GRF read out of bounds at byte {addr}"
        );
        self.bytes[lo..hi]
            .iter()
            .rev()
            .fold(0u64, |acc, &b| acc << 8 | u64::from(b))
    }

    fn write_raw(&mut self, addr: u32, n: u32, raw: u64) {
        let lo = addr as usize;
        let hi = lo + n as usize;
        assert!(
            hi <= self.bytes.len(),
            "GRF write out of bounds at byte {addr}"
        );
        for (i, b) in self.bytes[lo..hi].iter_mut().enumerate() {
            *b = (raw >> (8 * i)) as u8;
        }
    }

    fn decode(raw: u64, dtype: DataType) -> Scalar {
        match dtype {
            DataType::F => Scalar::F(f64::from(f32::from_bits(raw as u32))),
            DataType::Df => Scalar::F(f64::from_bits(raw)),
            DataType::Hf => Scalar::F(f64::from(f32::from_bits(half_bits_to_f32_bits(raw as u16)))),
            DataType::B => Scalar::I(i64::from(raw as u8 as i8)),
            DataType::W => Scalar::I(i64::from(raw as u16 as i16)),
            DataType::D => Scalar::I(i64::from(raw as u32 as i32)),
            DataType::Q => Scalar::I(raw as i64),
            DataType::Ub | DataType::Uw | DataType::Ud | DataType::Uq => Scalar::U(raw),
        }
    }

    fn encode(v: Scalar, dtype: DataType) -> u64 {
        match dtype {
            DataType::F => u64::from((v.as_f64() as f32).to_bits()),
            DataType::Df => v.as_f64().to_bits(),
            DataType::Hf => u64::from(f32_bits_to_half_bits((v.as_f64() as f32).to_bits())),
            DataType::B | DataType::W | DataType::D | DataType::Q => v.as_i64() as u64,
            DataType::Ub | DataType::Uw | DataType::Ud | DataType::Uq => v.as_u64(),
        }
    }

    /// Fixed-width raw loads/stores for the decoded-plan lane loops
    /// ([`crate::plan`]): same storage and bounds behavior as
    /// `read_raw`/`write_raw`, but with a compile-time width so the
    /// compiler emits a single unaligned load/store instead of a byte
    /// fold.
    #[inline]
    pub(crate) fn load_u32(&self, addr: u32) -> u32 {
        let lo = addr as usize;
        u32::from_le_bytes(self.bytes[lo..lo + 4].try_into().expect("4-byte GRF read"))
    }

    #[inline]
    pub(crate) fn store_u32(&mut self, addr: u32, v: u32) {
        let lo = addr as usize;
        self.bytes[lo..lo + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads channel `lane` of `op` (immediates broadcast their value).
    ///
    /// # Panics
    ///
    /// Panics on a [`Operand::Null`] source or out-of-bounds access.
    pub fn read_lane(&self, op: &Operand, lane: u32) -> Scalar {
        match op {
            Operand::Imm { value, .. } => *value,
            Operand::Null => panic!("read from null operand"),
            _ => {
                let (addr, dtype) = Self::lane_addr(op, lane);
                Self::decode(self.read_raw(addr, dtype.size_bytes()), dtype)
            }
        }
    }

    /// Writes channel `lane` of destination `op`, narrowing to its type.
    /// Writes to [`Operand::Null`] are discarded.
    pub fn write_lane(&mut self, op: &Operand, lane: u32, v: Scalar) {
        match op {
            Operand::Null => {}
            Operand::Imm { .. } => panic!("write to immediate"),
            _ => {
                let (addr, dtype) = Self::lane_addr(op, lane);
                self.write_raw(addr, dtype.size_bytes(), Self::encode(v, dtype));
            }
        }
    }

    /// Raw flag-register bits.
    pub fn flag(&self, f: FlagReg) -> u32 {
        self.flags[f.index() as usize]
    }

    /// Overwrites flag-register bits.
    pub fn set_flag(&mut self, f: FlagReg, bits: u32) {
        self.flags[f.index() as usize] = bits;
    }

    /// Updates one channel's flag bit.
    pub fn set_flag_channel(&mut self, f: FlagReg, ch: u32, v: bool) {
        let bits = &mut self.flags[f.index() as usize];
        if v {
            *bits |= 1 << ch;
        } else {
            *bits &= !(1 << ch);
        }
    }
}

// Local copies of the half conversions (kept private to each module to avoid
// a public dependency on an encoding detail).
fn half_bits_to_f32_bits(h: u16) -> u32 {
    let sign = u32::from(h >> 15) << 31;
    let exp = (h >> 10 & 0x1F) as i32;
    let frac = u32::from(h & 0x3FF);
    if exp == 0 {
        if frac == 0 {
            sign
        } else {
            let shift = frac.leading_zeros() - 21;
            let exp32 = (127 - 15 + 1) as u32 - shift - 1;
            sign | exp32 << 23 | ((frac << (shift + 14)) & 0x7F_FFFF)
        }
    } else if exp == 0x1F {
        sign | 0xFF << 23 | frac << 13
    } else {
        sign | ((exp + 127 - 15) as u32) << 23 | frac << 13
    }
}

fn f32_bits_to_half_bits(bits: u32) -> u16 {
    let sign = ((bits >> 31) as u16) << 15;
    let exp = (bits >> 23 & 0xFF) as i32 - 127 + 15;
    let frac = (bits >> 13 & 0x3FF) as u16;
    if exp <= 0 {
        sign
    } else if exp >= 0x1F {
        sign | 0x7C00
    } else {
        sign | (exp as u16) << 10 | frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::reg::Operand;

    #[test]
    fn vector_lane_roundtrip() {
        let mut rf = RegFile::new();
        let op = Operand::rf(8);
        for lane in 0..16 {
            rf.write_lane(&op, lane, Scalar::F(lane as f64 * 0.5));
        }
        for lane in 0..16 {
            assert_eq!(rf.read_lane(&op, lane), Scalar::F(lane as f64 * 0.5));
        }
    }

    #[test]
    fn simd16_spans_registers_without_aliasing() {
        let mut rf = RegFile::new();
        rf.write_lane(&Operand::rf(4), 15, Scalar::F(9.0)); // byte 4*32+60 = r5 upper
        rf.write_lane(&Operand::rf(6), 0, Scalar::F(1.0));
        assert_eq!(rf.read_lane(&Operand::rf(4), 15), Scalar::F(9.0));
        assert_eq!(
            rf.read_lane(&Operand::rf(5), 7),
            Scalar::F(9.0),
            "same storage, reg view"
        );
    }

    #[test]
    fn scalar_operand_broadcasts() {
        let mut rf = RegFile::new();
        rf.write_lane(&Operand::rud(2), 3, Scalar::U(77));
        let s = Operand::scalar(2, 3, iwc_isa::DataType::Ud);
        for lane in 0..16 {
            assert_eq!(rf.read_lane(&s, lane), Scalar::U(77));
        }
    }

    #[test]
    fn immediates_broadcast() {
        let rf = RegFile::new();
        assert_eq!(rf.read_lane(&Operand::imm_f(2.5), 11), Scalar::F(2.5));
    }

    #[test]
    fn narrowing_on_write() {
        let mut rf = RegFile::new();
        rf.write_lane(&Operand::rud(0), 0, Scalar::U(0x1_0000_0007));
        assert_eq!(
            rf.read_lane(&Operand::rud(0), 0),
            Scalar::U(7),
            "truncated to 32b"
        );
        rf.write_lane(&Operand::reg(1, iwc_isa::DataType::W), 0, Scalar::I(-1));
        assert_eq!(
            rf.read_lane(&Operand::reg(1, iwc_isa::DataType::W), 0),
            Scalar::I(-1)
        );
    }

    #[test]
    fn flags() {
        let mut rf = RegFile::new();
        rf.set_flag(FlagReg::F0, 0xAAAA);
        assert_eq!(rf.flag(FlagReg::F0), 0xAAAA);
        rf.set_flag_channel(FlagReg::F0, 0, true);
        rf.set_flag_channel(FlagReg::F0, 1, false);
        assert_eq!(rf.flag(FlagReg::F0), 0xAAA9);
        assert_eq!(rf.flag(FlagReg::F1), 0);
    }

    #[test]
    fn null_write_discarded() {
        let mut rf = RegFile::new();
        rf.write_lane(&Operand::Null, 0, Scalar::F(1.0)); // must not panic
    }
}
