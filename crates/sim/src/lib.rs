//! # iwc-sim
//!
//! A cycle-level simulator of an Ivy Bridge-style GPU (the "GPGenSim"
//! equivalent of §5.1 in *"SIMD Divergence Optimization through Intra-Warp
//! Compaction"*, ISCA 2013). The model follows §2 of the paper:
//!
//! * multithreaded EUs (6 threads each by default) issuing up to two
//!   instructions from distinct threads every two cycles ([`eu`]);
//! * 4-wide FPU and extended-math pipes executing variable-width SIMD
//!   instructions over multiple waves — the waves compressed by the
//!   BCC/SCC/Ivy Bridge optimizations of `iwc-compaction`;
//! * per-thread SIMT reconvergence stacks for divergent control flow
//!   ([`simt`]);
//! * a shared memory subsystem: banked SLM, L3 data cache, LLC, DRAM,
//!   reached through a bandwidth-limited data cluster (DC1/DC2) ([`memsys`]);
//! * workgroup dispatch with barrier support ([`gpu`]).
//!
//! The functional model ([`exec`]) executes the full ISA, so kernel results
//! are bit-exact regardless of the timing configuration — compaction is a
//! pure timing optimization, which the integration tests assert.
//!
//! # Dispatch ABI
//!
//! Dispatched threads receive:
//!
//! | Register | Contents |
//! |---|---|
//! | `r0.0-7` (UD) | wg id, thread-in-wg, global thread id, #wgs, SIMD width, wg size, global size, 0 |
//! | `r1`.. (UD) | per-channel global work-item id (r1-r2 at SIMD16, r1-r4 at SIMD32) |
//! | [`arg_base_reg`].. (UD) | up to 16 scalar kernel arguments (r3-r4 at SIMD16, r5-r6 at SIMD32) |
//!
//! Channels past the workgroup or NDRange tail are dispatched disabled.
//!
//! # Examples
//!
//! ```
//! use iwc_isa::{KernelBuilder, MemSpace, Operand};
//! use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage};
//!
//! // out[gid] = 2 * gid, computed on the GPU.
//! let mut b = KernelBuilder::new("double", 8);
//! b.mul(Operand::rud(6), Operand::rud(1), Operand::imm_ud(2));
//! b.mad(Operand::rud(7), Operand::rud(1), Operand::imm_ud(4), Operand::scalar(3, 0, iwc_isa::DataType::Ud));
//! b.store(MemSpace::Global, Operand::rud(7), Operand::rud(6));
//! let program = b.finish()?;
//!
//! let mut img = MemoryImage::new(1 << 16);
//! let out = img.alloc(64 * 4);
//! let launch = Launch::new(program, 64, 16).with_args(&[out]);
//! let result = simulate(&GpuConfig::paper_default(), &launch, &mut img)?;
//! assert_eq!(img.read_u32(out + 4 * 10), 20);
//! assert!(result.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod eu;
pub mod exec;
pub mod gpu;
pub mod memimg;
pub mod memsys;
pub mod plan;
pub mod profile;
pub mod regfile;
pub mod simt;
pub mod timeline;
pub mod wheel;

pub use config::{BurstMode, CacheConfig, ExecBackend, GpuConfig, MemConfig, RfTiming, SchedMode};
pub use eu::{
    BurstScript, Eu, EuStats, HwThread, IssueEvent, StallBreakdown, StallCause, StallSpan,
    StallStats,
};
pub use exec::{execute_instruction, Effect, Executed, ThreadCtx};
pub use gpu::BurstStats;
pub use gpu::{arg_base_reg, simulate, simulate_decoded, Gpu, Launch, SimResult, SimulateError};
pub use memimg::MemoryImage;
pub use memsys::{MemStats, MemSystem};
pub use plan::{DecodedProgram, LaneScratch, MicroPlan, PlanEffect};
pub use profile::{BlockStat, InsnStat, KernelProfile};
pub use regfile::RegFile;
pub use simt::SimtStack;
pub use wheel::{TimingWheel, WheelStats};
