//! Multi-EU GPU: workgroup dispatch, barriers, and the simulation loop.

use crate::config::{BurstMode, ExecBackend, GpuConfig, SchedMode};
use crate::eu::{BurstScript, Eu, EuStats, HwThread, StallCause, StallSpan, StallStats};
use crate::exec::ThreadCtx;
use crate::memimg::MemoryImage;
use crate::memsys::{MemStats, MemSystem};
use crate::plan::DecodedProgram;
use crate::wheel::{TimingWheel, WheelEvent};
use iwc_compaction::{CompactionMode, CompactionTally, EngineId};
use iwc_isa::mask::ExecMask;
use iwc_isa::program::Program;
use iwc_isa::reg::Operand;
use iwc_isa::types::Scalar;
use iwc_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A kernel launch (the NDRange of OpenCL, flattened to one dimension).
#[derive(Clone, Debug)]
pub struct Launch {
    /// The kernel program.
    pub program: Program,
    /// Total number of work-items.
    pub global_size: u32,
    /// Work-items per workgroup.
    pub wg_size: u32,
    /// Scalar kernel arguments (available to the kernel in `r3`/`r4`).
    pub args: Vec<u32>,
    /// Shared-local-memory bytes per workgroup.
    pub slm_bytes: u32,
}

impl Launch {
    /// Creates a launch with no arguments and no SLM.
    pub fn new(program: Program, global_size: u32, wg_size: u32) -> Self {
        Self {
            program,
            global_size,
            wg_size,
            args: Vec::new(),
            slm_bytes: 0,
        }
    }

    /// Adds scalar arguments.
    pub fn with_args(mut self, args: &[u32]) -> Self {
        self.args = args.to_vec();
        self
    }

    /// Requests SLM per workgroup.
    pub fn with_slm(mut self, bytes: u32) -> Self {
        self.slm_bytes = bytes;
        self
    }

    /// Number of workgroups.
    pub fn num_wgs(&self) -> u32 {
        self.global_size.div_ceil(self.wg_size)
    }

    /// EU threads per workgroup.
    pub fn threads_per_wg(&self) -> u32 {
        self.wg_size.div_ceil(self.program.simd_width())
    }
}

/// Aggregate result of one simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Wall-clock cycles until the last thread retired.
    pub cycles: u64,
    /// Aggregated EU statistics.
    pub eu: EuStats,
    /// Memory-subsystem statistics.
    pub mem: MemStats,
    /// L3 hit rate at the end of the run.
    pub l3_hit_rate: f64,
    /// Compaction engine the run used (`Display`s as its label).
    pub mode: EngineId,
    /// Uniform metric snapshot of the run: every typed statistic above,
    /// published under hierarchical names (`eu/…`, `mem/…`, `sim/cycles`).
    pub telemetry: TelemetrySnapshot,
}

impl SimResult {
    /// Kernel SIMD efficiency (Fig. 3 metric), over all SIMD instructions.
    pub fn simd_efficiency(&self) -> f64 {
        self.eu.simd_tally.simd_efficiency()
    }

    /// EU execution cycles under the run's mask stream for the given mode
    /// (evaluated analytically from the executed masks, as the paper does).
    pub fn eu_cycles(&self, mode: CompactionMode) -> u64 {
        self.eu.compute_tally.cycles.get(mode)
    }

    /// Compaction accounting over the executed computation masks.
    pub fn compute_tally(&self) -> &CompactionTally {
        &self.eu.compute_tally
    }

    /// Average data-cluster throughput in lines per cycle.
    pub fn dc_throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem.lines_requested as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} cycles, {} issued ({} skipped), eff {:.1}%, L3 {:.1}%, DC {:.2} lines/cyc",
            self.mode,
            self.cycles,
            self.eu.issued,
            self.eu.skipped_zero_mask,
            100.0 * self.simd_efficiency(),
            100.0 * self.l3_hit_rate,
            self.dc_throughput()
        )
    }
}

/// Traffic counters for the `sim/burst` telemetry group: how often the
/// convergent-burst fast path engaged and how much arbitration it
/// replaced. Like `sim/wheel`, the group is published only when a burst
/// actually happened, so burst-off (and never-bursting) results stay
/// byte-identical to pre-burst snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BurstStats {
    /// Bursts initiated (hazard-free spans front-run in one visit).
    pub spans: u64,
    /// Plans issued through burst scripts, beyond each span's lead.
    pub plans: u64,
    /// Visited cycles answered from a script instead of arbitration.
    pub scripted_cycles: u64,
    /// Longest burst span in plans, including the lead.
    pub max_span: u64,
}

impl BurstStats {
    /// True when no burst happened — the `sim/burst` group is then left
    /// out of snapshots.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

impl iwc_telemetry::Instrument for BurstStats {
    fn publish(&self, prefix: &str, snap: &mut TelemetrySnapshot) {
        let j = |name: &str| iwc_telemetry::join(prefix, name);
        snap.set_counter(&j("spans"), self.spans);
        snap.set_counter(&j("plans"), self.plans);
        snap.set_counter(&j("scripted_cycles"), self.scripted_cycles);
        snap.set_gauge(&j("max_span"), self.max_span as f64);
    }
}

#[derive(Debug, Default)]
struct WgState {
    resident: u32,
    done: u32,
    at_barrier: u32,
}

/// Bookkeeping for an EU the event-wheel scheduler has stopped
/// re-arbitrating. A fully-blocked EU's arbitration passes after the first
/// are pure — `arb_ptr` only advances on issue, every blocked thread's
/// state is frozen until its own ready cycle, and the EU-level wake-up is
/// the minimum of those — so everything the tick loop would have charged
/// per visited cycle can be reconstructed exactly at wake-up from this
/// record (see DESIGN.md §9).
#[derive(Debug)]
struct Asleep {
    /// Generation tag matching this sleep's wheel entry; an entry with any
    /// other tag is stale (the EU was woken early by a barrier release).
    seq: u32,
    /// First slept (not yet charged) cycle.
    from_cycle: u64,
    /// Loop iteration at which the EU went to sleep.
    from_iter: u64,
    /// Blocking cause charged for every slept cycle.
    cause: StallCause,
    /// Legacy per-pass stall counts one steady re-arbitration would add.
    steady: StallStats,
}

#[derive(Debug)]
enum EuState {
    Awake,
    Asleep(Asleep),
}

/// Applies everything the tick loop would have charged a sleeping EU over
/// `[rec.from_cycle, wake_cycle)`: wall-clock cycles against the blocking
/// cause (extending the open stall span over the jumped range, so trace
/// exports still cover every cycle) and one steady per-pass stall sample
/// per skipped arbitration pass.
fn charge_sleep(eu: &mut Eu, rec: &Asleep, wake_cycle: u64, wake_iter: u64, record_log: bool) {
    let slept = wake_cycle - rec.from_cycle;
    if slept > 0 {
        eu.stats.eu_cycles += slept;
        eu.stats.stall_causes.charge(rec.cause, slept);
        if record_log {
            match eu.stats.stall_log.last_mut() {
                Some(s) if s.cause == rec.cause && s.start + s.len == rec.from_cycle => {
                    s.len += slept;
                }
                _ => eu.stats.stall_log.push(StallSpan {
                    eu: eu.id,
                    start: rec.from_cycle,
                    len: slept,
                    cause: rec.cause,
                }),
            }
        }
    }
    let missed = wake_iter - rec.from_iter - 1;
    if missed > 0 {
        eu.stats.stalls.add_scaled(&rec.steady, missed);
    }
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulateError {
    /// A workgroup needs more threads than one EU provides.
    WorkgroupTooLarge {
        /// Threads required by one workgroup.
        needed: u32,
        /// Threads available per EU.
        available: u32,
    },
    /// The run exceeded the cycle safety limit.
    CycleLimit(u64),
    /// No thread could make progress (e.g. a barrier some threads never
    /// reach).
    Deadlock {
        /// Cycle at which progress stopped.
        at: u64,
    },
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkgroupTooLarge { needed, available } => write!(
                f,
                "workgroup needs {needed} threads but an EU has only {available}"
            ),
            Self::CycleLimit(c) => write!(f, "exceeded cycle limit at {c}"),
            Self::Deadlock { at } => write!(f, "no thread can make progress at cycle {at}"),
        }
    }
}

impl std::error::Error for SimulateError {}

/// Cycle safety limit for one simulation.
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// A persistent GPU device: keeps its memory subsystem (cache contents,
/// bank/cluster timing state) and clock across kernel launches, like the
/// command-streamer execution model of §2.1 where the driver enqueues
/// successive kernels against a warm device.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    mem: MemSystem,
    clock: u64,
}

impl Gpu {
    /// Creates a cold device.
    pub fn new(cfg: GpuConfig) -> Self {
        Self {
            mem: MemSystem::new(cfg.mem),
            cfg,
            clock: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Total cycles elapsed on the device clock across all launches.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Runs one kernel launch to completion against `img`, continuing the
    /// device clock and reusing warm caches. The returned [`SimResult`]
    /// reports per-launch deltas (cycles, memory statistics).
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError`] when the launch cannot be placed or does
    /// not make progress.
    pub fn run(
        &mut self,
        launch: &Launch,
        img: &mut MemoryImage,
    ) -> Result<SimResult, SimulateError> {
        run_launch(&self.cfg, &mut self.mem, &mut self.clock, launch, img, None)
    }

    /// Like [`Gpu::run`], but reuses a program already lowered with
    /// [`DecodedProgram::decode`] instead of decoding inside the launch —
    /// the serve path's cache-friendly entry point (decode once, run the
    /// same kernel many times across sessions and engine sweeps).
    ///
    /// Under [`ExecBackend::Reference`] the pre-decoded plans are unused
    /// (that backend interprets the raw [`Program`]); results are identical
    /// either way, which the serve integration tests enforce.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError`] when the launch cannot be placed or does
    /// not make progress.
    ///
    /// # Panics
    ///
    /// Panics when `decoded` was not produced from `launch.program` (length
    /// mismatch — the cheap structural check; callers key caches by content
    /// hash, which subsumes it).
    pub fn run_decoded(
        &mut self,
        launch: &Launch,
        img: &mut MemoryImage,
        decoded: &DecodedProgram,
    ) -> Result<SimResult, SimulateError> {
        assert_eq!(
            decoded.len(),
            launch.program.len(),
            "decoded plans do not match the launched program"
        );
        run_launch(
            &self.cfg,
            &mut self.mem,
            &mut self.clock,
            launch,
            img,
            Some(decoded),
        )
    }

    /// Sweeps one launch across several compaction engines (accepts
    /// [`CompactionMode`]s or registry [`EngineId`]s): each engine runs on
    /// a fresh cold device against its own copy of `img`, so results are
    /// independent and ordered like `modes`. This is the evaluation
    /// harness's unit of work — one (workload × config) cell expanded over
    /// the mode axis.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimulateError`] encountered, abandoning the
    /// remaining modes.
    pub fn run_modes<M: Into<EngineId> + Copy>(
        cfg: &GpuConfig,
        launch: &Launch,
        img: &MemoryImage,
        modes: &[M],
    ) -> Result<Vec<SimResult>, SimulateError> {
        // One scratch image serves every mode: `clone_from` resets it in
        // place between runs, so an N-mode sweep costs one allocation
        // instead of N image clones.
        let mut scratch: Option<MemoryImage> = None;
        modes
            .iter()
            .map(|&mode| {
                let mut cfg = *cfg;
                cfg.compaction = mode.into();
                let run_img = match scratch.as_mut() {
                    Some(s) => {
                        s.clone_from(img);
                        s
                    }
                    None => scratch.insert(img.clone()),
                };
                simulate(&cfg, launch, run_img)
            })
            .collect()
    }
}

/// Runs `launch` on a *cold* GPU with configuration `cfg` against global
/// memory `img` (one-shot convenience over [`Gpu`]).
///
/// Functional results are visible in `img` after the call; the returned
/// [`SimResult`] carries the timing and compaction statistics.
///
/// # Errors
///
/// Returns [`SimulateError`] when the launch cannot be placed or does not
/// make progress.
pub fn simulate(
    cfg: &GpuConfig,
    launch: &Launch,
    img: &mut MemoryImage,
) -> Result<SimResult, SimulateError> {
    Gpu::new(*cfg).run(launch, img)
}

/// [`simulate`] with a pre-decoded program (one-shot convenience over
/// [`Gpu::run_decoded`]): a cold device, but no per-launch decode.
///
/// # Errors
///
/// Returns [`SimulateError`] when the launch cannot be placed or does not
/// make progress.
///
/// # Panics
///
/// Panics when `decoded` was not produced from `launch.program`.
pub fn simulate_decoded(
    cfg: &GpuConfig,
    launch: &Launch,
    img: &mut MemoryImage,
    decoded: &DecodedProgram,
) -> Result<SimResult, SimulateError> {
    Gpu::new(*cfg).run_decoded(launch, img, decoded)
}

/// One visited cycle's arbitration outcome for an awake EU: whether it
/// issued, the cause blocking it if not, and the earliest cycle at which
/// it could next make progress.
type ArbOutcome = (bool, Option<StallCause>, Option<u64>);

/// Charges the whole launch to the `"simulate"` phase of the current
/// request span (a no-op outside the serve daemon) and delegates to
/// [`run_launch_inner`]. Span timing is wall-clock side-band state only —
/// it never touches the result or its telemetry snapshot, so served runs
/// stay byte-identical to direct ones.
fn run_launch(
    cfg: &GpuConfig,
    mem: &mut MemSystem,
    clock: &mut u64,
    launch: &Launch,
    img: &mut MemoryImage,
    predecoded: Option<&DecodedProgram>,
) -> Result<SimResult, SimulateError> {
    iwc_telemetry::span::time_phase("simulate", || {
        run_launch_inner(cfg, mem, clock, launch, img, predecoded)
    })
}

fn run_launch_inner(
    cfg: &GpuConfig,
    mem: &mut MemSystem,
    clock: &mut u64,
    launch: &Launch,
    img: &mut MemoryImage,
    predecoded: Option<&DecodedProgram>,
) -> Result<SimResult, SimulateError> {
    let simd = launch.program.simd_width();
    let wg_threads = launch.threads_per_wg();
    if wg_threads > cfg.threads_per_eu {
        return Err(SimulateError::WorkgroupTooLarge {
            needed: wg_threads,
            available: cfg.threads_per_eu,
        });
    }
    let num_wgs = launch.num_wgs() as usize;
    // Resolve the compaction engine once per launch; the per-cycle issue
    // path sees only the trait object, never the registry.
    let engine = cfg.compaction.engine();
    // Resolve the execution backend once per launch and pre-decode the
    // program into micro-op plans for the fast interpreter — unless the
    // caller already holds the plans (the serve path's session cache).
    let decoded_local: Option<DecodedProgram>;
    let decoded: Option<&DecodedProgram> = match cfg.exec.resolve() {
        ExecBackend::Reference => None,
        _ => match predecoded {
            Some(d) => Some(d),
            None => {
                decoded_local = Some(DecodedProgram::decode(&launch.program));
                decoded_local.as_ref()
            }
        },
    };

    let mut eus: Vec<Eu> = (0..cfg.eus)
        .map(|i| Eu::new(i, cfg.threads_per_eu))
        .collect();
    let mem_before = mem.stats;
    let start = *clock;
    let mut slms: Vec<MemoryImage> = Vec::new(); // one per workgroup, indexed by slm_slot
                                                 // Dense per-workgroup barrier/retirement state (wg ids are assigned
                                                 // sequentially at dispatch, so a Vec replaces the old HashMap).
    let mut wg_state: Vec<WgState> = (0..num_wgs).map(|_| WgState::default()).collect();
    let mut next_wg = 0usize;
    let mut now = start;
    // Per-EU (issued-this-cycle, blocking cause, wake-up hint) for stall
    // attribution and the sleep decision; `None` while the EU is asleep.
    let mut per_eu: Vec<Option<ArbOutcome>> = Vec::with_capacity(eus.len());
    let mut arrivals: Vec<usize> = Vec::new();
    // Workgroups whose barrier/retirement state changed this cycle — the
    // only candidates for a barrier release.
    let mut barrier_candidates: Vec<usize> = Vec::new();

    // Event-wheel scheduler state. Both schedulers run this same loop and
    // visit the same cycle sequence; with the wheel enabled, an EU whose
    // next possible state change lies beyond the next visited cycle sleeps
    // until a wheel event (or a barrier release) wakes it, instead of being
    // re-arbitrated every visited cycle to rediscover that it is blocked.
    let sleep_enabled = cfg.sched.resolve() == SchedMode::Wheel;
    // Convergent-burst replay state: while a burst is in flight on an EU,
    // its script stands in for arbitration — the thread's architectural
    // state is already past the span, so consulting it early would issue
    // post-span work ahead of schedule. Decoded backend only; the
    // reference interpreter never bursts.
    let burst_enabled = decoded.is_some() && cfg.burst.resolve() == BurstMode::On;
    let mut scripts: Vec<Option<BurstScript>> = eus.iter().map(|_| None).collect();
    let mut burst_stats = BurstStats::default();
    let mut wheel = TimingWheel::new();
    let mut states: Vec<EuState> = eus.iter().map(|_| EuState::Awake).collect();
    let mut stalls_before: Vec<StallStats> = vec![StallStats::default(); eus.len()];
    let mut barrier_woken: Vec<bool> = vec![false; eus.len()];
    let mut due: Vec<WheelEvent> = Vec::new();
    let mut seq = 0u32;
    let mut iter = 0u64;

    loop {
        // ---- wake-ups due at this cycle ----
        if sleep_enabled && !wheel.is_empty() {
            wheel.pop_due(now, &mut due);
            for ev in due.drain(..) {
                let idx = ev.payload as usize;
                match &states[idx] {
                    EuState::Asleep(rec) if rec.seq == ev.seq => wheel.note_fired(),
                    _ => {
                        wheel.note_stale();
                        continue;
                    }
                }
                if let EuState::Asleep(rec) = std::mem::replace(&mut states[idx], EuState::Awake) {
                    charge_sleep(&mut eus[idx], &rec, now, iter, cfg.record_issue_log);
                }
            }
        }

        // ---- dispatch pending workgroups ----
        for (idx, eu) in eus.iter_mut().enumerate() {
            if next_wg == num_wgs {
                break;
            }
            if !matches!(states[idx], EuState::Awake) {
                // A sleeping EU's free-slot count cannot change (threads
                // only retire on issue), and it was undispatchable when it
                // went to sleep.
                continue;
            }
            while next_wg < num_wgs && eu.free_slots() >= wg_threads as usize {
                let wg = next_wg;
                next_wg += 1;
                let slm_slot = slms.len();
                slms.push(MemoryImage::new(launch.slm_bytes.max(64)));
                wg_state[wg].resident = wg_threads;
                for wt in 0..wg_threads {
                    eu.place(make_thread(launch, simd, wg, wt, slm_slot));
                }
            }
        }

        // ---- arbitration (one instruction per EU per cycle) ----
        let mut any_issued = false;
        let mut min_hint: Option<u64> = None;
        arrivals.clear();
        barrier_candidates.clear();
        per_eu.clear();
        for (idx, eu) in eus.iter_mut().enumerate() {
            if !matches!(states[idx], EuState::Awake) {
                per_eu.push(None);
                continue;
            }
            if sleep_enabled {
                stalls_before[idx] = eu.stats.stalls;
            }
            // A burst in flight: replay the scripted arbitration outcome —
            // an issue at each scheduled cycle, a pipe-busy verdict (with
            // its per-pass stall event, like a real scan would charge) in
            // between. Everything downstream — attribution, the sleep
            // decision, wake-ups — consumes the outcome unchanged.
            if let Some(script) = scripts[idx].as_mut() {
                burst_stats.scripted_cycles += 1;
                let at = script.next_time();
                debug_assert!(now <= at, "scheduler visited past a scripted issue");
                let outcome: ArbOutcome = if now == at {
                    if script.advance() {
                        scripts[idx] = None;
                    }
                    any_issued = true;
                    (true, None, None)
                } else {
                    eu.stats.stalls.pipe_busy += 1;
                    min_hint = Some(min_hint.map_or(at, |m| m.min(at)));
                    (false, Some(StallCause::PipeBusy), Some(at))
                };
                per_eu.push(Some(outcome));
                continue;
            }
            let arb = eu.arbitrate(
                now,
                cfg,
                engine.as_ref(),
                &launch.program,
                decoded,
                mem,
                img,
                &mut slms,
                &mut arrivals,
                burst_enabled,
            );
            if arb.issued > 0 {
                any_issued = true;
            }
            for wg in arb.finished {
                wg_state[wg].done += 1;
                barrier_candidates.push(wg);
            }
            if let Some(h) = arb.hint {
                min_hint = Some(min_hint.map_or(h, |m| m.min(h)));
            }
            if let Some(script) = arb.burst {
                burst_stats.spans += 1;
                burst_stats.plans += script.len() as u64;
                burst_stats.max_span = burst_stats.max_span.max(script.len() as u64 + 1);
                scripts[idx] = Some(script);
            }
            per_eu.push(Some((arb.issued > 0, arb.blocked, arb.hint)));
        }

        // ---- barrier bookkeeping ----
        // A workgroup can only become releasable on one of this cycle's
        // events (a barrier arrival or a thread retiring while siblings
        // wait), so only those workgroups are checked — no full scan.
        let mut released = false;
        for &wg in &arrivals {
            wg_state[wg].at_barrier += 1;
        }
        barrier_candidates.extend_from_slice(&arrivals);
        for &wg in &barrier_candidates {
            let st = &mut wg_state[wg];
            if st.at_barrier > 0 && st.at_barrier + st.done == st.resident {
                st.at_barrier = 0;
                for (idx, eu) in eus.iter_mut().enumerate() {
                    let mut woke = false;
                    for t in eu.slots.iter_mut().flatten() {
                        if t.wg == wg && t.at_barrier {
                            t.at_barrier = false;
                            woke = true;
                        }
                    }
                    if woke {
                        barrier_woken[idx] = true;
                        eu.note_threads_changed();
                    }
                }
                released = true;
            }
        }
        if released {
            // A release is the one wake-up that does not come through the
            // wheel: sleeping EUs whose threads were just freed must be
            // re-arbitrated at `now + 1` like the tick loop would. A timed
            // wake-up such an EU may still have in the wheel is stale from
            // here on and is discarded on contact (its `seq` won't match).
            for (idx, eu) in eus.iter_mut().enumerate() {
                if !barrier_woken[idx] {
                    continue;
                }
                barrier_woken[idx] = false;
                if let EuState::Asleep(rec) = std::mem::replace(&mut states[idx], EuState::Awake) {
                    charge_sleep(eu, &rec, now + 1, iter + 1, cfg.record_issue_log);
                }
            }
        }

        // ---- completion / time advance ----
        if next_wg == num_wgs && eus.iter().all(Eu::is_idle) {
            // Only drained (idle) EUs can still be asleep here; settle their
            // lump charges through the final visited cycle. The tick loop
            // never charges this iteration, so neither does the catch-up.
            for (idx, eu) in eus.iter_mut().enumerate() {
                if let EuState::Asleep(rec) = std::mem::replace(&mut states[idx], EuState::Awake) {
                    debug_assert_eq!(rec.cause, StallCause::Drained);
                    charge_sleep(eu, &rec, now, iter + 1, cfg.record_issue_log);
                }
            }
            break;
        }
        let delta = if any_issued || released {
            1
        } else {
            // Sleeping EUs are represented by their wheel entries; the
            // earliest valid one bounds the jump exactly as those EUs'
            // hints would have under the tick loop.
            let wheel_next = if sleep_enabled {
                wheel.earliest(|ev| {
                    matches!(&states[ev.payload as usize], EuState::Asleep(r) if r.seq == ev.seq)
                })
            } else {
                None
            };
            let next = match (min_hint, wheel_next) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match next {
                Some(h) => (now + 1).max(h) - now,
                None => return Err(SimulateError::Deadlock { at: now }),
            }
        };
        if sleep_enabled && delta > 1 {
            wheel.stats.cycles_skipped += delta - 1;
        }
        // Stall attribution: every EU sees every launch cycle; a cycle (or
        // event-driven span of cycles) with no issue is charged to exactly
        // one cause per EU. Jumps only happen when no EU issued, so the
        // whole span carries the pre-jump blocking cause.
        for (idx, eu) in eus.iter_mut().enumerate() {
            let Some((issued, blocked, hint)) = per_eu[idx] else {
                continue; // asleep: charged in one lump at wake-up
            };
            eu.stats.eu_cycles += delta;
            if issued {
                eu.stats.issue_cycles += 1;
            } else {
                let cause = blocked.unwrap_or(StallCause::Drained);
                eu.stats.stall_causes.charge(cause, delta);
                if cfg.record_issue_log {
                    // Interval form for trace export: extend the open span
                    // when the cause continues, else start a new one.
                    match eu.stats.stall_log.last_mut() {
                        Some(s) if s.cause == cause && s.start + s.len == now => s.len += delta,
                        _ => eu.stats.stall_log.push(StallSpan {
                            eu: eu.id,
                            start: now,
                            len: delta,
                            cause,
                        }),
                    }
                }
                // Sleep decision: with no issue this cycle and the earliest
                // possible state change strictly beyond the next visited
                // cycle (or, with no hint, unknowable until a barrier
                // release or the run draining), re-arbitrating the EU
                // before then would only rediscover the same blocked state.
                if sleep_enabled {
                    match hint {
                        Some(h) if h <= now + delta => {} // ready next visited cycle
                        _ => {
                            seq = seq.wrapping_add(1);
                            if let Some(h) = hint {
                                wheel.schedule(now, h, idx as u32, seq);
                            }
                            states[idx] = EuState::Asleep(Asleep {
                                seq,
                                from_cycle: now + delta,
                                from_iter: iter,
                                cause,
                                steady: eu.stats.stalls.steady_delta_since(&stalls_before[idx]),
                            });
                        }
                    }
                }
            }
        }
        now += delta;
        if now - start > MAX_CYCLES {
            return Err(SimulateError::CycleLimit(now - start));
        }
        iter += 1;
    }
    *clock = now;

    // ---- aggregate statistics ----
    let mut agg = EuStats::default();
    for eu in &eus {
        debug_assert_eq!(
            eu.stats.issue_cycles + eu.stats.stall_causes.total(),
            eu.stats.eu_cycles,
            "stall attribution must cover every non-issuing EU cycle (EU {})",
            eu.id
        );
        agg.issued += eu.stats.issued;
        agg.skipped_zero_mask += eu.stats.skipped_zero_mask;
        agg.fpu_waves += eu.stats.fpu_waves;
        agg.em_waves += eu.stats.em_waves;
        agg.sends += eu.stats.sends;
        agg.icache_misses += eu.stats.icache_misses;
        agg.stalls.merge(&eu.stats.stalls);
        agg.eu_cycles += eu.stats.eu_cycles;
        agg.issue_cycles += eu.stats.issue_cycles;
        agg.stall_causes.merge(&eu.stats.stall_causes);
        agg.issue_log.extend_from_slice(&eu.stats.issue_log);
        agg.stall_log.extend_from_slice(&eu.stats.stall_log);
        agg.compute_tally.merge(&eu.stats.compute_tally);
        agg.simd_tally.merge(&eu.stats.simd_tally);
        agg.mask_trace.extend_from_slice(&eu.stats.mask_trace);
        agg.insn_profile.merge(&eu.stats.insn_profile);
    }
    let mem_delta = mem.stats.delta(&mem_before);
    // The uniform snapshot every result carries: one publish pass over the
    // typed stats at end of run (a few dozen BTreeMap inserts — negligible
    // next to the simulation itself, so it is unconditional).
    let mut telemetry = TelemetrySnapshot::new();
    telemetry.set_counter("sim/cycles", now - start);
    telemetry.publish("eu", &agg);
    telemetry.publish("mem", &mem_delta);
    // The `sim/wheel` group appears only when the event wheel actually saw
    // traffic — tick-mode results (and trivial runs) stay byte-identical to
    // pre-wheel snapshots.
    if !wheel.stats.is_empty() {
        telemetry.publish("sim/wheel", &wheel.stats);
    }
    // Likewise `sim/burst`: published only when a burst engaged, so
    // burst-off results are byte-identical to burst-capable ones that
    // never found a span.
    if !burst_stats.is_empty() {
        telemetry.publish("sim/burst", &burst_stats);
    }
    Ok(SimResult {
        cycles: now - start,
        eu: agg,
        l3_hit_rate: mem_delta.l3_hit_rate(),
        mem: mem_delta,
        mode: cfg.compaction,
        telemetry,
    })
}

/// First GRF register holding kernel arguments for a given SIMD width:
/// r3 for SIMD16 and below (global ids occupy r1-r2), r5 for SIMD32
/// (global ids occupy r1-r4). Kernels must read their arguments from the
/// matching register (`iwc-workloads` exposes helpers).
pub fn arg_base_reg(simd_width: u32) -> u8 {
    if simd_width > 16 {
        5
    } else {
        3
    }
}

/// Builds the architectural state of one dispatched thread, including the
/// r0 header, per-channel global ids starting at r1, and kernel arguments
/// at [`arg_base_reg`] (see the crate docs for the dispatch ABI).
fn make_thread(launch: &Launch, simd: u32, wg: usize, wg_thread: u32, slm_slot: usize) -> HwThread {
    // Dispatch mask: channels beyond the workgroup or global size are off.
    let mut mask = ExecMask::none(simd);
    for ch in 0..simd {
        let lid = wg_thread * simd + ch;
        let gid = wg as u32 * launch.wg_size + lid;
        if lid < launch.wg_size && gid < launch.global_size {
            mask = mask.with_channel(ch, true);
        }
    }
    let mut ctx = ThreadCtx::new(mask);
    let r0 = Operand::rud(0);
    let header = [
        wg as u32,
        wg_thread,
        wg as u32 * launch.threads_per_wg() + wg_thread,
        launch.num_wgs(),
        simd,
        launch.wg_size,
        launch.global_size,
        0,
    ];
    for (i, v) in header.iter().enumerate() {
        ctx.regs.write_lane(&r0, i as u32, Scalar::U(u64::from(*v)));
    }
    let r1 = Operand::rud(1);
    for ch in 0..simd {
        let gid = wg as u32 * launch.wg_size + wg_thread * simd + ch;
        ctx.regs.write_lane(&r1, ch, Scalar::U(u64::from(gid)));
    }
    let args_reg = Operand::rud(arg_base_reg(simd));
    for (i, &a) in launch.args.iter().enumerate().take(16) {
        ctx.regs
            .write_lane(&args_reg, i as u32, Scalar::U(u64::from(a)));
    }
    HwThread::new(ctx, wg, wg_thread, slm_slot)
}
