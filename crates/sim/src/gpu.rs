//! Multi-EU GPU: workgroup dispatch, barriers, and the simulation loop.

use crate::config::{ExecBackend, GpuConfig};
use crate::eu::{Eu, EuStats, HwThread, StallCause};
use crate::exec::ThreadCtx;
use crate::memimg::MemoryImage;
use crate::memsys::{MemStats, MemSystem};
use crate::plan::DecodedProgram;
use iwc_compaction::{CompactionMode, CompactionTally, EngineId};
use iwc_isa::mask::ExecMask;
use iwc_isa::program::Program;
use iwc_isa::reg::Operand;
use iwc_isa::types::Scalar;
use iwc_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A kernel launch (the NDRange of OpenCL, flattened to one dimension).
#[derive(Clone, Debug)]
pub struct Launch {
    /// The kernel program.
    pub program: Program,
    /// Total number of work-items.
    pub global_size: u32,
    /// Work-items per workgroup.
    pub wg_size: u32,
    /// Scalar kernel arguments (available to the kernel in `r3`/`r4`).
    pub args: Vec<u32>,
    /// Shared-local-memory bytes per workgroup.
    pub slm_bytes: u32,
}

impl Launch {
    /// Creates a launch with no arguments and no SLM.
    pub fn new(program: Program, global_size: u32, wg_size: u32) -> Self {
        Self {
            program,
            global_size,
            wg_size,
            args: Vec::new(),
            slm_bytes: 0,
        }
    }

    /// Adds scalar arguments.
    pub fn with_args(mut self, args: &[u32]) -> Self {
        self.args = args.to_vec();
        self
    }

    /// Requests SLM per workgroup.
    pub fn with_slm(mut self, bytes: u32) -> Self {
        self.slm_bytes = bytes;
        self
    }

    /// Number of workgroups.
    pub fn num_wgs(&self) -> u32 {
        self.global_size.div_ceil(self.wg_size)
    }

    /// EU threads per workgroup.
    pub fn threads_per_wg(&self) -> u32 {
        self.wg_size.div_ceil(self.program.simd_width())
    }
}

/// Aggregate result of one simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Wall-clock cycles until the last thread retired.
    pub cycles: u64,
    /// Aggregated EU statistics.
    pub eu: EuStats,
    /// Memory-subsystem statistics.
    pub mem: MemStats,
    /// L3 hit rate at the end of the run.
    pub l3_hit_rate: f64,
    /// Compaction engine the run used (`Display`s as its label).
    pub mode: EngineId,
    /// Uniform metric snapshot of the run: every typed statistic above,
    /// published under hierarchical names (`eu/…`, `mem/…`, `sim/cycles`).
    pub telemetry: TelemetrySnapshot,
}

impl SimResult {
    /// Kernel SIMD efficiency (Fig. 3 metric), over all SIMD instructions.
    pub fn simd_efficiency(&self) -> f64 {
        self.eu.simd_tally.simd_efficiency()
    }

    /// EU execution cycles under the run's mask stream for the given mode
    /// (evaluated analytically from the executed masks, as the paper does).
    pub fn eu_cycles(&self, mode: CompactionMode) -> u64 {
        self.eu.compute_tally.cycles.get(mode)
    }

    /// Compaction accounting over the executed computation masks.
    pub fn compute_tally(&self) -> &CompactionTally {
        &self.eu.compute_tally
    }

    /// Average data-cluster throughput in lines per cycle.
    pub fn dc_throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem.lines_requested as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} cycles, {} issued ({} skipped), eff {:.1}%, L3 {:.1}%, DC {:.2} lines/cyc",
            self.mode,
            self.cycles,
            self.eu.issued,
            self.eu.skipped_zero_mask,
            100.0 * self.simd_efficiency(),
            100.0 * self.l3_hit_rate,
            self.dc_throughput()
        )
    }
}

#[derive(Debug, Default)]
struct WgState {
    resident: u32,
    done: u32,
    at_barrier: u32,
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulateError {
    /// A workgroup needs more threads than one EU provides.
    WorkgroupTooLarge {
        /// Threads required by one workgroup.
        needed: u32,
        /// Threads available per EU.
        available: u32,
    },
    /// The run exceeded the cycle safety limit.
    CycleLimit(u64),
    /// No thread could make progress (e.g. a barrier some threads never
    /// reach).
    Deadlock {
        /// Cycle at which progress stopped.
        at: u64,
    },
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkgroupTooLarge { needed, available } => write!(
                f,
                "workgroup needs {needed} threads but an EU has only {available}"
            ),
            Self::CycleLimit(c) => write!(f, "exceeded cycle limit at {c}"),
            Self::Deadlock { at } => write!(f, "no thread can make progress at cycle {at}"),
        }
    }
}

impl std::error::Error for SimulateError {}

/// Cycle safety limit for one simulation.
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// A persistent GPU device: keeps its memory subsystem (cache contents,
/// bank/cluster timing state) and clock across kernel launches, like the
/// command-streamer execution model of §2.1 where the driver enqueues
/// successive kernels against a warm device.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    mem: MemSystem,
    clock: u64,
}

impl Gpu {
    /// Creates a cold device.
    pub fn new(cfg: GpuConfig) -> Self {
        Self {
            mem: MemSystem::new(cfg.mem),
            cfg,
            clock: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Total cycles elapsed on the device clock across all launches.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Runs one kernel launch to completion against `img`, continuing the
    /// device clock and reusing warm caches. The returned [`SimResult`]
    /// reports per-launch deltas (cycles, memory statistics).
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError`] when the launch cannot be placed or does
    /// not make progress.
    pub fn run(
        &mut self,
        launch: &Launch,
        img: &mut MemoryImage,
    ) -> Result<SimResult, SimulateError> {
        run_launch(&self.cfg, &mut self.mem, &mut self.clock, launch, img)
    }

    /// Sweeps one launch across several compaction engines (accepts
    /// [`CompactionMode`]s or registry [`EngineId`]s): each engine runs on
    /// a fresh cold device against its own copy of `img`, so results are
    /// independent and ordered like `modes`. This is the evaluation
    /// harness's unit of work — one (workload × config) cell expanded over
    /// the mode axis.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimulateError`] encountered, abandoning the
    /// remaining modes.
    pub fn run_modes<M: Into<EngineId> + Copy>(
        cfg: &GpuConfig,
        launch: &Launch,
        img: &MemoryImage,
        modes: &[M],
    ) -> Result<Vec<SimResult>, SimulateError> {
        // One scratch image serves every mode: `clone_from` resets it in
        // place between runs, so an N-mode sweep costs one allocation
        // instead of N image clones.
        let mut scratch: Option<MemoryImage> = None;
        modes
            .iter()
            .map(|&mode| {
                let mut cfg = *cfg;
                cfg.compaction = mode.into();
                let run_img = match scratch.as_mut() {
                    Some(s) => {
                        s.clone_from(img);
                        s
                    }
                    None => scratch.insert(img.clone()),
                };
                simulate(&cfg, launch, run_img)
            })
            .collect()
    }
}

/// Runs `launch` on a *cold* GPU with configuration `cfg` against global
/// memory `img` (one-shot convenience over [`Gpu`]).
///
/// Functional results are visible in `img` after the call; the returned
/// [`SimResult`] carries the timing and compaction statistics.
///
/// # Errors
///
/// Returns [`SimulateError`] when the launch cannot be placed or does not
/// make progress.
pub fn simulate(
    cfg: &GpuConfig,
    launch: &Launch,
    img: &mut MemoryImage,
) -> Result<SimResult, SimulateError> {
    Gpu::new(*cfg).run(launch, img)
}

fn run_launch(
    cfg: &GpuConfig,
    mem: &mut MemSystem,
    clock: &mut u64,
    launch: &Launch,
    img: &mut MemoryImage,
) -> Result<SimResult, SimulateError> {
    let simd = launch.program.simd_width();
    let wg_threads = launch.threads_per_wg();
    if wg_threads > cfg.threads_per_eu {
        return Err(SimulateError::WorkgroupTooLarge {
            needed: wg_threads,
            available: cfg.threads_per_eu,
        });
    }
    let num_wgs = launch.num_wgs() as usize;
    // Resolve the compaction engine once per launch; the per-cycle issue
    // path sees only the trait object, never the registry.
    let engine = cfg.compaction.engine();
    // Resolve the execution backend once per launch and pre-decode the
    // program into micro-op plans for the fast interpreter.
    let decoded = match cfg.exec.resolve() {
        ExecBackend::Reference => None,
        _ => Some(DecodedProgram::decode(&launch.program)),
    };

    let mut eus: Vec<Eu> = (0..cfg.eus)
        .map(|i| Eu::new(i, cfg.threads_per_eu))
        .collect();
    let mem_before = mem.stats;
    let start = *clock;
    let mut slms: Vec<MemoryImage> = Vec::new(); // one per workgroup, indexed by slm_slot
                                                 // Dense per-workgroup barrier/retirement state (wg ids are assigned
                                                 // sequentially at dispatch, so a Vec replaces the old HashMap).
    let mut wg_state: Vec<WgState> = (0..num_wgs).map(|_| WgState::default()).collect();
    let mut next_wg = 0usize;
    let mut now = start;
    let mut per_eu: Vec<(bool, Option<StallCause>)> = Vec::with_capacity(eus.len());
    let mut arrivals: Vec<usize> = Vec::new();
    // Workgroups whose barrier/retirement state changed this cycle — the
    // only candidates for a barrier release.
    let mut barrier_candidates: Vec<usize> = Vec::new();

    loop {
        // ---- dispatch pending workgroups ----
        for eu in &mut eus {
            while next_wg < num_wgs && eu.free_slots() >= wg_threads as usize {
                let wg = next_wg;
                next_wg += 1;
                let slm_slot = slms.len();
                slms.push(MemoryImage::new(launch.slm_bytes.max(64)));
                wg_state[wg].resident = wg_threads;
                for wt in 0..wg_threads {
                    eu.place(make_thread(launch, simd, wg, wt, slm_slot));
                }
            }
        }

        // ---- arbitration (one instruction per EU per cycle) ----
        let mut any_issued = false;
        let mut min_hint: Option<u64> = None;
        arrivals.clear();
        barrier_candidates.clear();
        // Per-EU (issued-this-cycle, blocking cause) for stall attribution,
        // charged once the cycle's time delta is known.
        per_eu.clear();
        for eu in &mut eus {
            let arb = eu.arbitrate(
                now,
                cfg,
                engine.as_ref(),
                &launch.program,
                decoded.as_ref(),
                mem,
                img,
                &mut slms,
                &mut arrivals,
            );
            if arb.issued > 0 {
                any_issued = true;
            }
            for wg in arb.finished {
                wg_state[wg].done += 1;
                barrier_candidates.push(wg);
            }
            if let Some(h) = arb.hint {
                min_hint = Some(min_hint.map_or(h, |m| m.min(h)));
            }
            per_eu.push((arb.issued > 0, arb.blocked));
        }

        // ---- barrier bookkeeping ----
        // A workgroup can only become releasable on one of this cycle's
        // events (a barrier arrival or a thread retiring while siblings
        // wait), so only those workgroups are checked — no full scan.
        let mut released = false;
        for &wg in &arrivals {
            wg_state[wg].at_barrier += 1;
        }
        barrier_candidates.extend_from_slice(&arrivals);
        for &wg in &barrier_candidates {
            let st = &mut wg_state[wg];
            if st.at_barrier > 0 && st.at_barrier + st.done == st.resident {
                st.at_barrier = 0;
                for eu in &mut eus {
                    for t in eu.slots.iter_mut().flatten() {
                        if t.wg == wg && t.at_barrier {
                            t.at_barrier = false;
                        }
                    }
                }
                released = true;
            }
        }

        // ---- completion / time advance ----
        if next_wg == num_wgs && eus.iter().all(Eu::is_idle) {
            break;
        }
        let delta = if any_issued || released {
            1
        } else if let Some(h) = min_hint {
            (now + 1).max(h) - now
        } else {
            return Err(SimulateError::Deadlock { at: now });
        };
        // Stall attribution: every EU sees every launch cycle; a cycle (or
        // event-driven span of cycles) with no issue is charged to exactly
        // one cause per EU. Jumps only happen when no EU issued, so the
        // whole span carries the pre-jump blocking cause.
        for (eu, &(issued, blocked)) in eus.iter_mut().zip(per_eu.iter()) {
            eu.stats.eu_cycles += delta;
            if issued {
                eu.stats.issue_cycles += 1;
            } else {
                let cause = blocked.unwrap_or(StallCause::Drained);
                eu.stats.stall_causes.charge(cause, delta);
                if cfg.record_issue_log {
                    // Interval form for trace export: extend the open span
                    // when the cause continues, else start a new one.
                    match eu.stats.stall_log.last_mut() {
                        Some(s) if s.cause == cause && s.start + s.len == now => s.len += delta,
                        _ => eu.stats.stall_log.push(crate::eu::StallSpan {
                            eu: eu.id,
                            start: now,
                            len: delta,
                            cause,
                        }),
                    }
                }
            }
        }
        now += delta;
        if now - start > MAX_CYCLES {
            return Err(SimulateError::CycleLimit(now - start));
        }
    }
    *clock = now;

    // ---- aggregate statistics ----
    let mut agg = EuStats::default();
    for eu in &eus {
        debug_assert_eq!(
            eu.stats.issue_cycles + eu.stats.stall_causes.total(),
            eu.stats.eu_cycles,
            "stall attribution must cover every non-issuing EU cycle (EU {})",
            eu.id
        );
        agg.issued += eu.stats.issued;
        agg.skipped_zero_mask += eu.stats.skipped_zero_mask;
        agg.fpu_waves += eu.stats.fpu_waves;
        agg.em_waves += eu.stats.em_waves;
        agg.sends += eu.stats.sends;
        agg.icache_misses += eu.stats.icache_misses;
        agg.stalls.merge(&eu.stats.stalls);
        agg.eu_cycles += eu.stats.eu_cycles;
        agg.issue_cycles += eu.stats.issue_cycles;
        agg.stall_causes.merge(&eu.stats.stall_causes);
        agg.issue_log.extend_from_slice(&eu.stats.issue_log);
        agg.stall_log.extend_from_slice(&eu.stats.stall_log);
        agg.compute_tally.merge(&eu.stats.compute_tally);
        agg.simd_tally.merge(&eu.stats.simd_tally);
        agg.mask_trace.extend_from_slice(&eu.stats.mask_trace);
        agg.insn_profile.merge(&eu.stats.insn_profile);
    }
    let mem_delta = mem.stats.delta(&mem_before);
    // The uniform snapshot every result carries: one publish pass over the
    // typed stats at end of run (a few dozen BTreeMap inserts — negligible
    // next to the simulation itself, so it is unconditional).
    let mut telemetry = TelemetrySnapshot::new();
    telemetry.set_counter("sim/cycles", now - start);
    telemetry.publish("eu", &agg);
    telemetry.publish("mem", &mem_delta);
    Ok(SimResult {
        cycles: now - start,
        eu: agg,
        l3_hit_rate: mem_delta.l3_hit_rate(),
        mem: mem_delta,
        mode: cfg.compaction,
        telemetry,
    })
}

/// First GRF register holding kernel arguments for a given SIMD width:
/// r3 for SIMD16 and below (global ids occupy r1-r2), r5 for SIMD32
/// (global ids occupy r1-r4). Kernels must read their arguments from the
/// matching register (`iwc-workloads` exposes helpers).
pub fn arg_base_reg(simd_width: u32) -> u8 {
    if simd_width > 16 {
        5
    } else {
        3
    }
}

/// Builds the architectural state of one dispatched thread, including the
/// r0 header, per-channel global ids starting at r1, and kernel arguments
/// at [`arg_base_reg`] (see the crate docs for the dispatch ABI).
fn make_thread(launch: &Launch, simd: u32, wg: usize, wg_thread: u32, slm_slot: usize) -> HwThread {
    // Dispatch mask: channels beyond the workgroup or global size are off.
    let mut mask = ExecMask::none(simd);
    for ch in 0..simd {
        let lid = wg_thread * simd + ch;
        let gid = wg as u32 * launch.wg_size + lid;
        if lid < launch.wg_size && gid < launch.global_size {
            mask = mask.with_channel(ch, true);
        }
    }
    let mut ctx = ThreadCtx::new(mask);
    let r0 = Operand::rud(0);
    let header = [
        wg as u32,
        wg_thread,
        wg as u32 * launch.threads_per_wg() + wg_thread,
        launch.num_wgs(),
        simd,
        launch.wg_size,
        launch.global_size,
        0,
    ];
    for (i, v) in header.iter().enumerate() {
        ctx.regs.write_lane(&r0, i as u32, Scalar::U(u64::from(*v)));
    }
    let r1 = Operand::rud(1);
    for ch in 0..simd {
        let gid = wg as u32 * launch.wg_size + wg_thread * simd + ch;
        ctx.regs.write_lane(&r1, ch, Scalar::U(u64::from(gid)));
    }
    let args_reg = Operand::rud(arg_base_reg(simd));
    for (i, &a) in launch.args.iter().enumerate().take(16) {
        ctx.regs
            .write_lane(&args_reg, i as u32, Scalar::U(u64::from(a)));
    }
    HwThread::new(ctx, wg, wg_thread, slm_slot)
}
