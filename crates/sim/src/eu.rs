//! Execution-unit timing model.
//!
//! Each EU holds up to `threads_per_eu` hardware threads. Every two cycles
//! the thread arbiter issues up to two instructions from distinct ready
//! threads (§2.2). Issued computation occupies the 4-wide FPU or EM pipe for
//! the number of waves given by the active compaction mode — this is where
//! BCC/SCC turn saved waves into time. A per-thread, per-register scoreboard
//! enforces data dependences; `send` results block their destination until
//! the memory subsystem reports completion.

use crate::config::GpuConfig;
use crate::exec::{exec_mask_of, execute_instruction, Effect, ThreadCtx};
use crate::memimg::MemoryImage;
use crate::memsys::MemSystem;
use crate::plan::{execute_plan, DecodedProgram, LaneScratch, MicroPlan, PlanEffect};
use iwc_compaction::{CompactionEngine, CompactionTally};
use iwc_isa::insn::{MemSpace, Opcode, Pipe};
use iwc_isa::mask::ExecMask;
use iwc_isa::program::Program;
use iwc_isa::reg::GRF_BYTES;
use iwc_telemetry::Instrument;
use serde::{Deserialize, Serialize};

/// Per-EU statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EuStats {
    /// Instructions issued (consuming an issue slot).
    pub issued: u64,
    /// Zero-mask instructions skipped at no cost.
    pub skipped_zero_mask: u64,
    /// ALU waves actually issued to the FPU pipe under the active mode.
    pub fpu_waves: u64,
    /// ALU waves actually issued to the EM pipe under the active mode.
    pub em_waves: u64,
    /// Send messages issued.
    pub sends: u64,
    /// L1 instruction-cache misses.
    pub icache_misses: u64,
    /// Thread-cycle stall attribution.
    pub stalls: StallStats,
    /// Total cycles this EU was clocked during the launch (every EU sees
    /// every launch cycle, including idle tail cycles).
    pub eu_cycles: u64,
    /// Cycles in which this EU issued at least one instruction.
    pub issue_cycles: u64,
    /// Per-cause attribution of every non-issuing EU cycle. Invariant:
    /// `issue_cycles + stall_causes.total() == eu_cycles` (checked at the
    /// end of every launch in debug builds).
    pub stall_causes: StallBreakdown,
    /// Issue events for timeline rendering (when
    /// [`GpuConfig::record_issue_log`] is set).
    pub issue_log: Vec<IssueEvent>,
    /// Contiguous non-issuing spans with their attributed [`StallCause`]
    /// (when [`GpuConfig::record_issue_log`] is set) — the interval form of
    /// [`stall_causes`](Self::stall_causes), for trace export.
    pub stall_log: Vec<StallSpan>,
    /// Compaction accounting over computation instructions (cycle models
    /// for every mode, evaluated on the executed mask stream).
    pub compute_tally: CompactionTally,
    /// Mask accounting over all SIMD instructions (compute + send), used
    /// for SIMD efficiency and the utilization breakdown.
    pub simd_tally: CompactionTally,
    /// Captured execution masks of every issued SIMD instruction, in issue
    /// order, when [`GpuConfig::capture_masks`] is set: `(bits, width)`.
    pub mask_trace: Vec<(u32, u8)>,
    /// Per-static-instruction divergence profile, populated when
    /// [`GpuConfig::profile_insns`] is set (empty otherwise).
    pub insn_profile: crate::profile::KernelProfile,
}

/// One resident hardware thread.
#[derive(Debug)]
pub struct HwThread {
    /// Architectural state.
    pub ctx: ThreadCtx,
    /// Global workgroup index.
    pub wg: usize,
    /// Thread index within the workgroup.
    pub wg_thread: u32,
    /// Index of the workgroup's SLM image, resolved at placement time so
    /// the arbiter never does a per-thread map lookup.
    pub slm_slot: usize,
    /// The thread may not issue before this time (fence, barrier release).
    pub stalled_until: u64,
    /// What set `stalled_until` (fence vs. instruction fetch), so the stall
    /// attributor can charge the wait to the right cause.
    stalled_src: StallSrc,
    /// Waiting at a workgroup barrier.
    pub at_barrier: bool,
    /// Per-GRF-register writeback completion times.
    reg_busy: Box<[u64]>,
    /// Bit `r` set while register `r`'s pending writeback comes from a
    /// memory load (cleared when a compute result overwrites it).
    reg_from_mem: u128,
    /// Per-flag-register writeback completion times.
    flag_busy: [u64; 2],
    /// High-water mark over every `reg_busy`/`flag_busy` entry: when it is
    /// at or before `now`, every scoreboard mark has expired and the
    /// dependence scan can be skipped wholesale.
    busy_max: u64,
    /// Completion time of the latest outstanding memory access.
    pub last_mem_done: u64,
}

impl HwThread {
    /// Creates a resident thread from its architectural context. `slm_slot`
    /// indexes the workgroup's SLM image in the launch's image table.
    pub fn new(ctx: ThreadCtx, wg: usize, wg_thread: u32, slm_slot: usize) -> Self {
        Self {
            ctx,
            wg,
            wg_thread,
            slm_slot,
            stalled_until: 0,
            stalled_src: StallSrc::FrontEnd,
            at_barrier: false,
            reg_busy: vec![0u64; 128].into_boxed_slice(),
            reg_from_mem: 0,
            flag_busy: [0, 0],
            busy_max: 0,
            last_mem_done: 0,
        }
    }

    fn mark_regs(&mut self, op: &iwc_isa::Operand, width: u32, until: u64, from_mem: bool) {
        if let Some((lo, hi)) = op.grf_byte_range(width) {
            self.busy_max = self.busy_max.max(until);
            for r in lo / GRF_BYTES..=(hi - 1) / GRF_BYTES {
                self.reg_busy[r as usize] = self.reg_busy[r as usize].max(until);
                // The writer at issue time always owns the new maximum (its
                // own scoreboard check drained earlier writers), so the
                // provenance bit tracks the latest writer.
                if from_mem {
                    self.reg_from_mem |= 1u128 << r;
                } else {
                    self.reg_from_mem &= !(1u128 << r);
                }
            }
        }
    }

    /// Earliest time the scoreboard allows `insn` to issue, and whether the
    /// binding (latest) dependence is a memory load still in flight.
    fn deps_ready_at(&self, insn: &iwc_isa::Instruction) -> (u64, bool) {
        let mut at = 0u64;
        let mut from_mem = false;
        let width = insn.exec_width;
        let mut consider = |op: &iwc_isa::Operand| {
            if let Some((lo, hi)) = op.grf_byte_range(width) {
                for r in lo / GRF_BYTES..=(hi - 1) / GRF_BYTES {
                    let busy = self.reg_busy[r as usize];
                    let mem = self.reg_from_mem >> r & 1 == 1;
                    if busy > at {
                        at = busy;
                        from_mem = mem;
                    } else if busy == at {
                        from_mem |= mem && busy > 0;
                    }
                }
            }
        };
        for op in insn.read_operands() {
            consider(&op);
        }
        consider(&insn.dst);
        if let Some(p) = insn.pred {
            let busy = self.flag_busy[p.flag.index() as usize];
            if busy > at {
                at = busy;
                from_mem = false;
            }
        }
        if let Some(cm) = insn.cond_mod {
            let busy = self.flag_busy[cm.flag.index() as usize];
            if busy > at {
                at = busy;
                from_mem = false;
            }
        }
        (at, from_mem)
    }

    /// [`deps_ready_at`](Self::deps_ready_at) over a decoded plan's
    /// precomputed register ranges — no operand re-derivation, no
    /// allocation.
    fn deps_ready_at_plan(&self, plan: &MicroPlan) -> (u64, bool) {
        let mut at = 0u64;
        let mut from_mem = false;
        let (reads, pred_flag, cond_flag) = plan.scoreboard();
        for &(lo, hi) in reads {
            for r in lo..=hi {
                let busy = self.reg_busy[usize::from(r)];
                let mem = self.reg_from_mem >> r & 1 == 1;
                if busy > at {
                    at = busy;
                    from_mem = mem;
                } else if busy == at {
                    from_mem |= mem && busy > 0;
                }
            }
        }
        for f in [pred_flag, cond_flag].into_iter().flatten() {
            let busy = self.flag_busy[usize::from(f)];
            if busy > at {
                at = busy;
                from_mem = false;
            }
        }
        (at, from_mem)
    }

    /// [`mark_regs`](Self::mark_regs) over a precomputed register range.
    fn mark_range(&mut self, range: Option<(u8, u8)>, until: u64, from_mem: bool) {
        if let Some((lo, hi)) = range {
            self.busy_max = self.busy_max.max(until);
            for r in lo..=hi {
                self.reg_busy[usize::from(r)] = self.reg_busy[usize::from(r)].max(until);
                if from_mem {
                    self.reg_from_mem |= 1u128 << r;
                } else {
                    self.reg_from_mem &= !(1u128 << r);
                }
            }
        }
    }
}

/// One recorded issue event (for timeline rendering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueEvent {
    /// Cycle of issue.
    pub cycle: u64,
    /// Issuing EU (kept through aggregation so exporters can rebuild
    /// per-EU tracks from the merged log).
    pub eu: u32,
    /// EU thread slot.
    pub thread: u8,
    /// Pipe occupied (`Fpu`, `Em`, `Send`, or `Control` for front-end-only
    /// instructions).
    pub pipe: Pipe,
    /// Pipe-occupancy cycles (0 for control/send).
    pub waves: u32,
}

/// Why a thread could not issue this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallReason {
    /// Waiting on an earlier fence/fetch release.
    Stalled,
    /// A source/destination register or flag is still in flight
    /// (scoreboard RAW/WAW, including pending memory loads).
    Scoreboard,
    /// Instruction-cache miss.
    Ifetch,
    /// The target execution pipe is still occupied by earlier waves —
    /// exactly the cycles BCC/SCC compress.
    PipeBusy,
    /// End-of-thread draining outstanding memory.
    MemDrain,
}

/// Per-category counts of thread-cycles lost to each stall reason.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StallStats {
    /// Fence/fetch release waits.
    pub stalled: u64,
    /// Scoreboard dependences (incl. memory loads in flight).
    pub scoreboard: u64,
    /// Instruction-cache misses.
    pub ifetch: u64,
    /// Execution-pipe occupancy.
    pub pipe_busy: u64,
    /// End-of-thread memory drains.
    pub mem_drain: u64,
}

impl StallStats {
    fn add(&mut self, reason: StallReason) {
        match reason {
            StallReason::Stalled => self.stalled += 1,
            StallReason::Scoreboard => self.scoreboard += 1,
            StallReason::Ifetch => self.ifetch += 1,
            StallReason::PipeBusy => self.pipe_busy += 1,
            StallReason::MemDrain => self.mem_drain += 1,
        }
    }

    /// Counts accumulated since `earlier` (a prior copy of this struct),
    /// with instruction-fetch waits folded into `stalled`: an I$ miss only
    /// charges `ifetch` on the arbitration pass that starts it; every later
    /// pass over the same blocked thread counts as a fence wait. The event
    /// wheel uses this as the per-skipped-pass delta when reconstructing
    /// the legacy per-pass counters for a sleeping EU ([`crate::gpu`]).
    pub(crate) fn steady_delta_since(&self, earlier: &StallStats) -> StallStats {
        StallStats {
            stalled: self.stalled - earlier.stalled + (self.ifetch - earlier.ifetch),
            scoreboard: self.scoreboard - earlier.scoreboard,
            ifetch: 0,
            pipe_busy: self.pipe_busy - earlier.pipe_busy,
            mem_drain: self.mem_drain - earlier.mem_drain,
        }
    }

    /// Adds `delta` scaled by `n` (one `delta` per skipped arbitration
    /// pass).
    pub(crate) fn add_scaled(&mut self, delta: &StallStats, n: u64) {
        self.stalled += delta.stalled * n;
        self.scoreboard += delta.scoreboard * n;
        self.ifetch += delta.ifetch * n;
        self.pipe_busy += delta.pipe_busy * n;
        self.mem_drain += delta.mem_drain * n;
    }

    /// Merges another sample.
    pub fn merge(&mut self, other: &StallStats) {
        self.stalled += other.stalled;
        self.scoreboard += other.scoreboard;
        self.ifetch += other.ifetch;
        self.pipe_busy += other.pipe_busy;
        self.mem_drain += other.mem_drain;
    }

    /// Total stall events.
    pub fn total(&self) -> u64 {
        self.stalled + self.scoreboard + self.ifetch + self.pipe_busy + self.mem_drain
    }
}

/// What armed a thread's `stalled_until` timer (refines the legacy
/// [`StallReason::Stalled`] bucket for cause attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StallSrc {
    /// Instruction-fetch miss latency.
    FrontEnd,
    /// A memory fence waiting on outstanding accesses.
    Mem,
}

/// Root cause of one non-issuing EU cycle.
///
/// Unlike [`StallReason`] — which counts per-thread *issue-attempt*
/// failures and can blame several threads in one cycle — a `StallCause`
/// charges each EU cycle in which nothing issued to exactly **one** cause,
/// so the per-EU invariant `issue_cycles + Σ causes == eu_cycles` holds
/// (with the default single-issue front end, `Σ causes == cycles −
/// issued`). The blamed cause is that of the thread that becomes ready
/// soonest — the binding constraint on forward progress — with ties going
/// to the earliest thread in arbitration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Instruction delivery: I$ miss latency (cold front end).
    FrontEnd,
    /// A register/flag dependence on an in-flight *compute* result.
    ScoreboardDep,
    /// Waiting on the memory subsystem: a load still in flight into a
    /// source register, a fence draining stores, or an `eot` drain.
    MemLatency,
    /// The target execution pipe is still busy with earlier waves — the
    /// cycles intra-warp compaction compresses.
    PipeBusy,
    /// The send queue refused a message. Structurally zero in this model
    /// (sends never backpressure the issue stage; see DESIGN.md §7), kept
    /// so exported schemas cover the full taxonomy.
    SendQueueFull,
    /// Every resident thread is parked at a workgroup barrier.
    Barrier,
    /// No thread is resident (dispatch tail / launch drained).
    Drained,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 7] = [
        StallCause::FrontEnd,
        StallCause::ScoreboardDep,
        StallCause::MemLatency,
        StallCause::PipeBusy,
        StallCause::SendQueueFull,
        StallCause::Barrier,
        StallCause::Drained,
    ];

    /// Stable snake_case label (used as the telemetry metric name suffix).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::FrontEnd => "front_end",
            StallCause::ScoreboardDep => "scoreboard_dep",
            StallCause::MemLatency => "mem_latency",
            StallCause::PipeBusy => "pipe_busy",
            StallCause::SendQueueFull => "send_queue_full",
            StallCause::Barrier => "barrier",
            StallCause::Drained => "drained",
        }
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles charged to each [`StallCause`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Cycles lost to instruction delivery.
    pub front_end: u64,
    /// Cycles lost to compute-result dependences.
    pub scoreboard_dep: u64,
    /// Cycles lost waiting on memory (loads, fences, eot drains).
    pub mem_latency: u64,
    /// Cycles lost to execution-pipe occupancy.
    pub pipe_busy: u64,
    /// Cycles lost to send-queue backpressure (structurally zero here).
    pub send_queue_full: u64,
    /// Cycles every resident thread sat at a barrier.
    pub barrier: u64,
    /// Cycles with no resident thread.
    pub drained: u64,
}

impl StallBreakdown {
    /// Charges `n` cycles to `cause`.
    pub fn charge(&mut self, cause: StallCause, n: u64) {
        *self.slot_mut(cause) += n;
    }

    /// Cycles charged to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::FrontEnd => self.front_end,
            StallCause::ScoreboardDep => self.scoreboard_dep,
            StallCause::MemLatency => self.mem_latency,
            StallCause::PipeBusy => self.pipe_busy,
            StallCause::SendQueueFull => self.send_queue_full,
            StallCause::Barrier => self.barrier,
            StallCause::Drained => self.drained,
        }
    }

    fn slot_mut(&mut self, cause: StallCause) -> &mut u64 {
        match cause {
            StallCause::FrontEnd => &mut self.front_end,
            StallCause::ScoreboardDep => &mut self.scoreboard_dep,
            StallCause::MemLatency => &mut self.mem_latency,
            StallCause::PipeBusy => &mut self.pipe_busy,
            StallCause::SendQueueFull => &mut self.send_queue_full,
            StallCause::Barrier => &mut self.barrier,
            StallCause::Drained => &mut self.drained,
        }
    }

    /// Adds another breakdown.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for cause in StallCause::ALL {
            self.charge(cause, other.get(cause));
        }
    }

    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        StallCause::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// `(cause, cycles)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.into_iter().map(|c| (c, self.get(c)))
    }
}

/// One contiguous span of non-issuing EU cycles charged to a single
/// [`StallCause`] — the interval form of [`StallBreakdown`], recorded only
/// when [`GpuConfig::record_issue_log`] is set. Exporters turn these into
/// Perfetto async stall tracks alongside the issue slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallSpan {
    /// EU the span belongs to.
    pub eu: u32,
    /// First cycle of the span.
    pub start: u64,
    /// Length in cycles (≥ 1; consecutive same-cause cycles coalesce).
    pub len: u64,
    /// The attributed root cause.
    pub cause: StallCause,
}

impl Instrument for StallBreakdown {
    fn publish(&self, prefix: &str, snap: &mut iwc_telemetry::TelemetrySnapshot) {
        for (cause, cycles) in self.iter() {
            snap.set_counter(&iwc_telemetry::join(prefix, cause.label()), cycles);
        }
    }
}

impl Instrument for EuStats {
    fn publish(&self, prefix: &str, snap: &mut iwc_telemetry::TelemetrySnapshot) {
        let j = |name: &str| iwc_telemetry::join(prefix, name);
        snap.set_counter(&j("issued"), self.issued);
        snap.set_counter(&j("skipped_zero_mask"), self.skipped_zero_mask);
        snap.set_counter(&j("fpu_waves"), self.fpu_waves);
        snap.set_counter(&j("em_waves"), self.em_waves);
        snap.set_counter(&j("sends"), self.sends);
        snap.set_counter(&j("icache_misses"), self.icache_misses);
        snap.set_counter(&j("cycles"), self.eu_cycles);
        snap.set_counter(&j("issue_cycles"), self.issue_cycles);
        // Legacy per-thread issue-attempt failure counts.
        snap.set_counter(&j("stall_events/fence"), self.stalls.stalled);
        snap.set_counter(&j("stall_events/scoreboard"), self.stalls.scoreboard);
        snap.set_counter(&j("stall_events/ifetch"), self.stalls.ifetch);
        snap.set_counter(&j("stall_events/pipe_busy"), self.stalls.pipe_busy);
        snap.set_counter(&j("stall_events/mem_drain"), self.stalls.mem_drain);
        // Per-cycle root-cause attribution.
        self.stall_causes.publish(&j("stall"), snap);
        self.compute_tally.publish(&j("compute"), snap);
        self.simd_tally.publish(&j("simd"), snap);
        if !self.insn_profile.is_empty() {
            let mut channels = iwc_telemetry::Pow2Hist::new();
            let mut quads = iwc_telemetry::Pow2Hist::new();
            for s in &self.insn_profile.insns {
                channels.merge(&s.channels);
                quads.merge(&s.quads);
            }
            snap.set_hist(&j("profile/channels"), channels);
            snap.set_hist(&j("profile/quads"), quads);
        }
    }
}

/// Outcome of one issue attempt on one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueOutcome {
    /// An instruction was issued.
    Issued,
    /// The thread finished (`eot` retired); the slot is free.
    Finished,
    /// The thread cannot issue before the given time, for the given legacy
    /// reason and attributed root cause.
    NotReadyUntil(u64, StallReason, StallCause),
    /// The thread is blocked on a barrier (no time bound).
    Barrier,
}

/// Issue schedule of a convergent burst, produced when the issue stage
/// front-runs a whole hazard-free span in one arbiter visit (see
/// [`Eu::arbitrate`]). The span's plans have already executed and charged
/// their waves/tallies/scoreboard marks; what remains is replaying, at
/// each later visited cycle, exactly the arbitration outcome the per-plan
/// path would have produced — an issue at each scheduled time, a
/// pipe-busy verdict in between. The scheduler loop does that replay
/// without re-entering arbitration, so the EU's thread state (whose `pc`
/// is already past the span) is never consulted early.
#[derive(Clone, Debug)]
pub struct BurstScript {
    /// Issue cycles of the span's plans after the lead (strictly
    /// increasing; the lead issued normally in the initiating visit).
    times: Vec<u64>,
    /// Next unreplayed entry.
    at: usize,
}

impl BurstScript {
    /// Scheduled issue cycle of the next unreplayed plan.
    #[inline]
    pub fn next_time(&self) -> u64 {
        self.times[self.at]
    }

    /// Consumes one scheduled issue; true when the script is exhausted.
    #[inline]
    pub fn advance(&mut self) -> bool {
        self.at += 1;
        self.at == self.times.len()
    }

    /// Plans issued by the burst beyond the lead.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the script holds no scheduled issues (never for scripts
    /// produced by arbitration, which require a span of at least two).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Outcome of one [`Eu::arbitrate`] pass.
#[derive(Clone, Debug)]
pub struct ArbResult {
    /// Instructions issued this cycle (0..=`cfg.issue_per_cycle`).
    pub issued: u32,
    /// Workgroup ids of threads that retired (`eot`) this cycle.
    pub finished: Vec<usize>,
    /// Earliest future time at which some blocked thread becomes ready
    /// (`None` when all blocked threads wait on barriers or none is
    /// resident).
    pub hint: Option<u64>,
    /// Root cause blocking the EU, when nothing issued: the cause of the
    /// soonest-ready thread, else [`StallCause::Barrier`] if any thread is
    /// parked, else [`StallCause::Drained`]. `None` when something issued.
    pub blocked: Option<StallCause>,
    /// Issue schedule of a convergent burst initiated by this pass, for
    /// the scheduler loop to replay over the coming cycles.
    pub burst: Option<BurstScript>,
}

/// One execution unit.
#[derive(Debug)]
pub struct Eu {
    /// EU index.
    pub id: u32,
    /// Resident threads (None = free slot).
    pub slots: Vec<Option<HwThread>>,
    /// Occupied-slot count, maintained at place/retire so the dispatch
    /// and completion checks in the scheduler loop are O(1) per cycle.
    resident: u32,
    fpu_free: u64,
    em_free: u64,
    arb_ptr: usize,
    /// Instruction addresses resident in the shared L1 I$ (FIFO of PCs,
    /// capacity `cfg.icache_insns`).
    icache: std::collections::VecDeque<usize>,
    /// Dense residency flags for `icache`, indexed by PC (PCs are small
    /// program offsets, so a byte vector beats hashing on the issue path).
    icache_set: Vec<u8>,
    /// Reusable lane-address/line scratch for the decoded send path.
    scratch: LaneScratch,
    /// One-entry memo for the per-issue compaction tallies: loop bodies
    /// re-present the same mask, so the four cycle models are evaluated
    /// once per distinct mask instead of twice per issue.
    tally_memo: iwc_compaction::TallyMemo,
    /// Per-slot cached blocked-issue verdicts, packed apart from the big
    /// thread state so a scan over blocked slots stays inside a couple of
    /// cache lines instead of touching each multi-KB [`HwThread`]. While
    /// `now < polls[i].until`, slot `i` cannot issue and a fresh attempt
    /// would re-derive exactly `(reason, cause)`. Valid because every wait
    /// the issue stage can hit is a fixed timestamp for the blocked thread
    /// — its scoreboard marks don't move until *it* issues, and shared
    /// pipe-free times only grow, so the cached time is a stable lower
    /// bound.
    polls: Box<[SlotPoll]>,
    /// Bit `i` set while `slots[i]` holds a thread, so the scan skips
    /// empty slots without touching the slot storage.
    occupied: u64,
    /// Cached verdict of a fully-blocked arbitration scan, replayed
    /// wholesale until the earliest blocked thread becomes ready (see
    /// [`arbitrate`](Self::arbitrate)).
    arb_memo: Option<ArbMemo>,
    /// Bumped whenever thread state changes outside the issue path (a
    /// thread placed, a barrier released), invalidating `arb_memo`.
    epoch: u32,
    /// Statistics.
    pub stats: EuStats,
}

/// One slot's cached blocked-issue verdict (see [`Eu::polls`]).
#[derive(Clone, Copy, Debug)]
struct SlotPoll {
    until: u64,
    reason: StallReason,
    cause: StallCause,
}

impl Default for SlotPoll {
    fn default() -> Self {
        Self {
            until: 0,
            reason: StallReason::Stalled,
            cause: StallCause::FrontEnd,
        }
    }
}

/// Replayable result of an arbitration pass that issued nothing: until
/// `valid_until`, a fresh scan of the same (unchanged) thread set would
/// re-derive exactly these per-reason stall increments, wake-up hint, and
/// root blocking cause, because every blocked thread's ready time is a
/// stable lower bound and barrier residency only changes through a release
/// (which bumps the EU epoch).
#[derive(Clone, Copy, Debug)]
struct ArbMemo {
    valid_until: u64,
    epoch: u32,
    stalls_delta: StallStats,
    hint: Option<u64>,
    blocked: Option<StallCause>,
}

/// Instruction-fetch check: returns the extra stall (cycles) before the
/// instruction at `pc` can issue, filling the FIFO I$ on a miss. A free
/// function over the EU's I$ fields so both issue paths can call it while
/// a thread slot is borrowed.
fn ifetch_check(
    icache: &mut std::collections::VecDeque<usize>,
    icache_set: &mut Vec<u8>,
    misses: &mut u64,
    pc: usize,
    cfg: &GpuConfig,
) -> u64 {
    if cfg.icache_miss_latency == 0 || cfg.icache_insns == 0 {
        return 0;
    }
    if icache_set.get(pc).is_some_and(|&r| r != 0) {
        return 0;
    }
    *misses += 1;
    if icache.len() as u32 >= cfg.icache_insns {
        if let Some(old) = icache.pop_front() {
            icache_set[old] = 0;
        }
    }
    icache.push_back(pc);
    if pc >= icache_set.len() {
        icache_set.resize(pc + 1, 0);
    }
    icache_set[pc] = 1;
    u64::from(cfg.icache_miss_latency)
}

/// The cold half of issue bookkeeping: per-instruction profiling, the
/// issue log, and mask capture. Outlined (and never inlined) so the
/// default configuration's hot path carries a single predictable
/// `recording` branch and zero recording code.
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn record_issue_event(
    stats: &mut EuStats,
    cfg: &GpuConfig,
    engine: &dyn CompactionEngine,
    eu: u32,
    thread: u8,
    now: u64,
    pc: usize,
    mask: ExecMask,
    plan: &MicroPlan,
    effect: PlanEffect,
) {
    if cfg.profile_insns {
        let compute = matches!(effect, PlanEffect::Compute(_));
        stats.insn_profile.record(pc, mask, plan.dtype(), compute);
    }
    if cfg.record_issue_log {
        let pipe = plan.pipe();
        let waves = if pipe == Pipe::Fpu || pipe == Pipe::Em {
            engine.cycles(mask, plan.dtype())
        } else {
            0
        };
        stats.issue_log.push(IssueEvent {
            cycle: now,
            eu,
            thread,
            pipe,
            waves,
        });
    }
    if cfg.capture_masks && matches!(effect, PlanEffect::Compute(_) | PlanEffect::Memory { .. }) {
        stats.mask_trace.push((mask.bits(), mask.width() as u8));
    }
}

impl Eu {
    /// Creates an EU with `threads` empty slots.
    pub fn new(id: u32, threads: u32) -> Self {
        assert!(threads <= 64, "occupancy bitmask holds at most 64 slots");
        Self {
            id,
            slots: (0..threads).map(|_| None).collect(),
            polls: (0..threads).map(|_| SlotPoll::default()).collect(),
            occupied: 0,
            resident: 0,
            fpu_free: 0,
            em_free: 0,
            arb_ptr: 0,
            icache: std::collections::VecDeque::new(),
            icache_set: Vec::new(),
            scratch: LaneScratch::new(),
            tally_memo: iwc_compaction::TallyMemo::default(),
            arb_memo: None,
            epoch: 0,
            stats: EuStats::default(),
        }
    }

    /// Number of free thread slots.
    pub fn free_slots(&self) -> usize {
        self.slots.len() - self.resident as usize
    }

    /// True when no thread is resident.
    pub fn is_idle(&self) -> bool {
        self.resident == 0
    }

    /// Places a thread into a free slot.
    ///
    /// # Panics
    ///
    /// Panics when no slot is free.
    pub fn place(&mut self, t: HwThread) {
        let slot = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .expect("free slot");
        self.slots[slot] = Some(t);
        self.polls[slot] = SlotPoll::default();
        self.occupied |= 1 << slot;
        self.resident += 1;
        self.note_threads_changed();
    }

    /// Invalidates the replayable arbitration verdict after a thread-state
    /// change the issue path did not make itself (a thread placed, a
    /// barrier released).
    pub(crate) fn note_threads_changed(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Attempts to issue one instruction from thread slot `i` at time `now`.
    #[allow(clippy::too_many_arguments)]
    fn try_issue(
        &mut self,
        i: usize,
        now: u64,
        cfg: &GpuConfig,
        engine: &dyn CompactionEngine,
        program: &Program,
        mem: &mut MemSystem,
        img: &mut MemoryImage,
        slm: &mut MemoryImage,
        barrier_arrivals: &mut Vec<usize>,
    ) -> IssueOutcome {
        let Some(t) = self.slots[i].as_mut() else {
            return IssueOutcome::Barrier; // empty slot: nothing to do, no bound
        };
        if t.at_barrier {
            return IssueOutcome::Barrier;
        }
        if t.stalled_until > now {
            let cause = match t.stalled_src {
                StallSrc::FrontEnd => StallCause::FrontEnd,
                StallSrc::Mem => StallCause::MemLatency,
            };
            return IssueOutcome::NotReadyUntil(t.stalled_until, StallReason::Stalled, cause);
        }

        // Skip zero-mask ALU/send instructions for free (jump-over).
        let mut guard = 0usize;
        loop {
            let insn = &program.insns()[t.ctx.pc];
            let is_data_op = !matches!(insn.op.pipe(), Pipe::Control);
            if is_data_op && exec_mask_of(&t.ctx, insn).is_empty() && insn.op != Opcode::Eot {
                let skip_pc = t.ctx.pc;
                let e = execute_instruction(&mut t.ctx, program, img, slm);
                debug_assert_eq!(e.effect, Effect::SkippedZeroMask);
                self.stats.skipped_zero_mask += 1;
                if cfg.profile_insns {
                    self.stats.insn_profile.record_skip(skip_pc);
                }
                guard += 1;
                assert!(guard <= program.len() * 2, "runaway zero-mask skipping");
                continue;
            }
            break;
        }

        let pc = t.ctx.pc;
        let insn = &program.insns()[pc];

        // Scoreboard.
        let (ready, dep_from_mem) = if t.busy_max <= now {
            (0, false) // every scoreboard mark already expired
        } else {
            t.deps_ready_at(insn)
        };
        if ready > now {
            let cause = if dep_from_mem {
                StallCause::MemLatency
            } else {
                StallCause::ScoreboardDep
            };
            return IssueOutcome::NotReadyUntil(ready, StallReason::Scoreboard, cause);
        }
        // Instruction fetch: a cold I$ line stalls the thread once.
        let fetch_stall = ifetch_check(
            &mut self.icache,
            &mut self.icache_set,
            &mut self.stats.icache_misses,
            pc,
            cfg,
        );
        if fetch_stall > 0 {
            let t = self.slots[i].as_mut().expect("thread present");
            t.stalled_until = now + fetch_stall;
            t.stalled_src = StallSrc::FrontEnd;
            return IssueOutcome::NotReadyUntil(
                now + fetch_stall,
                StallReason::Ifetch,
                StallCause::FrontEnd,
            );
        }
        let t = self.slots[i].as_mut().expect("thread present");
        let insn = &program.insns()[pc];
        // Pipe availability for computation.
        match insn.op.pipe() {
            Pipe::Fpu if self.fpu_free > now => {
                return IssueOutcome::NotReadyUntil(
                    self.fpu_free,
                    StallReason::PipeBusy,
                    StallCause::PipeBusy,
                )
            }
            Pipe::Em if self.em_free > now => {
                return IssueOutcome::NotReadyUntil(
                    self.em_free,
                    StallReason::PipeBusy,
                    StallCause::PipeBusy,
                )
            }
            _ => {}
        }
        // EOT drains outstanding memory.
        if insn.op == Opcode::Eot && t.last_mem_done > now {
            return IssueOutcome::NotReadyUntil(
                t.last_mem_done,
                StallReason::MemDrain,
                StallCause::MemLatency,
            );
        }

        let exec_width = insn.exec_width;
        let dtype = insn.dtype;
        let dst = insn.dst;
        let cond_flag = insn.cond_mod.map(|cm| cm.flag);
        let n_operands = (insn
            .used_srcs()
            .iter()
            .filter(|o| o.grf_reg().is_some())
            .count()
            + usize::from(insn.dst.grf_reg().is_some())) as u64;
        let insn_pipe = insn.op.pipe();
        let executed = execute_instruction(&mut t.ctx, program, img, slm);
        self.stats.issued += 1;
        if cfg.profile_insns {
            let compute = matches!(executed.effect, Effect::Compute { .. });
            self.stats
                .insn_profile
                .record(pc, executed.mask, dtype, compute);
        }
        if cfg.record_issue_log {
            let waves = if insn_pipe == Pipe::Fpu || insn_pipe == Pipe::Em {
                engine.cycles(executed.mask, dtype)
            } else {
                0
            };
            self.stats.issue_log.push(IssueEvent {
                cycle: now,
                eu: self.id,
                thread: i as u8,
                pipe: insn_pipe,
                waves,
            });
        }

        match executed.effect {
            Effect::Compute { pipe } => {
                let mut waves = u64::from(engine.cycles(executed.mask, dtype));
                if cfg.rf_timing == crate::config::RfTiming::MultiCycle {
                    // A single-ported file serializes one register-half
                    // access per operand ahead of execution (§4.3 option 1).
                    waves += n_operands;
                }
                let (pipe_free, depth) = match pipe {
                    Pipe::Fpu => (&mut self.fpu_free, cfg.fpu_latency),
                    Pipe::Em => (&mut self.em_free, cfg.em_latency),
                    _ => unreachable!("compute on non-ALU pipe"),
                };
                *pipe_free = now + waves;
                let writeback = now + waves + u64::from(depth);
                t.mark_regs(&dst, exec_width, writeback, false);
                if let Some(f) = cond_flag {
                    t.flag_busy[f.index() as usize] = writeback;
                    t.busy_max = t.busy_max.max(writeback);
                }
                match pipe {
                    Pipe::Fpu => self.stats.fpu_waves += waves,
                    Pipe::Em => self.stats.em_waves += waves,
                    _ => {}
                }
                let d = self.tally_memo.delta(executed.mask, dtype);
                self.stats.compute_tally.add_delta(&d);
                self.stats.simd_tally.add_delta(&d);
                if cfg.capture_masks {
                    self.stats
                        .mask_trace
                        .push((executed.mask.bits(), executed.mask.width() as u8));
                }
            }
            Effect::Memory {
                space,
                is_store,
                ref lane_addrs,
            } => {
                self.stats.sends += 1;
                let d = self.tally_memo.delta(executed.mask, dtype);
                self.stats.simd_tally.add_delta(&d);
                if cfg.capture_masks {
                    self.stats
                        .mask_trace
                        .push((executed.mask.bits(), executed.mask.width() as u8));
                }
                let done = match space {
                    MemSpace::Global => {
                        let lines = mem.coalesce(lane_addrs);
                        mem.global_access(now, &lines, is_store)
                    }
                    MemSpace::Slm => mem.slm_access(now, lane_addrs),
                };
                t.last_mem_done = t.last_mem_done.max(done);
                if !is_store {
                    t.mark_regs(&dst, exec_width, done, true);
                }
            }
            Effect::Fence => {
                t.stalled_until = t.last_mem_done;
                t.stalled_src = StallSrc::Mem;
            }
            Effect::Barrier => {
                t.at_barrier = true;
                barrier_arrivals.push(t.wg);
            }
            Effect::Eot => {
                self.slots[i] = None;
                self.occupied &= !(1 << i);
                self.resident -= 1;
                return IssueOutcome::Finished;
            }
            Effect::ControlFlow => {}
            Effect::SkippedZeroMask => unreachable!("skips handled before issue"),
        }
        IssueOutcome::Issued
    }

    /// [`try_issue`](Self::try_issue) over decoded plans: identical timing
    /// decisions in the same order, but every per-issue lookup (operand
    /// ranges, pipe, classification) comes precomputed from the
    /// [`MicroPlan`], lane execution runs on raw GRF bytes, and send
    /// bookkeeping reuses the EU's [`LaneScratch`] instead of allocating.
    #[allow(clippy::too_many_arguments)]
    fn try_issue_plan(
        &mut self,
        i: usize,
        now: u64,
        cfg: &GpuConfig,
        engine: &dyn CompactionEngine,
        plans: &DecodedProgram,
        mem: &mut MemSystem,
        img: &mut MemoryImage,
        slm: &mut MemoryImage,
        barrier_arrivals: &mut Vec<usize>,
        recording: bool,
        burst: bool,
        burst_out: &mut Option<BurstScript>,
    ) -> IssueOutcome {
        let Self {
            id,
            slots,
            occupied,
            resident,
            fpu_free,
            em_free,
            icache,
            icache_set,
            scratch,
            tally_memo,
            stats,
            ..
        } = self;
        let eu_id = *id;
        let Some(t) = slots[i].as_mut() else {
            return IssueOutcome::Barrier; // empty slot: nothing to do, no bound
        };
        if t.at_barrier {
            return IssueOutcome::Barrier;
        }
        if t.stalled_until > now {
            let cause = match t.stalled_src {
                StallSrc::FrontEnd => StallCause::FrontEnd,
                StallSrc::Mem => StallCause::MemLatency,
            };
            return IssueOutcome::NotReadyUntil(t.stalled_until, StallReason::Stalled, cause);
        }

        // Skip zero-mask ALU/send instructions for free (jump-over).
        let mut guard = 0usize;
        let (plan, mask) = loop {
            let plan = plans.plan(t.ctx.pc);
            let mask = plan.exec_mask(&t.ctx);
            if plan.is_data() && mask.is_empty() {
                let skip_pc = t.ctx.pc;
                t.ctx.pc += 1;
                stats.skipped_zero_mask += 1;
                if recording && cfg.profile_insns {
                    stats.insn_profile.record_skip(skip_pc);
                }
                guard += 1;
                assert!(guard <= plans.len() * 2, "runaway zero-mask skipping");
                continue;
            }
            break (plan, mask);
        };

        let pc = t.ctx.pc;

        // Scoreboard. A thread whose every mark has expired is "clean" —
        // the burst check below reuses that fact as its no-pending-
        // writeback precondition.
        let clean = t.busy_max <= now;
        let (ready, dep_from_mem) = if clean {
            (0, false) // every scoreboard mark already expired
        } else {
            t.deps_ready_at_plan(plan)
        };
        if ready > now {
            let cause = if dep_from_mem {
                StallCause::MemLatency
            } else {
                StallCause::ScoreboardDep
            };
            return IssueOutcome::NotReadyUntil(ready, StallReason::Scoreboard, cause);
        }
        // Instruction fetch: a cold I$ line stalls the thread once.
        let fetch_stall = ifetch_check(icache, icache_set, &mut stats.icache_misses, pc, cfg);
        if fetch_stall > 0 {
            t.stalled_until = now + fetch_stall;
            t.stalled_src = StallSrc::FrontEnd;
            return IssueOutcome::NotReadyUntil(
                now + fetch_stall,
                StallReason::Ifetch,
                StallCause::FrontEnd,
            );
        }
        // Pipe availability for computation.
        match plan.pipe() {
            Pipe::Fpu if *fpu_free > now => {
                return IssueOutcome::NotReadyUntil(
                    *fpu_free,
                    StallReason::PipeBusy,
                    StallCause::PipeBusy,
                )
            }
            Pipe::Em if *em_free > now => {
                return IssueOutcome::NotReadyUntil(
                    *em_free,
                    StallReason::PipeBusy,
                    StallCause::PipeBusy,
                )
            }
            _ => {}
        }
        // EOT drains outstanding memory.
        if plan.is_eot() && t.last_mem_done > now {
            return IssueOutcome::NotReadyUntil(
                t.last_mem_done,
                StallReason::MemDrain,
                StallCause::MemLatency,
            );
        }

        let effect = execute_plan(&mut t.ctx, plan, mask, img, slm, scratch);
        stats.issued += 1;
        if recording {
            record_issue_event(
                stats, cfg, engine, eu_id, i as u8, now, pc, mask, plan, effect,
            );
        }

        match effect {
            PlanEffect::Compute(pipe) => {
                let mut waves = u64::from(engine.cycles(mask, plan.dtype()));
                if cfg.rf_timing == crate::config::RfTiming::MultiCycle {
                    // A single-ported file serializes one register-half
                    // access per operand ahead of execution (§4.3 option 1).
                    waves += plan.n_grf_operands();
                }
                let (pipe_free, depth) = match pipe {
                    Pipe::Fpu => (&mut *fpu_free, cfg.fpu_latency),
                    Pipe::Em => (&mut *em_free, cfg.em_latency),
                    _ => unreachable!("compute on non-ALU pipe"),
                };
                *pipe_free = now + waves;
                let writeback = now + waves + u64::from(depth);
                t.mark_range(plan.dst_range(), writeback, false);
                if let Some(f) = plan.cond_flag() {
                    t.flag_busy[usize::from(f)] = writeback;
                    t.busy_max = t.busy_max.max(writeback);
                }
                match pipe {
                    Pipe::Fpu => stats.fpu_waves += waves,
                    Pipe::Em => stats.em_waves += waves,
                    _ => {}
                }
                let d = tally_memo.delta(mask, plan.dtype());
                stats.compute_tally.add_delta(&d);
                stats.simd_tally.add_delta(&d);

                // Convergent burst: when this thread is the only resident
                // one, fully converged, with no pending writeback, the
                // whole hazard-free span starting here is already decided —
                // the per-plan path could only replay scoreboard-clean
                // issues separated by pipe-busy waits. Execute the span's
                // remaining plans now, charge their waves, tallies, and
                // scoreboard marks at their scheduled issue times, and hand
                // the scheduler a script of those times to replay
                // (timing-neutral; see [`crate::config::BurstMode`]).
                if burst
                    && !recording
                    && clean
                    && cfg.issue_per_cycle == 1
                    && occupied.count_ones() == 1
                    && mask.is_full()
                    && plans.burst_span(pc) >= 2
                    && engine.schedule(mask).is_none_or(|s| s.swizzle_count() == 0)
                {
                    let mut span = plans.burst_span(pc);
                    // Clamp to the I$-resident prefix: a cold line would
                    // stall the per-plan path mid-span (a hit leaves the
                    // FIFO untouched, so residency here implies residency
                    // at the scheduled issue time).
                    if cfg.icache_miss_latency > 0 && cfg.icache_insns > 0 {
                        let mut resident = 1;
                        while resident < span
                            && icache_set.get(pc + resident).is_some_and(|&r| r != 0)
                        {
                            resident += 1;
                        }
                        span = resident;
                    }
                    if span >= 2 {
                        let mut times = Vec::with_capacity(span - 1);
                        let mut t_issue = now;
                        let mut prev_waves = waves;
                        for _ in 1..span {
                            let p = plans.plan(t.ctx.pc);
                            let t_j = t_issue + prev_waves;
                            let _e = execute_plan(&mut t.ctx, p, mask, img, slm, scratch);
                            debug_assert!(matches!(_e, PlanEffect::Compute(_)));
                            let mut w = u64::from(engine.cycles(mask, p.dtype()));
                            if cfg.rf_timing == crate::config::RfTiming::MultiCycle {
                                w += p.n_grf_operands();
                            }
                            *pipe_free = t_j + w;
                            t.mark_range(p.dst_range(), t_j + w + u64::from(depth), false);
                            match pipe {
                                Pipe::Fpu => stats.fpu_waves += w,
                                Pipe::Em => stats.em_waves += w,
                                _ => {}
                            }
                            let d = tally_memo.delta(mask, p.dtype());
                            stats.compute_tally.add_delta(&d);
                            stats.simd_tally.add_delta(&d);
                            stats.issued += 1;
                            times.push(t_j);
                            t_issue = t_j;
                            prev_waves = w;
                        }
                        *burst_out = Some(BurstScript { times, at: 0 });
                    }
                }
            }
            PlanEffect::Memory { space, is_store } => {
                stats.sends += 1;
                let d = tally_memo.delta(mask, plan.dtype());
                stats.simd_tally.add_delta(&d);
                let done = match space {
                    MemSpace::Global => {
                        let addrs = &scratch.addrs[..usize::from(scratch.len)];
                        mem.coalesce_into(addrs, &mut scratch.lines);
                        mem.global_access(now, &scratch.lines, is_store)
                    }
                    MemSpace::Slm => mem.slm_access(now, scratch.addrs()),
                };
                t.last_mem_done = t.last_mem_done.max(done);
                if !is_store {
                    t.mark_range(plan.dst_range(), done, true);
                }
            }
            PlanEffect::Fence => {
                t.stalled_until = t.last_mem_done;
                t.stalled_src = StallSrc::Mem;
            }
            PlanEffect::Barrier => {
                t.at_barrier = true;
                barrier_arrivals.push(t.wg);
            }
            PlanEffect::Eot => {
                slots[i] = None;
                *occupied &= !(1 << i);
                *resident -= 1;
                return IssueOutcome::Finished;
            }
            PlanEffect::ControlFlow => {}
        }
        IssueOutcome::Issued
    }

    /// One arbitration pass (invoked every cycle): issues up to
    /// `cfg.issue_per_cycle` instructions from distinct ready threads,
    /// rotating priority. The default of 1 is the paper's "two instructions
    /// every two cycles" bandwidth at single-cycle granularity.
    ///
    /// Returns an [`ArbResult`]: the issue count, retired workgroup
    /// threads, the earliest future time at which some blocked thread
    /// becomes ready (`None` when all blocked threads wait on barriers),
    /// and — when nothing issued — the root [`StallCause`] blocking the EU.
    ///
    /// When `plans` is provided (the decoded backend), issue runs through
    /// [`MicroPlan`]s; otherwise the reference interpreter re-inspects
    /// `program` per issue. Both paths make identical timing decisions.
    #[allow(clippy::too_many_arguments)]
    pub fn arbitrate(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        engine: &dyn CompactionEngine,
        program: &Program,
        plans: Option<&DecodedProgram>,
        mem: &mut MemSystem,
        img: &mut MemoryImage,
        slms: &mut [MemoryImage],
        barrier_arrivals: &mut Vec<usize>,
        burst: bool,
    ) -> ArbResult {
        // Replay a still-valid fully-blocked verdict without touching any
        // slot: nothing this EU can observe has changed since the scan
        // that produced it.
        if let Some(m) = &self.arb_memo {
            if m.epoch == self.epoch && now < m.valid_until {
                self.stats.stalls.merge(&m.stalls_delta);
                return ArbResult {
                    issued: 0,
                    finished: Vec::new(),
                    hint: m.hint,
                    blocked: m.blocked,
                    burst: None,
                };
            }
        }
        let n = self.slots.len();
        let mut issued = 0u32;
        let mut finished = Vec::new();
        let mut hint: Option<u64> = None;
        // Soonest-ready blocked thread (strictly-earlier wins; ties keep
        // the thread visited first in arbitration order) and whether any
        // thread sat at a barrier, for root-cause attribution.
        let mut soonest: Option<(u64, StallCause)> = None;
        let mut saw_barrier = false;
        let mut stall_delta = StallStats::default();
        let recording = cfg.profile_insns || cfg.record_issue_log || cfg.capture_masks;
        let mut burst_out: Option<BurstScript> = None;
        let mut next = self.arb_ptr;
        for _ in 0..n {
            if issued >= cfg.issue_per_cycle {
                break;
            }
            let i = next;
            next = if next + 1 == n { 0 } else { next + 1 };
            if self.occupied >> i & 1 == 0 {
                continue;
            }
            // Replay a still-valid blocked verdict without re-running the
            // issue attempt — or touching the slot's thread state at all
            // (skipped under recording so per-pc stall profiles keep their
            // slow-path granularity).
            if !recording {
                let p = self.polls[i];
                if p.until > now {
                    stall_delta.add(p.reason);
                    hint = Some(hint.map_or(p.until, |h| h.min(p.until)));
                    if soonest.is_none_or(|(best, _)| p.until < best) {
                        soonest = Some((p.until, p.cause));
                    }
                    continue;
                }
            }
            let Some(t) = self.slots[i].as_ref() else {
                continue;
            };
            let wg = t.wg;
            let slm = &mut slms[t.slm_slot];
            let outcome = match plans {
                Some(p) => self.try_issue_plan(
                    i,
                    now,
                    cfg,
                    engine,
                    p,
                    mem,
                    img,
                    slm,
                    barrier_arrivals,
                    recording,
                    burst,
                    &mut burst_out,
                ),
                None => self.try_issue(
                    i,
                    now,
                    cfg,
                    engine,
                    program,
                    mem,
                    img,
                    slm,
                    barrier_arrivals,
                ),
            };
            match outcome {
                IssueOutcome::Issued => {
                    issued += 1;
                    self.arb_ptr = next;
                }
                IssueOutcome::Finished => {
                    issued += 1;
                    finished.push(wg);
                    self.arb_ptr = next;
                }
                IssueOutcome::NotReadyUntil(at, reason, cause) => {
                    stall_delta.add(reason);
                    hint = Some(hint.map_or(at, |h| h.min(at)));
                    if soonest.is_none_or(|(best, _)| at < best) {
                        soonest = Some((at, cause));
                    }
                    self.polls[i] = SlotPoll {
                        until: at,
                        // Cache what a *repeated* fresh attempt would report:
                        // an I$ miss is charged as `Ifetch` once, then the
                        // thread sits behind `stalled_until`, which reports
                        // plain `Stalled`.
                        reason: if matches!(reason, StallReason::Ifetch) {
                            StallReason::Stalled
                        } else {
                            reason
                        },
                        cause,
                    };
                }
                IssueOutcome::Barrier => saw_barrier = true,
            }
        }
        let blocked = if issued > 0 {
            None
        } else if let Some((_, cause)) = soonest {
            Some(cause)
        } else if saw_barrier {
            Some(StallCause::Barrier)
        } else {
            Some(StallCause::Drained)
        };
        self.stats.stalls.merge(&stall_delta);
        // A scan that issued nothing replays unchanged until the soonest
        // blocked thread becomes ready (with no timed waiter, until a
        // barrier release or dispatch bumps the epoch).
        self.arb_memo = if issued == 0 && !recording {
            Some(ArbMemo {
                valid_until: hint.unwrap_or(u64::MAX),
                epoch: self.epoch,
                // A repeated pass reports an I$ miss charged this pass as a
                // plain fence wait — the same first-pass-only normalization
                // the sleep path applies.
                stalls_delta: stall_delta.steady_delta_since(&StallStats::default()),
                hint,
                blocked,
            })
        } else {
            None
        };
        ArbResult {
            issued,
            finished,
            hint,
            blocked,
            burst: burst_out,
        }
    }
}
