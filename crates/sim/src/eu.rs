//! Execution-unit timing model.
//!
//! Each EU holds up to `threads_per_eu` hardware threads. Every two cycles
//! the thread arbiter issues up to two instructions from distinct ready
//! threads (§2.2). Issued computation occupies the 4-wide FPU or EM pipe for
//! the number of waves given by the active compaction mode — this is where
//! BCC/SCC turn saved waves into time. A per-thread, per-register scoreboard
//! enforces data dependences; `send` results block their destination until
//! the memory subsystem reports completion.

use crate::config::GpuConfig;
use crate::exec::{exec_mask_of, execute_instruction, Effect, ThreadCtx};
use crate::memimg::MemoryImage;
use crate::memsys::MemSystem;
use iwc_compaction::{CompactionEngine, CompactionTally};
use iwc_isa::insn::{MemSpace, Opcode, Pipe};
use iwc_isa::program::Program;
use iwc_isa::reg::GRF_BYTES;
use serde::{Deserialize, Serialize};

/// Per-EU statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EuStats {
    /// Instructions issued (consuming an issue slot).
    pub issued: u64,
    /// Zero-mask instructions skipped at no cost.
    pub skipped_zero_mask: u64,
    /// ALU waves actually issued to the FPU pipe under the active mode.
    pub fpu_waves: u64,
    /// ALU waves actually issued to the EM pipe under the active mode.
    pub em_waves: u64,
    /// Send messages issued.
    pub sends: u64,
    /// L1 instruction-cache misses.
    pub icache_misses: u64,
    /// Thread-cycle stall attribution.
    pub stalls: StallStats,
    /// Issue events for timeline rendering (when
    /// [`GpuConfig::record_issue_log`] is set).
    pub issue_log: Vec<IssueEvent>,
    /// Compaction accounting over computation instructions (cycle models
    /// for every mode, evaluated on the executed mask stream).
    pub compute_tally: CompactionTally,
    /// Mask accounting over all SIMD instructions (compute + send), used
    /// for SIMD efficiency and the utilization breakdown.
    pub simd_tally: CompactionTally,
    /// Captured execution masks of every issued SIMD instruction, in issue
    /// order, when [`GpuConfig::capture_masks`] is set: `(bits, width)`.
    pub mask_trace: Vec<(u32, u8)>,
}

/// One resident hardware thread.
#[derive(Debug)]
pub struct HwThread {
    /// Architectural state.
    pub ctx: ThreadCtx,
    /// Global workgroup index.
    pub wg: usize,
    /// Thread index within the workgroup.
    pub wg_thread: u32,
    /// The thread may not issue before this time (fence, barrier release).
    pub stalled_until: u64,
    /// Waiting at a workgroup barrier.
    pub at_barrier: bool,
    /// Per-GRF-register writeback completion times.
    reg_busy: Box<[u64]>,
    /// Per-flag-register writeback completion times.
    flag_busy: [u64; 2],
    /// Completion time of the latest outstanding memory access.
    pub last_mem_done: u64,
}

impl HwThread {
    /// Creates a resident thread from its architectural context.
    pub fn new(ctx: ThreadCtx, wg: usize, wg_thread: u32) -> Self {
        Self {
            ctx,
            wg,
            wg_thread,
            stalled_until: 0,
            at_barrier: false,
            reg_busy: vec![0u64; 128].into_boxed_slice(),
            flag_busy: [0, 0],
            last_mem_done: 0,
        }
    }

    fn mark_regs(&mut self, op: &iwc_isa::Operand, width: u32, until: u64) {
        if let Some((lo, hi)) = op.grf_byte_range(width) {
            for r in lo / GRF_BYTES..=(hi - 1) / GRF_BYTES {
                self.reg_busy[r as usize] = self.reg_busy[r as usize].max(until);
            }
        }
    }

    /// Earliest time the scoreboard allows `insn` to issue.
    fn deps_ready_at(&self, insn: &iwc_isa::Instruction) -> u64 {
        let mut at = 0u64;
        let width = insn.exec_width;
        let mut consider = |op: &iwc_isa::Operand| {
            if let Some((lo, hi)) = op.grf_byte_range(width) {
                for r in lo / GRF_BYTES..=(hi - 1) / GRF_BYTES {
                    at = at.max(self.reg_busy[r as usize]);
                }
            }
        };
        for op in insn.read_operands() {
            consider(&op);
        }
        consider(&insn.dst);
        if let Some(p) = insn.pred {
            at = at.max(self.flag_busy[p.flag.index() as usize]);
        }
        if let Some(cm) = insn.cond_mod {
            at = at.max(self.flag_busy[cm.flag.index() as usize]);
        }
        at
    }
}

/// One recorded issue event (for timeline rendering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueEvent {
    /// Cycle of issue.
    pub cycle: u64,
    /// EU thread slot.
    pub thread: u8,
    /// Pipe occupied (`Fpu`, `Em`, `Send`, or `Control` for front-end-only
    /// instructions).
    pub pipe: Pipe,
    /// Pipe-occupancy cycles (0 for control/send).
    pub waves: u32,
}

/// Why a thread could not issue this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallReason {
    /// Waiting on an earlier fence/fetch release.
    Stalled,
    /// A source/destination register or flag is still in flight
    /// (scoreboard RAW/WAW, including pending memory loads).
    Scoreboard,
    /// Instruction-cache miss.
    Ifetch,
    /// The target execution pipe is still occupied by earlier waves —
    /// exactly the cycles BCC/SCC compress.
    PipeBusy,
    /// End-of-thread draining outstanding memory.
    MemDrain,
}

/// Per-category counts of thread-cycles lost to each stall reason.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StallStats {
    /// Fence/fetch release waits.
    pub stalled: u64,
    /// Scoreboard dependences (incl. memory loads in flight).
    pub scoreboard: u64,
    /// Instruction-cache misses.
    pub ifetch: u64,
    /// Execution-pipe occupancy.
    pub pipe_busy: u64,
    /// End-of-thread memory drains.
    pub mem_drain: u64,
}

impl StallStats {
    fn add(&mut self, reason: StallReason) {
        match reason {
            StallReason::Stalled => self.stalled += 1,
            StallReason::Scoreboard => self.scoreboard += 1,
            StallReason::Ifetch => self.ifetch += 1,
            StallReason::PipeBusy => self.pipe_busy += 1,
            StallReason::MemDrain => self.mem_drain += 1,
        }
    }

    /// Merges another sample.
    pub fn merge(&mut self, other: &StallStats) {
        self.stalled += other.stalled;
        self.scoreboard += other.scoreboard;
        self.ifetch += other.ifetch;
        self.pipe_busy += other.pipe_busy;
        self.mem_drain += other.mem_drain;
    }

    /// Total stall events.
    pub fn total(&self) -> u64 {
        self.stalled + self.scoreboard + self.ifetch + self.pipe_busy + self.mem_drain
    }
}

/// Outcome of one issue attempt on one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueOutcome {
    /// An instruction was issued.
    Issued,
    /// The thread finished (`eot` retired); the slot is free.
    Finished,
    /// The thread cannot issue before the given time, for the given reason.
    NotReadyUntil(u64, StallReason),
    /// The thread is blocked on a barrier (no time bound).
    Barrier,
}

/// One execution unit.
#[derive(Debug)]
pub struct Eu {
    /// EU index.
    pub id: u32,
    /// Resident threads (None = free slot).
    pub slots: Vec<Option<HwThread>>,
    fpu_free: u64,
    em_free: u64,
    arb_ptr: usize,
    /// Instruction addresses resident in the shared L1 I$ (FIFO of PCs,
    /// capacity `cfg.icache_insns`).
    icache: std::collections::VecDeque<usize>,
    icache_set: std::collections::HashSet<usize>,
    /// Statistics.
    pub stats: EuStats,
}

impl Eu {
    /// Creates an EU with `threads` empty slots.
    pub fn new(id: u32, threads: u32) -> Self {
        Self {
            id,
            slots: (0..threads).map(|_| None).collect(),
            fpu_free: 0,
            em_free: 0,
            arb_ptr: 0,
            icache: std::collections::VecDeque::new(),
            icache_set: std::collections::HashSet::new(),
            stats: EuStats::default(),
        }
    }

    /// Instruction-fetch check: returns the extra stall (cycles) before the
    /// instruction at `pc` can issue, filling the FIFO I$ on a miss.
    fn ifetch(&mut self, pc: usize, cfg: &GpuConfig) -> u64 {
        if cfg.icache_miss_latency == 0 || cfg.icache_insns == 0 {
            return 0;
        }
        if self.icache_set.contains(&pc) {
            return 0;
        }
        self.stats.icache_misses += 1;
        if self.icache.len() as u32 >= cfg.icache_insns {
            if let Some(old) = self.icache.pop_front() {
                self.icache_set.remove(&old);
            }
        }
        self.icache.push_back(pc);
        self.icache_set.insert(pc);
        u64::from(cfg.icache_miss_latency)
    }

    /// Number of free thread slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// True when no thread is resident.
    pub fn is_idle(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Places a thread into a free slot.
    ///
    /// # Panics
    ///
    /// Panics when no slot is free.
    pub fn place(&mut self, t: HwThread) {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.is_none())
            .expect("free slot");
        *slot = Some(t);
    }

    /// Attempts to issue one instruction from thread slot `i` at time `now`.
    #[allow(clippy::too_many_arguments)]
    fn try_issue(
        &mut self,
        i: usize,
        now: u64,
        cfg: &GpuConfig,
        engine: &dyn CompactionEngine,
        program: &Program,
        mem: &mut MemSystem,
        img: &mut MemoryImage,
        slm: &mut MemoryImage,
        barrier_arrivals: &mut Vec<usize>,
    ) -> IssueOutcome {
        let Some(t) = self.slots[i].as_mut() else {
            return IssueOutcome::Barrier; // empty slot: nothing to do, no bound
        };
        if t.at_barrier {
            return IssueOutcome::Barrier;
        }
        if t.stalled_until > now {
            return IssueOutcome::NotReadyUntil(t.stalled_until, StallReason::Stalled);
        }

        // Skip zero-mask ALU/send instructions for free (jump-over).
        let mut guard = 0usize;
        loop {
            let insn = &program.insns()[t.ctx.pc];
            let is_data_op = !matches!(insn.op.pipe(), Pipe::Control);
            if is_data_op && exec_mask_of(&t.ctx, insn).is_empty() && insn.op != Opcode::Eot {
                let e = execute_instruction(&mut t.ctx, program, img, slm);
                debug_assert_eq!(e.effect, Effect::SkippedZeroMask);
                self.stats.skipped_zero_mask += 1;
                guard += 1;
                assert!(guard <= program.len() * 2, "runaway zero-mask skipping");
                continue;
            }
            break;
        }

        let pc = t.ctx.pc;
        let insn = &program.insns()[pc];

        // Scoreboard.
        let ready = t.deps_ready_at(insn);
        if ready > now {
            return IssueOutcome::NotReadyUntil(ready, StallReason::Scoreboard);
        }
        // Instruction fetch: a cold I$ line stalls the thread once.
        let fetch_stall = self.ifetch(pc, cfg);
        if fetch_stall > 0 {
            let t = self.slots[i].as_mut().expect("thread present");
            t.stalled_until = now + fetch_stall;
            return IssueOutcome::NotReadyUntil(now + fetch_stall, StallReason::Ifetch);
        }
        let t = self.slots[i].as_mut().expect("thread present");
        let insn = &program.insns()[pc];
        // Pipe availability for computation.
        match insn.op.pipe() {
            Pipe::Fpu if self.fpu_free > now => {
                return IssueOutcome::NotReadyUntil(self.fpu_free, StallReason::PipeBusy)
            }
            Pipe::Em if self.em_free > now => {
                return IssueOutcome::NotReadyUntil(self.em_free, StallReason::PipeBusy)
            }
            _ => {}
        }
        // EOT drains outstanding memory.
        if insn.op == Opcode::Eot && t.last_mem_done > now {
            return IssueOutcome::NotReadyUntil(t.last_mem_done, StallReason::MemDrain);
        }

        let exec_width = insn.exec_width;
        let dtype = insn.dtype;
        let dst = insn.dst;
        let cond_flag = insn.cond_mod.map(|cm| cm.flag);
        let n_operands = (insn
            .used_srcs()
            .iter()
            .filter(|o| o.grf_reg().is_some())
            .count()
            + usize::from(insn.dst.grf_reg().is_some())) as u64;
        let insn_pipe = insn.op.pipe();
        let executed = execute_instruction(&mut t.ctx, program, img, slm);
        self.stats.issued += 1;
        if cfg.record_issue_log {
            let waves = if insn_pipe == Pipe::Fpu || insn_pipe == Pipe::Em {
                engine.cycles(executed.mask, dtype)
            } else {
                0
            };
            self.stats.issue_log.push(IssueEvent {
                cycle: now,
                thread: i as u8,
                pipe: insn_pipe,
                waves,
            });
        }

        match executed.effect {
            Effect::Compute { pipe } => {
                let mut waves = u64::from(engine.cycles(executed.mask, dtype));
                if cfg.rf_timing == crate::config::RfTiming::MultiCycle {
                    // A single-ported file serializes one register-half
                    // access per operand ahead of execution (§4.3 option 1).
                    waves += n_operands;
                }
                let (pipe_free, depth) = match pipe {
                    Pipe::Fpu => (&mut self.fpu_free, cfg.fpu_latency),
                    Pipe::Em => (&mut self.em_free, cfg.em_latency),
                    _ => unreachable!("compute on non-ALU pipe"),
                };
                *pipe_free = now + waves;
                let writeback = now + waves + u64::from(depth);
                t.mark_regs(&dst, exec_width, writeback);
                if let Some(f) = cond_flag {
                    t.flag_busy[f.index() as usize] = writeback;
                }
                match pipe {
                    Pipe::Fpu => self.stats.fpu_waves += waves,
                    Pipe::Em => self.stats.em_waves += waves,
                    _ => {}
                }
                self.stats.compute_tally.add(executed.mask, dtype);
                self.stats.simd_tally.add(executed.mask, dtype);
                if cfg.capture_masks {
                    self.stats
                        .mask_trace
                        .push((executed.mask.bits(), executed.mask.width() as u8));
                }
            }
            Effect::Memory {
                space,
                is_store,
                ref lane_addrs,
            } => {
                self.stats.sends += 1;
                self.stats.simd_tally.add(executed.mask, dtype);
                if cfg.capture_masks {
                    self.stats
                        .mask_trace
                        .push((executed.mask.bits(), executed.mask.width() as u8));
                }
                let done = match space {
                    MemSpace::Global => {
                        let lines = mem.coalesce(lane_addrs);
                        mem.global_access(now, &lines, is_store)
                    }
                    MemSpace::Slm => mem.slm_access(now, lane_addrs),
                };
                t.last_mem_done = t.last_mem_done.max(done);
                if !is_store {
                    t.mark_regs(&dst, exec_width, done);
                }
            }
            Effect::Fence => {
                t.stalled_until = t.last_mem_done;
            }
            Effect::Barrier => {
                t.at_barrier = true;
                barrier_arrivals.push(t.wg);
            }
            Effect::Eot => {
                self.slots[i] = None;
                return IssueOutcome::Finished;
            }
            Effect::ControlFlow => {}
            Effect::SkippedZeroMask => unreachable!("skips handled before issue"),
        }
        IssueOutcome::Issued
    }

    /// One arbitration pass (invoked every cycle): issues up to
    /// `cfg.issue_per_cycle` instructions from distinct ready threads,
    /// rotating priority. The default of 1 is the paper's "two instructions
    /// every two cycles" bandwidth at single-cycle granularity.
    ///
    /// Returns `(issued, finished_wg_threads, hint)` where `hint` is the
    /// earliest future time at which some blocked thread becomes ready
    /// (`None` when all blocked threads wait on barriers).
    #[allow(clippy::too_many_arguments)]
    pub fn arbitrate(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        engine: &dyn CompactionEngine,
        program: &Program,
        mem: &mut MemSystem,
        img: &mut MemoryImage,
        slms: &mut [MemoryImage],
        slm_index: &std::collections::HashMap<usize, usize>,
        barrier_arrivals: &mut Vec<usize>,
    ) -> (u32, Vec<usize>, Option<u64>) {
        let n = self.slots.len();
        let mut issued = 0u32;
        let mut finished = Vec::new();
        let mut hint: Option<u64> = None;
        let start = self.arb_ptr;
        for k in 0..n {
            if issued >= cfg.issue_per_cycle {
                break;
            }
            let i = (start + k) % n;
            let Some(t) = self.slots[i].as_ref() else {
                continue;
            };
            let wg = t.wg;
            let slm_idx = *slm_index.get(&wg).expect("resident wg has an SLM slot");
            let slm = &mut slms[slm_idx];
            match self.try_issue(
                i,
                now,
                cfg,
                engine,
                program,
                mem,
                img,
                slm,
                barrier_arrivals,
            ) {
                IssueOutcome::Issued => {
                    issued += 1;
                    self.arb_ptr = (i + 1) % n;
                }
                IssueOutcome::Finished => {
                    issued += 1;
                    finished.push(wg);
                    self.arb_ptr = (i + 1) % n;
                }
                IssueOutcome::NotReadyUntil(at, reason) => {
                    self.stats.stalls.add(reason);
                    hint = Some(hint.map_or(at, |h| h.min(at)));
                }
                IssueOutcome::Barrier => {}
            }
        }
        (issued, finished, hint)
    }
}
