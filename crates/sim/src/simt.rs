//! Per-thread SIMT control-flow state.
//!
//! Divergent control flow is handled the classic way (§1 of the paper):
//! both sides of a branch execute with complementary execution masks,
//! maintained on a per-thread reconvergence stack. The [`SimtStack`] tracks
//! the current execution mask, `if`/`else` frames, and loop frames with
//! `break`/`continue` support.
//!
//! `break`/`continue` never jump directly: they clear channels from the
//! current mask and from every pending `if` frame inside the loop. The
//! cleared channels reconverge at the loop exit (`while` restores the loop
//! entry mask). Instructions whose mask becomes all-zero are skipped by the
//! issue logic at zero pipe cost, which models the hardware's
//! branch-over-disabled-code behavior.

use iwc_isa::mask::ExecMask;
use iwc_isa::reg::Predicate;

/// One reconvergence-stack frame.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Frame {
    If {
        restore: ExecMask,
        else_mask: ExecMask,
    },
    Loop {
        enter: ExecMask,
        continued: ExecMask,
    },
}

/// SIMT reconvergence stack of one EU thread.
#[derive(Clone, Debug)]
pub struct SimtStack {
    width: u32,
    exec: ExecMask,
    frames: Vec<Frame>,
}

impl SimtStack {
    /// Creates a stack for a thread dispatched with `dispatch_mask` enabled
    /// channels.
    pub fn new(dispatch_mask: ExecMask) -> Self {
        Self {
            width: dispatch_mask.width(),
            exec: dispatch_mask,
            frames: Vec::new(),
        }
    }

    /// Current execution mask.
    pub fn exec(&self) -> ExecMask {
        self.exec
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Converts a predicate into a channel mask using the thread's flag bits.
    pub fn pred_mask(&self, pred: Predicate, flag_bits: u32) -> ExecMask {
        let m = ExecMask::new(flag_bits, self.width);
        if pred.invert {
            m.not()
        } else {
            m
        }
    }

    /// Executes `if`: channels in `cond` take the `if` side. Returns a jump
    /// target (`jip`: the matching `else`/`endif`) when no channel takes it.
    pub fn exec_if(&mut self, cond: ExecMask, jip: usize) -> Option<usize> {
        let taken = self.exec.and(cond);
        let else_mask = self.exec.and_not(cond);
        self.frames.push(Frame::If {
            restore: self.exec,
            else_mask,
        });
        self.exec = taken;
        if taken.is_empty() {
            Some(jip)
        } else {
            None
        }
    }

    /// Executes `else`. Returns a jump target (`jip`: the `endif`) when no
    /// channel takes the else side.
    ///
    /// # Panics
    ///
    /// Panics when the innermost frame is not an `if` frame.
    pub fn exec_else(&mut self, jip: usize) -> Option<usize> {
        match self.frames.last_mut() {
            Some(Frame::If { else_mask, .. }) => {
                self.exec = *else_mask;
                *else_mask = ExecMask::none(self.width);
                if self.exec.is_empty() {
                    Some(jip)
                } else {
                    None
                }
            }
            other => panic!("else without if frame (top = {other:?})"),
        }
    }

    /// Executes `endif`, reconverging the region.
    ///
    /// # Panics
    ///
    /// Panics when the innermost frame is not an `if` frame.
    pub fn exec_endif(&mut self) {
        match self.frames.pop() {
            Some(Frame::If { restore, .. }) => self.exec = restore,
            other => panic!("endif without if frame (top = {other:?})"),
        }
    }

    /// Executes `do`, opening a loop.
    pub fn exec_do(&mut self) {
        self.frames.push(Frame::Loop {
            enter: self.exec,
            continued: ExecMask::none(self.width),
        });
    }

    /// Executes `while`: channels in `cond` iterate again. Returns the body
    /// start to jump to, or `None` when the loop exits (mask restored to the
    /// loop entry mask).
    ///
    /// # Panics
    ///
    /// Panics when the innermost frame is not a loop frame.
    pub fn exec_while(&mut self, cond: ExecMask, body_start: usize) -> Option<usize> {
        match self.frames.last_mut() {
            Some(Frame::Loop { enter, continued }) => {
                let merged = self.exec.or(*continued);
                *continued = ExecMask::none(self.width);
                let cont = merged.and(cond);
                if cont.is_empty() {
                    self.exec = *enter;
                    self.frames.pop();
                    None
                } else {
                    self.exec = cont;
                    Some(body_start)
                }
            }
            other => panic!("while without loop frame (top = {other:?})"),
        }
    }

    /// Executes `break`: channels in `taken` leave the innermost loop. They
    /// are also removed from every pending `if` frame inside the loop so
    /// they cannot resurface before the loop exit.
    ///
    /// # Panics
    ///
    /// Panics when there is no enclosing loop frame.
    pub fn exec_break(&mut self, taken: ExecMask) {
        let taken = self.exec.and(taken);
        self.exec = self.exec.and_not(taken);
        for f in self.frames.iter_mut().rev() {
            match f {
                Frame::If { restore, else_mask } => {
                    *restore = restore.and_not(taken);
                    *else_mask = else_mask.and_not(taken);
                }
                Frame::Loop { .. } => return,
            }
        }
        panic!("break without loop frame");
    }

    /// Executes `continue`: channels in `taken` jump to the loop back-edge.
    ///
    /// # Panics
    ///
    /// Panics when there is no enclosing loop frame.
    pub fn exec_continue(&mut self, taken: ExecMask) {
        let taken = self.exec.and(taken);
        self.exec = self.exec.and_not(taken);
        for f in self.frames.iter_mut().rev() {
            match f {
                Frame::If { restore, else_mask } => {
                    *restore = restore.and_not(taken);
                    *else_mask = else_mask.and_not(taken);
                }
                Frame::Loop { continued, .. } => {
                    *continued = continued.or(taken);
                    return;
                }
            }
        }
        panic!("continue without loop frame");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::reg::FlagReg;

    fn full16() -> SimtStack {
        SimtStack::new(ExecMask::all(16))
    }

    #[test]
    fn if_else_endif_masks() {
        let mut s = full16();
        let cond = ExecMask::new(0x000F, 16);
        assert_eq!(s.exec_if(cond, 10), None);
        assert_eq!(s.exec().bits(), 0x000F);
        assert_eq!(s.exec_else(20), None);
        assert_eq!(s.exec().bits(), 0xFFF0);
        s.exec_endif();
        assert!(s.exec().is_full());
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn empty_if_side_jumps() {
        let mut s = full16();
        assert_eq!(s.exec_if(ExecMask::none(16), 7), Some(7));
        assert!(s.exec().is_empty());
        assert_eq!(s.exec_else(9), None, "all channels take the else side");
        assert!(s.exec().is_full());
        s.exec_endif();
    }

    #[test]
    fn empty_else_side_jumps() {
        let mut s = full16();
        assert_eq!(s.exec_if(ExecMask::all(16), 7), None);
        assert_eq!(s.exec_else(9), Some(9));
        s.exec_endif();
        assert!(s.exec().is_full());
    }

    #[test]
    fn nested_if_restores_correctly() {
        let mut s = full16();
        s.exec_if(ExecMask::new(0x00FF, 16), 0);
        s.exec_if(ExecMask::new(0x000F, 16), 0);
        assert_eq!(s.exec().bits(), 0x000F);
        s.exec_endif();
        assert_eq!(s.exec().bits(), 0x00FF);
        s.exec_endif();
        assert!(s.exec().is_full());
    }

    #[test]
    fn loop_iterates_and_exits() {
        let mut s = full16();
        s.exec_do();
        // First trip: half the channels continue.
        assert_eq!(s.exec_while(ExecMask::new(0x00FF, 16), 3), Some(3));
        assert_eq!(s.exec().bits(), 0x00FF);
        // Second trip: none continue → exit, full mask restored.
        assert_eq!(s.exec_while(ExecMask::none(16), 3), None);
        assert!(s.exec().is_full());
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn break_removes_channels_until_exit() {
        let mut s = full16();
        s.exec_do();
        s.exec_break(ExecMask::new(0x000F, 16));
        assert_eq!(s.exec().bits(), 0xFFF0);
        // Remaining channels keep looping once.
        assert_eq!(s.exec_while(ExecMask::new(0xFFF0, 16), 1), Some(1));
        assert_eq!(s.exec().bits(), 0xFFF0);
        // Exit: everyone (including broken channels) reconverges.
        assert_eq!(s.exec_while(ExecMask::none(16), 1), None);
        assert!(s.exec().is_full());
    }

    #[test]
    fn break_inside_if_clears_pending_frames() {
        let mut s = full16();
        s.exec_do();
        s.exec_if(ExecMask::new(0x00FF, 16), 0);
        // Channels 0-3 break while inside the if.
        s.exec_break(ExecMask::new(0x000F, 16));
        assert_eq!(s.exec().bits(), 0x00F0);
        // The else side must not contain the broken channels.
        s.exec_else(0);
        assert_eq!(s.exec().bits(), 0xFF00);
        s.exec_endif();
        // After endif only non-broken channels remain in the loop body.
        assert_eq!(s.exec().bits(), 0xFFF0);
        assert_eq!(s.exec_while(ExecMask::none(16), 1), None);
        assert!(s.exec().is_full(), "broken channels rejoin at loop exit");
    }

    #[test]
    fn continue_rejoins_at_while() {
        let mut s = full16();
        s.exec_do();
        s.exec_continue(ExecMask::new(0xFF00, 16));
        assert_eq!(s.exec().bits(), 0x00FF);
        // At the while, continued channels are merged back before the
        // condition is evaluated.
        assert_eq!(s.exec_while(ExecMask::new(0xF00F, 16), 2), Some(2));
        assert_eq!(s.exec().bits(), 0xF00F);
    }

    #[test]
    fn pred_mask_inversion() {
        let s = full16();
        let p = Predicate::normal(FlagReg::F0);
        assert_eq!(s.pred_mask(p, 0x00FF).bits(), 0x00FF);
        let p = Predicate::inverted(FlagReg::F0);
        assert_eq!(s.pred_mask(p, 0x00FF).bits(), 0xFF00);
    }

    #[test]
    #[should_panic(expected = "break without loop frame")]
    fn break_requires_loop() {
        let mut s = full16();
        s.exec_break(ExecMask::all(16));
    }

    #[test]
    fn partial_dispatch_mask() {
        // A thread covering a partial workgroup tail starts with a partial
        // mask; control flow must stay within it.
        let mut s = SimtStack::new(ExecMask::new(0x003F, 16));
        s.exec_if(ExecMask::all(16), 0);
        assert_eq!(s.exec().bits(), 0x003F);
        s.exec_else(0);
        assert!(s.exec().is_empty());
        s.exec_endif();
        assert_eq!(s.exec().bits(), 0x003F);
    }
}
