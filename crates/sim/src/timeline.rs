//! ASCII issue-timeline rendering for debugging small runs.
//!
//! With [`GpuConfig::record_issue_log`](crate::GpuConfig) enabled, every
//! issue event is captured; [`render`] draws per-pipe occupancy over time
//! with one letter per issuing thread, making divergence compression
//! directly visible:
//!
//! ```text
//! cycle 0         1         2
//!       0123456789012345678901234567890
//! FPU   AAAA....BBBB....AAAA....BBBB...
//! EM    ....XXXXXXXXXXXX...............
//! SEND  ..A......B.....................
//! ```

use crate::eu::IssueEvent;
use iwc_isa::insn::Pipe;

/// Renders the first `until` cycles of an issue log as an ASCII chart. Rows:
/// FPU/EM pipe occupancy (letter = thread, repeated for each wave), SEND
/// issue markers, and front-end (control) issue markers.
pub fn render(events: &[IssueEvent], until: u64) -> String {
    let width = until as usize;
    let mut fpu = vec!['.'; width];
    let mut em = vec!['.'; width];
    let mut send = vec!['.'; width];
    let mut ctl = vec!['.'; width];
    let glyph = |t: u8| (b'A' + t % 26) as char;
    for e in events {
        let c = e.cycle as usize;
        if c >= width {
            continue;
        }
        match e.pipe {
            Pipe::Fpu | Pipe::Em => {
                let row = if e.pipe == Pipe::Fpu {
                    &mut fpu
                } else {
                    &mut em
                };
                for k in 0..e.waves as usize {
                    if c + k < width {
                        row[c + k] = glyph(e.thread);
                    }
                }
            }
            Pipe::Send => send[c] = glyph(e.thread),
            Pipe::Control => ctl[c] = glyph(e.thread),
        }
    }
    let mut out = String::new();
    out.push_str("cycle ");
    for c in 0..width {
        out.push(if c % 10 == 0 {
            char::from_digit((c / 10 % 10) as u32, 10).unwrap()
        } else {
            ' '
        });
    }
    out.push_str("\n      ");
    for c in 0..width {
        out.push(char::from_digit((c % 10) as u32, 10).unwrap());
    }
    out.push('\n');
    for (label, row) in [
        ("FPU  ", fpu),
        ("EM   ", em),
        ("SEND ", send),
        ("CTRL ", ctl),
    ] {
        out.push_str(label);
        out.push(' ');
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Fraction of the first `until` cycles in which the FPU pipe was occupied —
/// a quick utilization check for tests and reports.
pub fn fpu_utilization(events: &[IssueEvent], until: u64) -> f64 {
    let mut busy = vec![false; until as usize];
    for e in events {
        if e.pipe == Pipe::Fpu {
            for k in 0..e.waves as u64 {
                if e.cycle + k < until {
                    busy[(e.cycle + k) as usize] = true;
                }
            }
        }
    }
    busy.iter().filter(|&&b| b).count() as f64 / (until as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, GpuConfig, Launch, MemoryImage};
    use iwc_isa::builder::KernelBuilder;
    use iwc_isa::reg::Operand;

    fn run_logged() -> Vec<IssueEvent> {
        let mut b = KernelBuilder::new("tiny", 16);
        b.mov(Operand::rf(6), Operand::imm_f(1.0));
        b.mad(
            Operand::rf(8),
            Operand::rf(6),
            Operand::imm_f(2.0),
            Operand::imm_f(0.5),
        );
        b.math(iwc_isa::Opcode::Rsqrt, Operand::rf(10), Operand::rf(8));
        let p = b.finish().unwrap();
        let cfg = GpuConfig::single_eu().with_issue_log(true);
        let mut img = MemoryImage::new(1 << 12);
        let r = simulate(&cfg, &Launch::new(p, 16, 16), &mut img).unwrap();
        r.eu.issue_log
    }

    #[test]
    fn log_records_pipes_and_waves() {
        let log = run_logged();
        assert!(log.iter().any(|e| e.pipe == Pipe::Fpu && e.waves == 4));
        assert!(log.iter().any(|e| e.pipe == Pipe::Em && e.waves == 4));
        // Events are in nondecreasing cycle order per EU.
        assert!(log.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn render_shows_occupancy() {
        let log = run_logged();
        // Each cold instruction pays one I$ miss (20 cycles), so the window
        // must cover the whole staggered run.
        let chart = render(&log, 120);
        assert!(chart.contains("FPU"), "{chart}");
        let fpu_row = chart.lines().find(|l| l.starts_with("FPU")).unwrap();
        assert!(
            fpu_row.matches('A').count() >= 8,
            "two SIMD16 FPU ops = 8 waves: {chart}"
        );
    }

    #[test]
    fn utilization_bounds() {
        let log = run_logged();
        let u = fpu_utilization(&log, 120);
        assert!((0.0..=1.0).contains(&u));
        assert!(u > 0.05, "FPU did some work: {u}");
    }

    #[test]
    fn disabled_log_is_empty() {
        let mut b = KernelBuilder::new("t", 16);
        b.mov(Operand::rf(6), Operand::imm_f(1.0));
        let p = b.finish().unwrap();
        let mut img = MemoryImage::new(1 << 12);
        let r = simulate(&GpuConfig::single_eu(), &Launch::new(p, 16, 16), &mut img).unwrap();
        assert!(r.eu.issue_log.is_empty());
    }
}
