//! ASCII issue-timeline rendering for debugging small runs.
//!
//! With [`GpuConfig::record_issue_log`](crate::GpuConfig) enabled, every
//! issue event is captured; [`render`] draws per-pipe occupancy over time
//! with one letter per issuing thread, making divergence compression
//! directly visible:
//!
//! ```text
//! cycle 0         1         2
//!       0123456789012345678901234567890
//! FPU   AAAA....BBBB....AAAA....BBBB...
//! EM    ....XXXXXXXXXXXX...............
//! SEND  ..A......B.....................
//! ```

use crate::eu::{IssueEvent, StallSpan};
use iwc_isa::insn::Pipe;
use iwc_telemetry::chrome::ChromeTrace;

/// Renders an issue log as an ASCII chart covering at least `until` cycles.
/// Rows: FPU/EM pipe occupancy (letter = thread, repeated for each wave),
/// SEND issue markers, and front-end (control) issue markers.
///
/// Rows are sized to `max(until, last event's cycle + waves)`, so a log
/// that runs past the requested window widens the chart rather than being
/// silently truncated.
pub fn render(events: &[IssueEvent], until: u64) -> String {
    let width = events
        .iter()
        .map(|e| e.cycle + u64::from(e.waves.max(1)))
        .max()
        .unwrap_or(0)
        .max(until) as usize;
    let mut fpu = vec!['.'; width];
    let mut em = vec!['.'; width];
    let mut send = vec!['.'; width];
    let mut ctl = vec!['.'; width];
    let glyph = |t: u8| (b'A' + t % 26) as char;
    for e in events {
        let c = e.cycle as usize;
        if c >= width {
            continue;
        }
        match e.pipe {
            Pipe::Fpu | Pipe::Em => {
                let row = if e.pipe == Pipe::Fpu {
                    &mut fpu
                } else {
                    &mut em
                };
                for k in 0..e.waves as usize {
                    if c + k < width {
                        row[c + k] = glyph(e.thread);
                    }
                }
            }
            Pipe::Send => send[c] = glyph(e.thread),
            Pipe::Control => ctl[c] = glyph(e.thread),
        }
    }
    let mut out = String::new();
    out.push_str("cycle ");
    for c in 0..width {
        out.push(if c % 10 == 0 {
            char::from_digit((c / 10 % 10) as u32, 10).unwrap()
        } else {
            ' '
        });
    }
    out.push_str("\n      ");
    for c in 0..width {
        out.push(char::from_digit((c % 10) as u32, 10).unwrap());
    }
    out.push('\n');
    for (label, row) in [
        ("FPU  ", fpu),
        ("EM   ", em),
        ("SEND ", send),
        ("CTRL ", ctl),
    ] {
        out.push_str(label);
        out.push(' ');
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Fraction of the first `until` cycles in which the FPU pipe was occupied —
/// a quick utilization check for tests and reports.
pub fn fpu_utilization(events: &[IssueEvent], until: u64) -> f64 {
    let mut busy = vec![false; until as usize];
    for e in events {
        if e.pipe == Pipe::Fpu {
            for k in 0..e.waves as u64 {
                if e.cycle + k < until {
                    busy[(e.cycle + k) as usize] = true;
                }
            }
        }
    }
    busy.iter().filter(|&&b| b).count() as f64 / (until as f64).max(1.0)
}

/// Converts an issue log (plus the matching stall spans) into a Chrome
/// trace-event document openable in Perfetto or `chrome://tracing`:
///
/// * one **process** per EU (`"EU0"`, `"EU1"`, …);
/// * one **track** (thread) per execution pipe — `fpu`, `em`, `send`,
///   `ctrl` — plus a `stall` track;
/// * one complete **slice** per issue event, named by the issuing thread
///   slot (`"t0"`…), lasting the event's pipe-occupancy waves (control and
///   send issues render as 1-cycle markers);
/// * one **async span** per attributed stall interval, named by its
///   [`StallCause`](crate::StallCause).
///
/// One simulated cycle maps to one microsecond, so the viewer's time axis
/// reads directly as cycles.
pub fn chrome_trace(events: &[IssueEvent], stalls: &[StallSpan]) -> ChromeTrace {
    const PIPE_TRACKS: [(Pipe, u32, &str); 4] = [
        (Pipe::Fpu, 1, "fpu"),
        (Pipe::Em, 2, "em"),
        (Pipe::Send, 3, "send"),
        (Pipe::Control, 4, "ctrl"),
    ];
    const STALL_TID: u32 = 5;
    let tid_of = |pipe: Pipe| {
        PIPE_TRACKS
            .iter()
            .find(|(p, _, _)| *p == pipe)
            .map(|&(_, tid, _)| tid)
            .expect("every pipe has a track")
    };
    let mut tr = ChromeTrace::new();
    let mut eus: Vec<u32> = events
        .iter()
        .map(|e| e.eu)
        .chain(stalls.iter().map(|s| s.eu))
        .collect();
    eus.sort_unstable();
    eus.dedup();
    for &eu in &eus {
        tr.name_process(eu, &format!("EU{eu}"));
        for &(_, tid, label) in &PIPE_TRACKS {
            tr.name_thread(eu, tid, label);
        }
        tr.name_thread(eu, STALL_TID, "stall");
    }
    for e in events {
        tr.slice(
            e.eu,
            tid_of(e.pipe),
            &format!("t{}", e.thread),
            "issue",
            e.cycle,
            u64::from(e.waves.max(1)),
        );
    }
    for s in stalls {
        tr.span(s.eu, STALL_TID, s.cause.label(), "stall", s.start, s.len);
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, GpuConfig, Launch, MemoryImage};
    use iwc_isa::builder::KernelBuilder;
    use iwc_isa::reg::Operand;

    fn run_logged() -> Vec<IssueEvent> {
        let mut b = KernelBuilder::new("tiny", 16);
        b.mov(Operand::rf(6), Operand::imm_f(1.0));
        b.mad(
            Operand::rf(8),
            Operand::rf(6),
            Operand::imm_f(2.0),
            Operand::imm_f(0.5),
        );
        b.math(iwc_isa::Opcode::Rsqrt, Operand::rf(10), Operand::rf(8));
        let p = b.finish().unwrap();
        let cfg = GpuConfig::single_eu().with_issue_log(true);
        let mut img = MemoryImage::new(1 << 12);
        let r = simulate(&cfg, &Launch::new(p, 16, 16), &mut img).unwrap();
        r.eu.issue_log
    }

    #[test]
    fn log_records_pipes_and_waves() {
        let log = run_logged();
        assert!(log.iter().any(|e| e.pipe == Pipe::Fpu && e.waves == 4));
        assert!(log.iter().any(|e| e.pipe == Pipe::Em && e.waves == 4));
        // Events are in nondecreasing cycle order per EU.
        assert!(log.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn render_shows_occupancy() {
        let log = run_logged();
        // Each cold instruction pays one I$ miss (20 cycles), so the window
        // must cover the whole staggered run.
        let chart = render(&log, 120);
        assert!(chart.contains("FPU"), "{chart}");
        let fpu_row = chart.lines().find(|l| l.starts_with("FPU")).unwrap();
        assert!(
            fpu_row.matches('A').count() >= 8,
            "two SIMD16 FPU ops = 8 waves: {chart}"
        );
    }

    #[test]
    fn utilization_bounds() {
        let log = run_logged();
        let u = fpu_utilization(&log, 120);
        assert!((0.0..=1.0).contains(&u));
        assert!(u > 0.05, "FPU did some work: {u}");
    }

    #[test]
    fn render_widens_past_until_for_late_events() {
        // Regression: events past `until` used to be silently dropped; the
        // chart must instead widen to cover `cycle + waves` of the last
        // event.
        let log = vec![
            IssueEvent {
                cycle: 2,
                eu: 0,
                thread: 0,
                pipe: Pipe::Fpu,
                waves: 4,
            },
            IssueEvent {
                cycle: 40,
                eu: 0,
                thread: 1,
                pipe: Pipe::Fpu,
                waves: 4,
            },
        ];
        let chart = render(&log, 10);
        let fpu_row = chart.lines().find(|l| l.starts_with("FPU")).unwrap();
        assert_eq!(fpu_row.len(), "FPU   ".len() + 44, "sized to 40 + 4");
        assert_eq!(fpu_row.matches('A').count(), 4);
        assert_eq!(fpu_row.matches('B').count(), 4, "late event kept: {chart}");
        // `until` still sets the minimum width when it is the larger bound.
        let narrow = render(&log[..1], 10);
        let row = narrow.lines().find(|l| l.starts_with("FPU")).unwrap();
        assert_eq!(row.len(), "FPU   ".len() + 10);
    }

    #[test]
    fn chrome_trace_exports_and_validates() {
        let log = run_logged();
        assert!(log.iter().all(|e| e.eu == 0), "single-EU run");
        let stalls = vec![
            crate::StallSpan {
                eu: 0,
                start: 0,
                len: 20,
                cause: crate::StallCause::FrontEnd,
            },
            crate::StallSpan {
                eu: 0,
                start: 25,
                len: 3,
                cause: crate::StallCause::ScoreboardDep,
            },
        ];
        let tr = chrome_trace(&log, &stalls);
        let json = tr.to_json();
        let stats = iwc_telemetry::chrome::validate(&json).expect("trace validates");
        assert_eq!(stats.slices, log.len());
        assert_eq!(stats.async_events, 2 * stalls.len());
        assert!(json.contains("\"EU0\""), "{json}");
        assert!(json.contains("front_end"), "{json}");
        // Deterministic bytes.
        assert_eq!(json, chrome_trace(&log, &stalls).to_json());
    }

    #[test]
    fn disabled_log_is_empty() {
        let mut b = KernelBuilder::new("t", 16);
        b.mov(Operand::rf(6), Operand::imm_f(1.0));
        let p = b.finish().unwrap();
        let mut img = MemoryImage::new(1 << 12);
        let r = simulate(&GpuConfig::single_eu(), &Launch::new(p, 16, 16), &mut img).unwrap();
        assert!(r.eu.issue_log.is_empty());
    }
}
