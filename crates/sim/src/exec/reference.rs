//! The reference interpreter: semantic ground truth for instruction
//! execution.
//!
//! This is the original straight-from-the-ISA interpreter. It re-inspects
//! the [`Instruction`](iwc_isa::insn::Instruction) on every issue and routes every lane value through
//! the widened [`Scalar`](iwc_isa::Scalar) enum, which makes it easy to
//! audit against the ISA definition but slow. The decode-once plan layer
//! ([`crate::plan`]) is the production path; this interpreter remains the
//! oracle the differential tests compare against, and stays selectable at
//! runtime via `GpuConfig::exec` / the `IWC_EXEC=reference` escape hatch.

use super::{ctl, exec_mask_of, pred_bits, Effect, Executed, ThreadCtx};
use crate::memimg::MemoryImage;
use iwc_isa::eval::{eval_alu, eval_cond};
use iwc_isa::insn::{MemSpace, Opcode, Pipe, SendMessage};
use iwc_isa::program::Program;

/// Executes `insn` functionally, updating the thread context, global memory
/// and (for SLM messages) the workgroup's SLM image.
///
/// # Panics
///
/// Panics on malformed programs (e.g. `while` without predicate), which the
/// builder cannot produce.
pub fn execute_instruction(
    ctx: &mut ThreadCtx,
    program: &Program,
    mem: &mut MemoryImage,
    slm: &mut MemoryImage,
) -> Executed {
    let insn = &program.insns()[ctx.pc];
    let mask = exec_mask_of(ctx, insn);

    match insn.op {
        // ---- control flow ----
        Opcode::If => {
            let p = insn.pred.expect("if requires a predicate");
            let cond = pred_bits(ctx, p);
            let jump = ctx.simt.exec_if(cond, insn.jip.expect("resolved jip"));
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            return ctl(mask);
        }
        Opcode::Else => {
            let jump = ctx.simt.exec_else(insn.jip.expect("resolved jip"));
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            return ctl(mask);
        }
        Opcode::EndIf => {
            ctx.simt.exec_endif();
            ctx.pc += 1;
            return ctl(mask);
        }
        Opcode::Do => {
            ctx.simt.exec_do();
            ctx.pc += 1;
            return ctl(mask);
        }
        Opcode::While => {
            let p = insn.pred.expect("while requires a predicate");
            let cond = pred_bits(ctx, p);
            let jump = ctx.simt.exec_while(cond, insn.jip.expect("resolved jip"));
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            return ctl(mask);
        }
        Opcode::Break => {
            let p = insn.pred.expect("break requires a predicate");
            ctx.simt.exec_break(pred_bits(ctx, p));
            ctx.pc += 1;
            return ctl(mask);
        }
        Opcode::Continue => {
            let p = insn.pred.expect("continue requires a predicate");
            ctx.simt.exec_continue(pred_bits(ctx, p));
            ctx.pc += 1;
            return ctl(mask);
        }
        Opcode::Jmpi => {
            ctx.pc = insn.jip.expect("resolved jip");
            return ctl(mask);
        }
        Opcode::Nop => {
            ctx.pc += 1;
            return ctl(mask);
        }
        Opcode::Barrier => {
            ctx.pc += 1;
            return Executed {
                mask,
                effect: Effect::Barrier,
            };
        }
        Opcode::Eot => {
            return Executed {
                mask,
                effect: Effect::Eot,
            };
        }
        _ => {}
    }

    // ---- ALU / send: a zero mask is skipped outright ----
    if mask.is_empty() {
        ctx.pc += 1;
        return Executed {
            mask,
            effect: Effect::SkippedZeroMask,
        };
    }

    match insn.op {
        Opcode::Send => {
            let msg = insn.msg.expect("send carries a message");
            let executed = match msg {
                SendMessage::Fence => {
                    ctx.pc += 1;
                    return Executed {
                        mask,
                        effect: Effect::Fence,
                    };
                }
                SendMessage::Load { space, addr, dtype } => {
                    let mut lane_addrs = Vec::with_capacity(mask.active_channels() as usize);
                    for lane in mask.iter_active() {
                        let a = ctx.regs.read_lane(&addr, lane).as_u64() as u32;
                        lane_addrs.push(a);
                        let img = if space == MemSpace::Slm {
                            &mut *slm
                        } else {
                            &mut *mem
                        };
                        let v = img.read_scalar(a, dtype);
                        ctx.regs.write_lane(&insn.dst, lane, v);
                    }
                    Executed {
                        mask,
                        effect: Effect::Memory {
                            space,
                            is_store: false,
                            lane_addrs,
                        },
                    }
                }
                SendMessage::Store {
                    space,
                    addr,
                    data,
                    dtype,
                } => {
                    let mut lane_addrs = Vec::with_capacity(mask.active_channels() as usize);
                    for lane in mask.iter_active() {
                        let a = ctx.regs.read_lane(&addr, lane).as_u64() as u32;
                        lane_addrs.push(a);
                        let v = ctx.regs.read_lane(&data, lane);
                        let img = if space == MemSpace::Slm {
                            &mut *slm
                        } else {
                            &mut *mem
                        };
                        img.write_scalar(a, dtype, v);
                    }
                    Executed {
                        mask,
                        effect: Effect::Memory {
                            space,
                            is_store: true,
                            lane_addrs,
                        },
                    }
                }
            };
            ctx.pc += 1;
            executed
        }
        Opcode::Cmp => {
            let cm = insn.cond_mod.expect("cmp carries a condition modifier");
            for lane in mask.iter_active() {
                let a = ctx.regs.read_lane(&insn.srcs[0], lane);
                let b = ctx.regs.read_lane(&insn.srcs[1], lane);
                let r = eval_cond(cm.cond, insn.dtype, a, b);
                ctx.regs.set_flag_channel(cm.flag, lane, r);
                if !insn.dst.is_null() {
                    let v = if insn.dtype.is_float() {
                        iwc_isa::Scalar::F(if r { 1.0 } else { 0.0 })
                    } else {
                        iwc_isa::Scalar::U(u64::from(r))
                    };
                    ctx.regs.write_lane(&insn.dst, lane, v);
                }
            }
            ctx.pc += 1;
            Executed {
                mask,
                effect: Effect::Compute { pipe: Pipe::Fpu },
            }
        }
        Opcode::Sel => {
            let p = insn.pred.expect("sel requires a selecting predicate");
            let select = pred_bits(ctx, p);
            for lane in mask.iter_active() {
                let which = if select.channel(lane) {
                    &insn.srcs[0]
                } else {
                    &insn.srcs[1]
                };
                let v = ctx.regs.read_lane(which, lane);
                // Normalize through the ALU for type conversion.
                let v = eval_alu(Opcode::Mov, insn.dtype, &[v]);
                ctx.regs.write_lane(&insn.dst, lane, v);
            }
            ctx.pc += 1;
            Executed {
                mask,
                effect: Effect::Compute { pipe: Pipe::Fpu },
            }
        }
        op => {
            // Regular FPU/EM computation.
            let n = op.src_count();
            for lane in mask.iter_active() {
                let mut srcs = [iwc_isa::Scalar::U(0); 3];
                for (i, s) in insn.srcs[..n].iter().enumerate() {
                    srcs[i] = ctx.regs.read_lane(s, lane);
                }
                let v = eval_alu(op, insn.dtype, &srcs[..n]);
                ctx.regs.write_lane(&insn.dst, lane, v);
            }
            ctx.pc += 1;
            Executed {
                mask,
                effect: Effect::Compute { pipe: op.pipe() },
            }
        }
    }
}
