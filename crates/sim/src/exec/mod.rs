//! Functional execution of one instruction for one EU thread.
//!
//! The functional layer is decoupled from timing: when the issue logic
//! decides an instruction issues, execution applies its full architectural
//! effect immediately (register/flag/memory updates, SIMT stack
//! transitions, PC update) and reports what the timing layer needs: the
//! final execution mask and an [`Effect`] describing the resource the
//! instruction occupies.
//!
//! Two interchangeable interpreters implement this contract:
//!
//! * [`mod@reference`] — the original, straightforward interpreter that
//!   re-inspects the [`Instruction`] on every issue and routes lane
//!   values through the widened [`iwc_isa::Scalar`] enum. It is the
//!   semantic ground truth.
//! * [`crate::plan`] — the decode-once fast path: each static instruction
//!   is lowered to a flat micro-plan with resolved byte offsets and a
//!   dtype-specialized eval function, and the lane loop runs on raw GRF
//!   bytes. `crates/sim/tests/decoded_equivalence.rs` proves the two
//!   produce byte-identical results over the whole workload catalog.

pub mod reference;

pub use reference::execute_instruction;

use crate::regfile::RegFile;
use crate::simt::SimtStack;
use iwc_isa::insn::{Instruction, MemSpace, Opcode, Pipe};
use iwc_isa::mask::ExecMask;
use iwc_isa::reg::Predicate;

/// Architectural thread context (functional state only).
#[derive(Debug)]
pub struct ThreadCtx {
    /// Program counter (instruction index).
    pub pc: usize,
    /// Register file.
    pub regs: RegFile,
    /// SIMT reconvergence stack.
    pub simt: SimtStack,
}

impl ThreadCtx {
    /// Creates a context with the given dispatch mask, PC 0 and zeroed
    /// registers.
    pub fn new(dispatch_mask: ExecMask) -> Self {
        Self {
            pc: 0,
            regs: RegFile::new(),
            simt: SimtStack::new(dispatch_mask),
        }
    }
}

/// The resource effect of one executed instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// An FPU or EM computation over the mask.
    Compute {
        /// Pipe occupied.
        pipe: Pipe,
    },
    /// A global or SLM memory message.
    Memory {
        /// Target space.
        space: MemSpace,
        /// True for stores.
        is_store: bool,
        /// Byte addresses of the active channels.
        lane_addrs: Vec<u32>,
    },
    /// A memory fence: the thread must wait for its outstanding accesses.
    Fence,
    /// A workgroup barrier.
    Barrier,
    /// End of thread.
    Eot,
    /// Control flow resolved at issue (if/else/endif/do/while/break/…/nop).
    ControlFlow,
    /// The instruction's execution mask was all-zero; it was skipped with no
    /// pipeline cost (jump-over-disabled-code).
    SkippedZeroMask,
}

/// Outcome of executing one instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Executed {
    /// Final execution mask the instruction ran under.
    pub mask: ExecMask,
    /// Resource effect for the timing layer.
    pub effect: Effect,
}

pub(crate) fn pred_bits(ctx: &ThreadCtx, pred: Predicate) -> ExecMask {
    let flag = ctx.regs.flag(pred.flag);
    ctx.simt.pred_mask(pred, flag)
}

/// Computes the execution mask of `insn` in the current context: the SIMT
/// mask ANDed with the instruction predicate (if any). `sel` is special: its
/// predicate *selects* operands instead of gating channels.
pub fn exec_mask_of(ctx: &ThreadCtx, insn: &Instruction) -> ExecMask {
    let base = ctx.simt.exec();
    match insn.pred {
        Some(p) if insn.op != Opcode::Sel && !insn.op.is_branch() => base.and(pred_bits(ctx, p)),
        _ => base,
    }
}

pub(crate) fn ctl(mask: ExecMask) -> Executed {
    Executed {
        mask,
        effect: Effect::ControlFlow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memimg::MemoryImage;
    use iwc_isa::builder::KernelBuilder;
    use iwc_isa::insn::CondOp;
    use iwc_isa::program::Program;
    use iwc_isa::reg::{FlagReg, Operand};
    use iwc_isa::Scalar;

    fn run_to_completion(
        program: &Program,
        ctx: &mut ThreadCtx,
        mem: &mut MemoryImage,
        slm: &mut MemoryImage,
    ) -> Vec<Executed> {
        let mut log = Vec::new();
        for _step in 0..10_000 {
            let e = execute_instruction(ctx, program, mem, slm);
            let eot = e.effect == Effect::Eot;
            log.push(e);
            if eot {
                return log;
            }
        }
        panic!("kernel did not terminate");
    }

    fn fresh() -> (ThreadCtx, MemoryImage, MemoryImage) {
        (
            ThreadCtx::new(ExecMask::all(16)),
            MemoryImage::new(1 << 16),
            MemoryImage::new(1 << 12),
        )
    }

    #[test]
    fn straight_line_math() {
        let mut b = KernelBuilder::new("k", 16);
        b.mov(Operand::rf(4), Operand::imm_f(3.0));
        b.mad(
            Operand::rf(6),
            Operand::rf(4),
            Operand::rf(4),
            Operand::imm_f(1.0),
        );
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        for lane in 0..16 {
            assert_eq!(ctx.regs.read_lane(&Operand::rf(6), lane), Scalar::F(10.0));
        }
    }

    #[test]
    fn divergent_if_else_writes_both_sides() {
        // Channels with gid < 8 get 1.0, others 2.0; gid in r1 as UD.
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(1), Operand::imm_ud(8));
        b.if_(Predicate::normal(FlagReg::F0));
        b.mov(Operand::rf(6), Operand::imm_f(1.0));
        b.else_();
        b.mov(Operand::rf(6), Operand::imm_f(2.0));
        b.end_if();
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        for lane in 0..16 {
            ctx.regs
                .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
        }
        run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        for lane in 0..16 {
            let want = if lane < 8 { 1.0 } else { 2.0 };
            assert_eq!(
                ctx.regs.read_lane(&Operand::rf(6), lane),
                Scalar::F(want),
                "lane {lane}"
            );
        }
        assert!(ctx.simt.exec().is_full(), "reconverged");
    }

    #[test]
    fn loop_with_divergent_trip_counts() {
        // r4 = lane id; loop: r6 += 1; r4 -= 1; while (r4 > 0).
        // (SIMD16 32-bit operands span register pairs, so consecutive
        // operands must be two registers apart.)
        let mut b = KernelBuilder::new("k", 16);
        b.do_();
        b.add(Operand::rd(6), Operand::rd(6), Operand::imm_d(1));
        b.add(Operand::rd(4), Operand::rd(4), Operand::imm_d(-1));
        b.cmp(CondOp::Gt, FlagReg::F0, Operand::rd(4), Operand::imm_d(0));
        b.while_(Predicate::normal(FlagReg::F0));
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        for lane in 0..16 {
            ctx.regs
                .write_lane(&Operand::rd(4), lane, Scalar::I(i64::from(lane) + 1));
        }
        run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        for lane in 0..16 {
            assert_eq!(
                ctx.regs.read_lane(&Operand::rd(6), lane),
                Scalar::I(i64::from(lane) + 1),
                "lane {lane} trip count"
            );
        }
    }

    #[test]
    fn gather_load_and_scatter_store() {
        let mut b = KernelBuilder::new("k", 16);
        // addr = 1024 + 4*lane(reversed): load, then store doubled to 2048+4*lane.
        b.load(MemSpace::Global, Operand::rf(6), Operand::rud(4));
        b.mul(Operand::rf(6), Operand::rf(6), Operand::imm_f(2.0));
        b.store(MemSpace::Global, Operand::rud(8), Operand::rf(6));
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        for lane in 0..16u32 {
            mem.write_f32(1024 + 4 * lane, lane as f32);
            ctx.regs.write_lane(
                &Operand::rud(4),
                lane,
                Scalar::U(u64::from(1024 + 4 * (15 - lane))),
            );
            ctx.regs.write_lane(
                &Operand::rud(8),
                lane,
                Scalar::U(u64::from(2048 + 4 * lane)),
            );
        }
        let log = run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        for lane in 0..16u32 {
            assert_eq!(
                mem.read_f32(2048 + 4 * lane),
                2.0 * (15 - lane) as f32,
                "lane {lane}"
            );
        }
        // The load reported 16 lane addresses.
        match &log[0].effect {
            Effect::Memory {
                is_store: false,
                lane_addrs,
                ..
            } => {
                assert_eq!(lane_addrs.len(), 16)
            }
            other => panic!("expected load effect, got {other:?}"),
        }
    }

    #[test]
    fn predicated_store_only_touches_enabled_lanes() {
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(1), Operand::imm_ud(4));
        b.pred(Predicate::normal(FlagReg::F0));
        b.store(MemSpace::Global, Operand::rud(4), Operand::rf(6));
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        for lane in 0..16u32 {
            ctx.regs
                .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
            ctx.regs
                .write_lane(&Operand::rud(4), lane, Scalar::U(u64::from(512 + 4 * lane)));
            ctx.regs.write_lane(&Operand::rf(6), lane, Scalar::F(7.0));
        }
        run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        for lane in 0..16u32 {
            let want = if lane < 4 { 7.0 } else { 0.0 };
            assert_eq!(mem.read_f32(512 + 4 * lane), want, "lane {lane}");
        }
    }

    #[test]
    fn slm_roundtrip() {
        let mut b = KernelBuilder::new("k", 16);
        b.store(MemSpace::Slm, Operand::rud(4), Operand::rf(6));
        b.load(MemSpace::Slm, Operand::rf(8), Operand::rud(4));
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        for lane in 0..16u32 {
            ctx.regs
                .write_lane(&Operand::rud(4), lane, Scalar::U(u64::from(4 * lane)));
            ctx.regs
                .write_lane(&Operand::rf(6), lane, Scalar::F(f64::from(lane) * 1.5));
        }
        run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        for lane in 0..16 {
            assert_eq!(
                ctx.regs.read_lane(&Operand::rf(8), lane),
                Scalar::F(f64::from(lane) * 1.5)
            );
        }
    }

    #[test]
    fn sel_selects_per_lane() {
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(1), Operand::imm_ud(8));
        b.sel(
            FlagReg::F0,
            Operand::rf(6),
            Operand::imm_f(1.0),
            Operand::imm_f(-1.0),
        );
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        for lane in 0..16 {
            ctx.regs
                .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
        }
        run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        for lane in 0..16 {
            let want = if lane < 8 { 1.0 } else { -1.0 };
            assert_eq!(
                ctx.regs.read_lane(&Operand::rf(6), lane),
                Scalar::F(want),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn zero_mask_region_is_skipped() {
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(1), Operand::imm_ud(0)); // never true
        b.if_(Predicate::normal(FlagReg::F0));
        b.mov(Operand::rf(6), Operand::imm_f(99.0));
        b.end_if();
        let p = b.finish().unwrap();
        let (mut ctx, mut mem, mut slm) = fresh();
        let log = run_to_completion(&p, &mut ctx, &mut mem, &mut slm);
        assert_eq!(
            ctx.regs.read_lane(&Operand::rf(6), 0),
            Scalar::F(0.0),
            "if side skipped"
        );
        // The if jumped straight to endif: the mov never appears in the log.
        assert_eq!(log.len(), 4, "cmp, if(jump), endif, eot");
    }
}
