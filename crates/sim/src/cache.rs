//! Set-associative cache model with LRU replacement.

use crate::config::CacheConfig;

/// One cache level (tag store only — data is held functionally in the
/// [`MemoryImage`](crate::memimg::MemoryImage)).
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Option<Line>>>,
    set_mask: u64,
    stamp: u64,
    accesses: u64,
    hits: u64,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    last_use: u64,
}

impl Cache {
    /// Builds a cache from its configuration and the line size.
    pub fn new(cfg: CacheConfig, line_bytes: u32) -> Self {
        let sets = cfg.sets(line_bytes);
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            sets: vec![vec![None; cfg.ways as usize]; sets as usize],
            set_mask: u64::from(sets) - 1,
            stamp: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// Looks up `line_addr` (a line-granular address, i.e. byte address /
    /// line size), filling on miss. Returns `true` on hit.
    pub fn access(&mut self, line_addr: u64) -> bool {
        self.stamp += 1;
        self.accesses += 1;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().flatten().find(|l| l.tag == tag) {
            line.last_use = self.stamp;
            self.hits += 1;
            return true;
        }
        // Miss: fill into an invalid way or evict LRU.
        let victim = match ways.iter().position(Option::is_none) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.map(|l| l.last_use).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("non-empty way list"),
        };
        ways[victim] = Some(Line {
            tag,
            last_use: self.stamp,
        });
        false
    }

    /// Total lookups performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate in [0, 1]; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(
            CacheConfig {
                size_bytes: 512,
                ways: 2,
                banks: 1,
                latency: 1,
            },
            64,
        )
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x10));
        assert!(c.access(0x10));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (addr & 3 == 0): 0, 4, 8.
        c.access(0);
        c.access(4);
        c.access(0); // refresh 0 → LRU is 4
        c.access(8); // evicts 4
        assert!(c.access(0), "0 was refreshed and must survive");
        assert!(!c.access(4), "4 was the LRU victim");
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for a in 0..4u64 {
            c.access(a);
        }
        for a in 0..4u64 {
            assert!(c.access(a), "line {a}");
        }
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 1.0);
        c.access(0);
        c.access(0);
        c.access(64); // miss (set 0? 64 is line addr, set = 0... different tag) → miss
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_l3_geometry() {
        use crate::config::GpuConfig;
        let cfg = GpuConfig::paper_default().mem.l3;
        let c = Cache::new(cfg, 64);
        assert_eq!(c.sets.len(), 32);
        assert_eq!(c.sets[0].len(), 64);
    }
}
