//! Per-instruction and per-basic-block divergence profiles.
//!
//! When [`GpuConfig::profile_insns`](crate::GpuConfig::profile_insns) is
//! set, the issue path records every executed SIMD instruction against its
//! *static* program counter: execution count, an enabled-channel histogram,
//! a quad-occupancy histogram, and — for computation — the execution-cycle
//! cost under every canonical engine (via the memoized SCC schedule, so the
//! per-issue overhead is a table lookup). The result answers the question
//! the aggregate tallies cannot: *which* instructions (and which basic
//! blocks) would intra-warp compaction speed up.

use iwc_compaction::cycles::CycleBreakdown;
use iwc_compaction::CompactionMode;
use iwc_isa::mask::ExecMask;
use iwc_isa::program::Program;
use iwc_isa::types::DataType;
use iwc_telemetry::Pow2Hist;
use serde::{Deserialize, Serialize};

/// Divergence statistics of one static instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InsnStat {
    /// Times the instruction issued (any pipe).
    pub execs: u64,
    /// Times the instruction was skipped for free on an all-disabled mask.
    pub zero_skips: u64,
    /// Enabled channels per execution.
    pub channels: Pow2Hist,
    /// Occupied (≥1 enabled lane) quads per execution.
    pub quads: Pow2Hist,
    /// Accumulated execution-cycle cost under every canonical engine
    /// (computation instructions only; zero for sends and control flow).
    pub cycles: CycleBreakdown,
}

impl InsnStat {
    /// Cycles this instruction would save going from `from` to `to`
    /// (saturating at zero).
    pub fn savings(&self, from: CompactionMode, to: CompactionMode) -> u64 {
        self.cycles.get(from).saturating_sub(self.cycles.get(to))
    }

    /// Mean enabled channels per execution.
    pub fn mean_channels(&self) -> f64 {
        self.channels.mean()
    }

    /// Adds another instruction's samples (used when merging per-EU
    /// profiles of the same program).
    pub fn merge(&mut self, other: &InsnStat) {
        self.execs += other.execs;
        self.zero_skips += other.zero_skips;
        self.channels.merge(&other.channels);
        self.quads.merge(&other.quads);
        self.cycles.accumulate(other.cycles);
    }
}

/// Per-static-instruction divergence profile of one kernel run.
///
/// Indexed by program counter; the vector grows lazily to the highest
/// profiled pc, so an empty profile costs nothing.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// One entry per static instruction, indexed by pc.
    pub insns: Vec<InsnStat>,
}

impl KernelProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    fn slot(&mut self, pc: usize) -> &mut InsnStat {
        if self.insns.len() <= pc {
            self.insns.resize_with(pc + 1, InsnStat::default);
        }
        &mut self.insns[pc]
    }

    /// Records one issued instruction at `pc`. `compute` selects whether
    /// the per-engine cycle model applies (FPU/EM pipes only).
    pub fn record(&mut self, pc: usize, mask: ExecMask, dtype: DataType, compute: bool) {
        let s = self.slot(pc);
        s.execs += 1;
        s.channels.record(u64::from(mask.active_channels()));
        s.quads.record(u64::from(mask.active_quads()));
        if compute {
            s.cycles.accumulate(CycleBreakdown::of(mask, dtype));
        }
    }

    /// Records one zero-mask skip at `pc`.
    pub fn record_skip(&mut self, pc: usize) {
        self.slot(pc).zero_skips += 1;
    }

    /// Merges another profile of the same program.
    pub fn merge(&mut self, other: &KernelProfile) {
        if self.insns.len() < other.insns.len() {
            self.insns.resize_with(other.insns.len(), InsnStat::default);
        }
        for (a, b) in self.insns.iter_mut().zip(other.insns.iter()) {
            a.merge(b);
        }
    }

    /// Program counters ranked by compaction-cycle savings (`from` → `to`),
    /// largest first, zero-savings entries dropped.
    pub fn hotspots(&self, from: CompactionMode, to: CompactionMode) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self
            .insns
            .iter()
            .enumerate()
            .map(|(pc, s)| (pc, s.savings(from, to)))
            .filter(|&(_, saved)| saved > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Per-basic-block aggregate profile for `program`, in block order.
    pub fn by_block(&self, program: &Program) -> Vec<BlockStat> {
        program
            .basic_blocks()
            .into_iter()
            .map(|range| {
                let mut agg = InsnStat::default();
                for pc in range.clone() {
                    if let Some(s) = self.insns.get(pc) {
                        agg.merge(s);
                    }
                }
                BlockStat { range, stat: agg }
            })
            .collect()
    }
}

/// Aggregate divergence statistics of one basic block.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockStat {
    /// Instruction range of the block.
    pub range: std::ops::Range<usize>,
    /// Sum of the block's per-instruction statistics. `execs` counts
    /// instruction issues, not block entries.
    pub stat: InsnStat,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rank() {
        let mut p = KernelProfile::new();
        // pc 3: divergent (4/16 channels, saves cycles), executed twice.
        let sparse = ExecMask::new(0x1111, 16);
        p.record(3, sparse, DataType::F, true);
        p.record(3, sparse, DataType::F, true);
        // pc 1: full mask, incompressible.
        p.record(1, ExecMask::all(16), DataType::F, true);
        // pc 5: a send — no cycle model.
        p.record(5, sparse, DataType::F, false);
        p.record_skip(2);

        assert_eq!(p.insns[3].execs, 2);
        assert_eq!(p.insns[3].cycles.baseline, 8);
        assert_eq!(p.insns[3].cycles.scc, 2);
        assert_eq!(p.insns[2].zero_skips, 1);
        assert_eq!(p.insns[5].cycles, CycleBreakdown::default());
        assert_eq!(p.insns[3].mean_channels(), 4.0);

        let hot = p.hotspots(CompactionMode::Baseline, CompactionMode::Scc);
        assert_eq!(hot.first(), Some(&(3, 6)));
        // Full-mask and non-compute pcs save nothing and are dropped.
        assert!(hot.iter().all(|&(pc, _)| pc == 3));
    }

    #[test]
    fn merge_grows_and_adds() {
        let mut a = KernelProfile::new();
        a.record(0, ExecMask::all(8), DataType::F, true);
        let mut b = KernelProfile::new();
        b.record(2, ExecMask::all(8), DataType::F, true);
        a.merge(&b);
        assert_eq!(a.insns.len(), 3);
        assert_eq!(a.insns[0].execs, 1);
        assert_eq!(a.insns[2].execs, 1);
    }

    #[test]
    fn block_aggregation() {
        use iwc_isa::{KernelBuilder, Operand};
        let mut kb = KernelBuilder::new("k", 8);
        kb.add(Operand::rud(6), Operand::rud(1), Operand::imm_ud(1));
        kb.add(Operand::rud(7), Operand::rud(6), Operand::imm_ud(2));
        let program = kb.finish().expect("valid kernel");

        let mut p = KernelProfile::new();
        for pc in 0..program.len() {
            p.record(pc, ExecMask::all(8), DataType::F, true);
        }
        let blocks = p.by_block(&program);
        assert_eq!(blocks.len(), program.basic_blocks().len());
        let total: u64 = blocks.iter().map(|b| b.stat.execs).sum();
        assert_eq!(total, program.len() as u64);
    }
}
