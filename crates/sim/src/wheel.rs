//! Hierarchical timing wheel for the event-driven simulation loop.
//!
//! The scheduler in [`crate::gpu`] puts a blocked EU to sleep with an exact
//! wake-up cycle (every [`IssueOutcome::NotReadyUntil`] carries one); the
//! wheel answers the two queries the loop needs:
//!
//! * [`TimingWheel::pop_due`] — which sleepers wake at the cycle being
//!   visited right now, and
//! * [`TimingWheel::earliest`] — the nearest future wake-up, which bounds
//!   the time jump when no EU can issue.
//!
//! Layout: `LEVELS` levels of `SLOTS` slots each, indexed by bits
//! `6·l .. 6·(l+1)` of the *absolute* wake cycle. Because slot indices are
//! absolute rather than base-relative, an event never has to cascade down
//! a level as time advances: an event `d` cycles ahead lands at the level
//! where `d < 64^(l+1)`, and visiting its exact cycle addresses the same
//! slot it was inserted into. Per-level occupancy bitmaps keep both queries
//! proportional to the number of *occupied* slots, which is bounded by the
//! number of sleeping EUs — single digits — so every operation is a few
//! word ops. Events further out than the wheel spans (2^24 cycles) go to a
//! rarely-touched overflow list.
//!
//! Cancellation is lazy: a sleeper woken early (barrier release) just
//! abandons its entry, and both queries discard entries whose `seq` no
//! longer matches the sleeper's — see [`WheelEvent::seq`].
//!
//! [`IssueOutcome::NotReadyUntil`]: crate::eu::IssueOutcome::NotReadyUntil

use iwc_telemetry::{Instrument, TelemetrySnapshot};

/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level (one occupancy word's worth).
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels; the wheel spans `64^LEVELS` cycles ahead.
const LEVELS: usize = 4;

/// One scheduled wake-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WheelEvent {
    /// Absolute cycle at which the event fires.
    pub cycle: u64,
    /// Scheduler payload (the sleeping EU's index).
    pub payload: u32,
    /// Generation tag: the scheduler bumps a counter per sleep, so an event
    /// whose `seq` differs from the sleeper's current one is stale (the EU
    /// was woken early and possibly re-slept) and is discarded on contact.
    pub seq: u32,
}

/// Occupancy and traffic counters for the `sim/wheel` telemetry group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Wake-up events inserted.
    pub events_scheduled: u64,
    /// Events that fired at their scheduled cycle.
    pub events_fired: u64,
    /// Events discarded because the sleeper was woken early.
    pub events_stale: u64,
    /// Cycles the loop never visited (sum of `jump − 1` over all jumps).
    pub cycles_skipped: u64,
    /// High-water mark of simultaneously live events.
    pub max_occupancy: u64,
}

impl WheelStats {
    /// True when no event traffic happened (tick mode, or a run that never
    /// slept an EU) — the `sim/wheel` group is then left out of snapshots.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

impl Instrument for WheelStats {
    fn publish(&self, prefix: &str, snap: &mut TelemetrySnapshot) {
        let j = |name: &str| iwc_telemetry::join(prefix, name);
        snap.set_counter(&j("events_scheduled"), self.events_scheduled);
        snap.set_counter(&j("events_fired"), self.events_fired);
        snap.set_counter(&j("events_stale"), self.events_stale);
        snap.set_counter(&j("cycles_skipped"), self.cycles_skipped);
        snap.set_gauge(&j("max_occupancy"), self.max_occupancy as f64);
    }
}

/// The wheel proper. See the module docs for the design.
#[derive(Clone, Debug)]
pub struct TimingWheel {
    /// `LEVELS × SLOTS` buckets, level-major.
    slots: Vec<Vec<WheelEvent>>,
    /// One occupancy bit per slot, per level.
    occ: [u64; LEVELS],
    /// Events scheduled further than the wheel spans.
    overflow: Vec<WheelEvent>,
    /// Live (scheduled, not yet fired or discarded) events.
    live: u64,
    /// Traffic counters (the scheduler also feeds `cycles_skipped`).
    pub stats: WheelStats,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self {
            slots: vec![Vec::new(); LEVELS * SLOTS],
            occ: [0; LEVELS],
            overflow: Vec::new(),
            live: 0,
            stats: WheelStats::default(),
        }
    }

    fn slot_index(level: usize, cycle: u64) -> usize {
        level * SLOTS + (cycle >> (LEVEL_BITS * level as u32)) as usize % SLOTS
    }

    /// Schedules a wake-up at `cycle` (strictly in the future of `now`).
    pub fn schedule(&mut self, now: u64, cycle: u64, payload: u32, seq: u32) {
        debug_assert!(cycle > now, "wake-up must be in the future");
        let ev = WheelEvent {
            cycle,
            payload,
            seq,
        };
        let ahead = cycle - now;
        let level = (ahead.max(1).ilog2() / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(ev);
        } else {
            let idx = Self::slot_index(level, cycle);
            self.slots[idx].push(ev);
            self.occ[level] |= 1 << (idx % SLOTS);
        }
        self.live += 1;
        self.stats.events_scheduled += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.live);
    }

    /// Drains every event scheduled for exactly `now` into `out`.
    /// Staleness is the caller's to judge (it owns the sleeper state); the
    /// caller reports back via [`TimingWheel::note_fired`] /
    /// [`TimingWheel::note_stale`].
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<WheelEvent>) {
        if self.live == 0 {
            return;
        }
        for level in 0..LEVELS {
            let idx = Self::slot_index(level, now);
            if self.occ[level] & 1 << (idx % SLOTS) == 0 {
                continue;
            }
            let bucket = &mut self.slots[idx];
            bucket.retain(|ev| {
                if ev.cycle == now {
                    out.push(*ev);
                    false
                } else {
                    true
                }
            });
            if bucket.is_empty() {
                self.occ[level] &= !(1 << (idx % SLOTS));
            }
        }
        if !self.overflow.is_empty() {
            // Migrate overflow events now within the wheel's span; events
            // due exactly now drain directly.
            let mut pending = std::mem::take(&mut self.overflow);
            pending.retain(|ev| {
                if ev.cycle == now {
                    out.push(*ev);
                    false
                } else if ev.cycle - now < 1 << (LEVEL_BITS * LEVELS as u32) {
                    self.live -= 1;
                    self.stats.events_scheduled -= 1; // re-insert, don't double-count
                    self.schedule(now, ev.cycle, ev.payload, ev.seq);
                    false
                } else {
                    true
                }
            });
            self.overflow = pending;
        }
    }

    /// Earliest wake-up cycle among live events, discarding stale ones as
    /// they are encountered (`valid` judges each event against the current
    /// sleeper state). `None` means the wheel holds no valid event — with
    /// no issuing EU either, that is a deadlock.
    pub fn earliest(&mut self, mut valid: impl FnMut(&WheelEvent) -> bool) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut dropped = 0u64;
        for level in 0..LEVELS {
            let mut bits = self.occ[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let bucket = &mut self.slots[level * SLOTS + slot];
                bucket.retain(|ev| {
                    if valid(ev) {
                        best = Some(best.map_or(ev.cycle, |b| b.min(ev.cycle)));
                        true
                    } else {
                        dropped += 1;
                        false
                    }
                });
                if bucket.is_empty() {
                    self.occ[level] &= !(1 << slot);
                }
            }
        }
        self.overflow.retain(|ev| {
            if valid(ev) {
                best = Some(best.map_or(ev.cycle, |b| b.min(ev.cycle)));
                true
            } else {
                dropped += 1;
                false
            }
        });
        self.live -= dropped;
        self.stats.events_stale += dropped;
        best
    }

    /// Records that a popped event matched its sleeper and woke it.
    pub fn note_fired(&mut self) {
        self.live -= 1;
        self.stats.events_fired += 1;
    }

    /// Records that a popped event was stale and was discarded.
    pub fn note_stale(&mut self) {
        self.live -= 1;
        self.stats.events_stale += 1;
    }

    /// Number of live events.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimingWheel, now: u64) -> Vec<WheelEvent> {
        let mut out = Vec::new();
        w.pop_due(now, &mut out);
        for _ in &out {
            w.note_fired();
        }
        out
    }

    #[test]
    fn fires_at_exact_cycle_across_levels() {
        let mut w = TimingWheel::new();
        // One event per level distance: 3, 100, 5000, 300_000 cycles ahead.
        for (i, d) in [3u64, 100, 5000, 300_000].iter().enumerate() {
            w.schedule(10, 10 + d, i as u32, i as u32);
        }
        assert_eq!(w.len(), 4);
        for (i, d) in [3u64, 100, 5000, 300_000].iter().enumerate() {
            assert!(drain(&mut w, 10 + d - 1).is_empty());
            let hit = drain(&mut w, 10 + d);
            assert_eq!(hit.len(), 1, "event {i} at distance {d}");
            assert_eq!(hit[0].payload, i as u32);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn earliest_scans_and_discards_stale() {
        let mut w = TimingWheel::new();
        w.schedule(0, 50, 0, 1);
        w.schedule(0, 7, 1, 2);
        w.schedule(0, 7000, 2, 3);
        // Event seq 2 is stale.
        assert_eq!(w.earliest(|ev| ev.seq != 2), Some(50));
        assert_eq!(w.stats.events_stale, 1);
        assert_eq!(w.len(), 2);
        // A second scan sees no stale events.
        assert_eq!(w.earliest(|_| true), Some(50));
        assert_eq!(w.stats.events_stale, 1);
    }

    #[test]
    fn same_cycle_events_all_fire() {
        let mut w = TimingWheel::new();
        w.schedule(4, 9, 0, 0);
        w.schedule(4, 9, 1, 1);
        w.schedule(4, 9 + 64, 2, 2); // same level-0 slot bits, later era
        let hit = drain(&mut w, 9);
        assert_eq!(hit.len(), 2);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, 9 + 64).len(), 1);
    }

    #[test]
    fn overflow_events_survive_and_fire() {
        let mut w = TimingWheel::new();
        let far = 1 << 30; // beyond 64^4
        w.schedule(0, far, 7, 7);
        assert_eq!(w.len(), 1);
        // Visiting an intermediate cycle migrates the event into the wheel.
        w.pop_due(far - 100, &mut Vec::new());
        assert_eq!(w.len(), 1);
        let hit = drain(&mut w, far);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].payload, 7);
        assert!(w.is_empty());
    }

    #[test]
    fn stats_track_traffic_and_occupancy() {
        let mut w = TimingWheel::new();
        w.schedule(0, 5, 0, 0);
        w.schedule(0, 6, 1, 1);
        assert_eq!(w.stats.max_occupancy, 2);
        drain(&mut w, 5);
        drain(&mut w, 6);
        assert_eq!(w.stats.events_scheduled, 2);
        assert_eq!(w.stats.events_fired, 2);
        assert!(!w.stats.is_empty());
        assert!(WheelStats::default().is_empty());
    }
}
