//! Simulator configuration (Table 3 of the paper).

use iwc_compaction::EngineId;
use serde::{Deserialize, Serialize};

/// Cache geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Number of banks (parallel access ports).
    pub banks: u32,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets given the line size.
    pub fn sets(&self, line_bytes: u32) -> u32 {
        (self.size_bytes / line_bytes / self.ways).max(1)
    }
}

/// Memory-subsystem configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Cache line size in bytes (64 throughout the paper).
    pub line_bytes: u32,
    /// Shared local memory latency in cycles.
    pub slm_latency: u32,
    /// Number of SLM banks (4-byte interleaved).
    pub slm_banks: u32,
    /// GPU data cache (the paper's "L3").
    pub l3: CacheConfig,
    /// Last-level cache shared with the CPU cores.
    pub llc: CacheConfig,
    /// DRAM access latency in cycles (beyond LLC).
    pub dram_latency: u32,
    /// Peak data-cluster bandwidth in cache lines per cycle between the EUs
    /// and the L3 (the paper's DC1 = 1.0, DC2 = 2.0 study).
    pub dc_lines_per_cycle: f64,
    /// When true, every global access hits in L3 (the "perfect L3" model of
    /// Fig. 12).
    pub perfect_l3: bool,
}

/// Register-file operand-access timing (§4.3): how a single-ported file
/// provides multi-operand access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RfTiming {
    /// Operands are fetched over multiple cycles (e.g. four cycles for a
    /// 3-read-1-write FMA) — the fetch occupies the pipe ahead of execution.
    MultiCycle,
    /// Multiple parallel banks / a multi-pumped file deliver all operands in
    /// parallel with decode; no extra pipe occupancy ("for BCC and SCC which
    /// cause execution cycle reduction, multi-pumping and multi-banking are
    /// the preferred options").
    #[default]
    Pumped,
}

/// Which functional interpreter executes instructions.
///
/// Both backends are architecturally identical — the differential test in
/// `crates/sim/tests/decoded_equivalence.rs` proves byte-identical
/// [`SimResult`](crate::SimResult)s over the whole workload catalog — so
/// this knob only trades simulator wall-clock speed against auditability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecBackend {
    /// Resolve from the `IWC_EXEC` environment variable (`"reference"`
    /// selects the reference interpreter; anything else, or unset, selects
    /// the decoded plans). Read once per process.
    #[default]
    Auto,
    /// Decode-once micro-op plans with raw-byte lane loops
    /// ([`crate::plan`]): the fast path.
    Decoded,
    /// The original instruction-at-a-time interpreter
    /// ([`crate::exec::reference`]): the semantic oracle.
    Reference,
}

impl ExecBackend {
    /// Resolves `Auto` against the `IWC_EXEC` environment variable
    /// (cached after the first read; explicit variants are returned
    /// unchanged).
    pub fn resolve(self) -> ExecBackend {
        use std::sync::OnceLock;
        static FROM_ENV: OnceLock<ExecBackend> = OnceLock::new();
        match self {
            ExecBackend::Auto => {
                *FROM_ENV.get_or_init(|| match std::env::var("IWC_EXEC").as_deref() {
                    Ok("reference") => ExecBackend::Reference,
                    _ => ExecBackend::Decoded,
                })
            }
            explicit => explicit,
        }
    }
}

/// Which scheduler drives the simulation loop.
///
/// Both schedulers visit the same cycle sequence and charge the same stall
/// cycles — the event wheel only skips the *re-arbitration* of EUs that are
/// provably blocked until a known future cycle, so `SimResult`s are
/// byte-identical (pinned by `crates/sim/tests/event_wheel.rs`). Like
/// [`ExecBackend`], this knob only trades simulator wall-clock speed against
/// auditability of the inner loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedMode {
    /// Resolve from the `IWC_SCHED` environment variable (`"tick"` selects
    /// the tick loop; anything else, or unset, selects the event wheel).
    /// Read once per process.
    #[default]
    Auto,
    /// Event-wheel scheduler ([`crate::wheel`]): blocked EUs sleep until
    /// their exact wake-up cycle; the fast path.
    Wheel,
    /// The original loop that re-arbitrates every EU on every visited
    /// cycle: the timing oracle.
    Tick,
}

impl SchedMode {
    /// Resolves `Auto` against the `IWC_SCHED` environment variable
    /// (cached after the first read; explicit variants are returned
    /// unchanged).
    pub fn resolve(self) -> SchedMode {
        use std::sync::OnceLock;
        static FROM_ENV: OnceLock<SchedMode> = OnceLock::new();
        match self {
            SchedMode::Auto => {
                *FROM_ENV.get_or_init(|| match std::env::var("IWC_SCHED").as_deref() {
                    Ok("tick") => SchedMode::Tick,
                    _ => SchedMode::Wheel,
                })
            }
            explicit => explicit,
        }
    }
}

/// Convergent burst issue: when a fully-converged thread reaches a
/// hazard-free straight-line span of ALU plans, the whole span issues
/// back-to-back in one arbiter visit instead of one plan per visit.
///
/// Timing-neutral like [`ExecBackend`] and [`SchedMode`]: the burst path
/// charges exactly the cycles, stalls, and tallies the per-plan path would
/// — `crates/sim/tests/burst_equivalence.rs` pins byte-identical
/// [`SimResult`](crate::SimResult)s over the whole catalog — so this knob
/// only trades simulator wall-clock speed against auditability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstMode {
    /// Resolve from the `IWC_BURST` environment variable (`"off"` disables
    /// bursting; anything else, or unset, enables it). Read once per
    /// process.
    #[default]
    Auto,
    /// Burst whole convergent spans per arbiter visit: the fast path.
    On,
    /// Issue one plan per arbiter visit: the timing oracle.
    Off,
}

impl BurstMode {
    /// Resolves `Auto` against the `IWC_BURST` environment variable
    /// (cached after the first read; explicit variants are returned
    /// unchanged).
    pub fn resolve(self) -> BurstMode {
        use std::sync::OnceLock;
        static FROM_ENV: OnceLock<BurstMode> = OnceLock::new();
        match self {
            BurstMode::Auto => {
                *FROM_ENV.get_or_init(|| match std::env::var("IWC_BURST").as_deref() {
                    Ok("off") => BurstMode::Off,
                    _ => BurstMode::On,
                })
            }
            explicit => explicit,
        }
    }
}

/// Full GPU configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of execution units.
    pub eus: u32,
    /// Hardware threads per EU.
    pub threads_per_eu: u32,
    /// Hardware ALU width in channels (4 for Ivy Bridge EUs).
    pub alu_width: u32,
    /// Instructions the front end can issue per cycle (1 = the paper's
    /// "two instructions every two cycles"). §4.3 notes that compression
    /// raises the required front-end bandwidth; this knob is the ablation.
    pub issue_per_cycle: u32,
    /// Register-file operand-access timing (§4.3).
    pub rf_timing: RfTiming,
    /// L1 instruction-cache latency in cycles on a miss (a group of EUs
    /// shares the I$, §2.3; 0 disables instruction-fetch modeling).
    pub icache_miss_latency: u32,
    /// L1 instruction-cache capacity in *instructions* (fully associative
    /// FIFO model; kernels larger than this thrash the front end).
    pub icache_insns: u32,
    /// Divergence optimization of the execution pipeline: a handle into the
    /// process-wide [`iwc_compaction::EngineRegistry`] (converts from
    /// [`iwc_compaction::CompactionMode`] for the paper's four modes).
    pub compaction: EngineId,
    /// When true, every executed SIMD instruction's execution mask is
    /// recorded in the run statistics (the trace-capture hook of §5.1:
    /// "we have instrumented the functional model to obtain SIMD execution
    /// masks for every executed instruction").
    pub capture_masks: bool,
    /// When true, every issue event (cycle, thread, pipe, waves) is recorded
    /// for [`timeline`](crate::timeline) rendering. Debugging aid; off by
    /// default.
    pub record_issue_log: bool,
    /// When true, per-static-instruction divergence profiles (executions,
    /// enabled-channel and quad-occupancy histograms, per-engine cycle
    /// cost) are accumulated in [`EuStats`](crate::EuStats). Off by
    /// default: the hot issue path then takes a single predictable branch.
    pub profile_insns: bool,
    /// Functional interpreter selection (timing-neutral; see
    /// [`ExecBackend`]).
    pub exec: ExecBackend,
    /// Simulation-loop scheduler selection (timing-neutral; see
    /// [`SchedMode`]).
    #[serde(default)]
    pub sched: SchedMode,
    /// Convergent burst issue (timing-neutral; see [`BurstMode`]).
    #[serde(default)]
    pub burst: BurstMode,
    /// FPU pipeline depth (issue-to-writeback latency beyond occupancy).
    pub fpu_latency: u32,
    /// Extended-math pipeline depth.
    pub em_latency: u32,
    /// Memory subsystem parameters.
    pub mem: MemConfig,
}

impl GpuConfig {
    /// The configuration of Table 3: 6 EUs × 6 threads, SLM 64 KB / 5 cyc,
    /// L3 128 KB / 64-way / 4 banks / 7 cyc, LLC 2 MB / 16-way / 8 banks /
    /// 10 cyc, issue 2 instructions every 2 cycles, DC1 bandwidth.
    pub fn paper_default() -> Self {
        Self {
            eus: 6,
            threads_per_eu: 6,
            alu_width: 4,
            issue_per_cycle: 1,
            rf_timing: RfTiming::Pumped,
            icache_miss_latency: 20,
            icache_insns: 4096,
            compaction: EngineId::IVY_BRIDGE,
            capture_masks: false,
            record_issue_log: false,
            profile_insns: false,
            exec: ExecBackend::Auto,
            sched: SchedMode::Auto,
            burst: BurstMode::Auto,
            // Issue-to-writeback depth beyond pipe occupancy. Gen EUs forward
            // results between dependent ALU ops, so the effective latency seen
            // by the scoreboard is short.
            fpu_latency: 2,
            em_latency: 6,
            mem: MemConfig {
                line_bytes: 64,
                slm_latency: 5,
                slm_banks: 16,
                l3: CacheConfig {
                    size_bytes: 128 << 10,
                    ways: 64,
                    banks: 4,
                    latency: 7,
                },
                llc: CacheConfig {
                    size_bytes: 2 << 20,
                    ways: 16,
                    banks: 8,
                    latency: 10,
                },
                dram_latency: 200,
                dc_lines_per_cycle: 1.0,
                perfect_l3: false,
            },
        }
    }

    /// Paper default with a different compaction engine (accepts a
    /// [`iwc_compaction::CompactionMode`] or an [`EngineId`] from the
    /// registry, so ablation engines slot in without new plumbing).
    pub fn with_compaction(mut self, engine: impl Into<EngineId>) -> Self {
        self.compaction = engine.into();
        self
    }

    /// Paper default with the DC2 (two lines per cycle) data cluster.
    pub fn with_dc_bandwidth(mut self, lines_per_cycle: f64) -> Self {
        self.mem.dc_lines_per_cycle = lines_per_cycle;
        self
    }

    /// Paper default with a perfect (infinite) L3.
    pub fn with_perfect_l3(mut self, perfect: bool) -> Self {
        self.mem.perfect_l3 = perfect;
        self
    }

    /// Paper default with issue-event recording for timeline rendering.
    pub fn with_issue_log(mut self, record: bool) -> Self {
        self.record_issue_log = record;
        self
    }

    /// Paper default with execution-mask capture enabled.
    pub fn with_mask_capture(mut self, capture: bool) -> Self {
        self.capture_masks = capture;
        self
    }

    /// Paper default with per-instruction divergence profiling enabled.
    pub fn with_insn_profile(mut self, profile: bool) -> Self {
        self.profile_insns = profile;
        self
    }

    /// Paper default with a wider front end (issue slots per cycle).
    pub fn with_issue_per_cycle(mut self, n: u32) -> Self {
        self.issue_per_cycle = n.max(1);
        self
    }

    /// Paper default with a different register-file timing option.
    pub fn with_rf_timing(mut self, timing: RfTiming) -> Self {
        self.rf_timing = timing;
        self
    }

    /// Paper default with an explicit functional-interpreter backend.
    pub fn with_exec(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// Paper default with an explicit simulation-loop scheduler.
    pub fn with_sched(mut self, sched: SchedMode) -> Self {
        self.sched = sched;
        self
    }

    /// Paper default with an explicit convergent-burst mode.
    pub fn with_burst(mut self, burst: BurstMode) -> Self {
        self.burst = burst;
        self
    }

    /// Single-EU configuration for micro-benchmarks.
    pub fn single_eu() -> Self {
        let mut c = Self::paper_default();
        c.eus = 1;
        c
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table3() {
        let c = GpuConfig::paper_default();
        assert_eq!(c.eus, 6);
        assert_eq!(c.threads_per_eu, 6);
        assert_eq!(c.mem.slm_latency, 5);
        assert_eq!(c.mem.l3.size_bytes, 128 << 10);
        assert_eq!(c.mem.l3.ways, 64);
        assert_eq!(c.mem.l3.banks, 4);
        assert_eq!(c.mem.l3.latency, 7);
        assert_eq!(c.mem.llc.size_bytes, 2 << 20);
        assert_eq!(c.mem.llc.latency, 10);
        assert_eq!(c.mem.dc_lines_per_cycle, 1.0);
    }

    #[test]
    fn cache_sets() {
        let c = GpuConfig::paper_default().mem.l3;
        assert_eq!(c.sets(64), 32); // 128KB / 64B / 64 ways
    }

    #[test]
    fn builders_chain() {
        use iwc_compaction::CompactionMode;
        let c = GpuConfig::paper_default()
            .with_compaction(CompactionMode::Scc)
            .with_dc_bandwidth(2.0)
            .with_perfect_l3(true);
        assert_eq!(c.compaction, CompactionMode::Scc);
        assert_eq!(c.mem.dc_lines_per_cycle, 2.0);
        assert!(c.mem.perfect_l3);
    }
}
