//! Decode-once execution plans: the fast functional interpreter.
//!
//! [`DecodedProgram`] lowers every static
//! [`Instruction`] of a validated
//! [`Program`] into a flat [`MicroPlan`] exactly once
//! per launch. A plan carries everything the per-issue hot path would
//! otherwise re-derive from the instruction:
//!
//! * a dense plan kind so issue dispatches on one enum discriminant
//!   instead of re-inspecting opcode + message + operand shapes;
//! * resolved GRF byte offsets and pre-converted immediates for the
//!   dtype-specialized lane loops (`F`/`D`/`Ud` run on raw register bytes
//!   with a pre-selected eval function pointer — no per-lane opcode match
//!   and no widened [`Scalar`] round-trip);
//! * the scoreboard plan: per-operand GRF register ranges and flag
//!   indices, precomputed so dependence checks never allocate the
//!   `read_operands()` vector;
//! * the predicate/flag plan and static classification (data vs control,
//!   pipe, EOT) used by zero-mask skipping and pipe arbitration.
//!
//! Operand shapes outside the specialized fast paths (mixed dtypes,
//! scalar destinations, sub-32-bit types, memory data
//! movement) fall back to the exact [`read_lane`/`write_lane`/`eval_alu`]
//! sequence of the reference interpreter, so the two backends are
//! bit-identical by construction; `crates/sim/tests/decoded_equivalence.rs`
//! proves it over the whole workload catalog × every canonical engine.
//!
//! [`read_lane`/`write_lane`/`eval_alu`]: crate::exec::reference

use crate::exec::{pred_bits, ThreadCtx};
use crate::memimg::MemoryImage;
use iwc_isa::eval::{eval_alu, eval_cond};
use iwc_isa::insn::{CondMod, CondOp, Instruction, MemSpace, Opcode, Pipe, SendMessage};
use iwc_isa::mask::ExecMask;
use iwc_isa::program::Program;
use iwc_isa::reg::{FlagReg, Operand, Predicate, GRF_BYTES};
use iwc_isa::types::{DataType, Scalar};

type F3 = fn(f64, f64, f64) -> f64;
type I3 = fn(i64, i64, i64) -> i64;
type U3 = fn(u64, u64, u64) -> u64;

/// A whole-span ALU kernel: `(regs, srcs, dst_byte, mask_bits, width)`.
/// One monomorphized function evaluates every lane of the span with the
/// formula inlined — the per-lane loops inside are plain counted loops
/// over stack arrays, which the optimizer autovectorizes — and commits
/// results with a branchless masked blend so inactive lanes keep their
/// raw bits.
type SpanKern = fn(&mut crate::regfile::RegFile, &[Src32; 3], u32, u32, u32);

/// A whole-span `cmp` kernel: `(regs, srcs, dst_byte, mask_bits, width)`
/// → per-lane condition results as a bitmask over lanes `0..width`.
/// Writes the optional numeric destination itself (mask-blended) and
/// leaves the flag merge to the caller, which holds the flag id.
type CmpKern = fn(&mut crate::regfile::RegFile, &[Src32; 3], u32, u32, u32) -> u32;

/// A whole-span `sel` kernel: `(regs, srcs, dst_byte, mask_bits, width,
/// select_bits)`. Lane `i` takes `srcs[0]` when `select` bit `i` is set
/// and `srcs[1]` otherwise; the store is mask-blended like every span
/// kernel.
type SelKern = fn(&mut crate::regfile::RegFile, &[Src32; 3], u32, u32, u32, u32);

/// Destination sentinel for [`CmpKern`]: the `cmp` writes flags only.
const NO_DST: u32 = u32::MAX;

/// Widest possible span (SIMD32): fixed bound for the stack staging
/// arrays of the span kernels.
const MAX_LANES: usize = 32;

/// A source operand resolved at decode time for the 32-bit fast lane
/// loops. Immediates are pre-converted into the eval domain of the plan's
/// type class and stored as raw bits.
#[derive(Clone, Copy, Debug)]
enum Src32 {
    /// Per-lane vector: byte address = base + 4 × lane.
    Vec(u32),
    /// One GRF element broadcast to every lane (re-read per lane, because
    /// the destination may alias it).
    Broadcast(u32),
    /// Immediate, pre-converted at decode time.
    Imm(u64),
}

/// Decode-time view of a fast-path source before the immediate is
/// converted into a specific eval domain.
#[derive(Clone, Copy)]
enum RawSrc {
    Vec(u32),
    Broadcast(u32),
    Imm(Scalar),
}

/// The address operand of a send, resolved for raw-u32 reads when it is a
/// plain `Ud` vector register (the common case emitted by the kernel
/// builder).
#[derive(Clone, Copy, Debug)]
enum AddrPlan {
    /// `Ud` vector register: lane address = `load_u32(base + 4 × lane)`.
    VecUd(u32),
    /// Anything else: the reference `read_lane(..).as_u64() as u32` path.
    Generic(Operand),
}

impl AddrPlan {
    fn decode(op: &Operand) -> Self {
        match *op {
            Operand::Grf {
                reg,
                dtype: DataType::Ud,
            } => AddrPlan::VecUd(u32::from(reg) * GRF_BYTES),
            other => AddrPlan::Generic(other),
        }
    }

    #[inline]
    fn lane_addr(&self, regs: &crate::regfile::RegFile, lane: u32) -> u32 {
        match *self {
            AddrPlan::VecUd(base) => regs.load_u32(base + 4 * lane),
            AddrPlan::Generic(op) => regs.read_lane(&op, lane).as_u64() as u32,
        }
    }
}

/// What one decoded instruction does, as a dense enum the issue path can
/// branch on directly.
#[derive(Clone, Debug)]
enum PlanKind {
    /// 32-bit float ALU fast path (all register operands `F`).
    AluF {
        f: F3,
        srcs: [Src32; 3],
        dst: u32,
    },
    /// 32-bit signed ALU fast path (all register operands `D`).
    AluD {
        f: I3,
        srcs: [Src32; 3],
        dst: u32,
    },
    /// 32-bit unsigned ALU fast path (all register operands `Ud`).
    AluU {
        f: U3,
        srcs: [Src32; 3],
        dst: u32,
    },
    /// Vectorized whole-span ALU: the same formula as the per-lane fast
    /// paths, monomorphized over the full span with masked blend-stores.
    /// Selected at decode only when [`span_safe`] proves the precompute
    /// order is indistinguishable from the ascending per-lane order.
    AluVec {
        kern: SpanKern,
        srcs: [Src32; 3],
        dst: u32,
        width: u32,
    },
    /// Any other computation: reference `read_lane`/`eval_alu`/`write_lane`.
    AluGeneric {
        op: Opcode,
        n: u8,
        srcs: [Operand; 3],
        dst: Operand,
    },
    Cmp {
        cm: CondMod,
        a: Operand,
        b: Operand,
        dst: Operand,
    },
    /// Vectorized `cmp`: both sources on the 32-bit fast classes, flag
    /// results merged as one bitmask, optional numeric destination
    /// blend-stored by the kernel ([`NO_DST`] when null).
    CmpVec {
        kern: CmpKern,
        srcs: [Src32; 3],
        flag: FlagReg,
        dst: u32,
        width: u32,
    },
    Sel {
        a: Operand,
        b: Operand,
        dst: Operand,
    },
    /// Vectorized `sel`: both sources and the destination on the 32-bit
    /// fast classes; the selecting predicate is read at execute time and
    /// applied as a whole-span blend.
    SelVec {
        kern: SelKern,
        srcs: [Src32; 3],
        dst: u32,
        width: u32,
    },
    Load {
        space: MemSpace,
        addr: AddrPlan,
        mem_dtype: DataType,
        dst: Operand,
    },
    Store {
        space: MemSpace,
        addr: AddrPlan,
        mem_dtype: DataType,
        data: Operand,
    },
    Fence,
    If {
        jip: usize,
    },
    Else {
        jip: usize,
    },
    EndIf,
    Do,
    While {
        jip: usize,
    },
    Break,
    Continue,
    Jmpi {
        jip: usize,
    },
    Nop,
    Barrier,
    Eot,
}

/// The resource effect of one executed plan — [`Effect`](crate::Effect)
/// minus the allocated lane-address vector: addresses land in the caller's
/// [`LaneScratch`] instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanEffect {
    /// An FPU or EM computation over the mask.
    Compute(Pipe),
    /// A memory message; lane addresses are in the scratch buffer.
    Memory {
        /// Target space.
        space: MemSpace,
        /// True for stores.
        is_store: bool,
    },
    /// A memory fence.
    Fence,
    /// A workgroup barrier.
    Barrier,
    /// End of thread.
    Eot,
    /// Control flow resolved at issue.
    ControlFlow,
}

/// Reusable per-EU scratch for send lane addresses and their coalesced
/// line set: an inline array up to SIMD32, so the hot path never
/// allocates.
#[derive(Clone, Debug, Default)]
pub struct LaneScratch {
    pub(crate) addrs: [u32; 32],
    pub(crate) len: u8,
    pub(crate) lines: Vec<u64>,
}

impl LaneScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lane addresses captured by the last executed send.
    pub fn addrs(&self) -> &[u32] {
        &self.addrs[..usize::from(self.len)]
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, a: u32) {
        self.addrs[usize::from(self.len)] = a;
        self.len += 1;
    }
}

/// One instruction lowered into its decode-once execution plan.
#[derive(Clone, Debug)]
pub struct MicroPlan {
    kind: PlanKind,
    /// Instruction predicate (branch condition, `sel` selector, or mask
    /// gate — interpretation depends on `kind`).
    pred: Option<Predicate>,
    /// True when the predicate gates the execution mask (everything except
    /// `sel` and branches).
    pred_gates_mask: bool,
    /// Scoreboard read plan: GRF register ranges (inclusive) of every read
    /// operand plus the destination, in `read_operands()` order.
    reads: [(u8, u8); 6],
    n_reads: u8,
    /// Destination GRF register range (None for null/immediate dst).
    dst_range: Option<(u8, u8)>,
    /// Flag register read by the predicate, if any.
    pred_flag: Option<u8>,
    /// Flag register written by the condition modifier, if any.
    cond_flag: Option<u8>,
    /// GRF operand count (sources + destination) for multi-cycle RF timing.
    n_grf_operands: u64,
    /// Execution pipe of the source opcode.
    pipe: Pipe,
    /// Execution data type of the source instruction.
    dtype: DataType,
    /// True for ALU/send instructions (zero-mask skippable).
    is_data: bool,
    /// True for `eot`.
    is_eot: bool,
}

impl MicroPlan {
    fn decode(insn: &Instruction) -> Self {
        let width = insn.exec_width;
        let mut reads = [(0u8, 0u8); 6];
        let mut n_reads = 0u8;
        for op in insn.read_operands() {
            if let Some(r) = reg_range(&op, width) {
                reads[usize::from(n_reads)] = r;
                n_reads += 1;
            }
        }
        let dst_range = reg_range(&insn.dst, width);
        if let Some(r) = dst_range {
            reads[usize::from(n_reads)] = r;
            n_reads += 1;
        }
        let n_grf_operands = (insn
            .used_srcs()
            .iter()
            .filter(|o| o.grf_reg().is_some())
            .count()
            + usize::from(insn.dst.grf_reg().is_some())) as u64;
        let pipe = insn.op.pipe();
        Self {
            kind: decode_kind(insn),
            pred: insn.pred,
            pred_gates_mask: insn.pred.is_some() && insn.op != Opcode::Sel && !insn.op.is_branch(),
            reads,
            n_reads,
            dst_range,
            pred_flag: insn.pred.map(|p| p.flag.index()),
            cond_flag: insn.cond_mod.map(|cm| cm.flag.index()),
            n_grf_operands,
            pipe,
            dtype: insn.dtype,
            is_data: pipe != Pipe::Control,
            is_eot: insn.op == Opcode::Eot,
        }
    }

    /// Execution pipe of the decoded instruction.
    pub fn pipe(&self) -> Pipe {
        self.pipe
    }

    /// Execution data type of the decoded instruction.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// True for ALU/send instructions (zero-mask skippable).
    pub(crate) fn is_data(&self) -> bool {
        self.is_data
    }

    /// True for `eot`.
    pub(crate) fn is_eot(&self) -> bool {
        self.is_eot
    }

    /// Scoreboard read ranges, predicate flag, condition flag, and GRF
    /// operand count for the timing layer.
    pub(crate) fn scoreboard(&self) -> (&[(u8, u8)], Option<u8>, Option<u8>) {
        (
            &self.reads[..usize::from(self.n_reads)],
            self.pred_flag,
            self.cond_flag,
        )
    }

    pub(crate) fn dst_range(&self) -> Option<(u8, u8)> {
        self.dst_range
    }

    pub(crate) fn cond_flag(&self) -> Option<u8> {
        self.cond_flag
    }

    pub(crate) fn n_grf_operands(&self) -> u64 {
        self.n_grf_operands
    }

    /// True when this plan can participate in a convergent burst: a pure
    /// ALU computation with no predicate and no flag write, so its issue
    /// outcome under a full mask is a function of the static program alone
    /// (no mask gating, no flag dataflow, no control transfer).
    fn burstable(&self) -> bool {
        matches!(
            self.kind,
            PlanKind::AluF { .. }
                | PlanKind::AluD { .. }
                | PlanKind::AluU { .. }
                | PlanKind::AluVec { .. }
                | PlanKind::AluGeneric { .. }
        ) && self.pred.is_none()
            && self.cond_flag.is_none()
    }

    /// GRF registers this plan reads or writes, as a bitmap (`scoreboard`
    /// ranges include the destination).
    fn touched_regs(&self) -> u128 {
        let mut bits = 0u128;
        for &(lo, hi) in self.scoreboard().0 {
            for r in lo..=hi {
                bits |= 1u128 << r;
            }
        }
        bits
    }

    /// GRF registers this plan writes, as a bitmap.
    fn dst_regs(&self) -> u128 {
        let mut bits = 0u128;
        if let Some((lo, hi)) = self.dst_range {
            for r in lo..=hi {
                bits |= 1u128 << r;
            }
        }
        bits
    }

    /// The execution mask this plan would run under right now: the SIMT
    /// mask ANDed with the gating predicate (mirrors
    /// [`exec_mask_of`](crate::exec::exec_mask_of)).
    #[inline]
    pub(crate) fn exec_mask(&self, ctx: &ThreadCtx) -> ExecMask {
        let base = ctx.simt.exec();
        if self.pred_gates_mask {
            base.and(pred_bits(ctx, self.pred.expect("gating predicate present")))
        } else {
            base
        }
    }
}

fn reg_range(op: &Operand, width: u32) -> Option<(u8, u8)> {
    op.grf_byte_range(width)
        .map(|(lo, hi)| ((lo / GRF_BYTES) as u8, ((hi - 1) / GRF_BYTES) as u8))
}

fn decode_kind(insn: &Instruction) -> PlanKind {
    match insn.op {
        Opcode::If => PlanKind::If {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::Else => PlanKind::Else {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::EndIf => PlanKind::EndIf,
        Opcode::Do => PlanKind::Do,
        Opcode::While => PlanKind::While {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::Break => PlanKind::Break,
        Opcode::Continue => PlanKind::Continue,
        Opcode::Jmpi => PlanKind::Jmpi {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::Nop => PlanKind::Nop,
        Opcode::Barrier => PlanKind::Barrier,
        Opcode::Eot => PlanKind::Eot,
        Opcode::Send => match insn.msg.expect("send carries a message") {
            SendMessage::Fence => PlanKind::Fence,
            SendMessage::Load { space, addr, dtype } => PlanKind::Load {
                space,
                addr: AddrPlan::decode(&addr),
                mem_dtype: dtype,
                dst: insn.dst,
            },
            SendMessage::Store {
                space,
                addr,
                data,
                dtype,
            } => PlanKind::Store {
                space,
                addr: AddrPlan::decode(&addr),
                mem_dtype: dtype,
                data,
            },
        },
        Opcode::Cmp => {
            let cm = insn.cond_mod.expect("cmp carries a condition modifier");
            fast_cmp(insn, cm).unwrap_or(PlanKind::Cmp {
                cm,
                a: insn.srcs[0],
                b: insn.srcs[1],
                dst: insn.dst,
            })
        }
        Opcode::Sel => fast_sel(insn).unwrap_or(PlanKind::Sel {
            a: insn.srcs[0],
            b: insn.srcs[1],
            dst: insn.dst,
        }),
        op => decode_alu(insn, op),
    }
}

fn decode_alu(insn: &Instruction, op: Opcode) -> PlanKind {
    let n = op.src_count();
    if let Some(kind) = fast_alu(insn, n) {
        return kind;
    }
    PlanKind::AluGeneric {
        op,
        n: n as u8,
        srcs: insn.srcs,
        dst: insn.dst,
    }
}

/// Tries to lower a regular ALU instruction onto one of the raw-byte fast
/// paths. Eligibility: the destination is a plain vector register of the
/// execution type, every register source matches the execution type (so
/// decode/encode is a fixed 32-bit conversion), and the execution type is
/// `F`, `D` or `Ud`. Immediates of any type are fine — the reference
/// interpreter passes an immediate's payload through `as_f64`/`as_i64`/
/// `as_u64` at eval time regardless of its declared type, so converting at
/// decode time is bit-identical.
fn fast_alu(insn: &Instruction, n: usize) -> Option<PlanKind> {
    let want = insn.dtype;
    if !matches!(want, DataType::F | DataType::D | DataType::Ud) {
        return None;
    }
    let dst = match insn.dst {
        Operand::Grf { reg, dtype } if dtype == want => u32::from(reg) * GRF_BYTES,
        _ => return None,
    };
    let raw = fast_srcs(&insn.srcs[..n], want)?;
    let specialize = |imm: fn(Scalar) -> u64| specialize_srcs(&raw, imm);
    let width = insn.exec_width;
    match want {
        DataType::F => {
            let srcs = specialize(|v| v.as_f64().to_bits());
            if span_safe(&srcs, dst, width) {
                float_span(insn.op).map(|kern| PlanKind::AluVec {
                    kern,
                    srcs,
                    dst,
                    width,
                })
            } else {
                float_fn(insn.op).map(|f| PlanKind::AluF { f, srcs, dst })
            }
        }
        DataType::D => {
            let srcs = specialize(|v| v.as_i64() as u64);
            if span_safe(&srcs, dst, width) {
                signed_span(insn.op).map(|kern| PlanKind::AluVec {
                    kern,
                    srcs,
                    dst,
                    width,
                })
            } else {
                signed_fn(insn.op).map(|f| PlanKind::AluD { f, srcs, dst })
            }
        }
        DataType::Ud => {
            let srcs = specialize(Scalar::as_u64);
            if span_safe(&srcs, dst, width) {
                unsigned_span(insn.op).map(|kern| PlanKind::AluVec {
                    kern,
                    srcs,
                    dst,
                    width,
                })
            } else {
                unsigned_fn(insn.op).map(|f| PlanKind::AluU { f, srcs, dst })
            }
        }
        _ => unreachable!("fast classes checked above"),
    }
}

/// Lowers operand sources onto the decode-time fast classes: every
/// register source must match the execution type `want` (immediates of
/// any type are fine — see [`fast_alu`]). Unused trailing slots stay
/// `Imm(0)`.
fn fast_srcs(srcs: &[Operand], want: DataType) -> Option<[RawSrc; 3]> {
    let mut raw = [RawSrc::Imm(Scalar::U(0)); 3];
    for (i, s) in srcs.iter().enumerate() {
        raw[i] = match *s {
            Operand::Grf { reg, dtype } if dtype == want => RawSrc::Vec(u32::from(reg) * GRF_BYTES),
            Operand::GrfScalar { reg, sub, dtype } if dtype == want => {
                RawSrc::Broadcast(u32::from(reg) * GRF_BYTES + u32::from(sub) * dtype.size_bytes())
            }
            Operand::Imm { value, .. } => RawSrc::Imm(value),
            _ => return None,
        };
    }
    Some(raw)
}

/// Converts raw fast-class sources into one eval domain by applying `imm`
/// to each immediate payload.
fn specialize_srcs(raw: &[RawSrc; 3], imm: fn(Scalar) -> u64) -> [Src32; 3] {
    let mut srcs = [Src32::Imm(0); 3];
    for (dst, src) in srcs.iter_mut().zip(raw.iter()) {
        *dst = match *src {
            RawSrc::Vec(b) => Src32::Vec(b),
            RawSrc::Broadcast(b) => Src32::Broadcast(b),
            RawSrc::Imm(v) => Src32::Imm(imm(v)),
        };
    }
    srcs
}

/// Tries to lower a `cmp` onto the vectorized span path. Eligibility
/// mirrors [`fast_alu`] — both sources on the fast classes at an `F`/`D`/
/// `Ud` execution type — plus a destination that is either null (flags
/// only) or a plain vector register of the execution type. The condition
/// is baked into a monomorphized kernel; the per-class comparison domains
/// replicate [`eval_cond`] exactly (`as_f64`/`as_i64`/`as_u64`).
fn fast_cmp(insn: &Instruction, cm: CondMod) -> Option<PlanKind> {
    let want = insn.dtype;
    if !matches!(want, DataType::F | DataType::D | DataType::Ud) {
        return None;
    }
    let raw = fast_srcs(&insn.srcs[..2], want)?;
    let dst = match insn.dst {
        d if d.is_null() => NO_DST,
        Operand::Grf { reg, dtype } if dtype == want => u32::from(reg) * GRF_BYTES,
        _ => return None,
    };
    let width = insn.exec_width;
    let (srcs, kern) = match want {
        DataType::F => (
            specialize_srcs(&raw, |v| v.as_f64().to_bits()),
            float_cmp(cm.cond),
        ),
        DataType::D => (
            specialize_srcs(&raw, |v| v.as_i64() as u64),
            signed_cmp(cm.cond),
        ),
        DataType::Ud => (specialize_srcs(&raw, Scalar::as_u64), unsigned_cmp(cm.cond)),
        _ => unreachable!("fast classes checked above"),
    };
    let safe = if dst == NO_DST {
        span_srcs_in_bounds(&srcs, width)
    } else {
        span_safe(&srcs, dst, width)
    };
    if !safe {
        return None;
    }
    Some(PlanKind::CmpVec {
        kern,
        srcs,
        flag: cm.flag,
        dst,
        width,
    })
}

/// Tries to lower a `sel` onto the vectorized span path. Eligibility
/// mirrors [`fast_alu`]; the per-lane `read_lane`/`Mov`/`write_lane`
/// round trip is replicated by the span decode/encode conversions.
fn fast_sel(insn: &Instruction) -> Option<PlanKind> {
    let want = insn.dtype;
    if !matches!(want, DataType::F | DataType::D | DataType::Ud) {
        return None;
    }
    insn.pred?;
    let raw = fast_srcs(&insn.srcs[..2], want)?;
    let dst = match insn.dst {
        Operand::Grf { reg, dtype } if dtype == want => u32::from(reg) * GRF_BYTES,
        _ => return None,
    };
    let width = insn.exec_width;
    let (srcs, kern) = match want {
        DataType::F => (
            specialize_srcs(&raw, |v| v.as_f64().to_bits()),
            sel_span_f as SelKern,
        ),
        DataType::D => (
            specialize_srcs(&raw, |v| v.as_i64() as u64),
            sel_span_d as SelKern,
        ),
        DataType::Ud => (specialize_srcs(&raw, Scalar::as_u64), sel_span_u as SelKern),
        _ => unreachable!("fast classes checked above"),
    };
    if !span_safe(&srcs, dst, width) {
        return None;
    }
    Some(PlanKind::SelVec {
        kern,
        srcs,
        dst,
        width,
    })
}

/// Proves a span kernel bit-identical to the ascending per-lane loop.
///
/// The per-lane loop interleaves reads and writes lane by lane in
/// ascending order; a span kernel reads every source lane up front. The
/// two differ only when some lane's read would observe an earlier lane's
/// write:
///
/// * a vector source starting strictly below the destination but
///   overlapping it (lane `i` reads bytes an earlier lane already wrote);
///   starting at or above the destination is fine — those bytes are
///   written by the same or a later lane;
/// * a broadcast element inside the destination span (re-read per lane in
///   the scalar loop, exactly because it may alias the destination).
///
/// The kernel also reads source lanes under inactive mask bits (their
/// results are blended away), so every vector span — and the destination,
/// whose blend rewrites inactive lanes with their own old bytes — must lie
/// fully inside the register file.
fn span_safe(srcs: &[Src32; 3], dst: u32, width: u32) -> bool {
    use iwc_isa::reg::GRF_TOTAL_BYTES;
    let bytes = 4 * width;
    if dst + bytes > GRF_TOTAL_BYTES || width as usize > MAX_LANES {
        return false;
    }
    srcs.iter().all(|s| match *s {
        Src32::Vec(b) => b + bytes <= GRF_TOTAL_BYTES && !(b < dst && b + bytes > dst),
        Src32::Broadcast(a) => a + 4 <= GRF_TOTAL_BYTES && !(a + 4 > dst && a < dst + bytes),
        Src32::Imm(_) => true,
    })
}

/// Bounds-only variant of [`span_safe`] for kernels that write no GRF
/// destination (`cmp` with a null dst): no write can alias a source, but
/// inactive lanes are still read, so every span must lie fully inside the
/// register file.
fn span_srcs_in_bounds(srcs: &[Src32; 3], width: u32) -> bool {
    use iwc_isa::reg::GRF_TOTAL_BYTES;
    let bytes = 4 * width;
    if width as usize > MAX_LANES {
        return false;
    }
    srcs.iter().all(|s| match *s {
        Src32::Vec(b) => b + bytes <= GRF_TOTAL_BYTES,
        Src32::Broadcast(a) => a + 4 <= GRF_TOTAL_BYTES,
        Src32::Imm(_) => true,
    })
}

// The per-class eval tables replicate `iwc_isa::eval` formula-for-formula
// (including wrapping/shift-masking details); `sel` is excluded because it
// is predication, not arithmetic. Any opcode missing here falls back to
// the generic path, which calls `eval_alu` itself.
//
// Each formula list is written once and expanded twice: into the per-lane
// fn-pointer table (`*_fn`, used by the masked fallback paths) and into a
// table of whole-span kernels (`*_span`) where the formula is inlined into
// the span driver — one monomorphized loop body per opcode, so there is no
// per-lane indirect call and the compiler can autovectorize.

macro_rules! alu_tables {
    ($scalar:ident -> $sty:ty, $span:ident via $driver:ident {
        $($op:ident => $f:expr,)+
    }) => {
        fn $scalar(op: Opcode) -> Option<fn($sty, $sty, $sty) -> $sty> {
            Some(match op {
                $(Opcode::$op => $f,)+
                _ => return None,
            })
        }

        fn $span(op: Opcode) -> Option<SpanKern> {
            Some(match op {
                $(Opcode::$op => {
                    fn kern(
                        regs: &mut crate::regfile::RegFile,
                        srcs: &[Src32; 3],
                        dst: u32,
                        mask: u32,
                        width: u32,
                    ) {
                        $driver(regs, srcs, dst, mask, width, $f)
                    }
                    kern as SpanKern
                })+
                _ => return None,
            })
        }
    };
}

alu_tables!(float_fn -> f64, float_span via span_f {
    Mov => |a, _, _| a,
    Add => |a, b, _| a + b,
    Sub => |a, b, _| a - b,
    Mul => |a, b, _| a * b,
    Mad => |a, b, c| a * b + c,
    Min => |a: f64, b, _| a.min(b),
    Max => |a: f64, b, _| a.max(b),
    Abs => |a: f64, _, _| a.abs(),
    Frc => |a: f64, _, _| a - a.floor(),
    Rndd => |a: f64, _, _| a.floor(),
    Rndu => |a: f64, _, _| a.ceil(),
    Inv => |a, _, _| 1.0 / a,
    Log => |a: f64, _, _| a.log2(),
    Exp => |a: f64, _, _| a.exp2(),
    Sqrt => |a: f64, _, _| a.sqrt(),
    Rsqrt => |a: f64, _, _| 1.0 / a.sqrt(),
    Pow => |a: f64, b, _| a.powf(b),
    Sin => |a: f64, _, _| a.sin(),
    Cos => |a: f64, _, _| a.cos(),
    Fdiv => |a, b, _| a / b,
});

alu_tables!(signed_fn -> i64, signed_span via span_d {
    Mov => |a, _, _| a,
    Add => |a: i64, b, _| a.wrapping_add(b),
    Sub => |a: i64, b, _| a.wrapping_sub(b),
    Mul => |a: i64, b, _| a.wrapping_mul(b),
    Mad => |a: i64, b, c| a.wrapping_mul(b).wrapping_add(c),
    Min => |a: i64, b, _| a.min(b),
    Max => |a: i64, b, _| a.max(b),
    Abs => |a: i64, _, _| a.wrapping_abs(),
    Not => |a, _, _| !a,
    And => |a, b, _| a & b,
    Or => |a, b, _| a | b,
    Xor => |a, b, _| a ^ b,
    Shl => |a: i64, b, _| a.wrapping_shl(b as u32 & 63),
    Shr => |a: i64, b: i64, _| (a as u64).wrapping_shr(b as u32 & 63) as i64,
    Asr => |a: i64, b, _| a.wrapping_shr(b as u32 & 63),
    Idiv => |a: i64, b, _| a.checked_div(b).unwrap_or(0),
    Irem => |a: i64, b, _| a.checked_rem(b).unwrap_or(0),
});

alu_tables!(unsigned_fn -> u64, unsigned_span via span_u {
    Mov => |a, _, _| a,
    Add => |a: u64, b, _| a.wrapping_add(b),
    Sub => |a: u64, b, _| a.wrapping_sub(b),
    Mul => |a: u64, b, _| a.wrapping_mul(b),
    Mad => |a: u64, b, c| a.wrapping_mul(b).wrapping_add(c),
    Min => |a: u64, b, _| a.min(b),
    Max => |a: u64, b, _| a.max(b),
    Abs => |a, _, _| a,
    Not => |a, _, _| !a,
    And => |a, b, _| a & b,
    Or => |a, b, _| a | b,
    Xor => |a, b, _| a ^ b,
    Shl => |a: u64, b, _| a.wrapping_shl(b as u32 & 63),
    Shr => |a: u64, b, _| a.wrapping_shr(b as u32 & 63),
    Asr => |a: u64, b: u64, _| (a as i64).wrapping_shr(b as u32 & 63) as u64,
    Idiv => |a: u64, b, _| a.checked_div(b).unwrap_or(0),
    Irem => |a: u64, b, _| a.checked_rem(b).unwrap_or(0),
});

/// Longest straight-line span one convergent burst may cover. Bounds the
/// per-`pc` span scan at decode time and the work one arbiter visit can
/// front-run at issue time.
pub(crate) const MAX_BURST_SPAN: usize = 64;

/// Length of the maximal hazard-free burst span starting at each `pc`:
/// consecutive [`MicroPlan::burstable`] plans on one pipe where no plan
/// reads or overwrites a register an earlier span plan writes. Within such
/// a span, back-to-back issue is fully determined at decode time — the
/// scoreboard can never interpose — which is what lets the issue stage
/// replay the whole span from one arbiter visit.
fn burst_spans(plans: &[MicroPlan]) -> Box<[u16]> {
    let mut spans = vec![1u16; plans.len()];
    for pc in 0..plans.len() {
        let lead = &plans[pc];
        if !lead.burstable() {
            continue;
        }
        let mut written = lead.dst_regs();
        let mut len = 1usize;
        while len < MAX_BURST_SPAN {
            let Some(next) = plans.get(pc + len) else {
                break;
            };
            // `touched_regs` includes the destination, so this rejects both
            // RAW and WAW against every earlier span write (WAR is not a
            // hazard: the scoreboard only tracks writers).
            if !next.burstable() || next.pipe != lead.pipe || next.touched_regs() & written != 0 {
                break;
            }
            written |= next.dst_regs();
            len += 1;
        }
        spans[pc] = len as u16;
    }
    spans.into_boxed_slice()
}

/// A [`Program`] lowered into per-instruction [`MicroPlan`]s, built once
/// per launch.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    plans: Box<[MicroPlan]>,
    /// Burst-span length per `pc` (≥ 1; 1 = no burst possible here).
    burst_span: Box<[u16]>,
}

impl DecodedProgram {
    /// Decodes every instruction of `program`. O(instructions) — trivial
    /// next to any simulation that replays them. Wall time is charged to
    /// the `"decode"` phase of the current request span, if one is
    /// installed (a no-op everywhere outside the serve daemon).
    pub fn decode(program: &Program) -> Self {
        iwc_telemetry::span::time_phase("decode", || {
            let plans: Box<[MicroPlan]> = program.insns().iter().map(MicroPlan::decode).collect();
            let burst_span = burst_spans(&plans);
            Self { plans, burst_span }
        })
    }

    /// Length of the maximal hazard-free burst span starting at `pc`
    /// (≥ 1; see [`burst_spans`]).
    #[inline]
    pub(crate) fn burst_span(&self, pc: usize) -> usize {
        usize::from(self.burst_span[pc])
    }

    /// The plan at instruction index `pc`.
    #[inline]
    pub fn plan(&self, pc: usize) -> &MicroPlan {
        &self.plans[pc]
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no instruction was decoded (never for validated programs).
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[inline]
fn src_f(regs: &crate::regfile::RegFile, s: Src32, off: u32) -> f64 {
    match s {
        Src32::Vec(base) => f64::from(f32::from_bits(regs.load_u32(base + off))),
        Src32::Broadcast(addr) => f64::from(f32::from_bits(regs.load_u32(addr))),
        Src32::Imm(bits) => f64::from_bits(bits),
    }
}

#[inline]
fn src_i(regs: &crate::regfile::RegFile, s: Src32, off: u32) -> i64 {
    match s {
        Src32::Vec(base) => i64::from(regs.load_u32(base + off) as i32),
        Src32::Broadcast(addr) => i64::from(regs.load_u32(addr) as i32),
        Src32::Imm(bits) => bits as i64,
    }
}

#[inline]
fn src_u(regs: &crate::regfile::RegFile, s: Src32, off: u32) -> u64 {
    match s {
        Src32::Vec(base) => u64::from(regs.load_u32(base + off)),
        Src32::Broadcast(addr) => u64::from(regs.load_u32(addr)),
        Src32::Imm(bits) => bits,
    }
}

// Span-kernel machinery: stage every source into a stack array (one
// contiguous counted loop per source — vector sources become consecutive
// 32-bit loads, broadcasts and immediates become splats), evaluate the
// formula over lanes `0..width` unconditionally (inactive lanes compute on
// whatever bytes the register holds; every table formula is total, and
// those results are discarded by the blend), then commit with a branchless
// select against the destination's old bits. All addresses were
// bounds-proved by `span_safe` at decode time.

macro_rules! span_driver {
    ($driver:ident, $elem:ty, $fill:ident, $decode:expr, $imm:expr, $encode:expr) => {
        #[inline(always)]
        fn $fill(regs: &crate::regfile::RegFile, s: Src32, w: usize, out: &mut [$elem; MAX_LANES]) {
            match s {
                Src32::Vec(base) => {
                    for (i, slot) in out[..w].iter_mut().enumerate() {
                        *slot = $decode(regs.load_u32(base + 4 * i as u32));
                    }
                }
                Src32::Broadcast(addr) => out[..w].fill($decode(regs.load_u32(addr))),
                Src32::Imm(bits) => out[..w].fill($imm(bits)),
            }
        }

        #[inline(always)]
        fn $driver(
            regs: &mut crate::regfile::RegFile,
            srcs: &[Src32; 3],
            dst: u32,
            mask: u32,
            width: u32,
            f: impl Fn($elem, $elem, $elem) -> $elem,
        ) {
            let w = (width as usize).min(MAX_LANES);
            let mut a = [<$elem>::default(); MAX_LANES];
            let mut b = [<$elem>::default(); MAX_LANES];
            let mut c = [<$elem>::default(); MAX_LANES];
            $fill(regs, srcs[0], w, &mut a);
            $fill(regs, srcs[1], w, &mut b);
            $fill(regs, srcs[2], w, &mut c);
            let mut out = [0u32; MAX_LANES];
            for i in 0..w {
                out[i] = $encode(f(a[i], b[i], c[i]));
            }
            for (i, &v) in out[..w].iter().enumerate() {
                let off = dst + 4 * i as u32;
                let old = regs.load_u32(off);
                let v = if mask >> i & 1 != 0 { v } else { old };
                regs.store_u32(off, v);
            }
        }
    };
}

// The `$decode`/`$imm`/`$encode` conversions mirror `src_f`/`src_i`/
// `src_u` and the per-lane stores bit for bit: `$decode` widens a 32-bit
// register element, `$imm` reinterprets the full-width immediate payload
// pre-converted at decode time (f64 bits / i64 / u64 — never a 32-bit
// widening), `$encode` narrows the eval result back to raw 32-bit bits.

span_driver!(
    span_f,
    f64,
    fill_f,
    |bits: u32| f64::from(f32::from_bits(bits)),
    |bits: u64| f64::from_bits(bits),
    |r: f64| (r as f32).to_bits()
);
span_driver!(
    span_d,
    i64,
    fill_d,
    |bits: u32| i64::from(bits as i32),
    |bits: u64| bits as i64,
    |r: i64| r as u32
);
span_driver!(
    span_u,
    u64,
    fill_u,
    |bits: u32| u64::from(bits),
    |bits: u64| bits,
    |r: u64| r as u32
);

// `cmp` span machinery: stage both sources like the ALU drivers, fold the
// per-lane condition results into one bitmask (returned to the caller for
// the flag merge), and blend-store the optional numeric destination with
// the class's encoding of true (1.0f for `F`, 1 for `D`/`Ud`) — the same
// values the scalar arm writes through `write_lane`.

macro_rules! cmp_driver {
    ($driver:ident, $elem:ty, $fill:ident, $true_bits:expr) => {
        #[inline(always)]
        fn $driver(
            regs: &mut crate::regfile::RegFile,
            srcs: &[Src32; 3],
            dst: u32,
            mask: u32,
            width: u32,
            f: impl Fn($elem, $elem) -> bool,
        ) -> u32 {
            let w = (width as usize).min(MAX_LANES);
            let mut a = [<$elem>::default(); MAX_LANES];
            let mut b = [<$elem>::default(); MAX_LANES];
            $fill(regs, srcs[0], w, &mut a);
            $fill(regs, srcs[1], w, &mut b);
            let mut res = 0u32;
            for i in 0..w {
                res |= u32::from(f(a[i], b[i])) << i;
            }
            if dst != NO_DST {
                for i in 0..w {
                    let off = dst + 4 * i as u32;
                    let old = regs.load_u32(off);
                    let v = if res >> i & 1 != 0 { $true_bits } else { 0 };
                    let v = if mask >> i & 1 != 0 { v } else { old };
                    regs.store_u32(off, v);
                }
            }
            res
        }
    };
}

cmp_driver!(cmp_span_f, f64, fill_f, 1.0f32.to_bits());
cmp_driver!(cmp_span_d, i64, fill_d, 1);
cmp_driver!(cmp_span_u, u64, fill_u, 1);

/// Wraps one condition formula into a monomorphized [`CmpKern`].
macro_rules! cmp_kern {
    ($driver:ident, $f:expr) => {{
        fn kern(
            regs: &mut crate::regfile::RegFile,
            srcs: &[Src32; 3],
            dst: u32,
            mask: u32,
            width: u32,
        ) -> u32 {
            $driver(regs, srcs, dst, mask, width, $f)
        }
        kern as CmpKern
    }};
}

/// Expands the six [`CondOp`]s into span kernels over one comparison
/// domain — the same operator-per-condition table as [`eval_cond`].
macro_rules! cmp_tables {
    ($table:ident via $driver:ident, $sty:ty) => {
        fn $table(cond: CondOp) -> CmpKern {
            match cond {
                CondOp::Eq => cmp_kern!($driver, |x: $sty, y: $sty| x == y),
                CondOp::Ne => cmp_kern!($driver, |x: $sty, y: $sty| x != y),
                CondOp::Lt => cmp_kern!($driver, |x: $sty, y: $sty| x < y),
                CondOp::Le => cmp_kern!($driver, |x: $sty, y: $sty| x <= y),
                CondOp::Gt => cmp_kern!($driver, |x: $sty, y: $sty| x > y),
                CondOp::Ge => cmp_kern!($driver, |x: $sty, y: $sty| x >= y),
            }
        }
    };
}

cmp_tables!(float_cmp via cmp_span_f, f64);
cmp_tables!(signed_cmp via cmp_span_d, i64);
cmp_tables!(unsigned_cmp via cmp_span_u, u64);

// `sel` span machinery: stage both sources, pick per lane by the select
// bitmask (the instruction's predicate, resolved at execute time), and
// encode through the same decode/convert/encode chain as the scalar
// `read_lane`/`Mov`/`write_lane` round trip.

macro_rules! sel_driver {
    ($driver:ident, $elem:ty, $fill:ident, $encode:expr) => {
        fn $driver(
            regs: &mut crate::regfile::RegFile,
            srcs: &[Src32; 3],
            dst: u32,
            mask: u32,
            width: u32,
            select: u32,
        ) {
            let w = (width as usize).min(MAX_LANES);
            let mut a = [<$elem>::default(); MAX_LANES];
            let mut b = [<$elem>::default(); MAX_LANES];
            $fill(regs, srcs[0], w, &mut a);
            $fill(regs, srcs[1], w, &mut b);
            let mut out = [0u32; MAX_LANES];
            for i in 0..w {
                let v = if select >> i & 1 != 0 { a[i] } else { b[i] };
                out[i] = $encode(v);
            }
            for (i, &v) in out[..w].iter().enumerate() {
                let off = dst + 4 * i as u32;
                let old = regs.load_u32(off);
                let v = if mask >> i & 1 != 0 { v } else { old };
                regs.store_u32(off, v);
            }
        }
    };
}

sel_driver!(sel_span_f, f64, fill_f, |r: f64| (r as f32).to_bits());
sel_driver!(sel_span_d, i64, fill_d, |r: i64| r as u32);
sel_driver!(sel_span_u, u64, fill_u, |r: u64| r as u32);

/// Executes the plan at `ctx.pc` under the precomputed execution `mask`
/// (which must equal [`MicroPlan::exec_mask`] for the current context and
/// must be non-empty for data plans — zero-mask skipping happens before
/// issue). Mirrors [`execute_instruction`](crate::exec::reference) exactly;
/// send lane addresses land in `scratch` instead of a fresh vector.
pub(crate) fn execute_plan(
    ctx: &mut ThreadCtx,
    plan: &MicroPlan,
    mask: ExecMask,
    mem: &mut MemoryImage,
    slm: &mut MemoryImage,
    scratch: &mut LaneScratch,
) -> PlanEffect {
    match plan.kind {
        PlanKind::AluF { f, srcs, dst } => {
            let mut bits = mask.bits();
            while bits != 0 {
                let off = 4 * bits.trailing_zeros();
                bits &= bits - 1;
                let r = f(
                    src_f(&ctx.regs, srcs[0], off),
                    src_f(&ctx.regs, srcs[1], off),
                    src_f(&ctx.regs, srcs[2], off),
                );
                ctx.regs.store_u32(dst + off, (r as f32).to_bits());
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::AluD { f, srcs, dst } => {
            let mut bits = mask.bits();
            while bits != 0 {
                let off = 4 * bits.trailing_zeros();
                bits &= bits - 1;
                let r = f(
                    src_i(&ctx.regs, srcs[0], off),
                    src_i(&ctx.regs, srcs[1], off),
                    src_i(&ctx.regs, srcs[2], off),
                );
                ctx.regs.store_u32(dst + off, r as u32);
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::AluU { f, srcs, dst } => {
            let mut bits = mask.bits();
            while bits != 0 {
                let off = 4 * bits.trailing_zeros();
                bits &= bits - 1;
                let r = f(
                    src_u(&ctx.regs, srcs[0], off),
                    src_u(&ctx.regs, srcs[1], off),
                    src_u(&ctx.regs, srcs[2], off),
                );
                ctx.regs.store_u32(dst + off, r as u32);
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::AluVec {
            kern,
            srcs,
            dst,
            width,
        } => {
            kern(&mut ctx.regs, &srcs, dst, mask.bits(), width);
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::AluGeneric { op, n, srcs, dst } => {
            let n = usize::from(n);
            for lane in mask.iter_active() {
                let mut vals = [Scalar::U(0); 3];
                for (i, s) in srcs[..n].iter().enumerate() {
                    vals[i] = ctx.regs.read_lane(s, lane);
                }
                let v = eval_alu(op, plan.dtype, &vals[..n]);
                ctx.regs.write_lane(&dst, lane, v);
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::Cmp { cm, a, b, dst } => {
            let is_float = plan.dtype.is_float();
            for lane in mask.iter_active() {
                let x = ctx.regs.read_lane(&a, lane);
                let y = ctx.regs.read_lane(&b, lane);
                let r = eval_cond(cm.cond, plan.dtype, x, y);
                ctx.regs.set_flag_channel(cm.flag, lane, r);
                if !dst.is_null() {
                    let v = if is_float {
                        Scalar::F(if r { 1.0 } else { 0.0 })
                    } else {
                        Scalar::U(u64::from(r))
                    };
                    ctx.regs.write_lane(&dst, lane, v);
                }
            }
            ctx.pc += 1;
            PlanEffect::Compute(Pipe::Fpu)
        }
        PlanKind::Sel { a, b, dst } => {
            let p = plan.pred.expect("sel requires a selecting predicate");
            let select = pred_bits(ctx, p);
            for lane in mask.iter_active() {
                let which = if select.channel(lane) { &a } else { &b };
                let v = ctx.regs.read_lane(which, lane);
                let v = eval_alu(Opcode::Mov, plan.dtype, &[v]);
                ctx.regs.write_lane(&dst, lane, v);
            }
            ctx.pc += 1;
            PlanEffect::Compute(Pipe::Fpu)
        }
        PlanKind::CmpVec {
            kern,
            srcs,
            flag,
            dst,
            width,
        } => {
            let m = mask.bits();
            let res = kern(&mut ctx.regs, &srcs, dst, m, width);
            let old = ctx.regs.flag(flag);
            ctx.regs.set_flag(flag, (old & !m) | (res & m));
            ctx.pc += 1;
            PlanEffect::Compute(Pipe::Fpu)
        }
        PlanKind::SelVec {
            kern,
            srcs,
            dst,
            width,
        } => {
            let p = plan.pred.expect("sel requires a selecting predicate");
            let select = pred_bits(ctx, p).bits();
            kern(&mut ctx.regs, &srcs, dst, mask.bits(), width, select);
            ctx.pc += 1;
            PlanEffect::Compute(Pipe::Fpu)
        }
        PlanKind::Load {
            space,
            addr,
            mem_dtype,
            dst,
        } => {
            scratch.clear();
            for lane in mask.iter_active() {
                let a = addr.lane_addr(&ctx.regs, lane);
                scratch.push(a);
                let img = if space == MemSpace::Slm {
                    &mut *slm
                } else {
                    &mut *mem
                };
                let v = img.read_scalar(a, mem_dtype);
                ctx.regs.write_lane(&dst, lane, v);
            }
            ctx.pc += 1;
            PlanEffect::Memory {
                space,
                is_store: false,
            }
        }
        PlanKind::Store {
            space,
            addr,
            mem_dtype,
            data,
        } => {
            scratch.clear();
            for lane in mask.iter_active() {
                let a = addr.lane_addr(&ctx.regs, lane);
                scratch.push(a);
                let v = ctx.regs.read_lane(&data, lane);
                let img = if space == MemSpace::Slm {
                    &mut *slm
                } else {
                    &mut *mem
                };
                img.write_scalar(a, mem_dtype, v);
            }
            ctx.pc += 1;
            PlanEffect::Memory {
                space,
                is_store: true,
            }
        }
        PlanKind::Fence => {
            ctx.pc += 1;
            PlanEffect::Fence
        }
        PlanKind::If { jip } => {
            let p = plan.pred.expect("if requires a predicate");
            let cond = pred_bits(ctx, p);
            let jump = ctx.simt.exec_if(cond, jip);
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            PlanEffect::ControlFlow
        }
        PlanKind::Else { jip } => {
            let jump = ctx.simt.exec_else(jip);
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            PlanEffect::ControlFlow
        }
        PlanKind::EndIf => {
            ctx.simt.exec_endif();
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Do => {
            ctx.simt.exec_do();
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::While { jip } => {
            let p = plan.pred.expect("while requires a predicate");
            let cond = pred_bits(ctx, p);
            let jump = ctx.simt.exec_while(cond, jip);
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            PlanEffect::ControlFlow
        }
        PlanKind::Break => {
            let p = plan.pred.expect("break requires a predicate");
            ctx.simt.exec_break(pred_bits(ctx, p));
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Continue => {
            let p = plan.pred.expect("continue requires a predicate");
            ctx.simt.exec_continue(pred_bits(ctx, p));
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Jmpi { jip } => {
            ctx.pc = jip;
            PlanEffect::ControlFlow
        }
        PlanKind::Nop => {
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Barrier => {
            ctx.pc += 1;
            PlanEffect::Barrier
        }
        PlanKind::Eot => PlanEffect::Eot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_instruction, Effect};
    use iwc_isa::builder::KernelBuilder;
    use iwc_isa::insn::CondOp;
    use iwc_isa::reg::FlagReg;

    /// Steps the same program through both interpreters from identical
    /// fresh states and asserts every register lane and both memories
    /// match after completion.
    fn assert_backends_agree(p: &Program, seed: impl Fn(&mut ThreadCtx)) {
        let decoded = DecodedProgram::decode(p);
        let mut scratch = LaneScratch::new();
        let width = p.simd_width();
        let mut rctx = ThreadCtx::new(ExecMask::all(width));
        let mut dctx = ThreadCtx::new(ExecMask::all(width));
        seed(&mut rctx);
        seed(&mut dctx);
        let (mut rmem, mut rslm) = (MemoryImage::new(1 << 16), MemoryImage::new(1 << 12));
        let (mut dmem, mut dslm) = (MemoryImage::new(1 << 16), MemoryImage::new(1 << 12));
        for _ in 0..10_000 {
            let re = execute_instruction(&mut rctx, p, &mut rmem, &mut rslm);
            // The decoded issue path skips zero-mask data plans before
            // execution; emulate that here.
            let plan = decoded.plan(dctx.pc);
            let mask = plan.exec_mask(&dctx);
            if plan.is_data() && mask.is_empty() && !plan.is_eot() {
                dctx.pc += 1;
                assert_eq!(re.effect, Effect::SkippedZeroMask);
                continue;
            }
            let de = execute_plan(&mut dctx, plan, mask, &mut dmem, &mut dslm, &mut scratch);
            assert_eq!(re.mask, mask, "masks diverged");
            if let Effect::Memory { lane_addrs, .. } = &re.effect {
                assert_eq!(lane_addrs.as_slice(), scratch.addrs(), "lane addresses");
            }
            if de == PlanEffect::Eot {
                break;
            }
        }
        assert_eq!(rctx.pc, dctx.pc, "final pc");
        for reg in 0..16u8 {
            let op = Operand::rud(reg);
            for lane in 0..width {
                assert_eq!(
                    rctx.regs.read_lane(&op, lane),
                    dctx.regs.read_lane(&op, lane),
                    "r{reg} lane {lane}"
                );
            }
        }
        for f in [FlagReg::F0, FlagReg::F1] {
            assert_eq!(rctx.regs.flag(f), dctx.regs.flag(f), "flag {f:?}");
        }
        for a in (0..1 << 16).step_by(4) {
            assert_eq!(rmem.read_u32(a), dmem.read_u32(a), "mem at {a}");
        }
    }

    #[test]
    fn fast_paths_match_reference_float() {
        let mut b = KernelBuilder::new("k", 16);
        b.mov(Operand::rf(4), Operand::imm_f(1.5));
        b.mad(
            Operand::rf(6),
            Operand::rf(4),
            Operand::rf(4),
            Operand::imm_f(0.25),
        );
        b.mul(
            Operand::rf(8),
            Operand::rf(6),
            Operand::scalar(4, 3, DataType::F),
        );
        let p = b.finish().unwrap();
        assert_backends_agree(&p, |_| {});
    }

    #[test]
    fn fast_paths_match_reference_int_and_divergence() {
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(1), Operand::imm_ud(9));
        b.if_(Predicate::normal(FlagReg::F0));
        b.add(Operand::rd(4), Operand::rd(4), Operand::imm_d(-3));
        b.else_();
        b.mul(Operand::rud(6), Operand::rud(1), Operand::imm_ud(7));
        b.end_if();
        let p = b.finish().unwrap();
        assert_backends_agree(&p, |ctx| {
            for lane in 0..16 {
                ctx.regs
                    .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
                ctx.regs
                    .write_lane(&Operand::rd(4), lane, Scalar::I(i64::from(lane) * 5 - 17));
            }
        });
    }

    #[test]
    fn generic_fallback_dtype_matches_reference() {
        // W (16-bit signed) has no fast path: exercises the generic lane
        // loop including sign-extension on read and narrowing on write.
        let w = |reg| Operand::reg(reg, DataType::W);
        let mut b = KernelBuilder::new("k", 16);
        b.op(Opcode::Add, w(4), &[w(4), w(6)]);
        let p = b.finish().unwrap();
        let decoded = DecodedProgram::decode(&p);
        assert!(
            matches!(decoded.plan(0).kind, PlanKind::AluGeneric { .. }),
            "W stays generic"
        );
        assert_backends_agree(&p, |ctx| {
            for lane in 0..16 {
                ctx.regs
                    .write_lane(&w(4), lane, Scalar::I(i64::from(lane) * 1000 - 30000));
                ctx.regs.write_lane(&w(6), lane, Scalar::I(-5000));
            }
        });
    }

    #[test]
    fn mixed_dtype_operands_fall_back() {
        // dst F but src D: no fast path.
        let mut b = KernelBuilder::new("k", 8);
        b.op(Opcode::Mov, Operand::rf(4), &[Operand::rd(6)]);
        let p = b.finish().unwrap();
        let decoded = DecodedProgram::decode(&p);
        assert!(matches!(decoded.plan(0).kind, PlanKind::AluGeneric { .. }));
    }

    #[test]
    fn fast_paths_selected_for_f_d_ud() {
        // In-place adds: a source starting AT the destination is span-safe
        // (each lane reads only its own offset), so all three vectorize.
        let mut b = KernelBuilder::new("k", 8);
        b.add(Operand::rf(4), Operand::rf(4), Operand::imm_f(1.0));
        b.add(Operand::rd(6), Operand::rd(6), Operand::imm_d(1));
        b.add(Operand::rud(8), Operand::rud(8), Operand::imm_ud(1));
        let p = b.finish().unwrap();
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.plan(0).kind, PlanKind::AluVec { .. }));
        assert!(matches!(d.plan(1).kind, PlanKind::AluVec { .. }));
        assert!(matches!(d.plan(2).kind, PlanKind::AluVec { .. }));
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn aliasing_spans_fall_back_to_per_lane() {
        // SIMD16 `F` spans cover two GRFs. A vector source one register
        // below the destination overlaps it from below (lane 8 reads what
        // lane 0 wrote), and a broadcast element inside the destination
        // span is re-read per lane — both must stay on the per-lane path.
        let mut b = KernelBuilder::new("k", 16);
        b.add(Operand::rf(4), Operand::rf(3), Operand::imm_f(1.0));
        b.mul(
            Operand::rf(8),
            Operand::rf(6),
            Operand::scalar(8, 1, DataType::F),
        );
        // Reading from strictly above the destination is safe: those bytes
        // are written by the same or a later lane in the scalar order too.
        b.add(Operand::rf(10), Operand::rf(11), Operand::imm_f(1.0));
        let p = b.finish().unwrap();
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.plan(0).kind, PlanKind::AluF { .. }));
        assert!(matches!(d.plan(1).kind, PlanKind::AluF { .. }));
        assert!(matches!(d.plan(2).kind, PlanKind::AluVec { .. }));
    }

    #[test]
    fn aliasing_spans_match_reference() {
        // The fallback cases above, executed against the reference
        // interpreter — including under divergence so masked blending of
        // the vectorized third instruction is exercised.
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(
            CondOp::Lt,
            FlagReg::F0,
            Operand::rud(1),
            Operand::imm_ud(11),
        );
        b.if_(Predicate::normal(FlagReg::F0));
        b.add(Operand::rf(4), Operand::rf(3), Operand::imm_f(1.0));
        b.mul(
            Operand::rf(8),
            Operand::rf(6),
            Operand::scalar(8, 1, DataType::F),
        );
        b.add(Operand::rf(10), Operand::rf(11), Operand::imm_f(0.5));
        b.end_if();
        let p = b.finish().unwrap();
        assert_backends_agree(&p, |ctx| {
            for lane in 0..16 {
                ctx.regs
                    .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
                for reg in [3u8, 4, 6, 8, 10, 11] {
                    let v = f64::from(lane) * 0.75 + f64::from(reg);
                    ctx.regs.write_lane(&Operand::rf(reg), lane, Scalar::F(v));
                }
            }
        });
    }

    #[test]
    fn loads_and_stores_capture_addresses_in_scratch() {
        let mut b = KernelBuilder::new("k", 16);
        b.mad(
            Operand::rud(4),
            Operand::rud(1),
            Operand::imm_ud(4),
            Operand::imm_ud(1024),
        );
        b.store(MemSpace::Global, Operand::rud(4), Operand::rud(1));
        b.load(MemSpace::Global, Operand::rud(6), Operand::rud(4));
        let p = b.finish().unwrap();
        assert_backends_agree(&p, |ctx| {
            for lane in 0..16 {
                ctx.regs
                    .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
            }
        });
    }
}
