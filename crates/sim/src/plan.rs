//! Decode-once execution plans: the fast functional interpreter.
//!
//! [`DecodedProgram`] lowers every static
//! [`Instruction`] of a validated
//! [`Program`] into a flat [`MicroPlan`] exactly once
//! per launch. A plan carries everything the per-issue hot path would
//! otherwise re-derive from the instruction:
//!
//! * a dense plan kind so issue dispatches on one enum discriminant
//!   instead of re-inspecting opcode + message + operand shapes;
//! * resolved GRF byte offsets and pre-converted immediates for the
//!   dtype-specialized lane loops (`F`/`D`/`Ud` run on raw register bytes
//!   with a pre-selected eval function pointer — no per-lane opcode match
//!   and no widened [`Scalar`] round-trip);
//! * the scoreboard plan: per-operand GRF register ranges and flag
//!   indices, precomputed so dependence checks never allocate the
//!   `read_operands()` vector;
//! * the predicate/flag plan and static classification (data vs control,
//!   pipe, EOT) used by zero-mask skipping and pipe arbitration.
//!
//! Operand shapes outside the specialized fast paths (mixed dtypes,
//! scalar/null destinations, sub-32-bit types, `cmp`/`sel`, memory data
//! movement) fall back to the exact [`read_lane`/`write_lane`/`eval_alu`]
//! sequence of the reference interpreter, so the two backends are
//! bit-identical by construction; `crates/sim/tests/decoded_equivalence.rs`
//! proves it over the whole workload catalog × every canonical engine.
//!
//! [`read_lane`/`write_lane`/`eval_alu`]: crate::exec::reference

use crate::exec::{pred_bits, ThreadCtx};
use crate::memimg::MemoryImage;
use iwc_isa::eval::{eval_alu, eval_cond};
use iwc_isa::insn::{CondMod, Instruction, MemSpace, Opcode, Pipe, SendMessage};
use iwc_isa::mask::ExecMask;
use iwc_isa::program::Program;
use iwc_isa::reg::{Operand, Predicate, GRF_BYTES};
use iwc_isa::types::{DataType, Scalar};

type F3 = fn(f64, f64, f64) -> f64;
type I3 = fn(i64, i64, i64) -> i64;
type U3 = fn(u64, u64, u64) -> u64;

/// A source operand resolved at decode time for the 32-bit fast lane
/// loops. Immediates are pre-converted into the eval domain of the plan's
/// type class and stored as raw bits.
#[derive(Clone, Copy, Debug)]
enum Src32 {
    /// Per-lane vector: byte address = base + 4 × lane.
    Vec(u32),
    /// One GRF element broadcast to every lane (re-read per lane, because
    /// the destination may alias it).
    Broadcast(u32),
    /// Immediate, pre-converted at decode time.
    Imm(u64),
}

/// Decode-time view of a fast-path source before the immediate is
/// converted into a specific eval domain.
#[derive(Clone, Copy)]
enum RawSrc {
    Vec(u32),
    Broadcast(u32),
    Imm(Scalar),
}

/// The address operand of a send, resolved for raw-u32 reads when it is a
/// plain `Ud` vector register (the common case emitted by the kernel
/// builder).
#[derive(Clone, Copy, Debug)]
enum AddrPlan {
    /// `Ud` vector register: lane address = `load_u32(base + 4 × lane)`.
    VecUd(u32),
    /// Anything else: the reference `read_lane(..).as_u64() as u32` path.
    Generic(Operand),
}

impl AddrPlan {
    fn decode(op: &Operand) -> Self {
        match *op {
            Operand::Grf {
                reg,
                dtype: DataType::Ud,
            } => AddrPlan::VecUd(u32::from(reg) * GRF_BYTES),
            other => AddrPlan::Generic(other),
        }
    }

    #[inline]
    fn lane_addr(&self, regs: &crate::regfile::RegFile, lane: u32) -> u32 {
        match *self {
            AddrPlan::VecUd(base) => regs.load_u32(base + 4 * lane),
            AddrPlan::Generic(op) => regs.read_lane(&op, lane).as_u64() as u32,
        }
    }
}

/// What one decoded instruction does, as a dense enum the issue path can
/// branch on directly.
#[derive(Clone, Debug)]
enum PlanKind {
    /// 32-bit float ALU fast path (all register operands `F`).
    AluF {
        f: F3,
        srcs: [Src32; 3],
        dst: u32,
    },
    /// 32-bit signed ALU fast path (all register operands `D`).
    AluD {
        f: I3,
        srcs: [Src32; 3],
        dst: u32,
    },
    /// 32-bit unsigned ALU fast path (all register operands `Ud`).
    AluU {
        f: U3,
        srcs: [Src32; 3],
        dst: u32,
    },
    /// Any other computation: reference `read_lane`/`eval_alu`/`write_lane`.
    AluGeneric {
        op: Opcode,
        n: u8,
        srcs: [Operand; 3],
        dst: Operand,
    },
    Cmp {
        cm: CondMod,
        a: Operand,
        b: Operand,
        dst: Operand,
    },
    Sel {
        a: Operand,
        b: Operand,
        dst: Operand,
    },
    Load {
        space: MemSpace,
        addr: AddrPlan,
        mem_dtype: DataType,
        dst: Operand,
    },
    Store {
        space: MemSpace,
        addr: AddrPlan,
        mem_dtype: DataType,
        data: Operand,
    },
    Fence,
    If {
        jip: usize,
    },
    Else {
        jip: usize,
    },
    EndIf,
    Do,
    While {
        jip: usize,
    },
    Break,
    Continue,
    Jmpi {
        jip: usize,
    },
    Nop,
    Barrier,
    Eot,
}

/// The resource effect of one executed plan — [`Effect`](crate::Effect)
/// minus the allocated lane-address vector: addresses land in the caller's
/// [`LaneScratch`] instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanEffect {
    /// An FPU or EM computation over the mask.
    Compute(Pipe),
    /// A memory message; lane addresses are in the scratch buffer.
    Memory {
        /// Target space.
        space: MemSpace,
        /// True for stores.
        is_store: bool,
    },
    /// A memory fence.
    Fence,
    /// A workgroup barrier.
    Barrier,
    /// End of thread.
    Eot,
    /// Control flow resolved at issue.
    ControlFlow,
}

/// Reusable per-EU scratch for send lane addresses and their coalesced
/// line set: an inline array up to SIMD32, so the hot path never
/// allocates.
#[derive(Clone, Debug, Default)]
pub struct LaneScratch {
    pub(crate) addrs: [u32; 32],
    pub(crate) len: u8,
    pub(crate) lines: Vec<u64>,
}

impl LaneScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lane addresses captured by the last executed send.
    pub fn addrs(&self) -> &[u32] {
        &self.addrs[..usize::from(self.len)]
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, a: u32) {
        self.addrs[usize::from(self.len)] = a;
        self.len += 1;
    }
}

/// One instruction lowered into its decode-once execution plan.
#[derive(Clone, Debug)]
pub struct MicroPlan {
    kind: PlanKind,
    /// Instruction predicate (branch condition, `sel` selector, or mask
    /// gate — interpretation depends on `kind`).
    pred: Option<Predicate>,
    /// True when the predicate gates the execution mask (everything except
    /// `sel` and branches).
    pred_gates_mask: bool,
    /// Scoreboard read plan: GRF register ranges (inclusive) of every read
    /// operand plus the destination, in `read_operands()` order.
    reads: [(u8, u8); 6],
    n_reads: u8,
    /// Destination GRF register range (None for null/immediate dst).
    dst_range: Option<(u8, u8)>,
    /// Flag register read by the predicate, if any.
    pred_flag: Option<u8>,
    /// Flag register written by the condition modifier, if any.
    cond_flag: Option<u8>,
    /// GRF operand count (sources + destination) for multi-cycle RF timing.
    n_grf_operands: u64,
    /// Execution pipe of the source opcode.
    pipe: Pipe,
    /// Execution data type of the source instruction.
    dtype: DataType,
    /// True for ALU/send instructions (zero-mask skippable).
    is_data: bool,
    /// True for `eot`.
    is_eot: bool,
}

impl MicroPlan {
    fn decode(insn: &Instruction) -> Self {
        let width = insn.exec_width;
        let mut reads = [(0u8, 0u8); 6];
        let mut n_reads = 0u8;
        for op in insn.read_operands() {
            if let Some(r) = reg_range(&op, width) {
                reads[usize::from(n_reads)] = r;
                n_reads += 1;
            }
        }
        let dst_range = reg_range(&insn.dst, width);
        if let Some(r) = dst_range {
            reads[usize::from(n_reads)] = r;
            n_reads += 1;
        }
        let n_grf_operands = (insn
            .used_srcs()
            .iter()
            .filter(|o| o.grf_reg().is_some())
            .count()
            + usize::from(insn.dst.grf_reg().is_some())) as u64;
        let pipe = insn.op.pipe();
        Self {
            kind: decode_kind(insn),
            pred: insn.pred,
            pred_gates_mask: insn.pred.is_some() && insn.op != Opcode::Sel && !insn.op.is_branch(),
            reads,
            n_reads,
            dst_range,
            pred_flag: insn.pred.map(|p| p.flag.index()),
            cond_flag: insn.cond_mod.map(|cm| cm.flag.index()),
            n_grf_operands,
            pipe,
            dtype: insn.dtype,
            is_data: pipe != Pipe::Control,
            is_eot: insn.op == Opcode::Eot,
        }
    }

    /// Execution pipe of the decoded instruction.
    pub fn pipe(&self) -> Pipe {
        self.pipe
    }

    /// Execution data type of the decoded instruction.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// True for ALU/send instructions (zero-mask skippable).
    pub(crate) fn is_data(&self) -> bool {
        self.is_data
    }

    /// True for `eot`.
    pub(crate) fn is_eot(&self) -> bool {
        self.is_eot
    }

    /// Scoreboard read ranges, predicate flag, condition flag, and GRF
    /// operand count for the timing layer.
    pub(crate) fn scoreboard(&self) -> (&[(u8, u8)], Option<u8>, Option<u8>) {
        (
            &self.reads[..usize::from(self.n_reads)],
            self.pred_flag,
            self.cond_flag,
        )
    }

    pub(crate) fn dst_range(&self) -> Option<(u8, u8)> {
        self.dst_range
    }

    pub(crate) fn cond_flag(&self) -> Option<u8> {
        self.cond_flag
    }

    pub(crate) fn n_grf_operands(&self) -> u64 {
        self.n_grf_operands
    }

    /// The execution mask this plan would run under right now: the SIMT
    /// mask ANDed with the gating predicate (mirrors
    /// [`exec_mask_of`](crate::exec::exec_mask_of)).
    #[inline]
    pub(crate) fn exec_mask(&self, ctx: &ThreadCtx) -> ExecMask {
        let base = ctx.simt.exec();
        if self.pred_gates_mask {
            base.and(pred_bits(ctx, self.pred.expect("gating predicate present")))
        } else {
            base
        }
    }
}

fn reg_range(op: &Operand, width: u32) -> Option<(u8, u8)> {
    op.grf_byte_range(width)
        .map(|(lo, hi)| ((lo / GRF_BYTES) as u8, ((hi - 1) / GRF_BYTES) as u8))
}

fn decode_kind(insn: &Instruction) -> PlanKind {
    match insn.op {
        Opcode::If => PlanKind::If {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::Else => PlanKind::Else {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::EndIf => PlanKind::EndIf,
        Opcode::Do => PlanKind::Do,
        Opcode::While => PlanKind::While {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::Break => PlanKind::Break,
        Opcode::Continue => PlanKind::Continue,
        Opcode::Jmpi => PlanKind::Jmpi {
            jip: insn.jip.expect("resolved jip"),
        },
        Opcode::Nop => PlanKind::Nop,
        Opcode::Barrier => PlanKind::Barrier,
        Opcode::Eot => PlanKind::Eot,
        Opcode::Send => match insn.msg.expect("send carries a message") {
            SendMessage::Fence => PlanKind::Fence,
            SendMessage::Load { space, addr, dtype } => PlanKind::Load {
                space,
                addr: AddrPlan::decode(&addr),
                mem_dtype: dtype,
                dst: insn.dst,
            },
            SendMessage::Store {
                space,
                addr,
                data,
                dtype,
            } => PlanKind::Store {
                space,
                addr: AddrPlan::decode(&addr),
                mem_dtype: dtype,
                data,
            },
        },
        Opcode::Cmp => PlanKind::Cmp {
            cm: insn.cond_mod.expect("cmp carries a condition modifier"),
            a: insn.srcs[0],
            b: insn.srcs[1],
            dst: insn.dst,
        },
        Opcode::Sel => PlanKind::Sel {
            a: insn.srcs[0],
            b: insn.srcs[1],
            dst: insn.dst,
        },
        op => decode_alu(insn, op),
    }
}

fn decode_alu(insn: &Instruction, op: Opcode) -> PlanKind {
    let n = op.src_count();
    if let Some(kind) = fast_alu(insn, n) {
        return kind;
    }
    PlanKind::AluGeneric {
        op,
        n: n as u8,
        srcs: insn.srcs,
        dst: insn.dst,
    }
}

/// Tries to lower a regular ALU instruction onto one of the raw-byte fast
/// paths. Eligibility: the destination is a plain vector register of the
/// execution type, every register source matches the execution type (so
/// decode/encode is a fixed 32-bit conversion), and the execution type is
/// `F`, `D` or `Ud`. Immediates of any type are fine — the reference
/// interpreter passes an immediate's payload through `as_f64`/`as_i64`/
/// `as_u64` at eval time regardless of its declared type, so converting at
/// decode time is bit-identical.
fn fast_alu(insn: &Instruction, n: usize) -> Option<PlanKind> {
    let want = insn.dtype;
    if !matches!(want, DataType::F | DataType::D | DataType::Ud) {
        return None;
    }
    let dst = match insn.dst {
        Operand::Grf { reg, dtype } if dtype == want => u32::from(reg) * GRF_BYTES,
        _ => return None,
    };
    let mut raw = [RawSrc::Imm(Scalar::U(0)); 3];
    for (i, s) in insn.srcs[..n].iter().enumerate() {
        raw[i] = match *s {
            Operand::Grf { reg, dtype } if dtype == want => RawSrc::Vec(u32::from(reg) * GRF_BYTES),
            Operand::GrfScalar { reg, sub, dtype } if dtype == want => {
                RawSrc::Broadcast(u32::from(reg) * GRF_BYTES + u32::from(sub) * dtype.size_bytes())
            }
            Operand::Imm { value, .. } => RawSrc::Imm(value),
            _ => return None,
        };
    }
    let specialize = |imm: fn(Scalar) -> u64| {
        let mut srcs = [Src32::Imm(0); 3];
        for (dst, src) in srcs.iter_mut().zip(raw.iter()) {
            *dst = match *src {
                RawSrc::Vec(b) => Src32::Vec(b),
                RawSrc::Broadcast(b) => Src32::Broadcast(b),
                RawSrc::Imm(v) => Src32::Imm(imm(v)),
            };
        }
        srcs
    };
    match want {
        DataType::F => float_fn(insn.op).map(|f| PlanKind::AluF {
            f,
            srcs: specialize(|v| v.as_f64().to_bits()),
            dst,
        }),
        DataType::D => signed_fn(insn.op).map(|f| PlanKind::AluD {
            f,
            srcs: specialize(|v| v.as_i64() as u64),
            dst,
        }),
        DataType::Ud => unsigned_fn(insn.op).map(|f| PlanKind::AluU {
            f,
            srcs: specialize(Scalar::as_u64),
            dst,
        }),
        _ => unreachable!("fast classes checked above"),
    }
}

// The per-class eval tables replicate `iwc_isa::eval` formula-for-formula
// (including wrapping/shift-masking details); `sel` is excluded because it
// is predication, not arithmetic. Any opcode missing here falls back to
// the generic path, which calls `eval_alu` itself.

fn float_fn(op: Opcode) -> Option<F3> {
    Some(match op {
        Opcode::Mov => |a, _, _| a,
        Opcode::Add => |a, b, _| a + b,
        Opcode::Sub => |a, b, _| a - b,
        Opcode::Mul => |a, b, _| a * b,
        Opcode::Mad => |a, b, c| a * b + c,
        Opcode::Min => |a: f64, b, _| a.min(b),
        Opcode::Max => |a: f64, b, _| a.max(b),
        Opcode::Abs => |a: f64, _, _| a.abs(),
        Opcode::Frc => |a: f64, _, _| a - a.floor(),
        Opcode::Rndd => |a: f64, _, _| a.floor(),
        Opcode::Rndu => |a: f64, _, _| a.ceil(),
        Opcode::Inv => |a, _, _| 1.0 / a,
        Opcode::Log => |a: f64, _, _| a.log2(),
        Opcode::Exp => |a: f64, _, _| a.exp2(),
        Opcode::Sqrt => |a: f64, _, _| a.sqrt(),
        Opcode::Rsqrt => |a: f64, _, _| 1.0 / a.sqrt(),
        Opcode::Pow => |a: f64, b, _| a.powf(b),
        Opcode::Sin => |a: f64, _, _| a.sin(),
        Opcode::Cos => |a: f64, _, _| a.cos(),
        Opcode::Fdiv => |a, b, _| a / b,
        _ => return None,
    })
}

fn signed_fn(op: Opcode) -> Option<I3> {
    Some(match op {
        Opcode::Mov => |a, _, _| a,
        Opcode::Add => |a: i64, b, _| a.wrapping_add(b),
        Opcode::Sub => |a: i64, b, _| a.wrapping_sub(b),
        Opcode::Mul => |a: i64, b, _| a.wrapping_mul(b),
        Opcode::Mad => |a: i64, b, c| a.wrapping_mul(b).wrapping_add(c),
        Opcode::Min => |a: i64, b, _| a.min(b),
        Opcode::Max => |a: i64, b, _| a.max(b),
        Opcode::Abs => |a: i64, _, _| a.wrapping_abs(),
        Opcode::Not => |a, _, _| !a,
        Opcode::And => |a, b, _| a & b,
        Opcode::Or => |a, b, _| a | b,
        Opcode::Xor => |a, b, _| a ^ b,
        Opcode::Shl => |a: i64, b, _| a.wrapping_shl(b as u32 & 63),
        Opcode::Shr => |a, b: i64, _| (a as u64).wrapping_shr(b as u32 & 63) as i64,
        Opcode::Asr => |a: i64, b, _| a.wrapping_shr(b as u32 & 63),
        Opcode::Idiv => |a: i64, b, _| a.checked_div(b).unwrap_or(0),
        Opcode::Irem => |a: i64, b, _| a.checked_rem(b).unwrap_or(0),
        _ => return None,
    })
}

fn unsigned_fn(op: Opcode) -> Option<U3> {
    Some(match op {
        Opcode::Mov => |a, _, _| a,
        Opcode::Add => |a: u64, b, _| a.wrapping_add(b),
        Opcode::Sub => |a: u64, b, _| a.wrapping_sub(b),
        Opcode::Mul => |a: u64, b, _| a.wrapping_mul(b),
        Opcode::Mad => |a: u64, b, c| a.wrapping_mul(b).wrapping_add(c),
        Opcode::Min => |a: u64, b, _| a.min(b),
        Opcode::Max => |a: u64, b, _| a.max(b),
        Opcode::Abs => |a, _, _| a,
        Opcode::Not => |a, _, _| !a,
        Opcode::And => |a, b, _| a & b,
        Opcode::Or => |a, b, _| a | b,
        Opcode::Xor => |a, b, _| a ^ b,
        Opcode::Shl => |a: u64, b, _| a.wrapping_shl(b as u32 & 63),
        Opcode::Shr => |a: u64, b, _| a.wrapping_shr(b as u32 & 63),
        Opcode::Asr => |a, b: u64, _| (a as i64).wrapping_shr(b as u32 & 63) as u64,
        Opcode::Idiv => |a: u64, b, _| a.checked_div(b).unwrap_or(0),
        Opcode::Irem => |a: u64, b, _| a.checked_rem(b).unwrap_or(0),
        _ => return None,
    })
}

/// A [`Program`] lowered into per-instruction [`MicroPlan`]s, built once
/// per launch.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    plans: Box<[MicroPlan]>,
}

impl DecodedProgram {
    /// Decodes every instruction of `program`. O(instructions) — trivial
    /// next to any simulation that replays them.
    pub fn decode(program: &Program) -> Self {
        Self {
            plans: program.insns().iter().map(MicroPlan::decode).collect(),
        }
    }

    /// The plan at instruction index `pc`.
    #[inline]
    pub fn plan(&self, pc: usize) -> &MicroPlan {
        &self.plans[pc]
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no instruction was decoded (never for validated programs).
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[inline]
fn src_f(regs: &crate::regfile::RegFile, s: Src32, off: u32) -> f64 {
    match s {
        Src32::Vec(base) => f64::from(f32::from_bits(regs.load_u32(base + off))),
        Src32::Broadcast(addr) => f64::from(f32::from_bits(regs.load_u32(addr))),
        Src32::Imm(bits) => f64::from_bits(bits),
    }
}

#[inline]
fn src_i(regs: &crate::regfile::RegFile, s: Src32, off: u32) -> i64 {
    match s {
        Src32::Vec(base) => i64::from(regs.load_u32(base + off) as i32),
        Src32::Broadcast(addr) => i64::from(regs.load_u32(addr) as i32),
        Src32::Imm(bits) => bits as i64,
    }
}

#[inline]
fn src_u(regs: &crate::regfile::RegFile, s: Src32, off: u32) -> u64 {
    match s {
        Src32::Vec(base) => u64::from(regs.load_u32(base + off)),
        Src32::Broadcast(addr) => u64::from(regs.load_u32(addr)),
        Src32::Imm(bits) => bits,
    }
}

/// Executes the plan at `ctx.pc` under the precomputed execution `mask`
/// (which must equal [`MicroPlan::exec_mask`] for the current context and
/// must be non-empty for data plans — zero-mask skipping happens before
/// issue). Mirrors [`execute_instruction`](crate::exec::reference) exactly;
/// send lane addresses land in `scratch` instead of a fresh vector.
pub(crate) fn execute_plan(
    ctx: &mut ThreadCtx,
    plan: &MicroPlan,
    mask: ExecMask,
    mem: &mut MemoryImage,
    slm: &mut MemoryImage,
    scratch: &mut LaneScratch,
) -> PlanEffect {
    match plan.kind {
        PlanKind::AluF { f, srcs, dst } => {
            let mut bits = mask.bits();
            while bits != 0 {
                let off = 4 * bits.trailing_zeros();
                bits &= bits - 1;
                let r = f(
                    src_f(&ctx.regs, srcs[0], off),
                    src_f(&ctx.regs, srcs[1], off),
                    src_f(&ctx.regs, srcs[2], off),
                );
                ctx.regs.store_u32(dst + off, (r as f32).to_bits());
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::AluD { f, srcs, dst } => {
            let mut bits = mask.bits();
            while bits != 0 {
                let off = 4 * bits.trailing_zeros();
                bits &= bits - 1;
                let r = f(
                    src_i(&ctx.regs, srcs[0], off),
                    src_i(&ctx.regs, srcs[1], off),
                    src_i(&ctx.regs, srcs[2], off),
                );
                ctx.regs.store_u32(dst + off, r as u32);
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::AluU { f, srcs, dst } => {
            let mut bits = mask.bits();
            while bits != 0 {
                let off = 4 * bits.trailing_zeros();
                bits &= bits - 1;
                let r = f(
                    src_u(&ctx.regs, srcs[0], off),
                    src_u(&ctx.regs, srcs[1], off),
                    src_u(&ctx.regs, srcs[2], off),
                );
                ctx.regs.store_u32(dst + off, r as u32);
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::AluGeneric { op, n, srcs, dst } => {
            let n = usize::from(n);
            for lane in mask.iter_active() {
                let mut vals = [Scalar::U(0); 3];
                for (i, s) in srcs[..n].iter().enumerate() {
                    vals[i] = ctx.regs.read_lane(s, lane);
                }
                let v = eval_alu(op, plan.dtype, &vals[..n]);
                ctx.regs.write_lane(&dst, lane, v);
            }
            ctx.pc += 1;
            PlanEffect::Compute(plan.pipe)
        }
        PlanKind::Cmp { cm, a, b, dst } => {
            let is_float = plan.dtype.is_float();
            for lane in mask.iter_active() {
                let x = ctx.regs.read_lane(&a, lane);
                let y = ctx.regs.read_lane(&b, lane);
                let r = eval_cond(cm.cond, plan.dtype, x, y);
                ctx.regs.set_flag_channel(cm.flag, lane, r);
                if !dst.is_null() {
                    let v = if is_float {
                        Scalar::F(if r { 1.0 } else { 0.0 })
                    } else {
                        Scalar::U(u64::from(r))
                    };
                    ctx.regs.write_lane(&dst, lane, v);
                }
            }
            ctx.pc += 1;
            PlanEffect::Compute(Pipe::Fpu)
        }
        PlanKind::Sel { a, b, dst } => {
            let p = plan.pred.expect("sel requires a selecting predicate");
            let select = pred_bits(ctx, p);
            for lane in mask.iter_active() {
                let which = if select.channel(lane) { &a } else { &b };
                let v = ctx.regs.read_lane(which, lane);
                let v = eval_alu(Opcode::Mov, plan.dtype, &[v]);
                ctx.regs.write_lane(&dst, lane, v);
            }
            ctx.pc += 1;
            PlanEffect::Compute(Pipe::Fpu)
        }
        PlanKind::Load {
            space,
            addr,
            mem_dtype,
            dst,
        } => {
            scratch.clear();
            for lane in mask.iter_active() {
                let a = addr.lane_addr(&ctx.regs, lane);
                scratch.push(a);
                let img = if space == MemSpace::Slm {
                    &mut *slm
                } else {
                    &mut *mem
                };
                let v = img.read_scalar(a, mem_dtype);
                ctx.regs.write_lane(&dst, lane, v);
            }
            ctx.pc += 1;
            PlanEffect::Memory {
                space,
                is_store: false,
            }
        }
        PlanKind::Store {
            space,
            addr,
            mem_dtype,
            data,
        } => {
            scratch.clear();
            for lane in mask.iter_active() {
                let a = addr.lane_addr(&ctx.regs, lane);
                scratch.push(a);
                let v = ctx.regs.read_lane(&data, lane);
                let img = if space == MemSpace::Slm {
                    &mut *slm
                } else {
                    &mut *mem
                };
                img.write_scalar(a, mem_dtype, v);
            }
            ctx.pc += 1;
            PlanEffect::Memory {
                space,
                is_store: true,
            }
        }
        PlanKind::Fence => {
            ctx.pc += 1;
            PlanEffect::Fence
        }
        PlanKind::If { jip } => {
            let p = plan.pred.expect("if requires a predicate");
            let cond = pred_bits(ctx, p);
            let jump = ctx.simt.exec_if(cond, jip);
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            PlanEffect::ControlFlow
        }
        PlanKind::Else { jip } => {
            let jump = ctx.simt.exec_else(jip);
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            PlanEffect::ControlFlow
        }
        PlanKind::EndIf => {
            ctx.simt.exec_endif();
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Do => {
            ctx.simt.exec_do();
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::While { jip } => {
            let p = plan.pred.expect("while requires a predicate");
            let cond = pred_bits(ctx, p);
            let jump = ctx.simt.exec_while(cond, jip);
            ctx.pc = jump.unwrap_or(ctx.pc + 1);
            PlanEffect::ControlFlow
        }
        PlanKind::Break => {
            let p = plan.pred.expect("break requires a predicate");
            ctx.simt.exec_break(pred_bits(ctx, p));
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Continue => {
            let p = plan.pred.expect("continue requires a predicate");
            ctx.simt.exec_continue(pred_bits(ctx, p));
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Jmpi { jip } => {
            ctx.pc = jip;
            PlanEffect::ControlFlow
        }
        PlanKind::Nop => {
            ctx.pc += 1;
            PlanEffect::ControlFlow
        }
        PlanKind::Barrier => {
            ctx.pc += 1;
            PlanEffect::Barrier
        }
        PlanKind::Eot => PlanEffect::Eot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_instruction, Effect};
    use iwc_isa::builder::KernelBuilder;
    use iwc_isa::insn::CondOp;
    use iwc_isa::reg::FlagReg;

    /// Steps the same program through both interpreters from identical
    /// fresh states and asserts every register lane and both memories
    /// match after completion.
    fn assert_backends_agree(p: &Program, seed: impl Fn(&mut ThreadCtx)) {
        let decoded = DecodedProgram::decode(p);
        let mut scratch = LaneScratch::new();
        let width = p.simd_width();
        let mut rctx = ThreadCtx::new(ExecMask::all(width));
        let mut dctx = ThreadCtx::new(ExecMask::all(width));
        seed(&mut rctx);
        seed(&mut dctx);
        let (mut rmem, mut rslm) = (MemoryImage::new(1 << 16), MemoryImage::new(1 << 12));
        let (mut dmem, mut dslm) = (MemoryImage::new(1 << 16), MemoryImage::new(1 << 12));
        for _ in 0..10_000 {
            let re = execute_instruction(&mut rctx, p, &mut rmem, &mut rslm);
            // The decoded issue path skips zero-mask data plans before
            // execution; emulate that here.
            let plan = decoded.plan(dctx.pc);
            let mask = plan.exec_mask(&dctx);
            if plan.is_data() && mask.is_empty() && !plan.is_eot() {
                dctx.pc += 1;
                assert_eq!(re.effect, Effect::SkippedZeroMask);
                continue;
            }
            let de = execute_plan(&mut dctx, plan, mask, &mut dmem, &mut dslm, &mut scratch);
            assert_eq!(re.mask, mask, "masks diverged");
            if let Effect::Memory { lane_addrs, .. } = &re.effect {
                assert_eq!(lane_addrs.as_slice(), scratch.addrs(), "lane addresses");
            }
            if de == PlanEffect::Eot {
                break;
            }
        }
        assert_eq!(rctx.pc, dctx.pc, "final pc");
        for reg in 0..16u8 {
            let op = Operand::rud(reg);
            for lane in 0..width {
                assert_eq!(
                    rctx.regs.read_lane(&op, lane),
                    dctx.regs.read_lane(&op, lane),
                    "r{reg} lane {lane}"
                );
            }
        }
        for f in [FlagReg::F0, FlagReg::F1] {
            assert_eq!(rctx.regs.flag(f), dctx.regs.flag(f), "flag {f:?}");
        }
        for a in (0..1 << 16).step_by(4) {
            assert_eq!(rmem.read_u32(a), dmem.read_u32(a), "mem at {a}");
        }
    }

    #[test]
    fn fast_paths_match_reference_float() {
        let mut b = KernelBuilder::new("k", 16);
        b.mov(Operand::rf(4), Operand::imm_f(1.5));
        b.mad(
            Operand::rf(6),
            Operand::rf(4),
            Operand::rf(4),
            Operand::imm_f(0.25),
        );
        b.mul(
            Operand::rf(8),
            Operand::rf(6),
            Operand::scalar(4, 3, DataType::F),
        );
        let p = b.finish().unwrap();
        assert_backends_agree(&p, |_| {});
    }

    #[test]
    fn fast_paths_match_reference_int_and_divergence() {
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(1), Operand::imm_ud(9));
        b.if_(Predicate::normal(FlagReg::F0));
        b.add(Operand::rd(4), Operand::rd(4), Operand::imm_d(-3));
        b.else_();
        b.mul(Operand::rud(6), Operand::rud(1), Operand::imm_ud(7));
        b.end_if();
        let p = b.finish().unwrap();
        assert_backends_agree(&p, |ctx| {
            for lane in 0..16 {
                ctx.regs
                    .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
                ctx.regs
                    .write_lane(&Operand::rd(4), lane, Scalar::I(i64::from(lane) * 5 - 17));
            }
        });
    }

    #[test]
    fn generic_fallback_dtype_matches_reference() {
        // W (16-bit signed) has no fast path: exercises the generic lane
        // loop including sign-extension on read and narrowing on write.
        let w = |reg| Operand::reg(reg, DataType::W);
        let mut b = KernelBuilder::new("k", 16);
        b.op(Opcode::Add, w(4), &[w(4), w(6)]);
        let p = b.finish().unwrap();
        let decoded = DecodedProgram::decode(&p);
        assert!(
            matches!(decoded.plan(0).kind, PlanKind::AluGeneric { .. }),
            "W stays generic"
        );
        assert_backends_agree(&p, |ctx| {
            for lane in 0..16 {
                ctx.regs
                    .write_lane(&w(4), lane, Scalar::I(i64::from(lane) * 1000 - 30000));
                ctx.regs.write_lane(&w(6), lane, Scalar::I(-5000));
            }
        });
    }

    #[test]
    fn mixed_dtype_operands_fall_back() {
        // dst F but src D: no fast path.
        let mut b = KernelBuilder::new("k", 8);
        b.op(Opcode::Mov, Operand::rf(4), &[Operand::rd(6)]);
        let p = b.finish().unwrap();
        let decoded = DecodedProgram::decode(&p);
        assert!(matches!(decoded.plan(0).kind, PlanKind::AluGeneric { .. }));
    }

    #[test]
    fn fast_paths_selected_for_f_d_ud() {
        let mut b = KernelBuilder::new("k", 8);
        b.add(Operand::rf(4), Operand::rf(4), Operand::imm_f(1.0));
        b.add(Operand::rd(6), Operand::rd(6), Operand::imm_d(1));
        b.add(Operand::rud(8), Operand::rud(8), Operand::imm_ud(1));
        let p = b.finish().unwrap();
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.plan(0).kind, PlanKind::AluF { .. }));
        assert!(matches!(d.plan(1).kind, PlanKind::AluD { .. }));
        assert!(matches!(d.plan(2).kind, PlanKind::AluU { .. }));
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn loads_and_stores_capture_addresses_in_scratch() {
        let mut b = KernelBuilder::new("k", 16);
        b.mad(
            Operand::rud(4),
            Operand::rud(1),
            Operand::imm_ud(4),
            Operand::imm_ud(1024),
        );
        b.store(MemSpace::Global, Operand::rud(4), Operand::rud(1));
        b.load(MemSpace::Global, Operand::rud(6), Operand::rud(4));
        let p = b.finish().unwrap();
        assert_backends_agree(&p, |ctx| {
            for lane in 0..16 {
                ctx.regs
                    .write_lane(&Operand::rud(1), lane, Scalar::U(u64::from(lane)));
            }
        });
    }
}
