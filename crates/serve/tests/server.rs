//! End-to-end tests of the serve daemon over real loopback sockets:
//! response byte-identity against direct in-process runs, decode-cache
//! hits, 503 back-pressure under a saturated queue, WebSocket event
//! streaming (with Perfetto payloads), pipelining, and graceful drain.

use iwc_compaction::EngineId;
use iwc_serve::client::{self, WsClient};
use iwc_serve::job::object_after;
use iwc_serve::ws::WsEvent;
use iwc_serve::{ServeConfig, Server, ServerHandle};
use iwc_sim::GpuConfig;
use iwc_telemetry::json::parse;
use iwc_workloads::catalog;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Binds a daemon on an ephemeral port and runs it on a background
/// thread. Returns the address, the control handle, and the join handle
/// whose `Ok` return is the graceful-drain assertion.
fn start(
    workers: usize,
    queue_depth: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        // Keep the workload-job tests hermetic: no disk cache.
        results_cache: None,
        slow_ms: iwc_serve::DEFAULT_SLOW_MS,
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn shutdown(
    addr: SocketAddr,
    handle: &ServerHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
) {
    // Drain over the wire when possible, via the handle as a fallback.
    let _ = client::post(addr, "/shutdown", "");
    handle.shutdown();
    join.join()
        .expect("server thread must not panic")
        .expect("graceful drain returns Ok");
}

#[test]
fn serves_health_catalog_stats_and_404s() {
    let (addr, handle, join) = start(1, 4);

    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\":true"));

    let cat = client::get(addr, "/v1/catalog").expect("catalog");
    assert_eq!(cat.status, 200);
    let parsed = parse(&cat.body).expect("valid JSON");
    let names = parsed
        .get("workloads")
        .and_then(|w| w.as_arr())
        .expect("workloads");
    assert_eq!(names.len(), catalog().len());

    let stats = client::get(addr, "/v1/stats").expect("stats");
    assert_eq!(stats.status, 200);
    parse(&stats.body).expect("stats is valid JSON");

    assert_eq!(client::get(addr, "/nope").expect("404").status, 404);
    assert_eq!(client::post(addr, "/healthz", "").expect("405").status, 405);

    shutdown(addr, &handle, join);
}

/// The acceptance bar: a served response carries the same cycles and the
/// byte-identical telemetry snapshot JSON as a direct in-process run, and
/// resubmitting hits the decode cache.
#[test]
fn served_results_match_direct_runs_and_hit_the_cache() {
    let (addr, handle, join) = start(2, 8);

    for name in ["VA", "BFS"] {
        let body = format!("{{\"workload\":\"{name}\",\"engines\":[\"base\",\"scc\"]}}");
        let resp = client::post(addr, "/v1/jobs", &body).expect("job");
        assert_eq!(resp.status, 200, "{name}: {}", resp.body);

        for engine in [EngineId::BASELINE, EngineId::SCC] {
            let built = (catalog()
                .into_iter()
                .find(|e| e.name == name)
                .expect("in catalog")
                .build)(1);
            let direct = built
                .run_checked(&GpuConfig::paper_default().with_compaction(engine))
                .expect("direct run");
            let marker = format!("\"engine\":\"{}\",\"cycles\":", engine.label());
            assert!(
                resp.body.contains(&format!("{marker}{}", direct.cycles)),
                "{name}/{}: cycles differ from direct run",
                engine.label()
            );
            let at = resp.body.find(&marker).expect("engine result present");
            let engine_obj =
                object_after(&resp.body[at..], "\"telemetry\":").expect("telemetry object");
            assert_eq!(
                engine_obj,
                direct.telemetry.to_json(),
                "{name}/{}: served telemetry bytes differ",
                engine.label()
            );
        }
    }

    // Resubmit: same program hashes, so decodes stay put and hits climb.
    let before = handle.stats();
    let resp = client::post(
        addr,
        "/v1/jobs",
        "{\"workload\":\"VA\",\"engines\":[\"base\",\"scc\"]}",
    )
    .expect("resubmission");
    assert_eq!(resp.status, 200);
    let after = handle.stats();
    assert!(
        after.counter("serve/cache/hits").unwrap_or(0)
            > before.counter("serve/cache/hits").unwrap_or(0),
        "resubmission must hit the cache"
    );
    assert_eq!(
        after.counter("serve/cache/decodes"),
        before.counter("serve/cache/decodes"),
        "resubmission must not decode again"
    );
    // Each workload decoded exactly once across both engines.
    assert_eq!(after.counter("serve/cache/decodes"), Some(2));

    shutdown(addr, &handle, join);
}

/// Full catalog × canonical engines over the wire — the exhaustive
/// acceptance sweep, release-gated like the other whole-catalog tests.
#[test]
#[cfg_attr(debug_assertions, ignore = "whole-catalog sweep; run under --release")]
fn full_catalog_sweep_is_byte_identical_over_the_wire() {
    let (addr, handle, join) = start(2, 16);
    for entry in catalog() {
        let body = format!("{{\"workload\":\"{}\"}}", entry.name);
        let resp = client::post(addr, "/v1/jobs", &body).expect("job");
        assert_eq!(resp.status, 200, "{}: {}", entry.name, resp.body);
        let built = (entry.build)(1);
        for engine in EngineId::CANONICAL {
            let direct = built
                .run_checked(&GpuConfig::paper_default().with_compaction(engine))
                .expect("direct run");
            let marker = format!(
                "\"engine\":\"{}\",\"cycles\":{}",
                engine.label(),
                direct.cycles
            );
            let at = resp.body.find(&marker).unwrap_or_else(|| {
                panic!("{}/{}: served cycles differ", entry.name, engine.label())
            });
            assert_eq!(
                object_after(&resp.body[at..], "\"telemetry\":").expect("telemetry"),
                direct.telemetry.to_json(),
                "{}/{}: served telemetry bytes differ",
                entry.name,
                engine.label()
            );
        }
    }
    shutdown(addr, &handle, join);
}

/// A `"pack"` job resolves its trace inside the corpus store, a repeat
/// submission is answered from the content-addressed results cache, and
/// the `serve/results_cache/{hits,misses}` counters surface in
/// `/v1/stats`.
#[test]
fn pack_jobs_are_answered_from_the_results_cache() {
    let dir = std::env::temp_dir().join(format!("iwc-serve-e2e-pack-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    std::env::set_var("IWC_CORPUS_DIR", &dir);
    let traces: Vec<iwc_trace::Trace> = iwc_trace::corpus()
        .iter()
        .take(1)
        .map(|p| p.generate(500))
        .collect();
    iwc_trace::pack::write_pack_file(&dir.join("corpus.iwcc"), &traces).expect("pack");

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 4,
        results_cache: Some(dir.join("cache")),
        slow_ms: iwc_serve::DEFAULT_SLOW_MS,
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let body = format!("{{\"pack\":\"{}\"}}", traces[0].name);
    let first = client::post(addr, "/v1/jobs", &body).expect("pack job");
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.contains("\"kind\":\"trace\""), "{}", first.body);

    let second = client::post(addr, "/v1/jobs", &body).expect("repeat job");
    assert_eq!(second.status, 200);
    assert_eq!(
        first.body, second.body,
        "cached body must be byte-identical"
    );

    let stats = client::get(addr, "/v1/stats").expect("stats");
    let parsed = parse(&stats.body).expect("valid JSON");
    let counter = |name: &str| {
        parsed
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_num())
            .unwrap_or_else(|| panic!("{name} missing from /v1/stats: {}", stats.body))
    };
    assert_eq!(counter("serve/results_cache/misses"), 1.0);
    assert!(counter("serve/results_cache/hits") >= 1.0);

    shutdown(addr, &handle, join);
    std::env::remove_var("IWC_CORPUS_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under a saturated queue the daemon answers 503 + Retry-After without
/// dropping any job it accepted.
#[test]
fn saturated_queue_rejects_with_503_and_drops_nothing() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let (addr, handle, join) = start(1, 1);
    let deadline = Instant::now() + Duration::from_secs(60);
    let oks = AtomicU32::new(0);
    let rejects = AtomicU32::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| loop {
                let resp = client::post(
                    addr,
                    "/v1/jobs",
                    "{\"workload\":\"MM\",\"engines\":[\"scc\"]}",
                )
                .expect("request");
                match resp.status {
                    200 => {
                        assert!(resp.body.contains("\"results\":["), "accepted job dropped");
                        oks.fetch_add(1, Ordering::SeqCst);
                    }
                    503 => {
                        assert_eq!(resp.header("retry-after"), Some("1"));
                        rejects.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("unexpected status {other}: {}", resp.body),
                }
                // Stop once the fleet as a whole has seen both outcomes.
                if Instant::now() > deadline
                    || (rejects.load(Ordering::SeqCst) > 0 && oks.load(Ordering::SeqCst) > 0)
                {
                    return;
                }
            });
        }
    });
    let oks = oks.into_inner();
    let rejects = rejects.into_inner();
    assert!(oks > 0, "some jobs must complete");
    assert!(rejects > 0, "a 1-deep queue with 4 clients must reject");
    let snap = handle.stats();
    assert!(snap.counter("serve/rejected").unwrap_or(0) > 0);
    assert_eq!(snap.counter("serve/jobs_ok"), Some(u64::from(oks)));
    shutdown(addr, &handle, join);
}

fn collect_events(ws: &mut WsClient, until_result: bool) -> Vec<String> {
    let mut events = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        match ws.next_event(Duration::from_millis(200)).expect("ws read") {
            Some(WsEvent::Text(t)) => {
                let is_result =
                    t.contains("\"event\":\"result\"") || t.contains("\"event\":\"error\"");
                events.push(t);
                if until_result && is_result {
                    return events;
                }
            }
            Some(WsEvent::Close(_)) => return events,
            _ => {}
        }
    }
    panic!("timed out waiting for WS events; got {events:#?}");
}

/// A WebSocket session streams accepted → engine_done… → done → result,
/// with Perfetto trace-event JSON on request.
#[test]
fn ws_streams_live_events_and_perfetto_traces() {
    let (addr, handle, join) = start(1, 4);
    let mut ws = client::ws_connect(addr, "/v1/ws").expect("upgrade");
    ws.send_text("{\"workload\":\"VA\",\"engines\":[\"base\",\"scc\"],\"trace_events\":true}")
        .expect("send job");
    let events = collect_events(&mut ws, true);

    assert!(events[0].contains("\"event\":\"accepted\""), "{events:#?}");
    assert_eq!(
        events
            .iter()
            .filter(|e| e.contains("\"event\":\"engine_done\""))
            .count(),
        2
    );
    let traces: Vec<_> = events
        .iter()
        .filter(|e| e.contains("\"event\":\"trace\""))
        .collect();
    assert_eq!(traces.len(), 2, "one Perfetto payload per engine");
    for t in traces {
        let data = object_after(t, "\"data\":").expect("trace data object");
        iwc_telemetry::chrome::validate(data).expect("valid Perfetto trace-event JSON");
    }
    assert!(events.iter().any(|e| e.contains("\"event\":\"done\"")));
    let result = events.last().expect("result event");
    assert!(result.contains("\"event\":\"result\""));
    assert!(result.contains("\"kind\":\"workload\""));

    // Every event of the job carries the same request id, first field.
    let rid = result
        .strip_prefix("{\"request_id\":\"")
        .and_then(|r| r.split('"').next())
        .expect("result event leads with a request id");
    assert!(rid.starts_with("req-"), "{rid:?}");
    for e in &events {
        assert!(
            e.starts_with(&format!("{{\"request_id\":\"{rid}\"")),
            "event missing the job's request id: {e}"
        );
    }

    // Errors stream as events too.
    ws.send_text("{\"workload\":\"no-such\"}")
        .expect("send bad job");
    let events = collect_events(&mut ws, true);
    assert!(events.last().expect("event").contains("\"status\":404"));

    ws.close().expect("close");
    shutdown(addr, &handle, join);
}

/// `/metrics` serves valid Prometheus text exposition whose counters
/// agree with `/v1/stats`, and request counters grow monotonically
/// between scrapes.
#[test]
fn metrics_exposition_is_valid_and_agrees_with_stats() {
    let (addr, handle, join) = start(1, 4);

    let resp = client::post(
        addr,
        "/v1/jobs",
        "{\"workload\":\"VA\",\"engines\":[\"scc\"]}",
    )
    .expect("job");
    assert_eq!(resp.status, 200);

    let first = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(first.status, 200);
    assert!(first
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    iwc_telemetry::expo::validate(&first.body).expect("valid exposition");

    // Counters in the exposition must agree with the registry snapshot.
    let stats = handle.stats();
    for (name, metric) in [
        ("serve/jobs_ok", "iwc_serve_jobs_ok"),
        ("serve/jobs_submitted", "iwc_serve_jobs_submitted"),
        ("serve/engine/scc", "iwc_serve_engine{engine=\"scc\"}"),
    ] {
        let v = stats
            .counter(name)
            .unwrap_or_else(|| panic!("{name} missing from stats"));
        assert!(
            first.body.contains(&format!("{metric} {v}")),
            "{metric} must read {v} in:\n{}",
            first.body
        );
    }
    // Phase histograms and live gauges are exposed too.
    for needle in [
        "# TYPE iwc_serve_phase_us histogram",
        "iwc_serve_phase_us_count{phase=\"simulate\"}",
        "# TYPE iwc_serve_queue_depth gauge",
        "iwc_serve_workers_utilization",
    ] {
        assert!(first.body.contains(needle), "missing {needle:?}");
    }

    // A second scrape after more work: request counters are monotone.
    let extract = |body: &str, metric: &str| -> u64 {
        body.lines()
            .find(|l| l.starts_with(metric) && l.as_bytes()[metric.len()] == b' ')
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{metric} not found"))
    };
    let resp = client::post(
        addr,
        "/v1/jobs",
        "{\"workload\":\"VA\",\"engines\":[\"scc\"]}",
    )
    .expect("second job");
    assert_eq!(resp.status, 200);
    let second = client::get(addr, "/metrics").expect("second scrape");
    iwc_telemetry::expo::validate(&second.body).expect("still valid");
    for metric in ["iwc_serve_requests", "iwc_serve_jobs_ok"] {
        assert!(
            extract(&second.body, metric) > extract(&first.body, metric),
            "{metric} must be monotone across scrapes"
        );
    }

    shutdown(addr, &handle, join);
}

/// `/readyz` mirrors operational readiness: 200 while serving, 503 once
/// draining (while `/healthz` stays 200 for liveness probes).
#[test]
fn readyz_reports_drain_as_unready() {
    use std::io::{Read, Write};
    let (addr, handle, join) = start(1, 4);

    let ready = client::get(addr, "/readyz").expect("readyz");
    assert_eq!(ready.status, 200);
    assert!(ready.body.contains("\"ready\":true"));

    // Drain and probe on ONE pipelined connection: the accept loop exits
    // the moment the drain flag is set, so a fresh connection would be
    // refused — but requests already buffered on an accepted connection
    // are still served (and the first post-drain response closes it).
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let two = "POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\nGET /readyz HTTP/1.1\r\nHost: x\r\n\r\n";
    stream.write_all(two.as_bytes()).expect("pipelined write");
    let mut all = String::new();
    stream.read_to_string(&mut all).expect("read both");
    assert!(all.contains("\"draining\":true"), "{all}");
    assert!(all.contains("HTTP/1.1 503"), "{all}");
    assert!(all.to_ascii_lowercase().contains("retry-after: 1"), "{all}");
    assert!(handle.is_draining());

    join.join()
        .expect("server thread must not panic")
        .expect("graceful drain returns Ok");
}

/// Every job response carries an `X-IWC-Request-Id` that also appears in
/// the flight-recorder dump, with the accept → dispatch → complete
/// lifecycle in order.
#[test]
fn request_ids_thread_through_responses_and_flight_recorder() {
    let (addr, handle, join) = start(1, 4);

    let ok = client::post(
        addr,
        "/v1/jobs",
        "{\"workload\":\"BFS\",\"engines\":[\"scc\"]}",
    )
    .expect("job");
    assert_eq!(ok.status, 200);
    let rid = ok
        .header("x-iwc-request-id")
        .expect("job response carries a request id")
        .to_string();
    assert!(rid.starts_with("req-"), "{rid:?}");

    // Failed jobs get an id too, distinct from the first.
    let bad = client::post(addr, "/v1/jobs", "{\"workload\":\"no-such\"}").expect("bad job");
    assert_eq!(bad.status, 404);
    let bad_rid = bad
        .header("x-iwc-request-id")
        .expect("error response carries a request id")
        .to_string();
    assert_ne!(rid, bad_rid);

    let dump = client::get(addr, "/v1/flightrecorder").expect("flight dump");
    assert_eq!(dump.status, 200);
    let doc = parse(&dump.body).expect("dump is valid JSON");
    let events = doc.get("events").and_then(|e| e.as_arr()).expect("events");
    let of = |want_rid: &str| -> Vec<&str> {
        events
            .iter()
            .filter(|e| e.get("request_id").and_then(|r| r.as_str()) == Some(want_rid))
            .map(|e| e.get("kind").and_then(|k| k.as_str()).expect("kind"))
            .collect()
    };
    assert_eq!(of(&rid), vec!["accept", "dispatch", "complete"]);
    assert_eq!(of(&bad_rid), vec!["accept", "dispatch", "error"]);
    // The accept event names the job.
    let accept = events
        .iter()
        .find(|e| e.get("request_id").and_then(|r| r.as_str()) == Some(rid.as_str()))
        .expect("accept event");
    assert_eq!(
        accept.get("detail").and_then(|d| d.as_str()),
        Some("workload=BFS")
    );

    shutdown(addr, &handle, join);
}

/// Pipelined requests on one connection are answered in order, and
/// oversized bodies are refused with 413.
#[test]
fn wire_layer_handles_pipelining_and_oversized_bodies() {
    use std::io::{Read, Write};
    let (addr, handle, join) = start(1, 4);

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let two = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nGET /v1/catalog HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    stream.write_all(two.as_bytes()).expect("pipelined write");
    let mut all = String::new();
    stream.read_to_string(&mut all).expect("read both");
    assert_eq!(all.matches("HTTP/1.1 200 OK").count(), 2, "{all}");
    let health_at = all.find("\"ok\":true").expect("healthz body");
    let catalog_at = all.find("\"workloads\":").expect("catalog body");
    assert!(health_at < catalog_at, "responses out of order");

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let huge = 9 * 1024 * 1024;
    let head = format!("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {huge}\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("oversized head");
    let mut resp = String::new();
    stream.read_to_string(&mut resp).expect("read rejection");
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

    shutdown(addr, &handle, join);
}

/// Draining lets in-flight jobs finish, refuses new work, and `run`
/// returns cleanly.
#[test]
fn graceful_drain_finishes_in_flight_jobs() {
    let (addr, handle, join) = start(1, 4);

    let worker = std::thread::spawn(move || {
        client::post(
            addr,
            "/v1/jobs",
            "{\"workload\":\"MM\",\"engines\":[\"scc\"]}",
        )
        .expect("in-flight job")
    });
    // Give the job a moment to be picked up, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(50));
    let resp = client::post(addr, "/shutdown", "").expect("shutdown");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"draining\":true"));

    let inflight = worker.join().expect("client thread");
    assert_eq!(
        inflight.status, 200,
        "in-flight job must finish: {}",
        inflight.body
    );
    assert!(inflight.body.contains("\"results\":["));

    handle.shutdown();
    join.join()
        .expect("server thread must not panic")
        .expect("graceful drain returns Ok");

    // The listener is gone: new connections fail or are reset.
    assert!(
        client::get(addr, "/healthz").is_err(),
        "drained daemon must not accept new connections"
    );
}
