//! Hand-rolled WebSocket (RFC 6455) codec: handshake key derivation
//! (SHA-1 + base64, std-only), frame encode/decode with client-masking
//! enforcement, fragmentation reassembly, ping/pong, and the close
//! handshake. The serve daemon uses it to stream live per-job telemetry
//! deltas and Perfetto trace JSON to clients.

use std::fmt;

/// The protocol GUID appended to `Sec-WebSocket-Key` (RFC 6455 §1.3).
pub const WS_GUID: &str = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

/// Largest client frame payload the server accepts. Client→server traffic
/// is job-request JSON and control frames; 8 MiB matches the HTTP body
/// limit.
pub const MAX_CLIENT_PAYLOAD: usize = 8 * 1024 * 1024;

// ---------------------------------------------------------------------------
// SHA-1 + base64 (handshake only — not used for anything security-bearing)
// ---------------------------------------------------------------------------

/// SHA-1 digest (FIPS 180-1). WebSocket's handshake hard-codes SHA-1; it
/// is used here purely as the protocol's key-derivation step.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];
    let ml = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    let mut w = [0u32; 80];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Standard base64 (RFC 4648, with padding).
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64 (RFC 4648; padding optional, whitespace
/// ignored). `None` on any other character or a truncated final group.
/// Job requests use this to carry binary mask-trace payloads inside JSON.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        Some(match c {
            b'A'..=b'Z' => u32::from(c - b'A'),
            b'a'..=b'z' => u32::from(c - b'a') + 26,
            b'0'..=b'9' => u32::from(c - b'0') + 52,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        })
    }
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    let mut acc: u32 = 0;
    let mut nbits = 0u32;
    for &c in s.as_bytes() {
        if c.is_ascii_whitespace() || c == b'=' {
            continue;
        }
        acc = (acc << 6) | val(c)?;
        nbits += 6;
        if nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    // A final group of 6 leftover bits means a truncated encoding.
    if nbits >= 6 {
        return None;
    }
    Some(out)
}

/// Derives the `Sec-WebSocket-Accept` value for a client's
/// `Sec-WebSocket-Key`.
pub fn accept_key(client_key: &str) -> String {
    let mut joined = client_key.trim().to_string();
    joined.push_str(WS_GUID);
    base64(&sha1(joined.as_bytes()))
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// WebSocket frame opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opcode {
    /// Continuation of a fragmented message.
    Continuation,
    /// UTF-8 text message (the serve protocol's JSON events).
    Text,
    /// Binary message.
    Binary,
    /// Connection close.
    Close,
    /// Ping (must be answered with a pong carrying the same payload).
    Ping,
    /// Pong.
    Pong,
}

impl Opcode {
    fn from_bits(bits: u8) -> Option<Self> {
        Some(match bits {
            0x0 => Self::Continuation,
            0x1 => Self::Text,
            0x2 => Self::Binary,
            0x8 => Self::Close,
            0x9 => Self::Ping,
            0xa => Self::Pong,
            _ => return None,
        })
    }

    fn bits(self) -> u8 {
        match self {
            Self::Continuation => 0x0,
            Self::Text => 0x1,
            Self::Binary => 0x2,
            Self::Close => 0x8,
            Self::Ping => 0x9,
            Self::Pong => 0xa,
        }
    }

    /// Control frames (close/ping/pong) may not be fragmented.
    pub fn is_control(self) -> bool {
        matches!(self, Self::Close | Self::Ping | Self::Pong)
    }
}

/// One decoded WebSocket frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Final fragment of its message?
    pub fin: bool,
    /// Frame opcode.
    pub opcode: Opcode,
    /// Unmasked payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A final text frame.
    pub fn text(payload: impl Into<String>) -> Self {
        Self {
            fin: true,
            opcode: Opcode::Text,
            payload: payload.into().into_bytes(),
        }
    }

    /// A close frame with a status code and reason.
    pub fn close(code: u16, reason: &str) -> Self {
        let mut payload = code.to_be_bytes().to_vec();
        payload.extend_from_slice(reason.as_bytes());
        Self {
            fin: true,
            opcode: Opcode::Close,
            payload,
        }
    }

    /// A pong answering `ping_payload`.
    pub fn pong(ping_payload: Vec<u8>) -> Self {
        Self {
            fin: true,
            opcode: Opcode::Pong,
            payload: ping_payload,
        }
    }
}

/// A WebSocket protocol violation; the connection should close with
/// status 1002 (protocol error) / 1009 (too big).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WsError {
    /// Client frame arrived unmasked (RFC 6455 §5.1 requires masking).
    UnmaskedClientFrame,
    /// Reserved bits set or unknown opcode.
    Protocol(String),
    /// Frame or reassembled message over the configured limit.
    TooLarge {
        /// Payload length declared or accumulated.
        size: usize,
        /// Configured limit.
        limit: usize,
    },
}

impl fmt::Display for WsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnmaskedClientFrame => write!(f, "client frame not masked"),
            Self::Protocol(m) => write!(f, "websocket protocol violation: {m}"),
            Self::TooLarge { size, limit } => {
                write!(f, "payload of {size} bytes over the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for WsError {}

/// Encodes a frame. Server→client frames pass `mask: None` (never
/// masked); client→server frames (the test/bench client) pass a masking
/// key.
pub fn encode_frame(frame: &Frame, mask: Option<[u8; 4]>) -> Vec<u8> {
    let len = frame.payload.len();
    let mut out = Vec::with_capacity(len + 14);
    out.push((u8::from(frame.fin) << 7) | frame.opcode.bits());
    let mask_bit = if mask.is_some() { 0x80 } else { 0 };
    if len < 126 {
        out.push(mask_bit | len as u8);
    } else if len <= u16::MAX as usize {
        out.push(mask_bit | 126);
        out.extend_from_slice(&(len as u16).to_be_bytes());
    } else {
        out.push(mask_bit | 127);
        out.extend_from_slice(&(len as u64).to_be_bytes());
    }
    match mask {
        None => out.extend_from_slice(&frame.payload),
        Some(key) => {
            out.extend_from_slice(&key);
            out.extend(
                frame
                    .payload
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| b ^ key[i % 4]),
            );
        }
    }
    out
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a partial frame, otherwise the
/// frame and the number of bytes consumed. When `require_mask` is set
/// (server side), unmasked data frames are a protocol error.
///
/// # Errors
///
/// Returns [`WsError`] on protocol violations or over-limit payloads.
pub fn decode_frame(
    buf: &[u8],
    require_mask: bool,
    max_payload: usize,
) -> Result<Option<(Frame, usize)>, WsError> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let b0 = buf[0];
    let b1 = buf[1];
    if b0 & 0x70 != 0 {
        return Err(WsError::Protocol("reserved bits set".into()));
    }
    let opcode = Opcode::from_bits(b0 & 0x0f)
        .ok_or_else(|| WsError::Protocol(format!("unknown opcode {:#x}", b0 & 0x0f)))?;
    let fin = b0 & 0x80 != 0;
    if opcode.is_control() && !fin {
        return Err(WsError::Protocol("fragmented control frame".into()));
    }
    let masked = b1 & 0x80 != 0;
    if require_mask && !masked {
        return Err(WsError::UnmaskedClientFrame);
    }
    let (len, mut off) = match b1 & 0x7f {
        126 => {
            if buf.len() < 4 {
                return Ok(None);
            }
            (usize::from(u16::from_be_bytes([buf[2], buf[3]])), 4)
        }
        127 => {
            if buf.len() < 10 {
                return Ok(None);
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[2..10]);
            let n = u64::from_be_bytes(b);
            if n > max_payload as u64 {
                return Err(WsError::TooLarge {
                    size: n as usize,
                    limit: max_payload,
                });
            }
            (n as usize, 10)
        }
        n => (usize::from(n), 2),
    };
    if len > max_payload {
        return Err(WsError::TooLarge {
            size: len,
            limit: max_payload,
        });
    }
    if opcode.is_control() && len > 125 {
        return Err(WsError::Protocol("control payload over 125 bytes".into()));
    }
    let key = if masked {
        if buf.len() < off + 4 {
            return Ok(None);
        }
        let key = [buf[off], buf[off + 1], buf[off + 2], buf[off + 3]];
        off += 4;
        Some(key)
    } else {
        None
    };
    if buf.len() < off + len {
        return Ok(None);
    }
    let mut payload = buf[off..off + len].to_vec();
    if let Some(key) = key {
        for (i, b) in payload.iter_mut().enumerate() {
            *b ^= key[i % 4];
        }
    }
    Ok(Some((
        Frame {
            fin,
            opcode,
            payload,
        },
        off + len,
    )))
}

/// A complete incoming event after reassembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WsEvent {
    /// A complete (possibly reassembled) text message.
    Text(String),
    /// A complete (possibly reassembled) binary message.
    Binary(Vec<u8>),
    /// A ping; answer with [`Frame::pong`] carrying the payload.
    Ping(Vec<u8>),
    /// A pong (unsolicited pongs are ignored).
    Pong,
    /// The peer started the close handshake (status code, if present).
    Close(Option<u16>),
}

/// Reassembles frames into messages: buffers continuation fragments,
/// surfaces control frames immediately (they may interleave with a
/// fragmented message), and enforces the payload limit across a whole
/// message.
#[derive(Debug, Default)]
pub struct MessageAssembler {
    partial: Option<(Opcode, Vec<u8>)>,
}

impl MessageAssembler {
    /// A fresh assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one frame; returns a surfaced event when the frame completes
    /// a message or is a control frame.
    ///
    /// # Errors
    ///
    /// Returns [`WsError`] on interleaving violations (a new data message
    /// starting inside a fragmented one, or a stray continuation) and
    /// over-limit reassembled messages.
    pub fn push(&mut self, frame: Frame) -> Result<Option<WsEvent>, WsError> {
        match frame.opcode {
            Opcode::Ping => return Ok(Some(WsEvent::Ping(frame.payload))),
            Opcode::Pong => return Ok(Some(WsEvent::Pong)),
            Opcode::Close => {
                let code = (frame.payload.len() >= 2)
                    .then(|| u16::from_be_bytes([frame.payload[0], frame.payload[1]]));
                return Ok(Some(WsEvent::Close(code)));
            }
            Opcode::Text | Opcode::Binary => {
                if self.partial.is_some() {
                    return Err(WsError::Protocol(
                        "new data message inside a fragmented one".into(),
                    ));
                }
                if frame.fin {
                    return Ok(Some(Self::finish(frame.opcode, frame.payload)));
                }
                self.partial = Some((frame.opcode, frame.payload));
            }
            Opcode::Continuation => {
                let Some((opcode, mut buf)) = self.partial.take() else {
                    return Err(WsError::Protocol("continuation without a start".into()));
                };
                buf.extend_from_slice(&frame.payload);
                if buf.len() > MAX_CLIENT_PAYLOAD {
                    return Err(WsError::TooLarge {
                        size: buf.len(),
                        limit: MAX_CLIENT_PAYLOAD,
                    });
                }
                if frame.fin {
                    return Ok(Some(Self::finish(opcode, buf)));
                }
                self.partial = Some((opcode, buf));
            }
        }
        Ok(None)
    }

    fn finish(opcode: Opcode, payload: Vec<u8>) -> WsEvent {
        match opcode {
            Opcode::Binary => WsEvent::Binary(payload),
            _ => WsEvent::Text(String::from_utf8_lossy(&payload).into_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_known_vectors() {
        // FIPS 180-1 appendix A/B vectors.
        assert_eq!(
            sha1(b"abc"),
            [
                0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e, 0x25, 0x71, 0x78, 0x50,
                0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d
            ]
        );
        assert_eq!(
            sha1(b""),
            [
                0xda, 0x39, 0xa3, 0xee, 0x5e, 0x6b, 0x4b, 0x0d, 0x32, 0x55, 0xbf, 0xef, 0x95, 0x60,
                0x18, 0x90, 0xaf, 0xd8, 0x07, 0x09
            ]
        );
    }

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 §10 vectors.
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foob"), "Zm9vYg==");
        assert_eq!(base64(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_decode_roundtrips_and_rejects_garbage() {
        for data in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            assert_eq!(base64_decode(&base64(data)).as_deref(), Some(data));
        }
        assert_eq!(base64_decode("Zm9v"), Some(b"foo".to_vec()));
        assert_eq!(base64_decode("Zg"), Some(b"f".to_vec()), "padding optional");
        assert_eq!(base64_decode("not base64!"), None);
        assert_eq!(base64_decode("Z"), None, "truncated group");
    }

    #[test]
    fn rfc6455_handshake_vector() {
        // The example from RFC 6455 §1.3.
        assert_eq!(
            accept_key("dGhlIHNhbXBsZSBub25jZQ=="),
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        );
    }

    #[test]
    fn masked_roundtrip() {
        let frame = Frame::text("hello telemetry");
        let bytes = encode_frame(&frame, Some([0xde, 0xad, 0xbe, 0xef]));
        // Masked payload must differ from the clear text on the wire.
        assert!(!bytes
            .windows(frame.payload.len())
            .any(|w| w == frame.payload.as_slice()));
        let (decoded, used) = decode_frame(&bytes, true, MAX_CLIENT_PAYLOAD)
            .expect("decodes")
            .expect("complete");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn unmasked_client_frame_is_rejected_only_server_side() {
        let bytes = encode_frame(&Frame::text("x"), None);
        assert_eq!(
            decode_frame(&bytes, true, MAX_CLIENT_PAYLOAD),
            Err(WsError::UnmaskedClientFrame)
        );
        // The client side accepts unmasked (server) frames.
        let (frame, _) = decode_frame(&bytes, false, MAX_CLIENT_PAYLOAD)
            .expect("decodes")
            .expect("complete");
        assert_eq!(frame.payload, b"x");
    }

    #[test]
    fn extended_length_encodings_roundtrip() {
        for len in [0usize, 125, 126, 127, 65_535, 65_536, 70_000] {
            let frame = Frame {
                fin: true,
                opcode: Opcode::Binary,
                payload: vec![0xab; len],
            };
            let bytes = encode_frame(&frame, Some([1, 2, 3, 4]));
            let (decoded, used) = decode_frame(&bytes, true, MAX_CLIENT_PAYLOAD)
                .expect("decodes")
                .expect("complete");
            assert_eq!(used, bytes.len(), "len {len}");
            assert_eq!(decoded.payload.len(), len);
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let bytes = encode_frame(&Frame::text("stream me"), Some([9, 9, 9, 9]));
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..cut], true, MAX_CLIENT_PAYLOAD),
                Ok(None),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn fragmentation_reassembles_across_continuations() {
        let mut asm = MessageAssembler::new();
        let first = Frame {
            fin: false,
            opcode: Opcode::Text,
            payload: b"hello ".to_vec(),
        };
        let mid = Frame {
            fin: false,
            opcode: Opcode::Continuation,
            payload: b"streaming ".to_vec(),
        };
        let last = Frame {
            fin: true,
            opcode: Opcode::Continuation,
            payload: b"world".to_vec(),
        };
        assert_eq!(asm.push(first).expect("ok"), None);
        // Control frames may interleave with a fragmented message.
        assert_eq!(
            asm.push(Frame {
                fin: true,
                opcode: Opcode::Ping,
                payload: b"hb".to_vec(),
            })
            .expect("ok"),
            Some(WsEvent::Ping(b"hb".to_vec()))
        );
        assert_eq!(asm.push(mid).expect("ok"), None);
        assert_eq!(
            asm.push(last).expect("ok"),
            Some(WsEvent::Text("hello streaming world".into()))
        );
    }

    #[test]
    fn fragmentation_violations_are_protocol_errors() {
        let mut asm = MessageAssembler::new();
        assert!(matches!(
            asm.push(Frame {
                fin: true,
                opcode: Opcode::Continuation,
                payload: Vec::new(),
            }),
            Err(WsError::Protocol(_))
        ));
        let mut asm = MessageAssembler::new();
        asm.push(Frame {
            fin: false,
            opcode: Opcode::Text,
            payload: b"a".to_vec(),
        })
        .expect("ok");
        assert!(matches!(
            asm.push(Frame::text("b")),
            Err(WsError::Protocol(_))
        ));
    }

    #[test]
    fn ping_pong_and_close_events() {
        let mut asm = MessageAssembler::new();
        assert_eq!(
            asm.push(Frame::pong(Vec::new())).expect("ok"),
            Some(WsEvent::Pong)
        );
        assert_eq!(
            asm.push(Frame::close(1000, "done")).expect("ok"),
            Some(WsEvent::Close(Some(1000)))
        );
        assert_eq!(
            asm.push(Frame {
                fin: true,
                opcode: Opcode::Close,
                payload: Vec::new(),
            })
            .expect("ok"),
            Some(WsEvent::Close(None))
        );
    }

    #[test]
    fn fragmented_control_frames_are_rejected() {
        let mut bytes = encode_frame(&Frame::close(1000, ""), Some([0; 4]));
        bytes[0] &= 0x7f; // clear FIN on a close frame
        assert!(matches!(
            decode_frame(&bytes, true, MAX_CLIENT_PAYLOAD),
            Err(WsError::Protocol(_))
        ));
    }
}
