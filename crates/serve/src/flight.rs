//! The flight recorder: a bounded ring of recent structured events.
//!
//! Post-mortem debugging of a daemon needs the last few seconds of
//! history — which requests were in flight, in what order, and what they
//! were doing — without an attached debugger and without unbounded
//! memory. The recorder keeps the newest [`CAPACITY`] events
//! (accept/dispatch/complete/error/drain, each stamped with a sequence
//! number, a microsecond offset from recorder start, and the request id)
//! behind one mutex whose critical sections are a push and a pop — short
//! enough that recording never contends measurably with job execution.
//!
//! The ring is dumped as JSON by `GET /v1/flightrecorder` and
//! automatically (to stderr) on graceful drain.

use iwc_telemetry::json::escape;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum events retained; older events are dropped (and counted).
pub const CAPACITY: usize = 256;

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (process lifetime, never reused).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub t_us: u64,
    /// Event kind: `accept`, `dispatch`, `complete`, `error`, `drain`.
    pub kind: &'static str,
    /// The request id this event belongs to (empty for daemon-lifecycle
    /// events like `drain`).
    pub request_id: String,
    /// Free-form human detail (job kind, phase breakdown, error message).
    pub detail: String,
}

impl Event {
    fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"t_us\":{},\"kind\":\"{}\",\"request_id\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            self.t_us,
            self.kind,
            escape(&self.request_id),
            escape(&self.detail)
        )
    }
}

/// The bounded event ring. One per daemon, shared by every thread.
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// Creates an empty recorder; timestamps are relative to this call.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(CAPACITY)),
        }
    }

    /// Records one event, evicting the oldest when the ring is full.
    pub fn record(&self, kind: &'static str, request_id: &str, detail: impl Into<String>) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            kind,
            request_id: request_id.to_string(),
            detail: detail.into(),
        };
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == CAPACITY {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Dumps the ring as one JSON object:
    /// `{"capacity":…,"dropped":…,"events":[…]}`.
    pub fn to_json(&self) -> String {
        let events = self.events();
        let body: Vec<String> = events.iter().map(Event::to_json).collect();
        format!(
            "{{\"capacity\":{CAPACITY},\"dropped\":{},\"events\":[{}]}}",
            self.dropped.load(Ordering::Relaxed),
            body.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_ids() {
        let fr = FlightRecorder::new();
        fr.record("accept", "req-1", "workload=BFS");
        fr.record("dispatch", "req-1", "");
        fr.record("complete", "req-1", "total_us=42");
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, "accept");
        assert_eq!(events[2].kind, "complete");
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let fr = FlightRecorder::new();
        for i in 0..CAPACITY + 10 {
            fr.record("accept", &format!("req-{i}"), "");
        }
        let events = fr.events();
        assert_eq!(events.len(), CAPACITY);
        // The oldest 10 were evicted; the newest survive.
        assert_eq!(events[0].request_id, "req-10");
        assert!(fr.to_json().contains("\"dropped\":10"));
    }

    #[test]
    fn dump_is_valid_json() {
        let fr = FlightRecorder::new();
        fr.record("error", "req-9", "bad \"quoted\" detail\nwith newline");
        let dump = fr.to_json();
        let doc = iwc_telemetry::json::parse(&dump).expect("dump parses");
        let events = doc.get("events").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").and_then(|k| k.as_str()),
            Some("error")
        );
        assert_eq!(
            events[0].get("request_id").and_then(|k| k.as_str()),
            Some("req-9")
        );
    }
}
