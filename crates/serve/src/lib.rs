//! # iwc-serve
//!
//! Simulation-as-a-service: a long-running daemon that accepts simulation
//! jobs — a catalog workload name, an execution-mask trace payload, or a
//! named trace in a server-side corpus pack, plus a list of compaction
//! engines and optional `GpuConfig` overrides — as JSON over HTTP, runs
//! them on a bounded worker pool, and answers with cycles plus the run's
//! full telemetry snapshot. Repeated submissions of the same kernel hit a
//! per-session decoded-program cache (decode once, sweep many), repeated
//! analytical jobs are answered from the content-addressed results cache
//! on disk (`serve/results_cache/{hits,misses}` in `/v1/stats`), and a
//! WebSocket channel streams live per-job telemetry deltas and Perfetto
//! trace-event JSON while a job runs.
//!
//! The whole stack is `std`-only: the container is offline, so the wire
//! layer ([`http`], [`ws`]) is hand-rolled over `std::net` and all JSON
//! goes through `iwc_telemetry::json`. See DESIGN.md §10.
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + drain state (200 from the moment the listener is up) |
//! | `GET /readyz` | readiness: 503 while draining or while the job queue is saturated, 200 otherwise |
//! | `GET /metrics` | Prometheus text exposition of the server registry (`iwc_serve_*`, see `iwc_telemetry::expo`) |
//! | `GET /v1/catalog` | served workloads and canonical engines |
//! | `GET /v1/stats` | server metric registry snapshot (`serve/…`) |
//! | `GET /v1/flightrecorder` | JSON dump of the bounded recent-event ring (see [`flight`]) |
//! | `POST /v1/jobs` | run a job, respond with results (503 + `Retry-After` when the queue is full) |
//! | `GET /v1/ws` | WebSocket upgrade; one job per text message, events streamed back |
//! | `POST /shutdown` | graceful drain (in-flight jobs finish; also SIGTERM) |
//!
//! Every job response — success or error, HTTP or WebSocket — carries the
//! job's request id (`X-IWC-Request-Id` header / `"request_id"` event
//! field); the same id threads through the flight recorder and the
//! slow-request log, so one grep correlates all three.
//!
//! ## Knobs
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `IWC_SERVE_ADDR` | `127.0.0.1:7199` | listen address (`host:port`; port `0` picks a free port) |
//! | `IWC_SERVE_WORKERS` | available parallelism | simulation worker threads |
//! | `IWC_SERVE_QUEUE` | `32` | job queue depth (back-pressure bound) |
//! | `IWC_SLOW_MS` | `1000` | slow-request threshold: jobs slower than this log one structured line with the phase breakdown (`0` disables) |
//! | `IWC_CORPUS_DIR` | `results/corpus/` | corpus store: where `"pack"` jobs resolve `.iwcc` packs and the results cache lives (read by `iwc-trace`) |
//!
//! Malformed values warn once on stderr and fall back to the default —
//! never silently.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod flight;
pub mod http;
pub mod job;
pub mod server;
pub mod ws;

pub use cache::SessionCache;
pub use job::{JobError, JobRequest};
pub use server::{install_sigterm_handler, Server, ServerHandle};

use std::path::PathBuf;
use std::str::FromStr;

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7199";
/// Default job-queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 32;
/// Default slow-request threshold in milliseconds (`IWC_SLOW_MS`).
pub const DEFAULT_SLOW_MS: u64 = 1000;

/// Daemon configuration, usually from [`ServeConfig::from_env`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`host:port`).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded job-queue depth.
    pub queue_depth: usize,
    /// Directory of the content-addressed results cache for analytical
    /// trace/pack jobs; `None` disables it (hermetic tests). The default
    /// lives under the corpus store (`IWC_CORPUS_DIR`).
    pub results_cache: Option<PathBuf>,
    /// Slow-request threshold in milliseconds: jobs whose total wall time
    /// meets or exceeds it log one structured line with the phase
    /// breakdown. `0` disables the log.
    pub slow_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            workers: default_workers(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            results_cache: Some(iwc_trace::corpus_dir().join("cache")),
            slow_ms: DEFAULT_SLOW_MS,
        }
    }
}

impl ServeConfig {
    /// Reads the `IWC_SERVE_*` knobs, warning once (and falling back to
    /// the default) on any malformed value. The results-cache directory
    /// follows `IWC_CORPUS_DIR` (the `iwc-trace` corpus store knob).
    pub fn from_env() -> Self {
        Self {
            addr: env_addr("IWC_SERVE_ADDR", DEFAULT_ADDR),
            workers: env_knob("IWC_SERVE_WORKERS", default_workers()).max(1),
            queue_depth: env_knob("IWC_SERVE_QUEUE", DEFAULT_QUEUE_DEPTH).max(1),
            results_cache: Some(iwc_trace::corpus_dir().join("cache")),
            slow_ms: env_knob("IWC_SLOW_MS", DEFAULT_SLOW_MS),
        }
    }

    /// Returns a copy listening on an ephemeral loopback port — what the
    /// tests, `servebench`, and the CI smoke check use.
    pub fn on_ephemeral_port(mut self) -> Self {
        self.addr = "127.0.0.1:0".to_string();
        self
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Warns once per `key` per process (the `IWC_SCALE`/`IWC_THREADS`
/// convention: malformed knobs never fail and never warn-spam).
fn warn_once(key: &str, msg: &str) {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let mut warned = WARNED.lock().expect("warn_once poisoned");
    if warned.insert(key.to_string()) {
        eprintln!("iwc-serve: {msg}");
    }
}

/// Parses env knob `key`, warning once and returning `default` when the
/// value does not parse.
fn env_knob<T>(key: &str, default: T) -> T
where
    T: FromStr + std::fmt::Display + Copy,
{
    match std::env::var(key) {
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                warn_once(
                    key,
                    &format!("ignoring malformed {key}={raw:?} (using {default})"),
                );
                default
            }
        },
        Err(_) => default,
    }
}

/// Validates a listen address knob: it must parse as `host:port` socket
/// addresses; otherwise warn once and use `default`.
fn env_addr(key: &str, default: &str) -> String {
    match std::env::var(key) {
        Ok(raw) => {
            let trimmed = raw.trim();
            if std::net::ToSocketAddrs::to_socket_addrs(&trimmed)
                .map(|mut a| a.next().is_some())
                .unwrap_or(false)
            {
                trimmed.to_string()
            } else {
                warn_once(
                    key,
                    &format!("ignoring malformed {key}={raw:?} (using {default})"),
                );
                default.to_string()
            }
        }
        Err(_) => default.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_parse_or_warn_and_default() {
        // Distinct keys per case: tests share the process environment.
        std::env::set_var("IWC_SERVE_TEST_OK", "9");
        assert_eq!(env_knob("IWC_SERVE_TEST_OK", 2usize), 9);
        std::env::set_var("IWC_SERVE_TEST_BAD", "not-a-number");
        assert_eq!(env_knob("IWC_SERVE_TEST_BAD", 3usize), 3);
        assert_eq!(env_knob("IWC_SERVE_TEST_UNSET", 5usize), 5);

        std::env::set_var("IWC_SERVE_TEST_ADDR_OK", "127.0.0.1:0");
        assert_eq!(
            env_addr("IWC_SERVE_TEST_ADDR_OK", DEFAULT_ADDR),
            "127.0.0.1:0"
        );
        std::env::set_var("IWC_SERVE_TEST_ADDR_BAD", "no-port-here");
        assert_eq!(
            env_addr("IWC_SERVE_TEST_ADDR_BAD", DEFAULT_ADDR),
            DEFAULT_ADDR
        );
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.addr, DEFAULT_ADDR);
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(cfg.slow_ms, DEFAULT_SLOW_MS);
        let eph = cfg.on_ephemeral_port();
        assert_eq!(eph.addr, "127.0.0.1:0");
    }

    #[test]
    fn slow_ms_knob_follows_warn_once_convention() {
        // Valid values (including the 0 = disabled sentinel) parse; a
        // malformed value warns once and falls back to the default.
        std::env::set_var("IWC_SLOW_MS_TEST_OK", "250");
        assert_eq!(env_knob("IWC_SLOW_MS_TEST_OK", DEFAULT_SLOW_MS), 250);
        std::env::set_var("IWC_SLOW_MS_TEST_ZERO", "0");
        assert_eq!(env_knob("IWC_SLOW_MS_TEST_ZERO", DEFAULT_SLOW_MS), 0);
        std::env::set_var("IWC_SLOW_MS_TEST_BAD", "soon");
        assert_eq!(
            env_knob("IWC_SLOW_MS_TEST_BAD", DEFAULT_SLOW_MS),
            DEFAULT_SLOW_MS
        );
        std::env::set_var("IWC_SLOW_MS_TEST_NEG", "-5");
        assert_eq!(
            env_knob::<u64>("IWC_SLOW_MS_TEST_NEG", DEFAULT_SLOW_MS),
            DEFAULT_SLOW_MS
        );
    }
}
