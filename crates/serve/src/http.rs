//! Hand-rolled HTTP/1.1 wire layer.
//!
//! The container is fully offline — no tokio, no hyper — so the serve
//! daemon speaks HTTP/1.1 over `std::net` with its own parser and response
//! writer. The subset implemented is exactly what the serve protocol
//! needs, but implemented strictly:
//!
//! * request line + headers + `Content-Length` bodies (no chunked
//!   transfer-encoding — requests using it earn a `411`/`400`);
//! * **pipelining**: [`RequestParser`] is incremental and pulls any number
//!   of complete requests out of one connection buffer, in order;
//! * **bounded buffers**: header blocks over [`RequestParser::max_head`]
//!   bytes and bodies over [`RequestParser::max_body`] bytes are rejected
//!   with [`HttpError::HeadTooLarge`] / [`HttpError::BodyTooLarge`]
//!   (mapped to `431`/`413` by the server) instead of growing without
//!   limit;
//! * keep-alive semantics: HTTP/1.1 defaults to persistent connections,
//!   `Connection: close` is honored.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;

/// Default header-block byte limit (request line + all headers).
pub const DEFAULT_MAX_HEAD: usize = 16 * 1024;
/// Default body byte limit. Mask-trace payloads are the largest legitimate
/// request; 8 MiB holds ~1M trace records with JSON overhead.
pub const DEFAULT_MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.to_ascii_lowercase()
                .split(',')
                .any(|t| t.trim() == "close")
        })
    }

    /// True when this is a WebSocket upgrade request (`Connection:
    /// upgrade` + `Upgrade: websocket`).
    pub fn wants_ws_upgrade(&self) -> bool {
        let conn_upgrade = self.header("connection").is_some_and(|v| {
            v.to_ascii_lowercase()
                .split(',')
                .any(|t| t.trim() == "upgrade")
        });
        let upgrade_ws = self
            .header("upgrade")
            .is_some_and(|v| v.eq_ignore_ascii_case("websocket"));
        conn_upgrade && upgrade_ws
    }
}

/// A wire-layer parse failure. Fatal for the connection: the server
/// responds with the mapped status code and closes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Header block exceeded the configured limit → `431`.
    HeadTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// Declared `Content-Length` exceeded the configured limit → `413`.
    BodyTooLarge {
        /// The declared body size in bytes.
        declared: usize,
        /// The configured limit in bytes.
        limit: usize,
    },
    /// Anything else malformed → `400`.
    Malformed(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HeadTooLarge { limit } => write!(f, "header block over {limit} bytes"),
            Self::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes over the {limit}-byte limit")
            }
            Self::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The HTTP status code this failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            Self::HeadTooLarge { .. } => 431,
            Self::BodyTooLarge { .. } => 413,
            Self::Malformed(_) => 400,
        }
    }
}

/// Incremental request parser over one connection's byte stream.
///
/// Feed raw bytes with [`RequestParser::feed`], then drain complete
/// requests with [`RequestParser::next_request`] — repeatedly, so
/// pipelined requests all surface in order before more reads.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Header-block byte limit.
    pub max_head: usize,
    /// Body byte limit.
    pub max_body: usize,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_HEAD, DEFAULT_MAX_BODY)
    }
}

impl RequestParser {
    /// A parser with explicit header/body limits.
    pub fn new(max_head: usize, max_body: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_head,
            max_body,
        }
    }

    /// Appends raw connection bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pulls the next complete request off the front of the buffer.
    ///
    /// Returns `Ok(None)` when the buffer holds only a partial request
    /// (feed more bytes and retry).
    ///
    /// # Errors
    ///
    /// Returns [`HttpError`] on malformed or over-limit input; the
    /// connection should answer with [`HttpError::status`] and close.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            // No blank line yet: the head is still arriving. It must stay
            // under the limit even while incomplete, or a slow-loris body
            // of headers would grow the buffer forever.
            if self.buf.len() > self.max_head {
                return Err(HttpError::HeadTooLarge {
                    limit: self.max_head,
                });
            }
            return Ok(None);
        };
        if head_end > self.max_head {
            return Err(HttpError::HeadTooLarge {
                limit: self.max_head,
            });
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
        let (method, path, headers) = parse_head(head)?;

        if headers
            .get("transfer-encoding")
            .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
        {
            return Err(HttpError::Malformed(
                "transfer-encoding not supported; use content-length".into(),
            ));
        }
        let body_len = match headers.get("content-length") {
            None => 0,
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        };
        if body_len > self.max_body {
            return Err(HttpError::BodyTooLarge {
                declared: body_len,
                limit: self.max_body,
            });
        }
        let total = head_end + 4 + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        let headers = headers.into_iter().collect();
        Ok(Some(Request {
            method,
            path,
            headers,
            body,
        }))
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &str) -> Result<(String, String, BTreeMap<String, String>), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line {request_line:?}")))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed(format!("bad request target in {request_line:?}")))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") || parts.next().is_some() {
        return Err(HttpError::Malformed(format!(
            "unsupported request line {request_line:?}"
        )));
    }
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers
            .entry(name.to_ascii_lowercase())
            .or_insert_with(|| value.trim().to_string());
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// Reason phrase for the status codes the daemon emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        101 => "Switching Protocols",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (content-length and the standard set are added by
    /// [`Response::write_to`]).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Self {
        Self::new(200).with_body("application/json", body.into().into_bytes())
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::new(status).with_body("text/plain; charset=utf-8", body.into().into_bytes())
    }

    /// An error response with a small JSON body naming the problem.
    pub fn error(status: u16, message: &str) -> Self {
        let body = format!(
            "{{ \"error\": \"{}\", \"status\": {status} }}\n",
            iwc_telemetry::json::escape(message)
        );
        Self::new(status).with_body("application/json", body.into_bytes())
    }

    /// Sets the body and its content type.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".into(), content_type.into()));
        self.body = body;
        self
    }

    /// Adds one header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response (adding `Content-Length` and, when
    /// `close` is set, `Connection: close`) into `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        if close {
            write!(w, "Connection: close\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(text: &[u8]) -> (Vec<Request>, Option<HttpError>) {
        let mut p = RequestParser::default();
        p.feed(text);
        let mut out = Vec::new();
        loop {
            match p.next_request() {
                Ok(Some(r)) => out.push(r),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e)),
            }
        }
    }

    #[test]
    fn parses_a_basic_get() {
        let (reqs, err) = feed_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(err, None);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].path, "/healthz");
        assert_eq!(reqs[0].header("host"), Some("x"));
        assert_eq!(reqs[0].header("HOST"), Some("x"));
        assert!(reqs[0].body.is_empty());
        assert!(!reqs[0].wants_close());
    }

    #[test]
    fn parses_a_post_with_body() {
        let (reqs, err) =
            feed_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
        assert_eq!(err, None);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, b"hello world");
    }

    #[test]
    fn pipelined_requests_surface_in_order() {
        let (reqs, err) = feed_all(
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
              GET /healthz HTTP/1.1\r\n\r\n\
              POST /v1/jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy",
        );
        assert_eq!(err, None);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].body, b"abc");
        assert_eq!(reqs[1].method, "GET");
        assert_eq!(reqs[2].body, b"xy");
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        let mut p = RequestParser::default();
        p.feed(b"POST /v1/jobs HTTP/1.1\r\nContent-Le");
        assert_eq!(p.next_request(), Ok(None), "head incomplete");
        p.feed(b"ngth: 4\r\n\r\nab");
        assert_eq!(p.next_request(), Ok(None), "body incomplete");
        p.feed(b"cd");
        let r = p.next_request().expect("parses").expect("complete");
        assert_eq!(r.body, b"abcd");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let mut p = RequestParser::new(DEFAULT_MAX_HEAD, 16);
        p.feed(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        let err = p.next_request().expect_err("over the limit");
        assert_eq!(
            err,
            HttpError::BodyTooLarge {
                declared: 17,
                limit: 16
            }
        );
        assert_eq!(err.status(), 413);
        // Exactly at the limit is fine.
        let mut p = RequestParser::new(DEFAULT_MAX_HEAD, 16);
        p.feed(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 16\r\n\r\n0123456789abcdef");
        assert!(p.next_request().expect("parses").is_some());
    }

    #[test]
    fn oversized_head_is_rejected_even_while_incomplete() {
        let mut p = RequestParser::new(64, DEFAULT_MAX_BODY);
        p.feed(b"GET /healthz HTTP/1.1\r\n");
        p.feed(&[b'a'; 128]); // header bytes, no terminator yet
        let err = p.next_request().expect_err("head over the limit");
        assert_eq!(err, HttpError::HeadTooLarge { limit: 64 });
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn malformed_requests_are_400() {
        for bad in [
            b"FOO BAR\r\n\r\n".as_slice(),
            b"GET healthz HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: owl\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let (_, err) = feed_all(bad);
            let err = err.unwrap_or_else(|| panic!("{:?} must fail", String::from_utf8_lossy(bad)));
            assert_eq!(err.status(), 400, "{err}");
        }
    }

    #[test]
    fn connection_close_and_ws_upgrade_detection() {
        let (reqs, _) = feed_all(b"GET /x HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n");
        assert!(reqs[0].wants_close());
        let (reqs, _) = feed_all(
            b"GET /v1/ws HTTP/1.1\r\nConnection: keep-alive, Upgrade\r\nUpgrade: WebSocket\r\n\r\n",
        );
        assert!(reqs[0].wants_ws_upgrade());
        let (reqs, _) = feed_all(b"GET /v1/ws HTTP/1.1\r\nUpgrade: websocket\r\n\r\n");
        assert!(!reqs[0].wants_ws_upgrade(), "needs Connection: upgrade too");
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::json("{\"ok\":true}")
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(
            text.ends_with("Content-Length: 11\r\n\r\n{\"ok\":true}"),
            "{text}"
        );
    }

    #[test]
    fn error_response_escapes_the_message() {
        let r = Response::error(503, "queue \"full\"");
        assert_eq!(r.status, 503);
        let body = String::from_utf8(r.body).expect("utf8");
        assert!(body.contains("queue \\\"full\\\""), "{body}");
        assert_eq!(status_reason(503), "Service Unavailable");
    }
}
