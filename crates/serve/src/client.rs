//! A minimal blocking loopback client, enough for the integration tests,
//! the `servebench` load generator, and the CI smoke check: one-shot HTTP
//! requests over `std::net` plus a masked-frame WebSocket client.

use crate::http::status_reason;
use crate::ws::{self, Frame, MessageAssembler, Opcode, WsEvent};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one `method path` request with an optional JSON body over a
/// fresh connection (`Connection: close`).
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses as
/// `std::io::Error`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: iwc-serve\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    read_response(&mut BufReader::new(stream))
}

/// `GET path` over a fresh connection.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body over a fresh connection.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg.into())
}

fn read_response<R: BufRead>(r: &mut R) -> std::io::Result<HttpResponse> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line: {line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h
            .split_once(':')
            .ok_or_else(|| bad(format!("bad header line: {h:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(HttpResponse {
        status,
        headers,
        body: String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?,
    })
}

/// A blocking WebSocket client speaking the serve event protocol. Client
/// frames are masked (as RFC 6455 requires); the mask key is fixed — the
/// protocol needs masking, not entropy.
pub struct WsClient {
    stream: TcpStream,
    wire: Vec<u8>,
    asm: MessageAssembler,
}

const CLIENT_MASK: [u8; 4] = [0x13, 0x57, 0x9b, 0xdf];

/// Opens a WebSocket session against `path`, completing the upgrade
/// handshake and verifying the `Sec-WebSocket-Accept` echo.
///
/// # Errors
///
/// Propagates IO failures; a non-101 answer or a bad accept key is
/// `InvalidData`.
pub fn ws_connect(addr: SocketAddr, path: &str) -> std::io::Result<WsClient> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // Any base64 16-byte value works as the nonce; fixed for determinism.
    let key = ws::base64(b"iwc-serve-client");
    let head = format!(
        "GET {path} HTTP/1.1\r\nHost: iwc-serve\r\nConnection: Upgrade\r\nUpgrade: websocket\r\nSec-WebSocket-Version: 13\r\nSec-WebSocket-Key: {key}\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;

    // Read the upgrade response head byte-by-byte (no buffering, so frame
    // bytes after the head stay in the socket).
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte)?;
        head.push(byte[0]);
        if head.len() > 16 * 1024 {
            return Err(bad("oversized upgrade response"));
        }
    }
    let head = String::from_utf8_lossy(&head);
    if !head.starts_with("HTTP/1.1 101") {
        let status = head.lines().next().unwrap_or("").to_string();
        return Err(bad(format!("upgrade refused: {status}")));
    }
    let expect = ws::accept_key(&key);
    let accept_ok = head.lines().any(|l| {
        l.to_ascii_lowercase().starts_with("sec-websocket-accept:")
            && l.split(':').nth(1).map(str::trim) == Some(expect.as_str())
    });
    if !accept_ok {
        return Err(bad("bad Sec-WebSocket-Accept"));
    }
    Ok(WsClient {
        stream,
        wire: Vec::new(),
        asm: MessageAssembler::new(),
    })
}

impl WsClient {
    /// Sends one text message (a job request).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_text(&mut self, text: &str) -> std::io::Result<()> {
        self.stream
            .write_all(&ws::encode_frame(&Frame::text(text), Some(CLIENT_MASK)))
    }

    /// Sends a close frame.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn close(&mut self) -> std::io::Result<()> {
        self.stream.write_all(&ws::encode_frame(
            &Frame::close(1000, "done"),
            Some(CLIENT_MASK),
        ))
    }

    /// Waits up to `timeout` for the next event from the server,
    /// answering pings transparently. `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; protocol violations are `InvalidData`.
    pub fn next_event(&mut self, timeout: Duration) -> std::io::Result<Option<WsEvent>> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 16 * 1024];
        loop {
            // Drain buffered frames first.
            match ws::decode_frame(&self.wire, false, usize::MAX).map_err(|e| bad(e.to_string()))? {
                Some((frame, used)) => {
                    self.wire.drain(..used);
                    if frame.opcode == Opcode::Ping {
                        self.stream.write_all(&ws::encode_frame(
                            &Frame {
                                fin: true,
                                opcode: Opcode::Pong,
                                payload: frame.payload,
                            },
                            Some(CLIENT_MASK),
                        ))?;
                        continue;
                    }
                    if let Some(ev) = self.asm.push(frame).map_err(|e| bad(e.to_string()))? {
                        return Ok(Some(ev));
                    }
                    continue;
                }
                None => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Ok(None);
                    }
                    self.stream.set_read_timeout(Some(deadline - now))?;
                    match self.stream.read(&mut buf) {
                        Ok(0) => return Err(bad("connection closed mid-stream")),
                        Ok(n) => self.wire.extend_from_slice(&buf[..n]),
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            return Ok(None)
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

/// Renders `status` as `"<code> <reason>"`, for log lines.
pub fn status_line(status: u16) -> String {
    format!("{status} {}", status_reason(status))
}
