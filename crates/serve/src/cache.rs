//! Per-session caches: decoded programs (in memory) and analytical trace
//! results (on disk).
//!
//! The daemon decodes each distinct kernel once per session: entries are
//! keyed `(content hash, engine)` as the wire protocol sees them, but
//! decoding is engine-independent, so a batch request covering N engines
//! of the same program performs at most ONE decode and every key shares
//! the same [`Arc<DecodedProgram>`]. Counters land in the server registry
//! under `serve/cache/…` (`hits`, `misses`, `decodes`).
//!
//! The session cache can additionally front the content-addressed
//! [`iwc_trace::ResultsCache`]: trace and pack jobs are pure functions of
//! (trace content × engine set), so their complete response bodies are
//! cacheable across sessions on disk. Lookups count into
//! `serve/results_cache/{hits,misses}`, which surface in `/v1/stats`.

use iwc_compaction::EngineId;
use iwc_sim::DecodedProgram;
use iwc_telemetry::{Counter, Registry};
use iwc_trace::ResultsCache;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Session-scoped decode cache with hit/miss/decode accounting, plus an
/// optional disk-backed results cache for analytical trace jobs.
pub struct SessionCache {
    map: Mutex<HashMap<(u64, EngineId), Arc<DecodedProgram>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    decodes: Arc<Counter>,
    results: Option<ResultsCache>,
    results_hits: Arc<Counter>,
    results_misses: Arc<Counter>,
}

impl SessionCache {
    /// A fresh cache publishing its counters into `registry`. The disk
    /// results cache starts disabled; enable it with
    /// [`SessionCache::with_results`].
    pub fn new(registry: &Registry) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            hits: registry.counter("serve/cache/hits"),
            misses: registry.counter("serve/cache/misses"),
            decodes: registry.counter("serve/cache/decodes"),
            results: None,
            results_hits: registry.counter("serve/results_cache/hits"),
            results_misses: registry.counter("serve/results_cache/misses"),
        }
    }

    /// Attaches a disk-backed results cache for trace/pack job bodies.
    #[must_use]
    pub fn with_results(mut self, results: ResultsCache) -> Self {
        self.results = Some(results);
        self
    }

    /// Looks `key` up in the disk results cache, counting the outcome
    /// into `serve/results_cache/{hits,misses}`. Always `None` (without
    /// counting) when no results cache is attached.
    pub fn results_lookup(&self, key: u64) -> Option<String> {
        let payload = self.results.as_ref()?.load(key);
        match payload {
            Some(_) => self.results_hits.add(1),
            None => self.results_misses.add(1),
        }
        payload
    }

    /// Stores a trace-job response body under `key`. A write failure is
    /// logged, not fatal: the cache is an accelerator, not a dependency.
    pub fn results_store(&self, key: u64, payload: &str) {
        if let Some(results) = &self.results {
            if let Err(e) = results.store(key, payload) {
                eprintln!("iwc-serve: results cache store failed: {e}");
            }
        }
    }

    /// Returns the decoded program for `(hash, engine)`, decoding via
    /// `decode` only when no engine of this hash has been seen before.
    ///
    /// The decode closure runs outside the cache lock at most once per
    /// *program* (not per engine): when engine A of a hash populated the
    /// cache, engine B of the same hash reuses the plans and counts as a
    /// miss without a decode.
    pub fn get_or_decode(
        &self,
        hash: u64,
        engine: EngineId,
        decode: impl FnOnce() -> DecodedProgram,
    ) -> Arc<DecodedProgram> {
        {
            let map = self.map.lock().expect("cache lock poisoned");
            if let Some(d) = map.get(&(hash, engine)) {
                self.hits.add(1);
                return Arc::clone(d);
            }
        }
        self.misses.add(1);
        // Look for the same program decoded under another engine before
        // paying for a decode of our own.
        let existing = {
            let map = self.map.lock().expect("cache lock poisoned");
            map.iter()
                .find(|((h, _), _)| *h == hash)
                .map(|(_, d)| Arc::clone(d))
        };
        let decoded = match existing {
            Some(d) => d,
            None => {
                self.decodes.add(1);
                Arc::new(decode())
            }
        };
        let mut map = self.map.lock().expect("cache lock poisoned");
        // A racing worker may have inserted meanwhile; keep the first.
        Arc::clone(
            map.entry((hash, engine))
                .or_insert_with(|| Arc::clone(&decoded)),
        )
    }

    /// Number of `(hash, engine)` entries resident.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::{KernelBuilder, Operand};

    fn program() -> iwc_isa::program::Program {
        let mut b = KernelBuilder::new("k", 8);
        b.add(Operand::rud(6), Operand::rud(1), Operand::imm_ud(7));
        b.finish().expect("valid kernel")
    }

    #[test]
    fn decode_happens_once_per_program_across_engines() {
        let reg = Registry::new();
        let cache = SessionCache::new(&reg);
        let p = program();
        let h = iwc_workloads::hash::program_hash(&p);

        let a = cache.get_or_decode(h, EngineId::BASELINE, || DecodedProgram::decode(&p));
        let b = cache.get_or_decode(h, EngineId::SCC, || panic!("second engine must not decode"));
        assert!(Arc::ptr_eq(&a, &b), "engines share the decoded plans");

        // Same (hash, engine) again: a pure hit.
        let _ = cache.get_or_decode(h, EngineId::SCC, || panic!("hit must not decode"));

        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve/cache/decodes"), Some(1));
        assert_eq!(snap.counter("serve/cache/misses"), Some(2));
        assert_eq!(snap.counter("serve/cache/hits"), Some(1));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn results_cache_counts_hits_and_misses() {
        let dir = std::env::temp_dir().join(format!("iwc-serve-rc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::new();
        let cache = SessionCache::new(&reg).with_results(ResultsCache::new(&dir));

        let key = ResultsCache::key(0xabcd, &["scc".to_string()], "test/v1");
        assert_eq!(cache.results_lookup(key), None, "cold cache misses");
        cache.results_store(key, "{\"cached\":true}");
        assert_eq!(cache.results_lookup(key), Some("{\"cached\":true}".into()));

        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve/results_cache/misses"), Some(1));
        assert_eq!(snap.counter("serve/results_cache/hits"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn detached_results_cache_is_inert() {
        let reg = Registry::new();
        let cache = SessionCache::new(&reg);
        assert_eq!(cache.results_lookup(1), None);
        cache.results_store(1, "ignored");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve/results_cache/misses"), Some(0));
        assert_eq!(snap.counter("serve/results_cache/hits"), Some(0));
    }

    #[test]
    fn distinct_hashes_decode_separately() {
        let reg = Registry::new();
        let cache = SessionCache::new(&reg);
        let p = program();
        let _ = cache.get_or_decode(1, EngineId::BASELINE, || DecodedProgram::decode(&p));
        let _ = cache.get_or_decode(2, EngineId::BASELINE, || DecodedProgram::decode(&p));
        assert_eq!(reg.snapshot().counter("serve/cache/decodes"), Some(2));
    }
}
