//! The daemon: accept loop, bounded job queue, worker pool, routing, and
//! graceful drain.
//!
//! Architecture (all `std::net` + threads — the container is offline):
//!
//! ```text
//!  accept loop ──► connection threads ──try_send──► bounded job queue
//!   (non-blocking,    (HTTP/1.1 parse,   │ Full → 503 + Retry-After
//!    polls drain       keep-alive,       ▼
//!    flag + SIGTERM)   WS upgrade)    N sim workers (decode cache shared)
//! ```
//!
//! Draining (`POST /shutdown` or SIGTERM) stops the accept loop, lets
//! every in-flight job finish, closes keep-alive connections after their
//! current request, then joins all threads — `Server::run` returns `Ok`.

use crate::cache::SessionCache;
use crate::flight::FlightRecorder;
use crate::http::{HttpError, Request, RequestParser, Response};
use crate::job::{self, EventSink, JobError, JobRequest};
use crate::ws;
use crate::ServeConfig;
use iwc_telemetry::span::{self, SpanContext};
use iwc_telemetry::{expo, Registry};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocking loops re-check the drain flag.
const POLL: Duration = Duration::from_millis(25);

/// SIGTERM flag set by the signal handler (`cfg(unix)`).
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Installs a SIGTERM handler that requests a graceful drain. Safe to call
/// more than once. No-op on non-unix targets.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigterm(_sig: i32) {
            SIGTERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NO: i32 = 15;
        // SAFETY: installing a handler that only stores to an atomic is
        // async-signal-safe; std links libc so `signal` is available.
        unsafe {
            signal(SIGTERM_NO, on_sigterm as *const () as usize);
        }
    }
}

/// State shared by the accept loop, connections, and workers.
struct Shared {
    registry: Registry,
    cache: SessionCache,
    draining: AtomicBool,
    flight: FlightRecorder,
    /// Jobs currently sitting in (or being handed through) the queue.
    queue_used: AtomicUsize,
    /// Workers currently executing a job.
    busy_workers: AtomicUsize,
    workers: usize,
    queue_depth: usize,
    slow_ms: u64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || SIGTERM.load(Ordering::SeqCst)
    }

    /// Back-pressure signal for `/readyz`: every queue slot is taken.
    fn saturated(&self) -> bool {
        self.queue_used.load(Ordering::SeqCst) >= self.queue_depth
    }

    /// Publishes the live queue-depth gauge (and its peak) after a
    /// queue-occupancy change.
    fn publish_queue_gauges(&self, used: usize) {
        let depth = used as f64;
        self.registry.gauge("serve/queue/depth").set(depth);
        self.registry.gauge("serve/queue/peak").set_max(depth);
    }

    /// Publishes the busy-worker gauges (count, peak, utilization) after
    /// a worker picks up or finishes a job.
    fn publish_worker_gauges(&self, busy: usize) {
        let b = busy as f64;
        self.registry.gauge("serve/workers/busy").set(b);
        self.registry.gauge("serve/workers/peak").set_max(b);
        self.registry
            .gauge("serve/workers/utilization")
            .set(b / self.workers.max(1) as f64);
    }
}

/// One queued job: the parsed request, its span context (request id +
/// phase timings), a one-shot response channel, and an optional live-event
/// channel (WebSocket connections).
struct QueuedJob {
    req: JobRequest,
    span: Arc<SpanContext>,
    queued_at: Instant,
    resp: SyncSender<Result<String, JobError>>,
    events: Option<mpsc::Sender<String>>,
}

/// A handle for controlling a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful drain: stop accepting, finish in-flight jobs,
    /// then `Server::run` returns.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// A snapshot of the server's metric registry (`serve/…` counters,
    /// live queue/worker gauges, phase histograms).
    pub fn stats(&self) -> iwc_telemetry::TelemetrySnapshot {
        self.shared.registry.snapshot()
    }

    /// The Prometheus text exposition of [`stats`](Self::stats) — exactly
    /// what `GET /metrics` serves.
    pub fn metrics_text(&self) -> String {
        expo::render(&self.shared.registry.snapshot())
    }

    /// The flight-recorder dump — exactly what `GET /v1/flightrecorder`
    /// serves.
    pub fn flight_json(&self) -> String {
        self.shared.flight.to_json()
    }
}

/// The serve daemon. Bind with [`Server::bind`], then block in
/// [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
    queue_depth: usize,
}

impl Server {
    /// Binds the listener and builds the shared state.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let registry = Registry::new();
        let mut cache = SessionCache::new(&registry);
        if let Some(dir) = &cfg.results_cache {
            cache = cache.with_results(iwc_trace::ResultsCache::new(dir));
        }
        let workers = cfg.workers.max(1);
        let queue_depth = cfg.queue_depth.max(1);
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                registry,
                cache,
                draining: AtomicBool::new(false),
                flight: FlightRecorder::new(),
                queue_used: AtomicUsize::new(0),
                busy_workers: AtomicUsize::new(0),
                workers,
                queue_depth,
                slow_ms: cfg.slow_ms,
            }),
            workers,
            queue_depth,
        })
    }

    /// The bound address (port resolved when binding to port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the daemon until drained. Accepts connections, dispatches jobs
    /// through the bounded queue to the worker pool, and on drain joins
    /// every thread before returning.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors are
    /// handled and counted, not fatal).
    pub fn run(self) -> std::io::Result<()> {
        let (job_tx, job_rx) = mpsc::sync_channel::<QueuedJob>(self.queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut worker_handles = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let shared = Arc::clone(&self.shared);
            let rx = Arc::clone(&job_rx);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("iwc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker"),
            );
        }

        let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.registry.counter("serve/connections").add(1);
                    let shared = Arc::clone(&self.shared);
                    let tx = job_tx.clone();
                    conn_handles.push(
                        std::thread::Builder::new()
                            .name("iwc-serve-conn".into())
                            .spawn(move || handle_connection(stream, &shared, &tx))
                            .expect("spawn connection thread"),
                    );
                    conn_handles.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: connections finish their current request and exit (they
        // poll the drain flag), which drops their queue senders; workers
        // then run the queue dry and exit when the last sender goes away.
        drop(job_tx);
        for h in conn_handles {
            let _ = h.join();
        }
        for h in worker_handles {
            let _ = h.join();
        }
        // The post-mortem record survives the drain: one line on stderr
        // with the full event ring, greppable next to the access log.
        self.shared.flight.record("drain", "", "graceful");
        eprintln!("iwc-serve flightrecorder {}", self.shared.flight.to_json());
        Ok(())
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<QueuedJob>>) {
    loop {
        // Hold the lock only for the dequeue, not the job.
        let job = {
            let rx = rx.lock().expect("job queue lock poisoned");
            rx.recv()
        };
        let Ok(job) = job else { return };
        let used = shared.queue_used.fetch_sub(1, Ordering::SeqCst).max(1) - 1;
        shared.publish_queue_gauges(used);
        let busy = shared.busy_workers.fetch_add(1, Ordering::SeqCst) + 1;
        shared.publish_worker_gauges(busy);

        let rid = job.span.request_id();
        job.span.record_phase(
            "queue",
            job.queued_at
                .elapsed()
                .as_micros()
                .min(u128::from(u64::MAX)) as u64,
        );
        shared.flight.record("dispatch", &rid, "");
        for engine in &job.req.engines {
            shared
                .registry
                .counter(&format!("serve/engine/{}", engine.label()))
                .add(1);
        }

        let started = Instant::now();
        let sink_fn;
        let sink: EventSink<'_> = match &job.events {
            None => None,
            Some(tx) => {
                let tx = tx.clone();
                let rid = rid.clone();
                sink_fn = move |e: String| {
                    let _ = tx.send(with_request_id(&e, &rid));
                };
                Some(&sink_fn)
            }
        };
        // The span rides a thread-local, so the sim crate's decode and
        // launch paths charge their phases here without an API change;
        // the guard uninstalls it before the next job.
        let result = {
            let _guard = span::set_current(Arc::clone(&job.span));
            job::run_job(&job.req, &shared.cache, sink)
        };
        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        shared.registry.histogram("serve/job_us").record(us);
        shared
            .registry
            .counter(if result.is_ok() {
                "serve/jobs_ok"
            } else {
                "serve/jobs_failed"
            })
            .add(1);

        // Phase accounting: parse/queue arrive on the span from the
        // connection thread, decode/simulate from the sim hooks; render
        // is everything else in the job wall time (response assembly,
        // cache lookups, base64).
        let mut parse_us = 0u64;
        let mut queue_us = 0u64;
        let mut decode_us = 0u64;
        let mut simulate_us = 0u64;
        for (name, phase_us) in job.span.phases() {
            match name.as_str() {
                "parse" => parse_us += phase_us,
                "queue" => queue_us += phase_us,
                "decode" => decode_us += phase_us,
                "simulate" => simulate_us += phase_us,
                _ => {}
            }
        }
        let render_us = us.saturating_sub(decode_us + simulate_us);
        for (phase, phase_us) in [
            ("parse", parse_us),
            ("queue", queue_us),
            ("decode", decode_us),
            ("simulate", simulate_us),
            ("render", render_us),
        ] {
            shared
                .registry
                .histogram(&format!("serve/phase_us/{phase}"))
                .record(phase_us);
        }
        let breakdown = format!(
            "parse_us={parse_us} queue_us={queue_us} decode_us={decode_us} \
             simulate_us={simulate_us} render_us={render_us} total_us={us}"
        );
        if shared.slow_ms > 0 && us >= shared.slow_ms.saturating_mul(1000) {
            eprintln!("iwc-serve slow-request {rid} {breakdown}");
        }
        match &result {
            Ok(_) => shared.flight.record("complete", &rid, breakdown),
            Err(e) => shared
                .flight
                .record("error", &rid, format!("{} ({breakdown})", e.message())),
        }

        if let (Some(tx), Err(e)) = (&job.events, &result) {
            let _ = tx.send(with_request_id(
                &format!(
                    "{{\"event\":\"error\",\"status\":{},\"message\":\"{}\"}}",
                    e.status(),
                    iwc_telemetry::json::escape(e.message())
                ),
                &rid,
            ));
        }
        let _ = job.resp.send(result);
        let busy = shared.busy_workers.fetch_sub(1, Ordering::SeqCst) - 1;
        shared.publish_worker_gauges(busy);
    }
}

/// Injects `"request_id"` as the first field of a pre-rendered JSON event
/// object. Events that are not objects pass through unchanged.
fn with_request_id(event: &str, rid: &str) -> String {
    match event.strip_prefix('{') {
        Some("}") => format!("{{\"request_id\":\"{rid}\"}}"),
        Some(rest) => format!("{{\"request_id\":\"{rid}\",{rest}"),
        None => event.to_string(),
    }
}

/// Submits a job to the bounded queue; `Err` means the queue is full (the
/// daemon is saturated) and the caller should answer 503.
fn submit(
    shared: &Shared,
    tx: &SyncSender<QueuedJob>,
    req: JobRequest,
    span: Arc<SpanContext>,
    events: Option<mpsc::Sender<String>>,
) -> Result<Receiver<Result<String, JobError>>, ()> {
    let (resp_tx, resp_rx) = mpsc::sync_channel(1);
    shared.registry.counter("serve/jobs_submitted").add(1);
    let rid = span.request_id();
    shared.flight.record("accept", &rid, job_detail(&req));
    // Count the slot *before* the send: the moment a worker can see the
    // job, the occupancy it will decrement is already there.
    let used = shared.queue_used.fetch_add(1, Ordering::SeqCst) + 1;
    shared.publish_queue_gauges(used);
    match tx.try_send(QueuedJob {
        req,
        span,
        queued_at: Instant::now(),
        resp: resp_tx,
        events,
    }) {
        Ok(()) => Ok(resp_rx),
        Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
            let used = shared.queue_used.fetch_sub(1, Ordering::SeqCst).max(1) - 1;
            shared.publish_queue_gauges(used);
            shared.registry.counter("serve/rejected").add(1);
            shared
                .flight
                .record("error", &rid, "rejected: job queue full");
            Err(())
        }
    }
}

/// One-line description of a job for flight-recorder events.
fn job_detail(req: &JobRequest) -> String {
    if let Some(w) = &req.workload {
        format!("workload={w}")
    } else if let Some(p) = &req.pack {
        format!("pack={p}")
    } else {
        "trace".to_string()
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, jobs: &SyncSender<QueuedJob>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut parser =
        RequestParser::new(crate::http::DEFAULT_MAX_HEAD, crate::http::DEFAULT_MAX_BODY);
    let mut buf = [0u8; 16 * 1024];
    loop {
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    shared.registry.counter("serve/requests").add(1);
                    if req.wants_ws_upgrade() {
                        // The connection leaves HTTP; the WS session owns it.
                        handle_ws(stream, &req, shared, jobs);
                        return;
                    }
                    let close = req.wants_close() || shared.draining();
                    let resp = route(&req, shared, jobs);
                    if resp.write_to(&mut stream, close).is_err() {
                        return;
                    }
                    if close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    shared.registry.counter("serve/http_errors").add(1);
                    let _ = write_http_error(&mut stream, &e);
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => parser.feed(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle keep-alive connection: close once draining.
                if shared.draining() && parser.buffered() == 0 {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_http_error(stream: &mut TcpStream, e: &HttpError) -> std::io::Result<()> {
    Response::error(e.status(), &e.to_string()).write_to(stream, true)
}

/// Routes one HTTP request to a response.
fn route(req: &Request, shared: &Shared, jobs: &SyncSender<QueuedJob>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(format!(
            "{{\"ok\":true,\"draining\":{}}}",
            shared.draining()
        )),
        ("GET", "/readyz") => {
            // Readiness is stricter than liveness: a draining or
            // saturated daemon is alive but should not receive traffic.
            if shared.draining() {
                Response::error(503, "draining").with_header("Retry-After", "1")
            } else if shared.saturated() {
                Response::error(503, "job queue saturated").with_header("Retry-After", "1")
            } else {
                Response::json("{\"ready\":true}")
            }
        }
        ("GET", "/metrics") => Response::new(200).with_body(
            "text/plain; version=0.0.4; charset=utf-8",
            expo::render(&shared.registry.snapshot()).into_bytes(),
        ),
        ("GET", "/v1/flightrecorder") => Response::json(shared.flight.to_json()),
        ("GET", "/v1/catalog") => Response::json(job::catalog_json()),
        ("GET", "/v1/stats") => Response::json(shared.registry.snapshot().to_json()),
        ("POST", "/shutdown") => {
            shared.draining.store(true, Ordering::SeqCst);
            Response::json("{\"draining\":true}")
        }
        ("POST", "/v1/jobs") => {
            if shared.draining() {
                return Response::error(503, "draining").with_header("Retry-After", "1");
            }
            let body = match std::str::from_utf8(&req.body) {
                Ok(b) => b,
                Err(_) => return Response::error(400, "body is not UTF-8"),
            };
            let parse_started = Instant::now();
            let parsed = match JobRequest::from_json(body) {
                Ok(p) => p,
                Err(e) => return Response::error(e.status(), e.message()),
            };
            let span = SpanContext::new();
            span.record_phase(
                "parse",
                parse_started
                    .elapsed()
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64,
            );
            let rid = span.request_id();
            let Ok(resp_rx) = submit(shared, jobs, parsed, span, None) else {
                return Response::error(503, "job queue full")
                    .with_header("Retry-After", "1")
                    .with_header("X-IWC-Request-Id", rid);
            };
            let resp = match resp_rx.recv() {
                Ok(Ok(body)) => Response::json(body),
                Ok(Err(e)) => Response::error(e.status(), e.message()),
                Err(_) => Response::error(500, "worker dropped the job"),
            };
            resp.with_header("X-IWC-Request-Id", rid)
        }
        ("GET", "/v1/ws") => {
            // Reaching route() means the upgrade headers were missing.
            Response::error(426, "this endpoint requires a WebSocket upgrade")
                .with_header("Upgrade", "websocket")
        }
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/flightrecorder" | "/v1/catalog"
            | "/v1/stats" | "/shutdown" | "/v1/jobs",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Serves one WebSocket session: upgrade, one job request per text
/// message, live events streamed back as text frames.
fn handle_ws(mut stream: TcpStream, req: &Request, shared: &Shared, jobs: &SyncSender<QueuedJob>) {
    let Some(key) = req.header("sec-websocket-key") else {
        let _ = Response::error(400, "missing Sec-WebSocket-Key").write_to(&mut stream, true);
        return;
    };
    if req.path != "/v1/ws" {
        let _ = Response::error(404, "no such endpoint").write_to(&mut stream, true);
        return;
    }
    if shared.draining() {
        let _ = Response::error(503, "draining")
            .with_header("Retry-After", "1")
            .write_to(&mut stream, true);
        return;
    }
    let accept = ws::accept_key(key);
    let upgrade = format!(
        "HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Accept: {accept}\r\n\r\n"
    );
    if stream.write_all(upgrade.as_bytes()).is_err() {
        return;
    }
    shared.registry.counter("serve/ws/connections").add(1);

    let mut buf = [0u8; 16 * 1024];
    let mut wire: Vec<u8> = Vec::new();
    let mut asm = ws::MessageAssembler::new();
    'session: loop {
        // Decode any complete frames already buffered.
        loop {
            match ws::decode_frame(&wire, true, ws::MAX_CLIENT_PAYLOAD) {
                Ok(Some((frame, used))) => {
                    wire.drain(..used);
                    match asm.push(frame) {
                        Ok(Some(ws::WsEvent::Text(text))) => {
                            if !ws_run_job(&mut stream, &text, shared, jobs) {
                                break 'session;
                            }
                        }
                        Ok(Some(ws::WsEvent::Ping(payload))) => {
                            if send_frame(&mut stream, &ws::Frame::pong(payload)).is_err() {
                                break 'session;
                            }
                        }
                        Ok(Some(ws::WsEvent::Close(_))) => {
                            let _ = send_frame(&mut stream, &ws::Frame::close(1000, "bye"));
                            break 'session;
                        }
                        Ok(Some(ws::WsEvent::Binary(_))) => {
                            let _ = send_frame(
                                &mut stream,
                                &ws::Frame::close(1003, "text messages only"),
                            );
                            break 'session;
                        }
                        Ok(Some(ws::WsEvent::Pong) | None) => {}
                        Err(e) => {
                            let code = match e {
                                ws::WsError::TooLarge { .. } => 1009,
                                _ => 1002,
                            };
                            let _ =
                                send_frame(&mut stream, &ws::Frame::close(code, &e.to_string()));
                            break 'session;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let code = match e {
                        ws::WsError::TooLarge { .. } => 1009,
                        _ => 1002,
                    };
                    let _ = send_frame(&mut stream, &ws::Frame::close(code, &e.to_string()));
                    break 'session;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => wire.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.draining() {
                    let _ = send_frame(&mut stream, &ws::Frame::close(1001, "server draining"));
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Runs one job for a WS session, streaming events as they arrive.
/// Returns `false` when the socket died and the session should end.
fn ws_run_job(
    stream: &mut TcpStream,
    text: &str,
    shared: &Shared,
    jobs: &SyncSender<QueuedJob>,
) -> bool {
    let parse_started = Instant::now();
    let parsed = match JobRequest::from_json(text) {
        Ok(p) => p,
        Err(e) => {
            return send_event(
                stream,
                &format!(
                    "{{\"event\":\"error\",\"status\":{},\"message\":\"{}\"}}",
                    e.status(),
                    iwc_telemetry::json::escape(e.message())
                ),
            )
            .is_ok()
        }
    };
    let span = SpanContext::new();
    span.record_phase(
        "parse",
        parse_started
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64,
    );
    let rid = span.request_id();
    let (ev_tx, ev_rx) = mpsc::channel::<String>();
    let Ok(resp_rx) = submit(shared, jobs, parsed, span, Some(ev_tx)) else {
        return send_event(
            stream,
            &with_request_id(
                "{\"event\":\"error\",\"status\":503,\"message\":\"job queue full\"}",
                &rid,
            ),
        )
        .is_ok();
    };
    // Forward live events until the worker reports the final result; the
    // event channel closes when the worker drops its sender.
    loop {
        match ev_rx.recv_timeout(POLL) {
            Ok(event) => {
                if send_event(stream, &event).is_err() {
                    // Client went away mid-stream; let the job finish (it
                    // is already running) and drop the rest.
                    let _ = resp_rx.recv();
                    return false;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    match resp_rx.recv() {
        Ok(Ok(body)) => send_event(
            stream,
            &format!("{{\"request_id\":\"{rid}\",\"event\":\"result\",\"data\":{body}}}"),
        )
        .is_ok(),
        // The error event was already streamed by the worker.
        Ok(Err(_)) => true,
        Err(_) => send_event(
            stream,
            "{\"event\":\"error\",\"status\":500,\"message\":\"worker dropped the job\"}",
        )
        .is_ok(),
    }
}

fn send_frame(stream: &mut TcpStream, frame: &ws::Frame) -> std::io::Result<()> {
    stream.write_all(&ws::encode_frame(frame, None))
}

fn send_event(stream: &mut TcpStream, event: &str) -> std::io::Result<()> {
    send_frame(stream, &ws::Frame::text(event))
}
