//! Job model: request parsing, execution, and response rendering.
//!
//! A job names either a catalog workload (simulated cycle-accurately),
//! carries an execution-mask trace payload (replayed analytically), or
//! references a trace by name in a server-side corpus pack (streamed out
//! of `IWC_CORPUS_DIR`, never shipped over the wire), plus the list of
//! compaction engines to sweep and optional [`GpuConfig`] overrides. One
//! job is one decode — the engine sweep shares the decoded plans through
//! the [`SessionCache`] — and responses embed each run's
//! [`TelemetrySnapshot`] JSON verbatim, so a served result is
//! byte-identical to a direct in-process run. Analytical jobs (trace and
//! pack) are additionally answered from the content-addressed results
//! cache when one is attached, with `serve/results_cache/{hits,misses}`
//! accounting.

use crate::cache::SessionCache;
use iwc_compaction::{EngineId, EngineRegistry};
use iwc_sim::{timeline, DecodedProgram, Gpu, GpuConfig, SchedMode};
use iwc_telemetry::json::{escape, parse, Json};
use iwc_telemetry::TelemetrySnapshot;
use iwc_trace::analyze::EngineReport;
use iwc_trace::{analyze_engines, analyze_source_engines, CorpusPack, Trace, TraceIoError};
use iwc_workloads::hash::{program_hash, trace_hash};
use iwc_workloads::{catalog, Built, Category};
use std::fmt::Write as _;

/// Version tag folded into results-cache keys for trace/pack job bodies:
/// bump whenever the rendered response shape changes.
const RESULTS_FINGERPRINT: &str = "serve/trace/v1";

/// A parsed job request.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Catalog workload name (exclusive with `trace` and `pack`).
    pub workload: Option<String>,
    /// Mask-trace payload: the `iwc-trace` binary format, base64-encoded
    /// (exclusive with `workload` and `pack`).
    pub trace: Option<String>,
    /// Server-side corpus-pack trace reference, `"name"` (the default
    /// `corpus.iwcc` pack) or `"pack-stem:name"`, resolved inside the
    /// `IWC_CORPUS_DIR` store (exclusive with `workload` and `trace`).
    pub pack: Option<String>,
    /// Engines to sweep (defaults to the canonical four).
    pub engines: Vec<EngineId>,
    /// Problem-size knob for catalog builds.
    pub scale: u32,
    /// Stream Perfetto trace-event JSON per engine (workload jobs only;
    /// enables the simulator issue log).
    pub trace_events: bool,
    /// Config overrides applied on top of [`GpuConfig::paper_default`].
    pub overrides: ConfigOverrides,
}

/// Optional [`GpuConfig`] overrides carried by a job.
#[derive(Debug, Clone, Default)]
pub struct ConfigOverrides {
    /// `with_issue_per_cycle`.
    pub issue_per_cycle: Option<u32>,
    /// `with_dc_bandwidth`.
    pub dc_bandwidth: Option<f64>,
    /// `with_perfect_l3`.
    pub perfect_l3: Option<bool>,
    /// `with_sched`: `"wheel"` or `"tick"`.
    pub sched: Option<SchedMode>,
}

impl ConfigOverrides {
    /// Applies the overrides to `cfg`.
    pub fn apply(&self, mut cfg: GpuConfig) -> GpuConfig {
        if let Some(n) = self.issue_per_cycle {
            cfg = cfg.with_issue_per_cycle(n);
        }
        if let Some(bw) = self.dc_bandwidth {
            cfg = cfg.with_dc_bandwidth(bw);
        }
        if let Some(p) = self.perfect_l3 {
            cfg = cfg.with_perfect_l3(p);
        }
        if let Some(s) = self.sched {
            cfg = cfg.with_sched(s);
        }
        cfg
    }
}

/// A job failure, mapped onto an HTTP status by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Malformed request body or field (→ 400).
    BadRequest(String),
    /// Workload or engine label not found (→ 404).
    NotFound(String),
    /// Simulation or functional-check failure (→ 500).
    Failed(String),
}

impl JobError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            Self::BadRequest(_) => 400,
            Self::NotFound(_) => 404,
            Self::Failed(_) => 500,
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        match self {
            Self::BadRequest(m) | Self::NotFound(m) | Self::Failed(m) => m,
        }
    }
}

impl JobRequest {
    /// Parses a job request from a JSON body.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::BadRequest`] for unparseable JSON or invalid
    /// field combinations and [`JobError::NotFound`] for unknown engine
    /// labels.
    pub fn from_json(body: &str) -> Result<Self, JobError> {
        let v = parse(body).map_err(|e| JobError::BadRequest(format!("invalid JSON: {e}")))?;
        let workload = v.get("workload").and_then(Json::as_str).map(String::from);
        let trace = v.get("trace").and_then(Json::as_str).map(String::from);
        let pack = v.get("pack").and_then(Json::as_str).map(String::from);
        match [&workload, &trace, &pack]
            .iter()
            .filter(|f| f.is_some())
            .count()
        {
            0 => {
                return Err(JobError::BadRequest(
                    "job needs a \"workload\" name, a \"trace\" payload, or a \"pack\" reference"
                        .into(),
                ))
            }
            1 => {}
            _ => {
                return Err(JobError::BadRequest(
                    "\"workload\", \"trace\", and \"pack\" are mutually exclusive".into(),
                ))
            }
        }
        if let Some(spec) = &pack {
            split_pack_spec(spec)?;
        }
        let engines = match v.get("engines").and_then(Json::as_arr) {
            None => EngineId::CANONICAL.to_vec(),
            Some(arr) => {
                if arr.is_empty() {
                    return Err(JobError::BadRequest("\"engines\" must be non-empty".into()));
                }
                arr.iter()
                    .map(|e| {
                        let label = e.as_str().ok_or_else(|| {
                            JobError::BadRequest("engine labels are strings".into())
                        })?;
                        EngineRegistry::global()
                            .find(label)
                            .ok_or_else(|| JobError::NotFound(format!("unknown engine {label:?}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let scale = match v.get("scale") {
            None => 1,
            Some(s) => match s.as_num() {
                Some(n) if n >= 1.0 && n <= u32::MAX as f64 && n.fract() == 0.0 => n as u32,
                _ => {
                    return Err(JobError::BadRequest(
                        "\"scale\" must be a positive integer".into(),
                    ))
                }
            },
        };
        let trace_events = matches!(v.get("trace_events"), Some(Json::Bool(true)));
        let overrides = parse_overrides(v.get("config"))?;
        Ok(Self {
            workload,
            trace,
            pack,
            engines,
            scale,
            trace_events,
            overrides,
        })
    }
}

/// Splits a pack reference into `(pack stem, trace name)`, defaulting the
/// stem to `"corpus"`. The stem names a file inside the corpus store, so
/// path separators and `..` are rejected — a job must not be able to walk
/// out of `IWC_CORPUS_DIR`.
fn split_pack_spec(spec: &str) -> Result<(&str, &str), JobError> {
    let (stem, name) = match spec.split_once(':') {
        Some((stem, name)) => (stem, name),
        None => ("corpus", spec),
    };
    if stem.is_empty() || name.is_empty() {
        return Err(JobError::BadRequest(
            "\"pack\" must be \"name\" or \"pack-stem:name\"".into(),
        ));
    }
    if stem.contains(['/', '\\']) || stem.contains("..") {
        return Err(JobError::BadRequest(format!(
            "pack stem {stem:?} must not contain path separators or \"..\""
        )));
    }
    Ok((stem, name))
}

fn parse_overrides(cfg: Option<&Json>) -> Result<ConfigOverrides, JobError> {
    let mut out = ConfigOverrides::default();
    let Some(cfg) = cfg else { return Ok(out) };
    if let Some(n) = cfg.get("issue_per_cycle") {
        match n.as_num() {
            Some(v) if (1.0..=16.0).contains(&v) && v.fract() == 0.0 => {
                out.issue_per_cycle = Some(v as u32);
            }
            _ => {
                return Err(JobError::BadRequest(
                    "\"issue_per_cycle\" must be an integer in 1..=16".into(),
                ))
            }
        }
    }
    if let Some(n) = cfg.get("dc_bandwidth") {
        match n.as_num() {
            Some(v) if v > 0.0 => out.dc_bandwidth = Some(v),
            _ => {
                return Err(JobError::BadRequest(
                    "\"dc_bandwidth\" must be a positive number".into(),
                ))
            }
        }
    }
    if let Some(b) = cfg.get("perfect_l3") {
        match b {
            Json::Bool(v) => out.perfect_l3 = Some(*v),
            _ => {
                return Err(JobError::BadRequest(
                    "\"perfect_l3\" must be a boolean".into(),
                ))
            }
        }
    }
    if let Some(s) = cfg.get("sched") {
        out.sched = Some(match s.as_str() {
            Some("wheel") => SchedMode::Wheel,
            Some("tick") => SchedMode::Tick,
            _ => {
                return Err(JobError::BadRequest(
                    "\"sched\" must be \"wheel\" or \"tick\"".into(),
                ))
            }
        });
    }
    Ok(out)
}

/// A sink for live job events (pre-rendered JSON lines). The WebSocket
/// connection forwards these to the client as text messages.
pub type EventSink<'a> = Option<&'a dyn Fn(String)>;

fn emit(sink: EventSink<'_>, event: String) {
    if let Some(f) = sink {
        f(event);
    }
}

/// Runs a parsed job to a complete response body.
///
/// Workload jobs sweep each engine cold (fresh memory image) over plans
/// decoded once via `cache`; trace jobs replay the mask stream
/// analytically, and pack jobs stream a named trace out of the corpus
/// store instead of shipping it over the wire. Analytical jobs are
/// answered from the content-addressed results cache when `cache` has one
/// attached. Per-engine completion events stream into `sink` as they
/// happen.
///
/// # Errors
///
/// Returns [`JobError`] for unknown names, simulator failures, or failed
/// functional checks.
pub fn run_job(
    req: &JobRequest,
    cache: &SessionCache,
    sink: EventSink<'_>,
) -> Result<String, JobError> {
    match (&req.workload, &req.trace, &req.pack) {
        (Some(name), None, None) => run_workload_job(name, req, cache, sink),
        (None, Some(text), None) => run_trace_job(text, req, cache, sink),
        (None, None, Some(spec)) => run_pack_job(spec, req, cache, sink),
        _ => Err(JobError::BadRequest(
            "job needs exactly one of \"workload\", \"trace\", or \"pack\"".into(),
        )),
    }
}

fn run_workload_job(
    name: &str,
    req: &JobRequest,
    cache: &SessionCache,
    sink: EventSink<'_>,
) -> Result<String, JobError> {
    let entry = catalog()
        .into_iter()
        .find(|e| e.name == name)
        .ok_or_else(|| JobError::NotFound(format!("unknown workload {name:?}")))?;
    let built: Built = (entry.build)(req.scale);
    let hash = program_hash(&built.launch.program);
    emit(
        sink,
        format!(
            "{{\"event\":\"accepted\",\"job\":\"{}\",\"kind\":\"workload\",\"program_hash\":\"{hash:#018x}\",\"engines\":{}}}",
            escape(name),
            req.engines.len()
        ),
    );

    let mut results = String::new();
    for (i, &engine) in req.engines.iter().enumerate() {
        let base = req.overrides.apply(GpuConfig::paper_default());
        let cfg = base
            .with_compaction(engine)
            .with_issue_log(req.trace_events);
        let decoded = cache.get_or_decode(hash, engine, || {
            DecodedProgram::decode(&built.launch.program)
        });
        let mut img = built.img.clone();
        let r = Gpu::new(cfg)
            .run_decoded(&built.launch, &mut img, &decoded)
            .map_err(|e| JobError::Failed(format!("{name}/{}: {e}", engine.label())))?;
        if let Some(check) = &built.check {
            check(&img).map_err(|e| JobError::Failed(format!("{name} check failed: {e}")))?;
        }
        let engine_json = render_engine_result(engine, r.cycles, r.simd_efficiency(), &r.telemetry);
        emit(
            sink,
            format!(
                "{{\"event\":\"engine_done\",\"job\":\"{}\",\"result\":{engine_json}}}",
                escape(name)
            ),
        );
        if req.trace_events {
            let chrome = timeline::chrome_trace(&r.eu.issue_log, &r.eu.stall_log);
            emit(
                sink,
                format!(
                    "{{\"event\":\"trace\",\"job\":\"{}\",\"engine\":\"{}\",\"data\":{}}}",
                    escape(name),
                    escape(&engine.label()),
                    chrome.to_json()
                ),
            );
        }
        if i > 0 {
            results.push(',');
        }
        results.push_str(&engine_json);
    }
    emit(
        sink,
        format!("{{\"event\":\"done\",\"job\":\"{}\"}}", escape(name)),
    );
    Ok(format!(
        "{{\"job\":\"{}\",\"kind\":\"workload\",\"scale\":{},\"program_hash\":\"{hash:#018x}\",\"results\":[{results}]}}",
        escape(name),
        req.scale
    ))
}

/// Renders one engine's result object: label, cycles, SIMD efficiency,
/// and the run's telemetry snapshot JSON embedded verbatim (so the served
/// bytes match a direct `TelemetrySnapshot::to_json` call exactly).
fn render_engine_result(
    engine: EngineId,
    cycles: u64,
    simd_efficiency: f64,
    telemetry: &TelemetrySnapshot,
) -> String {
    format!(
        "{{\"engine\":\"{}\",\"cycles\":{cycles},\"simd_efficiency\":{simd_efficiency:.6},\"telemetry\":{}}}",
        escape(&engine.label()),
        telemetry.to_json()
    )
}

/// Results-cache key for an analytical trace job. The trace name is
/// folded into the fingerprint (trace hashes deliberately exclude names,
/// but the response body embeds one), and engine labels are keyed in
/// request order because the results array follows it.
fn results_key(name: &str, hash: u64, req: &JobRequest) -> u64 {
    let labels: Vec<String> = req.engines.iter().map(|e| e.label()).collect();
    iwc_trace::ResultsCache::key(hash, &labels, &format!("{RESULTS_FINGERPRINT}/{name}"))
}

fn run_trace_job(
    text: &str,
    req: &JobRequest,
    cache: &SessionCache,
    sink: EventSink<'_>,
) -> Result<String, JobError> {
    let bytes = crate::ws::base64_decode(text)
        .ok_or_else(|| JobError::BadRequest("\"trace\" is not valid base64".into()))?;
    let trace = Trace::read_from(bytes.as_slice())
        .map_err(|e| JobError::BadRequest(format!("invalid trace payload: {e:?}")))?;
    if trace.is_empty() {
        return Err(JobError::BadRequest("trace has no records".into()));
    }
    let hash = trace_hash(&trace);
    emit(
        sink,
        format!(
            "{{\"event\":\"accepted\",\"job\":\"{}\",\"kind\":\"trace\",\"trace_hash\":\"{hash:#018x}\",\"engines\":{}}}",
            escape(&trace.name),
            req.engines.len()
        ),
    );
    answer_trace_analysis(
        &trace.name,
        hash,
        trace.len() as u64,
        req,
        cache,
        sink,
        || Ok(analyze_engines(&trace, &req.engines)),
    )
}

fn run_pack_job(
    spec: &str,
    req: &JobRequest,
    cache: &SessionCache,
    sink: EventSink<'_>,
) -> Result<String, JobError> {
    let (stem, name) = split_pack_spec(spec)?;
    let path = iwc_trace::corpus_dir().join(format!("{stem}.iwcc"));
    let mut pack = CorpusPack::open_path(&path).map_err(|e| match e {
        TraceIoError::Io(ref io) if io.kind() == std::io::ErrorKind::NotFound => {
            JobError::NotFound(format!("no pack {stem:?} in the corpus store"))
        }
        other => JobError::Failed(format!("cannot open pack {stem:?}: {other}")),
    })?;
    let index = pack
        .find(name)
        .ok_or_else(|| JobError::NotFound(format!("no trace {name:?} in pack {stem:?}")))?;
    let entry = pack.entries()[index].clone();
    if entry.records == 0 {
        return Err(JobError::BadRequest(format!(
            "trace {name:?} in pack {stem:?} has no records"
        )));
    }
    let hash = entry.content_hash;
    emit(
        sink,
        format!(
            "{{\"event\":\"accepted\",\"job\":\"{}\",\"kind\":\"pack\",\"trace_hash\":\"{hash:#018x}\",\"engines\":{}}}",
            escape(&entry.name),
            req.engines.len()
        ),
    );
    answer_trace_analysis(&entry.name, hash, entry.records, req, cache, sink, || {
        let mut src = pack
            .stream(index)
            .map_err(|e| JobError::Failed(format!("pack {stem:?}: {e}")))?;
        analyze_source_engines(&mut src, &req.engines)
            .map_err(|e| JobError::Failed(format!("pack {stem:?}/{name}: {e}")))
    })
}

/// Renders an analytical trace job's response body, answering from the
/// results cache when possible. Pack jobs and base64 trace jobs share
/// this path, so a job for the same records under either transport
/// renders (and caches) byte-identical bodies. On a cache hit the
/// per-engine events are skipped; `done` carries `"cached":true`.
fn answer_trace_analysis(
    name: &str,
    hash: u64,
    records: u64,
    req: &JobRequest,
    cache: &SessionCache,
    sink: EventSink<'_>,
    analyze: impl FnOnce() -> Result<EngineReport, JobError>,
) -> Result<String, JobError> {
    let key = results_key(name, hash, req);
    if let Some(body) = cache.results_lookup(key) {
        emit(
            sink,
            format!(
                "{{\"event\":\"done\",\"job\":\"{}\",\"cached\":true}}",
                escape(name)
            ),
        );
        return Ok(body);
    }
    let report = analyze()?;
    let mut snap = TelemetrySnapshot::new();
    snap.set_counter("trace/records", records);
    snap.set_counter("trace/instructions", report.tally.instructions());
    snap.set_gauge("trace/simd_efficiency", report.tally.simd_efficiency());
    let mut results = String::new();
    for (i, &engine) in req.engines.iter().enumerate() {
        let cycles = report.tally.cycles_of(engine);
        snap.set_counter(&format!("trace/cycles/{}", engine.label()), cycles);
        if i > 0 {
            results.push(',');
        }
        let _ = write!(
            results,
            "{{\"engine\":\"{}\",\"cycles\":{cycles}}}",
            escape(&engine.label())
        );
        emit(
            sink,
            format!(
                "{{\"event\":\"engine_done\",\"job\":\"{}\",\"result\":{{\"engine\":\"{}\",\"cycles\":{cycles}}}}}",
                escape(name),
                escape(&engine.label())
            ),
        );
    }
    emit(
        sink,
        format!("{{\"event\":\"done\",\"job\":\"{}\"}}", escape(name)),
    );
    let body = format!(
        "{{\"job\":\"{}\",\"kind\":\"trace\",\"trace_hash\":\"{hash:#018x}\",\"records\":{records},\"simd_efficiency\":{:.6},\"results\":[{results}],\"telemetry\":{}}}",
        escape(name),
        report.tally.simd_efficiency(),
        snap.to_json()
    );
    cache.results_store(key, &body);
    Ok(body)
}

/// The catalog listing body for `GET /v1/catalog`.
pub fn catalog_json() -> String {
    let mut out = String::from("{\"workloads\":[");
    for (i, e) in catalog().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cat = match e.category {
            Category::Coherent => "coherent",
            Category::Divergent => "divergent",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"category\":\"{cat}\"}}",
            escape(e.name)
        );
    }
    out.push_str("],\"engines\":[");
    for (i, id) in EngineId::CANONICAL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(&id.label()));
    }
    out.push_str("]}");
    out
}

/// Extracts the balanced-brace JSON object that starts right after
/// `needle` in `body` (e.g. `"telemetry":`), byte-exact. Used by tests and
/// the CI smoke check to compare served telemetry bytes with a direct
/// in-process render without a parse/re-print round trip.
pub fn object_after<'a>(body: &'a str, needle: &str) -> Option<&'a str> {
    let start = body.find(needle)? + needle.len();
    let bytes = body.as_bytes();
    if *bytes.get(start)? != b'{' {
        return None;
    }
    let mut depth = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, &b) in bytes[start..].iter().enumerate() {
        if esc {
            esc = false;
            continue;
        }
        match b {
            b'\\' if in_str => esc = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[start..start + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_telemetry::Registry;

    fn cache() -> SessionCache {
        SessionCache::new(&Registry::new())
    }

    #[test]
    fn parses_minimal_workload_request() {
        let req = JobRequest::from_json("{\"workload\":\"VA\"}").expect("parses");
        assert_eq!(req.workload.as_deref(), Some("VA"));
        assert_eq!(req.engines, EngineId::CANONICAL.to_vec());
        assert_eq!(req.scale, 1);
        assert!(!req.trace_events);
    }

    #[test]
    fn parses_engines_scale_and_overrides() {
        let req = JobRequest::from_json(
            "{\"workload\":\"BFS\",\"engines\":[\"scc\",\"base\"],\"scale\":2,\
             \"config\":{\"issue_per_cycle\":2,\"perfect_l3\":true,\"sched\":\"tick\"}}",
        )
        .expect("parses");
        assert_eq!(req.engines.len(), 2);
        assert_eq!(req.scale, 2);
        assert_eq!(req.overrides.issue_per_cycle, Some(2));
        assert_eq!(req.overrides.perfect_l3, Some(true));
        assert!(matches!(req.overrides.sched, Some(SchedMode::Tick)));
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(matches!(
            JobRequest::from_json("{}"),
            Err(JobError::BadRequest(_))
        ));
        assert!(matches!(
            JobRequest::from_json("{\"workload\":\"VA\",\"trace\":\"x\"}"),
            Err(JobError::BadRequest(_))
        ));
        assert!(matches!(
            JobRequest::from_json("{\"workload\":\"VA\",\"engines\":[]}"),
            Err(JobError::BadRequest(_))
        ));
        assert!(matches!(
            JobRequest::from_json("{\"workload\":\"VA\",\"engines\":[\"nope\"]}"),
            Err(JobError::NotFound(_))
        ));
        assert!(matches!(
            JobRequest::from_json("{\"workload\":\"VA\",\"scale\":0}"),
            Err(JobError::BadRequest(_))
        ));
        assert!(matches!(
            JobRequest::from_json("not json"),
            Err(JobError::BadRequest(_))
        ));
    }

    #[test]
    fn workload_job_matches_direct_run_bytes() {
        let req =
            JobRequest::from_json("{\"workload\":\"VA\",\"engines\":[\"scc\"]}").expect("parses");
        let body = run_job(&req, &cache(), None).expect("runs");

        let built = (catalog()
            .into_iter()
            .find(|e| e.name == "VA")
            .expect("VA exists")
            .build)(1);
        let direct = built
            .run_checked(&GpuConfig::paper_default().with_compaction(EngineId::SCC))
            .expect("direct run");

        assert!(body.contains(&format!("\"cycles\":{}", direct.cycles)));
        let served = object_after(&body, "\"telemetry\":").expect("has telemetry");
        assert_eq!(served, direct.telemetry.to_json(), "telemetry bytes differ");
    }

    #[test]
    fn unknown_workload_is_not_found() {
        let req = JobRequest::from_json("{\"workload\":\"no-such\"}").expect("parses");
        assert!(matches!(
            run_job(&req, &cache(), None),
            Err(JobError::NotFound(_))
        ));
    }

    #[test]
    fn trace_job_replays_analytically() {
        use iwc_isa::mask::ExecMask;
        use iwc_isa::DataType;
        let mut t = Trace::new("synthetic");
        t.push(ExecMask::new(0xF0F0, 16), DataType::F);
        t.push(ExecMask::all(16), DataType::F);
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("serializes");
        let payload = crate::ws::base64(&buf);

        let body = format!("{{\"trace\":\"{payload}\",\"engines\":[\"ivb\",\"bcc\"]}}");
        let req = JobRequest::from_json(&body).expect("parses");
        let resp = run_job(&req, &cache(), None).expect("runs");
        // ivb = 4+4 = 8 quads, bcc = 2+4 = 6 (the analyze.rs doctest case).
        assert!(resp.contains("\"engine\":\"ivb\",\"cycles\":8"), "{resp}");
        assert!(resp.contains("\"engine\":\"bcc\",\"cycles\":6"), "{resp}");
        assert!(resp.contains("\"kind\":\"trace\""));
    }

    #[test]
    fn events_stream_in_order() {
        use std::sync::Mutex;
        let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let sink = |e: String| events.lock().expect("lock").push(e);
        let req = JobRequest::from_json("{\"workload\":\"VA\",\"engines\":[\"base\",\"scc\"]}")
            .expect("parses");
        run_job(&req, &cache(), Some(&sink)).expect("runs");
        let events = events.into_inner().expect("lock");
        assert_eq!(events.len(), 4, "accepted + 2 engine_done + done");
        assert!(events[0].contains("\"event\":\"accepted\""));
        assert!(events[1].contains("\"event\":\"engine_done\""));
        assert!(events[3].contains("\"event\":\"done\""));
    }

    #[test]
    fn pack_specs_are_validated_at_parse_time() {
        for bad in [
            "{\"pack\":\"../evil:t\"}",
            "{\"pack\":\"a/b:t\"}",
            "{\"pack\":\"a\\\\b:t\"}",
            "{\"pack\":\"\"}",
            "{\"pack\":\"stem:\"}",
            "{\"pack\":\":name\"}",
            "{\"pack\":\"x\",\"workload\":\"VA\"}",
            "{\"pack\":\"x\",\"trace\":\"AAAA\"}",
        ] {
            assert!(
                matches!(JobRequest::from_json(bad), Err(JobError::BadRequest(_))),
                "{bad} must be rejected"
            );
        }
        let req = JobRequest::from_json("{\"pack\":\"mypack:LuxMark-sky\"}").expect("parses");
        assert_eq!(req.pack.as_deref(), Some("mypack:LuxMark-sky"));
        assert_eq!(
            split_pack_spec("mypack:LuxMark-sky").expect("splits"),
            ("mypack", "LuxMark-sky")
        );
        assert_eq!(split_pack_spec("sole").expect("splits"), ("corpus", "sole"));
    }

    #[test]
    fn pack_jobs_resolve_stream_and_share_the_results_cache() {
        use iwc_telemetry::Registry;
        let dir = std::env::temp_dir().join(format!("iwc-serve-packjob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        std::env::set_var("IWC_CORPUS_DIR", &dir);

        let traces: Vec<Trace> = iwc_trace::corpus()
            .iter()
            .take(2)
            .map(|p| p.generate(400))
            .collect();
        iwc_trace::pack::write_pack_file(&dir.join("corpus.iwcc"), &traces).expect("pack");

        let reg = Registry::new();
        let cache =
            SessionCache::new(&reg).with_results(iwc_trace::ResultsCache::new(dir.join("cache")));

        let name = &traces[0].name;
        let req = JobRequest::from_json(&format!(
            "{{\"pack\":\"{name}\",\"engines\":[\"ivb\",\"scc\"]}}"
        ))
        .expect("parses");
        let first = run_job(&req, &cache, None).expect("pack job runs");
        assert!(first.contains("\"kind\":\"trace\""), "{first}");
        assert!(first.contains("\"records\":400"), "{first}");

        // The identical trace shipped as a base64 payload renders the same
        // body — answered straight from the pack job's cache entry.
        let mut buf = Vec::new();
        traces[0].write_to(&mut buf).expect("serializes");
        let b64 = crate::ws::base64(&buf);
        let req2 = JobRequest::from_json(&format!(
            "{{\"trace\":\"{b64}\",\"engines\":[\"ivb\",\"scc\"]}}"
        ))
        .expect("parses");
        let second = run_job(&req2, &cache, None).expect("trace job runs");
        assert_eq!(first, second, "pack and trace transports must agree");

        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve/results_cache/misses"), Some(1));
        assert_eq!(snap.counter("serve/results_cache/hits"), Some(1));

        // A cache hit skips engine events: accepted then done(cached).
        use std::sync::Mutex;
        let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let sink = |e: String| events.lock().expect("lock").push(e);
        run_job(&req, &cache, Some(&sink)).expect("cached pack job");
        let events = events.into_inner().expect("lock");
        assert_eq!(events.len(), 2, "{events:#?}");
        assert!(events[1].contains("\"cached\":true"), "{events:#?}");

        // Unknown names and packs are 404s, not failures.
        let req = JobRequest::from_json("{\"pack\":\"no-such-trace\"}").expect("parses");
        assert!(matches!(
            run_job(&req, &cache, None),
            Err(JobError::NotFound(_))
        ));
        let req = JobRequest::from_json("{\"pack\":\"nopack:t\"}").expect("parses");
        assert!(matches!(
            run_job(&req, &cache, None),
            Err(JobError::NotFound(_))
        ));

        std::env::remove_var("IWC_CORPUS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_json_lists_workloads_and_engines() {
        let body = catalog_json();
        assert!(body.contains("\"name\":\"VA\""));
        assert!(body.contains("\"category\":\"divergent\""));
        assert!(body.contains("\"engines\":["));
        parse(&body).expect("valid JSON");
    }

    #[test]
    fn object_after_extracts_balanced_objects() {
        let body = "{\"a\":{\"b\":\"{not a { brace}\",\"c\":{\"d\":1}},\"e\":2}";
        assert_eq!(
            object_after(body, "\"a\":"),
            Some("{\"b\":\"{not a { brace}\",\"c\":{\"d\":1}}")
        );
        assert_eq!(object_after(body, "\"c\":"), Some("{\"d\":1}"));
        assert_eq!(object_after(body, "\"e\":"), None);
    }
}
