//! Property-based tests of the ISA layer: mask algebra, operand geometry,
//! builder/program structural guarantees, and evaluator laws.

use iwc_isa::builder::KernelBuilder;
use iwc_isa::eval::{eval_alu, eval_cond};
use iwc_isa::insn::{CondOp, Opcode};
use iwc_isa::mask::ExecMask;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::types::{DataType, Scalar};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = u32> {
    prop_oneof![Just(4u32), Just(8), Just(16), Just(32)]
}

fn arb_mask() -> impl Strategy<Value = ExecMask> {
    (any::<u32>(), arb_width()).prop_map(|(b, w)| ExecMask::new(b, w))
}

proptest! {
    /// Boolean-algebra laws on masks.
    #[test]
    fn mask_de_morgan(bits_a in any::<u32>(), bits_b in any::<u32>(), w in arb_width()) {
        let a = ExecMask::new(bits_a, w);
        let b = ExecMask::new(bits_b, w);
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
        prop_assert_eq!(a.and_not(b), a.and(b.not()));
    }

    /// Active-channel count is consistent with iteration and quad analysis.
    #[test]
    fn mask_counting_consistent(m in arb_mask()) {
        prop_assert_eq!(m.iter_active().count() as u32, m.active_channels());
        let per_quad: u32 = (0..m.quad_count())
            .map(|q| m.quad_bits(q).count_ones())
            .sum();
        prop_assert_eq!(per_quad, m.active_channels());
        prop_assert!(m.active_quads() <= m.quad_count());
        prop_assert!(m.active_quads() * 4 >= m.active_channels());
    }

    /// Half-idle detection agrees with the bit definition.
    #[test]
    fn half_idle_definition(m in arb_mask()) {
        let half = m.width() / 2;
        let lower = m.bits() & ((1u64 << half) as u32).wrapping_sub(1);
        let upper = m.bits() >> half;
        prop_assert_eq!(m.lower_half_idle(), lower == 0);
        prop_assert_eq!(m.upper_half_idle(), upper == 0);
    }

    /// GRF byte ranges: span is consistent with the range, and two vector
    /// operands whose register distance is at least the span never overlap.
    #[test]
    fn operand_spans(reg in 0u8..100, w in arb_width(), wide in any::<bool>()) {
        let dt = if wide { DataType::Df } else { DataType::F };
        let op = Operand::reg(reg, dt);
        let (lo, hi) = op.grf_byte_range(w).expect("register operand");
        prop_assert_eq!(u32::from(reg) * 32, lo);
        prop_assert_eq!(hi - lo, w * dt.size_bytes());
        let span = op.grf_span(w);
        let next = Operand::reg(reg + span as u8, dt);
        let (nlo, _) = next.grf_byte_range(w).expect("register operand");
        prop_assert!(nlo >= hi, "adjacent allocation overlaps");
    }

    /// Builder-produced programs always pass validation, end in eot, and
    /// have in-range jump targets.
    #[test]
    fn builder_programs_validate(
        depth in 1usize..5,
        body_ops in 1usize..4,
        with_else in any::<bool>(),
    ) {
        let mut b = KernelBuilder::new("prop", 16);
        for _ in 0..depth {
            b.cmp(CondOp::Lt, FlagReg::F0, Operand::rud(1), Operand::imm_ud(8));
            b.if_(Predicate::normal(FlagReg::F0));
            for _ in 0..body_ops {
                b.add(Operand::rf(6), Operand::rf(6), Operand::imm_f(1.0));
            }
        }
        for i in 0..depth {
            if with_else && i == 0 {
                b.else_();
                b.mov(Operand::rf(6), Operand::imm_f(0.0));
            }
            b.end_if();
        }
        let p = b.finish().expect("valid");
        prop_assert_eq!(p.insns().last().map(|i| i.op), Some(Opcode::Eot));
        for insn in p.insns() {
            for t in [insn.jip, insn.uip].into_iter().flatten() {
                prop_assert!(t < p.len());
            }
        }
    }

    /// Float add/mul are commutative in the evaluator for finite inputs.
    #[test]
    fn eval_float_commutative(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        for op in [Opcode::Add, Opcode::Mul, Opcode::Min, Opcode::Max] {
            let x = eval_alu(op, DataType::F, &[Scalar::F(a), Scalar::F(b)]);
            let y = eval_alu(op, DataType::F, &[Scalar::F(b), Scalar::F(a)]);
            prop_assert_eq!(x, y, "{}", op);
        }
    }

    /// Integer ops wrap rather than panic for any input.
    #[test]
    fn eval_int_total(a in any::<i64>(), b in any::<i64>()) {
        for op in [Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Idiv, Opcode::Irem,
                   Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Shl, Opcode::Shr] {
            let _ = eval_alu(op, DataType::D, &[Scalar::I(a), Scalar::I(b)]);
            let _ = eval_alu(op, DataType::Ud, &[Scalar::U(a as u64), Scalar::U(b as u64)]);
        }
    }

    /// cmp conditions are coherent: exactly one of lt/eq/gt holds for
    /// distinct finite floats, and le == lt|eq.
    #[test]
    fn eval_cond_trichotomy(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let dt = DataType::F;
        let (x, y) = (Scalar::F(a), Scalar::F(b));
        let lt = eval_cond(CondOp::Lt, dt, x, y);
        let eq = eval_cond(CondOp::Eq, dt, x, y);
        let gt = eval_cond(CondOp::Gt, dt, x, y);
        prop_assert_eq!(u32::from(lt) + u32::from(eq) + u32::from(gt), 1);
        prop_assert_eq!(eval_cond(CondOp::Le, dt, x, y), lt || eq);
        prop_assert_eq!(eval_cond(CondOp::Ge, dt, x, y), gt || eq);
        prop_assert_eq!(eval_cond(CondOp::Ne, dt, x, y), !eq);
    }
}
