//! SIMD execution masks.
//!
//! An [`ExecMask`] is the per-channel enable vector of one SIMD instruction:
//! bit `i` set means channel `i` executes. Masks are at most 32 channels wide
//! (the widest SIMD width of the modeled ISA) and always carry their width so
//! that population counts, quad analysis, and efficiency metrics are
//! well-defined.
//!
//! Channels are grouped into *quads* — aligned groups of [`QUAD`] (4)
//! contiguous channels — because the modeled hardware executes one quad per
//! cycle through its 4-wide ALU. Quad-granularity queries on the mask are what
//! the BCC/SCC control logic of the paper consumes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of channels in one quad, equal to the hardware ALU width.
pub const QUAD: u32 = 4;

/// Maximum SIMD width supported by the ISA.
pub const MAX_WIDTH: u32 = 32;

/// Per-channel execution mask of a SIMD instruction.
///
/// # Examples
///
/// ```
/// use iwc_isa::mask::ExecMask;
///
/// let m = ExecMask::new(0xF0F0, 16);
/// assert_eq!(m.active_channels(), 8);
/// assert_eq!(m.active_quads(), 2);
/// assert!(!m.quad_active(0));
/// assert!(m.quad_active(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecMask {
    bits: u32,
    width: u32,
}

impl ExecMask {
    /// Creates a mask over `width` channels from the low `width` bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0, exceeds [`MAX_WIDTH`], or is not a multiple of 1
    /// in `{1, 2, 4, 8, 16, 32}` (the legal SIMD widths).
    pub fn new(bits: u32, width: u32) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8 | 16 | 32),
            "illegal SIMD width {width}"
        );
        let bits = if width == 32 {
            bits
        } else {
            bits & ((1u32 << width) - 1)
        };
        Self { bits, width }
    }

    /// Mask with every channel enabled.
    pub fn all(width: u32) -> Self {
        Self::new(u32::MAX, width)
    }

    /// Mask with every channel disabled.
    pub fn none(width: u32) -> Self {
        Self::new(0, width)
    }

    /// Raw bit representation (bit `i` = channel `i`).
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of channels the instruction was issued over.
    pub fn width(self) -> u32 {
        self.width
    }

    /// Number of enabled channels.
    pub fn active_channels(self) -> u32 {
        self.bits.count_ones()
    }

    /// True when no channel is enabled.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// True when every channel is enabled.
    pub fn is_full(self) -> bool {
        self.bits == Self::all(self.width).bits
    }

    /// True if channel `ch` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `ch >= width`.
    pub fn channel(self, ch: u32) -> bool {
        assert!(ch < self.width, "channel {ch} out of range");
        self.bits >> ch & 1 == 1
    }

    /// Returns a copy with channel `ch` set to `enabled`.
    pub fn with_channel(self, ch: u32, enabled: bool) -> Self {
        assert!(ch < self.width, "channel {ch} out of range");
        let bits = if enabled {
            self.bits | 1 << ch
        } else {
            self.bits & !(1 << ch)
        };
        Self::new(bits, self.width)
    }

    /// Number of quads covered by the instruction width (rounded up; a SIMD1
    /// or SIMD2 instruction still occupies one quad slot in the pipe).
    pub fn quad_count(self) -> u32 {
        self.width.div_ceil(QUAD)
    }

    /// The 4-bit sub-mask of quad `q` (channels `4q..4q+3`).
    ///
    /// # Panics
    ///
    /// Panics if `q >= quad_count()`.
    pub fn quad_bits(self, q: u32) -> u8 {
        assert!(q < self.quad_count(), "quad {q} out of range");
        (self.bits >> (q * QUAD) & 0xF) as u8
    }

    /// True if quad `q` has at least one enabled channel.
    pub fn quad_active(self, q: u32) -> bool {
        self.quad_bits(q) != 0
    }

    /// Number of quads with at least one enabled channel.
    ///
    /// This is exactly the execution-cycle count under basic cycle compression
    /// (BCC) before the 1-cycle minimum is applied.
    pub fn active_quads(self) -> u32 {
        self.active_groups(QUAD)
    }

    /// Number of aligned `group`-channel groups with at least one enabled
    /// channel, where `group` is a power of two (the
    /// datapath-element-granularity generalization of
    /// [`active_quads`](Self::active_quads)). Bits past `width` are zero by
    /// construction, so partial trailing groups count correctly. Branch-free:
    /// OR-folds each group onto its lowest bit, then popcounts.
    pub fn active_groups(self, group: u32) -> u32 {
        debug_assert!(
            group.is_power_of_two() && group <= MAX_WIDTH,
            "illegal group size {group}"
        );
        let mut b = self.bits;
        let mut step = 1;
        while step < group {
            b |= b >> step;
            step <<= 1;
        }
        let group_lsb = match group {
            1 => u32::MAX,
            2 => 0x5555_5555,
            4 => 0x1111_1111,
            8 => 0x0101_0101,
            16 => 0x0001_0001,
            _ => 1,
        };
        (b & group_lsb).count_ones()
    }

    /// Iterator over the indices of enabled channels, ascending.
    pub fn iter_active(self) -> impl Iterator<Item = u32> {
        (0..self.width).filter(move |&c| self.bits >> c & 1 == 1)
    }

    /// Channel-wise AND with another mask of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and(self, other: Self) -> Self {
        assert_eq!(self.width, other.width, "mask width mismatch");
        Self::new(self.bits & other.bits, self.width)
    }

    /// Channel-wise AND-NOT (`self & !other`).
    pub fn and_not(self, other: Self) -> Self {
        assert_eq!(self.width, other.width, "mask width mismatch");
        Self::new(self.bits & !other.bits, self.width)
    }

    /// Channel-wise OR with another mask of the same width.
    pub fn or(self, other: Self) -> Self {
        assert_eq!(self.width, other.width, "mask width mismatch");
        Self::new(self.bits | other.bits, self.width)
    }

    /// Complement within the mask width.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Self::new(!self.bits, self.width)
    }

    /// SIMD efficiency of this single instruction: enabled / width.
    pub fn efficiency(self) -> f64 {
        f64::from(self.active_channels()) / f64::from(self.width)
    }

    /// True when the lower half of the channels are all disabled.
    pub fn lower_half_idle(self) -> bool {
        self.width >= 2 && self.bits & ((1u32 << (self.width / 2)) - 1) == 0
    }

    /// True when the upper half of the channels are all disabled.
    pub fn upper_half_idle(self) -> bool {
        self.width >= 2 && self.bits >> (self.width / 2) == 0
    }
}

impl fmt::Debug for ExecMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExecMask({:#06x}/{})", self.bits, self.width)
    }
}

impl fmt::Display for ExecMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (self.width.div_ceil(4)) as usize;
        write!(f, "{:0digits$x}/{}", self.bits, self.width)
    }
}

impl fmt::Binary for ExecMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.width as usize;
        write!(f, "{:0w$b}", self.bits)
    }
}

impl fmt::LowerHex for ExecMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_truncates_to_width() {
        let m = ExecMask::new(u32::MAX, 8);
        assert_eq!(m.bits(), 0xFF);
        assert_eq!(m.active_channels(), 8);
        assert!(m.is_full());
    }

    #[test]
    #[should_panic(expected = "illegal SIMD width")]
    fn new_rejects_bad_width() {
        let _ = ExecMask::new(0, 3);
    }

    #[test]
    fn quad_analysis_f0f0() {
        let m = ExecMask::new(0xF0F0, 16);
        assert_eq!(m.quad_count(), 4);
        assert_eq!(m.active_quads(), 2);
        assert_eq!(m.quad_bits(0), 0x0);
        assert_eq!(m.quad_bits(1), 0xF);
        assert!(!m.quad_active(2));
        assert!(m.quad_active(3));
    }

    #[test]
    fn partial_quads_count() {
        // 0xAAAA: every quad has 2 active channels.
        let m = ExecMask::new(0xAAAA, 16);
        assert_eq!(m.active_quads(), 4);
        assert_eq!(m.active_channels(), 8);
    }

    #[test]
    fn half_idle_detection() {
        assert!(ExecMask::new(0xFF00, 16).lower_half_idle());
        assert!(!ExecMask::new(0xFF00, 16).upper_half_idle());
        assert!(ExecMask::new(0x00FF, 16).upper_half_idle());
        assert!(ExecMask::new(0x00F0, 8).lower_half_idle());
        let both = ExecMask::none(16);
        assert!(both.lower_half_idle() && both.upper_half_idle());
    }

    #[test]
    fn channel_get_set() {
        let m = ExecMask::none(16)
            .with_channel(3, true)
            .with_channel(12, true);
        assert!(m.channel(3));
        assert!(m.channel(12));
        assert!(!m.channel(4));
        assert_eq!(m.with_channel(3, false).active_channels(), 1);
    }

    #[test]
    fn boolean_algebra() {
        let a = ExecMask::new(0xF0F0, 16);
        let b = ExecMask::new(0xFF00, 16);
        assert_eq!(a.and(b).bits(), 0xF000);
        assert_eq!(a.or(b).bits(), 0xFFF0);
        assert_eq!(a.and_not(b).bits(), 0x00F0);
        assert_eq!(a.not().bits(), 0x0F0F);
    }

    #[test]
    fn iter_active_ascending() {
        let m = ExecMask::new(0b1010_0001, 8);
        assert_eq!(m.iter_active().collect::<Vec<_>>(), vec![0, 5, 7]);
    }

    #[test]
    fn efficiency_metric() {
        assert_eq!(ExecMask::all(16).efficiency(), 1.0);
        assert_eq!(ExecMask::new(0x00FF, 16).efficiency(), 0.5);
        assert_eq!(ExecMask::none(8).efficiency(), 0.0);
    }

    #[test]
    fn simd1_occupies_one_quad() {
        let m = ExecMask::new(1, 1);
        assert_eq!(m.quad_count(), 1);
        assert_eq!(m.active_quads(), 1);
    }

    #[test]
    fn display_formats() {
        let m = ExecMask::new(0xF0F0, 16);
        assert_eq!(format!("{m}"), "f0f0/16");
        assert_eq!(format!("{m:?}"), "ExecMask(0xf0f0/16)");
    }

    #[test]
    fn active_groups_matches_per_channel_scan() {
        // Exhaustive over SIMD16, sampled over SIMD8/32, for every legal
        // group granularity (the elements-per-wave values of the ISA's
        // data types plus the degenerate 1 and 32).
        let scan = |m: ExecMask, g: u32| -> u32 {
            (0..m.width().div_ceil(g))
                .filter(|&grp| {
                    let lo = grp * g;
                    let hi = (lo + g).min(m.width());
                    (lo..hi).any(|ch| m.channel(ch))
                })
                .count() as u32
        };
        for g in [1u32, 2, 4, 8, 16, 32] {
            for bits in 0..=0xFFFFu32 {
                let m = ExecMask::new(bits, 16);
                assert_eq!(m.active_groups(g), scan(m, g), "bits={bits:#x} g={g}");
            }
            for seed in 0..1000u32 {
                let bits = seed.wrapping_mul(0x9E37_79B9);
                for width in [8u32, 32] {
                    let m = ExecMask::new(bits, width);
                    assert_eq!(m.active_groups(g), scan(m, g), "bits={bits:#x} g={g}");
                }
            }
        }
    }
}
