//! Structured kernel builder.
//!
//! [`KernelBuilder`] is a small assembler DSL: ALU helpers emit one
//! instruction each, while `if_`/`else_`/`end_if` and
//! `do_`/`break_`/`continue_`/`while_` emit structured SIMT control flow and
//! resolve all jump targets automatically.
//!
//! # Examples
//!
//! ```
//! use iwc_isa::builder::KernelBuilder;
//! use iwc_isa::insn::CondOp;
//! use iwc_isa::reg::{FlagReg, Operand, Predicate};
//!
//! // if (r4 < 0.5) r6 = r4 * 2.0 else r6 = r4
//! let mut b = KernelBuilder::new("halve", 16);
//! b.cmp(CondOp::Lt, FlagReg::F0, Operand::rf(4), Operand::imm_f(0.5));
//! b.if_(Predicate::normal(FlagReg::F0));
//! b.mul(Operand::rf(6), Operand::rf(4), Operand::imm_f(2.0));
//! b.else_();
//! b.mov(Operand::rf(6), Operand::rf(4));
//! b.end_if();
//! let program = b.finish().unwrap();
//! assert_eq!(program.len(), 7); // cmp, if, mul, else, mov, endif, eot
//! ```

use crate::insn::{CondMod, CondOp, Instruction, MemSpace, Opcode, SendMessage};
use crate::program::{Program, ValidateProgramError};
use crate::reg::{FlagReg, Operand, Predicate};
use crate::types::DataType;

#[derive(Debug)]
enum Frame {
    If {
        if_idx: usize,
        else_idx: Option<usize>,
    },
    Loop {
        body_start: usize,
        breaks: Vec<usize>,
        continues: Vec<usize>,
    },
}

/// Incremental builder for [`Program`]s.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    simd_width: u32,
    insns: Vec<Instruction>,
    frames: Vec<Frame>,
    pending_pred: Option<Predicate>,
}

impl KernelBuilder {
    /// Starts a kernel of the given SIMD width.
    ///
    /// # Panics
    ///
    /// Panics if `simd_width` is not one of 1, 4, 8, 16, 32.
    pub fn new(name: impl Into<String>, simd_width: u32) -> Self {
        assert!(
            matches!(simd_width, 1 | 4 | 8 | 16 | 32),
            "illegal SIMD width {simd_width}"
        );
        Self {
            name: name.into(),
            simd_width,
            insns: Vec::new(),
            frames: Vec::new(),
            pending_pred: None,
        }
    }

    /// Applies a predicate to the *next* emitted instruction only.
    pub fn pred(&mut self, p: Predicate) -> &mut Self {
        self.pending_pred = Some(p);
        self
    }

    fn emit(&mut self, mut insn: Instruction) -> usize {
        if insn.pred.is_none() {
            insn.pred = self.pending_pred.take();
        } else {
            self.pending_pred = None;
        }
        self.insns.push(insn);
        self.insns.len() - 1
    }

    fn dtype_of(dst: &Operand, srcs: &[Operand]) -> DataType {
        dst.dtype()
            .or_else(|| srcs.iter().find_map(Operand::dtype))
            .unwrap_or(DataType::Ud)
    }

    /// Emits a generic ALU instruction at the kernel SIMD width.
    pub fn op(&mut self, op: Opcode, dst: Operand, srcs: &[Operand]) -> &mut Self {
        let dtype = Self::dtype_of(&dst, srcs);
        let insn = Instruction::alu(op, self.simd_width, dtype, dst, srcs);
        self.emit(insn);
        self
    }

    /// Emits a generic ALU instruction at an explicit width (e.g. SIMD1
    /// scalar setup code).
    pub fn op_w(&mut self, op: Opcode, width: u32, dst: Operand, srcs: &[Operand]) -> &mut Self {
        let dtype = Self::dtype_of(&dst, srcs);
        let insn = Instruction::alu(op, width, dtype, dst, srcs);
        self.emit(insn);
        self
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Operand, src: Operand) -> &mut Self {
        self.op(Opcode::Mov, dst, &[src])
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Add, dst, &[a, b])
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Sub, dst, &[a, b])
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Mul, dst, &[a, b])
    }

    /// `dst = a * b + c` (fused multiply-add).
    pub fn mad(&mut self, dst: Operand, a: Operand, b: Operand, c: Operand) -> &mut Self {
        self.op(Opcode::Mad, dst, &[a, b, c])
    }

    /// `dst = min(a, b)`.
    pub fn min(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Min, dst, &[a, b])
    }

    /// `dst = max(a, b)`.
    pub fn max(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Max, dst, &[a, b])
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::And, dst, &[a, b])
    }

    /// `dst = a | b`.
    pub fn or(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Or, dst, &[a, b])
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Xor, dst, &[a, b])
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Shl, dst, &[a, b])
    }

    /// `dst = a >> b` (logical).
    pub fn shr(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.op(Opcode::Shr, dst, &[a, b])
    }

    /// Compare `a cond b` per channel and write flag bits.
    pub fn cmp(&mut self, cond: CondOp, flag: FlagReg, a: Operand, b: Operand) -> &mut Self {
        let dtype = Self::dtype_of(&Operand::Null, &[a, b]);
        let mut insn =
            Instruction::alu(Opcode::Cmp, self.simd_width, dtype, Operand::Null, &[a, b]);
        insn.cond_mod = Some(CondMod { cond, flag });
        self.emit(insn);
        self
    }

    /// `dst = flag ? a : b` per channel.
    pub fn sel(&mut self, flag: FlagReg, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        let dtype = Self::dtype_of(&dst, &[a, b]);
        let mut insn = Instruction::alu(Opcode::Sel, self.simd_width, dtype, dst, &[a, b]);
        insn.pred = Some(Predicate::normal(flag));
        self.emit(insn);
        self
    }

    /// Extended-math unary op (`inv`, `log`, `exp`, `sqrt`, `rsqrt`, `sin`, `cos`).
    pub fn math(&mut self, op: Opcode, dst: Operand, src: Operand) -> &mut Self {
        self.op(op, dst, &[src])
    }

    /// Per-channel gather load from `space` at byte addresses `addr`.
    pub fn load(&mut self, space: MemSpace, dst: Operand, addr: Operand) -> &mut Self {
        let dtype = dst.dtype().expect("load destination must be typed");
        let mut insn = Instruction::alu(Opcode::Send, self.simd_width, dtype, dst, &[]);
        insn.msg = Some(SendMessage::Load { space, addr, dtype });
        self.emit(insn);
        self
    }

    /// Per-channel scatter store of `data` to byte addresses `addr`.
    pub fn store(&mut self, space: MemSpace, addr: Operand, data: Operand) -> &mut Self {
        let dtype = data.dtype().expect("store data must be typed");
        let mut insn = Instruction::alu(Opcode::Send, self.simd_width, dtype, Operand::Null, &[]);
        insn.msg = Some(SendMessage::Store {
            space,
            addr,
            data,
            dtype,
        });
        self.emit(insn);
        self
    }

    /// Memory fence.
    pub fn fence(&mut self) -> &mut Self {
        let mut insn = Instruction::alu(
            Opcode::Send,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        insn.msg = Some(SendMessage::Fence);
        self.emit(insn);
        self
    }

    /// Workgroup barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.op(Opcode::Barrier, Operand::Null, &[])
    }

    /// Opens a divergent `if` region on `pred`.
    pub fn if_(&mut self, pred: Predicate) -> &mut Self {
        let mut insn = Instruction::alu(
            Opcode::If,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        insn.pred = Some(pred);
        let if_idx = self.emit(insn);
        self.frames.push(Frame::If {
            if_idx,
            else_idx: None,
        });
        self
    }

    /// Switches to the `else` half of the innermost `if` region.
    ///
    /// # Panics
    ///
    /// Panics when not inside an `if` region or when `else_` was already
    /// emitted for it.
    pub fn else_(&mut self) -> &mut Self {
        let insn = Instruction::alu(
            Opcode::Else,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        let idx = self.emit(insn);
        match self.frames.last_mut() {
            Some(Frame::If {
                else_idx: else_slot @ None,
                ..
            }) => *else_slot = Some(idx),
            Some(Frame::If { .. }) => panic!("duplicate else in if region"),
            _ => panic!("else outside of if region"),
        }
        self
    }

    /// Closes the innermost `if` region.
    ///
    /// # Panics
    ///
    /// Panics when not inside an `if` region.
    pub fn end_if(&mut self) -> &mut Self {
        let insn = Instruction::alu(
            Opcode::EndIf,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        let endif_idx = self.emit(insn);
        match self.frames.pop() {
            Some(Frame::If { if_idx, else_idx }) => {
                // `if` jumps to the else (when empty cond) or straight to endif.
                self.insns[if_idx].jip = Some(else_idx.unwrap_or(endif_idx));
                self.insns[if_idx].uip = Some(endif_idx);
                if let Some(e) = else_idx {
                    self.insns[e].jip = Some(endif_idx);
                }
            }
            _ => panic!("end_if outside of if region"),
        }
        self
    }

    /// Opens a loop region.
    pub fn do_(&mut self) -> &mut Self {
        let insn = Instruction::alu(
            Opcode::Do,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        let do_idx = self.emit(insn);
        self.frames.push(Frame::Loop {
            body_start: do_idx + 1,
            breaks: Vec::new(),
            continues: Vec::new(),
        });
        self
    }

    /// Removes channels matching `pred` from the innermost loop.
    ///
    /// # Panics
    ///
    /// Panics when not inside a loop region.
    pub fn break_(&mut self, pred: Predicate) -> &mut Self {
        let mut insn = Instruction::alu(
            Opcode::Break,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        insn.pred = Some(pred);
        let idx = self.emit(insn);
        match self
            .frames
            .iter_mut()
            .rev()
            .find(|f| matches!(f, Frame::Loop { .. }))
        {
            Some(Frame::Loop { breaks, .. }) => breaks.push(idx),
            _ => panic!("break outside of loop region"),
        }
        self
    }

    /// Sends channels matching `pred` to the loop back-edge.
    ///
    /// # Panics
    ///
    /// Panics when not inside a loop region.
    pub fn continue_(&mut self, pred: Predicate) -> &mut Self {
        let mut insn = Instruction::alu(
            Opcode::Continue,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        insn.pred = Some(pred);
        let idx = self.emit(insn);
        match self
            .frames
            .iter_mut()
            .rev()
            .find(|f| matches!(f, Frame::Loop { .. }))
        {
            Some(Frame::Loop { continues, .. }) => continues.push(idx),
            _ => panic!("continue outside of loop region"),
        }
        self
    }

    /// Closes the innermost loop: channels matching `pred` iterate again.
    ///
    /// # Panics
    ///
    /// Panics when not inside a loop region.
    pub fn while_(&mut self, pred: Predicate) -> &mut Self {
        let mut insn = Instruction::alu(
            Opcode::While,
            self.simd_width,
            DataType::Ud,
            Operand::Null,
            &[],
        );
        insn.pred = Some(pred);
        let while_idx = self.emit(insn);
        match self.frames.pop() {
            Some(Frame::Loop {
                body_start,
                breaks,
                continues,
            }) => {
                self.insns[while_idx].jip = Some(body_start);
                for b in breaks {
                    self.insns[b].jip = Some(while_idx + 1);
                }
                for c in continues {
                    self.insns[c].jip = Some(while_idx);
                }
            }
            _ => panic!("while outside of loop region"),
        }
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when nothing was emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Appends `eot` and validates the program.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found (see
    /// [`Program::from_parts`]).
    ///
    /// # Panics
    ///
    /// Panics if a control-flow region is still open.
    pub fn finish(mut self) -> Result<Program, ValidateProgramError> {
        assert!(
            self.frames.is_empty(),
            "finish() with {} unclosed control-flow region(s)",
            self.frames.len()
        );
        let eot = Instruction::alu(Opcode::Eot, 1, DataType::Ud, Operand::Null, &[]);
        self.emit(eot);
        Program::from_parts(self.name, self.simd_width, self.insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f0() -> Predicate {
        Predicate::normal(FlagReg::F0)
    }

    #[test]
    fn straight_line_kernel() {
        let mut b = KernelBuilder::new("axpy", 16);
        b.mul(Operand::rf(8), Operand::rf(4), Operand::imm_f(3.0));
        b.add(Operand::rf(8), Operand::rf(8), Operand::rf(6));
        let p = b.finish().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.insns()[0].op, Opcode::Mul);
        assert_eq!(p.insns()[2].op, Opcode::Eot);
    }

    #[test]
    fn if_else_targets_resolved() {
        let mut b = KernelBuilder::new("k", 16);
        b.cmp(CondOp::Lt, FlagReg::F0, Operand::rf(4), Operand::imm_f(0.0));
        b.if_(f0()); // idx 1
        b.mov(Operand::rf(6), Operand::imm_f(1.0)); // 2
        b.else_(); // 3
        b.mov(Operand::rf(6), Operand::imm_f(2.0)); // 4
        b.end_if(); // 5
        let p = b.finish().unwrap();
        assert_eq!(p.insns()[1].jip, Some(3));
        assert_eq!(p.insns()[1].uip, Some(5));
        assert_eq!(p.insns()[3].jip, Some(5));
    }

    #[test]
    fn if_without_else_jumps_to_endif() {
        let mut b = KernelBuilder::new("k", 8);
        b.if_(f0()); // 0
        b.mov(Operand::rf(6), Operand::imm_f(1.0)); // 1
        b.end_if(); // 2
        let p = b.finish().unwrap();
        assert_eq!(p.insns()[0].jip, Some(2));
        assert_eq!(p.insns()[0].uip, Some(2));
    }

    #[test]
    fn loop_targets_resolved() {
        let mut b = KernelBuilder::new("k", 16);
        b.do_(); // 0
        b.add(Operand::rd(4), Operand::rd(4), Operand::imm_d(-1)); // 1
        b.break_(f0()); // 2
        b.continue_(Predicate::inverted(FlagReg::F1)); // 3
        b.cmp(CondOp::Gt, FlagReg::F0, Operand::rd(4), Operand::imm_d(0)); // 4
        b.while_(f0()); // 5
        let p = b.finish().unwrap();
        assert_eq!(p.insns()[5].jip, Some(1), "while jumps to loop body start");
        assert_eq!(p.insns()[2].jip, Some(6), "break jumps past while");
        assert_eq!(p.insns()[3].jip, Some(5), "continue jumps to while");
    }

    #[test]
    fn pending_pred_applies_once() {
        let mut b = KernelBuilder::new("k", 16);
        b.pred(f0()).mov(Operand::rf(6), Operand::imm_f(1.0));
        b.mov(Operand::rf(7), Operand::imm_f(2.0));
        let p = b.finish().unwrap();
        assert!(p.insns()[0].pred.is_some());
        assert!(p.insns()[1].pred.is_none());
    }

    #[test]
    #[should_panic(expected = "else outside of if region")]
    fn else_requires_if() {
        let mut b = KernelBuilder::new("k", 16);
        b.else_();
    }

    #[test]
    #[should_panic(expected = "unclosed control-flow region")]
    fn finish_rejects_open_region() {
        let mut b = KernelBuilder::new("k", 16);
        b.if_(f0());
        let _ = b.finish();
    }

    #[test]
    fn nested_if_inside_loop() {
        let mut b = KernelBuilder::new("k", 16);
        b.do_(); // 0
        b.if_(f0()); // 1
        b.break_(Predicate::normal(FlagReg::F1)); // 2
        b.end_if(); // 3
        b.while_(f0()); // 4
        let p = b.finish().unwrap();
        assert_eq!(
            p.insns()[2].jip,
            Some(5),
            "break inside if targets loop exit"
        );
        assert_eq!(p.insns()[1].jip, Some(3));
    }

    #[test]
    fn sel_is_predicated_on_flag() {
        let mut b = KernelBuilder::new("k", 8);
        b.sel(FlagReg::F1, Operand::rf(2), Operand::rf(3), Operand::rf(4));
        let p = b.finish().unwrap();
        assert_eq!(p.insns()[0].pred, Some(Predicate::normal(FlagReg::F1)));
    }
}
