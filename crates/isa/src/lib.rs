//! # iwc-isa
//!
//! A variable-width SIMD ISA model in the style of Intel Gen (Ivy Bridge)
//! execution units, as described in §2 of *"SIMD Divergence Optimization
//! through Intra-Warp Compaction"* (Vaidya et al., ISCA 2013).
//!
//! The crate provides:
//!
//! * [`mask::ExecMask`] — per-channel SIMD execution masks with quad
//!   (4-channel) analysis, the input to the BCC/SCC compaction logic;
//! * [`types::DataType`] / [`types::Scalar`] — operand element types and the
//!   widened scalar values used by the functional evaluator;
//! * [`reg`] — the 128×256b general register file addressing model, flag
//!   registers and predication;
//! * [`insn`] — opcodes (FPU / extended-math / send / control pipes),
//!   condition modifiers, and memory message descriptors;
//! * [`program::Program`] — validated kernel programs;
//! * [`builder::KernelBuilder`] — a structured assembler DSL that resolves
//!   divergent control flow (`if`/`else`/`endif`, `do`/`break`/`continue`/
//!   `while`) into jump targets;
//! * [`asm`] — a text assembler for the same dialect;
//! * [`eval`] — per-channel functional semantics.
//!
//! # Examples
//!
//! Build a tiny divergent kernel and inspect it:
//!
//! ```
//! use iwc_isa::builder::KernelBuilder;
//! use iwc_isa::insn::CondOp;
//! use iwc_isa::reg::{FlagReg, Operand, Predicate};
//!
//! let mut b = KernelBuilder::new("clamp", 16);
//! b.cmp(CondOp::Gt, FlagReg::F0, Operand::rf(4), Operand::imm_f(1.0));
//! b.if_(Predicate::normal(FlagReg::F0));
//! b.mov(Operand::rf(4), Operand::imm_f(1.0));
//! b.end_if();
//! let program = b.finish()?;
//! assert_eq!(program.simd_width(), 16);
//! # Ok::<(), iwc_isa::program::ValidateProgramError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod builder;
pub mod eval;
pub mod insn;
pub mod mask;
pub mod program;
pub mod reg;
pub mod types;

pub use asm::{parse_program, to_asm, ParseAsmError};
pub use builder::KernelBuilder;
pub use insn::{CondOp, Instruction, MemSpace, Opcode, Pipe, SendMessage};
pub use mask::{ExecMask, MAX_WIDTH, QUAD};
pub use program::Program;
pub use reg::{FlagReg, Operand, Predicate};
pub use types::{DataType, Scalar};
