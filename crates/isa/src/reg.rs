//! Registers and operands.
//!
//! Each EU thread owns a general register file (GRF) of [`GRF_COUNT`]
//! 256-bit registers ([`GRF_BYTES`] bytes each), plus two 16-bit flag
//! registers written by `cmp` and consumed by predication and branches.
//!
//! Operand addressing is deliberately simplified relative to the full Gen
//! region syntax: a vector operand names a starting GRF and an element type,
//! and channel `i` maps to the GRF byte range
//! `reg * 32 + i * size .. + size`. A SIMD16 operand of a 32-bit type thus
//! implicitly spans a register pair (`r, r+1`), exactly the property the
//! paper's quartile micro-op expansion exploits (§4.1).

use crate::types::{DataType, Scalar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of GRF registers per EU thread.
pub const GRF_COUNT: u32 = 128;

/// Bytes per GRF register (256 bits).
pub const GRF_BYTES: u32 = 32;

/// Total GRF bytes per EU thread.
pub const GRF_TOTAL_BYTES: u32 = GRF_COUNT * GRF_BYTES;

/// Number of architectural flag registers.
pub const FLAG_COUNT: u8 = 2;

/// A flag register identifier (`f0` or `f1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlagReg(u8);

impl FlagReg {
    /// Flag register 0.
    pub const F0: FlagReg = FlagReg(0);
    /// Flag register 1.
    pub const F1: FlagReg = FlagReg(1);

    /// Creates a flag register id.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= FLAG_COUNT`.
    pub fn new(idx: u8) -> Self {
        assert!(idx < FLAG_COUNT, "flag register f{idx} out of range");
        Self(idx)
    }

    /// Index of the flag register (0 or 1).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FlagReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A source or destination operand.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Vector GRF operand: channel `i` reads/writes element `i` of type
    /// `dtype` starting at register `reg`.
    Grf {
        /// Starting GRF register number.
        reg: u8,
        /// Element type.
        dtype: DataType,
    },
    /// Scalar (broadcast) GRF operand: every channel reads element
    /// `sub` of register `reg` (region `<0;1,0>` in Gen terms).
    GrfScalar {
        /// GRF register number.
        reg: u8,
        /// Sub-register element index.
        sub: u8,
        /// Element type.
        dtype: DataType,
    },
    /// Immediate broadcast to all channels.
    Imm {
        /// The value.
        value: Scalar,
        /// Element type.
        dtype: DataType,
    },
    /// Null operand (unused slot / discarded destination).
    Null,
}

impl Operand {
    /// Vector float32 GRF operand.
    pub fn rf(reg: u8) -> Self {
        Self::Grf {
            reg,
            dtype: DataType::F,
        }
    }

    /// Vector signed-int32 GRF operand.
    pub fn rd(reg: u8) -> Self {
        Self::Grf {
            reg,
            dtype: DataType::D,
        }
    }

    /// Vector unsigned-int32 GRF operand.
    pub fn rud(reg: u8) -> Self {
        Self::Grf {
            reg,
            dtype: DataType::Ud,
        }
    }

    /// Vector GRF operand of an explicit type.
    pub fn reg(reg: u8, dtype: DataType) -> Self {
        Self::Grf { reg, dtype }
    }

    /// Scalar broadcast of element `sub` in `reg`.
    pub fn scalar(reg: u8, sub: u8, dtype: DataType) -> Self {
        Self::GrfScalar { reg, sub, dtype }
    }

    /// Float immediate.
    pub fn imm_f(v: f32) -> Self {
        Self::Imm {
            value: v.into(),
            dtype: DataType::F,
        }
    }

    /// Signed-int immediate.
    pub fn imm_d(v: i32) -> Self {
        Self::Imm {
            value: v.into(),
            dtype: DataType::D,
        }
    }

    /// Unsigned-int immediate.
    pub fn imm_ud(v: u32) -> Self {
        Self::Imm {
            value: v.into(),
            dtype: DataType::Ud,
        }
    }

    /// Element type of the operand, if it has one.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Self::Grf { dtype, .. } | Self::GrfScalar { dtype, .. } | Self::Imm { dtype, .. } => {
                Some(*dtype)
            }
            Self::Null => None,
        }
    }

    /// Starting GRF register, for register operands.
    pub fn grf_reg(&self) -> Option<u8> {
        match self {
            Self::Grf { reg, .. } | Self::GrfScalar { reg, .. } => Some(*reg),
            _ => None,
        }
    }

    /// True for `Operand::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Self::Null)
    }

    /// Byte range `[lo, hi)` of the GRF this operand touches when executed
    /// over `width` channels, or `None` for non-register operands.
    ///
    /// Used by the scoreboard for dependence checking and by the compaction
    /// logic for operand-fetch accounting.
    pub fn grf_byte_range(&self, width: u32) -> Option<(u32, u32)> {
        match *self {
            Self::Grf { reg, dtype } => {
                let lo = u32::from(reg) * GRF_BYTES;
                Some((lo, lo + width * dtype.size_bytes()))
            }
            Self::GrfScalar { reg, sub, dtype } => {
                let lo = u32::from(reg) * GRF_BYTES + u32::from(sub) * dtype.size_bytes();
                Some((lo, lo + dtype.size_bytes()))
            }
            Self::Imm { .. } | Self::Null => None,
        }
    }

    /// Number of whole GRF registers a vector operand of this type spans at
    /// the given SIMD width (1 for SIMD8×32b, 2 for SIMD16×32b, …).
    pub fn grf_span(&self, width: u32) -> u32 {
        match self.grf_byte_range(width) {
            Some((lo, hi)) => {
                let first = lo / GRF_BYTES;
                let last = (hi - 1) / GRF_BYTES;
                last - first + 1
            }
            None => 0,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Grf { reg, dtype } => write!(f, "r{reg}:{dtype}"),
            Self::GrfScalar { reg, sub, dtype } => write!(f, "r{reg}.{sub}:{dtype}"),
            Self::Imm { value, dtype } => match value {
                Scalar::F(v) => write!(f, "{v}:{dtype}"),
                Scalar::I(v) => write!(f, "{v}:{dtype}"),
                Scalar::U(v) => write!(f, "{v}:{dtype}"),
            },
            Self::Null => f.write_str("null"),
        }
    }
}

/// An instruction predicate: gate execution on (possibly inverted) flag bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Flag register providing per-channel predicate bits.
    pub flag: FlagReg,
    /// If true, channels execute where the flag bit is *clear*.
    pub invert: bool,
}

impl Predicate {
    /// Normal predication on `flag` (`(+f) insn`).
    pub fn normal(flag: FlagReg) -> Self {
        Self {
            flag,
            invert: false,
        }
    }

    /// Inverted predication on `flag` (`(-f) insn`).
    pub fn inverted(flag: FlagReg) -> Self {
        Self { flag, invert: true }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{})", if self.invert { "-" } else { "+" }, self.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_reg_bounds() {
        assert_eq!(FlagReg::new(1), FlagReg::F1);
        assert_eq!(FlagReg::F0.index(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flag_reg_rejects_f2() {
        let _ = FlagReg::new(2);
    }

    #[test]
    fn simd16_f32_operand_spans_two_grfs() {
        let op = Operand::rf(8);
        assert_eq!(op.grf_byte_range(16), Some((256, 320)));
        assert_eq!(op.grf_span(16), 2);
        assert_eq!(op.grf_span(8), 1);
    }

    #[test]
    fn simd16_df_operand_spans_four_grfs() {
        let op = Operand::reg(4, DataType::Df);
        assert_eq!(op.grf_span(16), 4);
    }

    #[test]
    fn scalar_operand_touches_one_element() {
        let op = Operand::scalar(2, 3, DataType::F);
        assert_eq!(op.grf_byte_range(16), Some((76, 80)));
        assert_eq!(op.grf_span(16), 1);
    }

    #[test]
    fn imm_has_no_grf_footprint() {
        assert_eq!(Operand::imm_f(1.0).grf_byte_range(16), None);
        assert_eq!(Operand::Null.grf_span(16), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::rf(3).to_string(), "r3:f");
        assert_eq!(Operand::scalar(1, 2, DataType::Ud).to_string(), "r1.2:ud");
        assert_eq!(Operand::imm_d(-5).to_string(), "-5:d");
        assert_eq!(Predicate::inverted(FlagReg::F1).to_string(), "(-f1)");
    }
}
