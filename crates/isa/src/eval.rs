//! Per-channel functional semantics of the ALU opcodes.
//!
//! The evaluator operates on [`Scalar`] values widened to 64 bits; the
//! register file read/write layer (in the simulator crate) is responsible for
//! narrowing results back to the instruction data type.

use crate::insn::{CondOp, Opcode};
use crate::types::{DataType, Scalar};

/// Evaluates one channel of an ALU or extended-math opcode.
///
/// `dtype` is the execution type: float types evaluate in f64, signed types
/// in wrapping i64, unsigned in wrapping u64.
///
/// # Panics
///
/// Panics when called with a non-computational opcode (control flow, `send`,
/// `barrier`, …) or with the wrong number of sources.
pub fn eval_alu(op: Opcode, dtype: DataType, srcs: &[Scalar]) -> Scalar {
    assert_eq!(srcs.len(), op.src_count(), "{op}: wrong source count");
    if dtype.is_float() {
        eval_float(op, srcs)
    } else if dtype.is_signed_int() {
        eval_signed(op, srcs)
    } else {
        eval_unsigned(op, srcs)
    }
}

fn eval_float(op: Opcode, s: &[Scalar]) -> Scalar {
    let a = || s[0].as_f64();
    let b = || s[1].as_f64();
    let c = || s[2].as_f64();
    let v = match op {
        Opcode::Mov => a(),
        Opcode::Add => a() + b(),
        Opcode::Sub => a() - b(),
        Opcode::Mul => a() * b(),
        Opcode::Mad => a() * b() + c(),
        Opcode::Min => a().min(b()),
        Opcode::Max => a().max(b()),
        Opcode::Abs => a().abs(),
        Opcode::Frc => a() - a().floor(),
        Opcode::Rndd => a().floor(),
        Opcode::Rndu => a().ceil(),
        Opcode::Inv => 1.0 / a(),
        Opcode::Log => a().log2(),
        Opcode::Exp => a().exp2(),
        Opcode::Sqrt => a().sqrt(),
        Opcode::Rsqrt => 1.0 / a().sqrt(),
        Opcode::Pow => a().powf(b()),
        Opcode::Sin => a().sin(),
        Opcode::Cos => a().cos(),
        Opcode::Fdiv => a() / b(),
        Opcode::Sel => a(), // sel is handled via predication; src0 is the "true" value
        other => panic!("opcode {other} is not a float ALU op"),
    };
    Scalar::F(v)
}

fn eval_signed(op: Opcode, s: &[Scalar]) -> Scalar {
    let a = || s[0].as_i64();
    let b = || s[1].as_i64();
    let c = || s[2].as_i64();
    let v = match op {
        Opcode::Mov => a(),
        Opcode::Add => a().wrapping_add(b()),
        Opcode::Sub => a().wrapping_sub(b()),
        Opcode::Mul => a().wrapping_mul(b()),
        Opcode::Mad => a().wrapping_mul(b()).wrapping_add(c()),
        Opcode::Min => a().min(b()),
        Opcode::Max => a().max(b()),
        Opcode::Abs => a().wrapping_abs(),
        Opcode::Not => !a(),
        Opcode::And => a() & b(),
        Opcode::Or => a() | b(),
        Opcode::Xor => a() ^ b(),
        Opcode::Shl => a().wrapping_shl(s[1].as_u64() as u32 & 63),
        Opcode::Shr => ((a() as u64).wrapping_shr(s[1].as_u64() as u32 & 63)) as i64,
        Opcode::Asr => a().wrapping_shr(s[1].as_u64() as u32 & 63),
        Opcode::Idiv => a().checked_div(b()).unwrap_or(0),
        Opcode::Irem => a().checked_rem(b()).unwrap_or(0),
        Opcode::Sel => a(),
        other => panic!("opcode {other} is not a signed-int ALU op"),
    };
    Scalar::I(v)
}

fn eval_unsigned(op: Opcode, s: &[Scalar]) -> Scalar {
    let a = || s[0].as_u64();
    let b = || s[1].as_u64();
    let c = || s[2].as_u64();
    let v = match op {
        Opcode::Mov => a(),
        Opcode::Add => a().wrapping_add(b()),
        Opcode::Sub => a().wrapping_sub(b()),
        Opcode::Mul => a().wrapping_mul(b()),
        Opcode::Mad => a().wrapping_mul(b()).wrapping_add(c()),
        Opcode::Min => a().min(b()),
        Opcode::Max => a().max(b()),
        Opcode::Abs => a(),
        Opcode::Not => !a(),
        Opcode::And => a() & b(),
        Opcode::Or => a() | b(),
        Opcode::Xor => a() ^ b(),
        Opcode::Shl => a().wrapping_shl(b() as u32 & 63),
        Opcode::Shr => a().wrapping_shr(b() as u32 & 63),
        Opcode::Asr => (a() as i64).wrapping_shr(b() as u32 & 63) as u64,
        Opcode::Idiv => a().checked_div(b()).unwrap_or(0),
        Opcode::Irem => a().checked_rem(b()).unwrap_or(0),
        Opcode::Sel => a(),
        other => panic!("opcode {other} is not an unsigned ALU op"),
    };
    Scalar::U(v)
}

/// Evaluates a `cmp` condition on one channel.
pub fn eval_cond(cond: CondOp, dtype: DataType, a: Scalar, b: Scalar) -> bool {
    if dtype.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        match cond {
            CondOp::Eq => x == y,
            CondOp::Ne => x != y,
            CondOp::Lt => x < y,
            CondOp::Le => x <= y,
            CondOp::Gt => x > y,
            CondOp::Ge => x >= y,
        }
    } else if dtype.is_signed_int() {
        let (x, y) = (a.as_i64(), b.as_i64());
        match cond {
            CondOp::Eq => x == y,
            CondOp::Ne => x != y,
            CondOp::Lt => x < y,
            CondOp::Le => x <= y,
            CondOp::Gt => x > y,
            CondOp::Ge => x >= y,
        }
    } else {
        let (x, y) = (a.as_u64(), b.as_u64());
        match cond {
            CondOp::Eq => x == y,
            CondOp::Ne => x != y,
            CondOp::Lt => x < y,
            CondOp::Le => x <= y,
            CondOp::Gt => x > y,
            CondOp::Ge => x >= y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_arith() {
        let v = eval_alu(
            Opcode::Mad,
            DataType::F,
            &[2.0f32.into(), 3.0f32.into(), 1.0f32.into()],
        );
        assert_eq!(v, Scalar::F(7.0));
        let v = eval_alu(Opcode::Rsqrt, DataType::F, &[4.0f32.into()]);
        assert_eq!(v, Scalar::F(0.5));
        let v = eval_alu(Opcode::Frc, DataType::F, &[Scalar::F(-1.25)]);
        assert_eq!(v, Scalar::F(0.75));
    }

    #[test]
    fn log_exp_are_base2() {
        assert_eq!(
            eval_alu(Opcode::Log, DataType::F, &[8.0f32.into()]),
            Scalar::F(3.0)
        );
        assert_eq!(
            eval_alu(Opcode::Exp, DataType::F, &[3.0f32.into()]),
            Scalar::F(8.0)
        );
    }

    #[test]
    fn signed_wrapping() {
        let v = eval_alu(
            Opcode::Add,
            DataType::D,
            &[Scalar::I(i64::MAX), Scalar::I(1)],
        );
        assert_eq!(v, Scalar::I(i64::MIN));
        let v = eval_alu(Opcode::Idiv, DataType::D, &[Scalar::I(-7), Scalar::I(2)]);
        assert_eq!(v, Scalar::I(-3));
    }

    #[test]
    fn divide_by_zero_yields_zero() {
        assert_eq!(
            eval_alu(Opcode::Idiv, DataType::D, &[Scalar::I(5), Scalar::I(0)]),
            Scalar::I(0)
        );
        assert_eq!(
            eval_alu(Opcode::Irem, DataType::Ud, &[Scalar::U(5), Scalar::U(0)]),
            Scalar::U(0)
        );
    }

    #[test]
    fn unsigned_bitops() {
        let v = eval_alu(
            Opcode::Xor,
            DataType::Ud,
            &[Scalar::U(0b1100), Scalar::U(0b1010)],
        );
        assert_eq!(v, Scalar::U(0b0110));
        let v = eval_alu(Opcode::Shl, DataType::Ud, &[Scalar::U(1), Scalar::U(4)]);
        assert_eq!(v, Scalar::U(16));
    }

    #[test]
    fn conditions_respect_type_class() {
        assert!(eval_cond(
            CondOp::Lt,
            DataType::D,
            Scalar::I(-1),
            Scalar::I(0)
        ));
        // Same bits interpreted unsigned: 0xFFFF.. > 0.
        assert!(!eval_cond(
            CondOp::Lt,
            DataType::Ud,
            Scalar::U(u64::MAX),
            Scalar::U(0)
        ));
        assert!(eval_cond(
            CondOp::Ge,
            DataType::F,
            Scalar::F(1.5),
            Scalar::F(1.5)
        ));
        assert!(eval_cond(
            CondOp::Ne,
            DataType::F,
            Scalar::F(f64::NAN),
            Scalar::F(0.0)
        ));
    }

    #[test]
    #[should_panic(expected = "not a float ALU op")]
    fn float_rejects_bitops() {
        let _ = eval_alu(Opcode::And, DataType::F, &[Scalar::F(1.0), Scalar::F(2.0)]);
    }
}
