//! Data types of the modeled ISA.
//!
//! The execution-cycle cost of an instruction depends on its SIMD width *and*
//! the operand data type: the 4-wide ALU consumes four 32-bit elements per
//! cycle, so wider types (DF/Q) take proportionally more cycles per quad and
//! narrower types (HF/W/B) fewer, exactly as discussed in §4.1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element data type of an operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Unsigned byte (8b).
    Ub,
    /// Signed byte (8b).
    B,
    /// Unsigned word (16b).
    Uw,
    /// Signed word (16b).
    W,
    /// Half-precision float (16b).
    Hf,
    /// Unsigned doubleword (32b).
    Ud,
    /// Signed doubleword (32b).
    D,
    /// Single-precision float (32b).
    F,
    /// Unsigned quadword (64b).
    Uq,
    /// Signed quadword (64b).
    Q,
    /// Double-precision float (64b).
    Df,
}

impl DataType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            Self::Ub | Self::B => 1,
            Self::Uw | Self::W | Self::Hf => 2,
            Self::Ud | Self::D | Self::F => 4,
            Self::Uq | Self::Q | Self::Df => 8,
        }
    }

    /// True for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, Self::Hf | Self::F | Self::Df)
    }

    /// True for signed integer types.
    pub fn is_signed_int(self) -> bool {
        matches!(self, Self::B | Self::W | Self::D | Self::Q)
    }

    /// Number of 32-bit ALU element slots one element of this type occupies
    /// (64-bit types are pumped through the 32-bit datapath twice; sub-32-bit
    /// types still occupy a full slot in this coarse measure).
    pub fn alu_slots(self) -> u32 {
        match self.size_bytes() {
            8 => 2,
            _ => 1,
        }
    }

    /// Number of elements of this type the 4×32-bit ALU datapath consumes
    /// per execution wave (16 bytes/cycle): 2 for 64-bit types, 4 for
    /// 32-bit, 8 for 16-bit, 16 for bytes. This is the granularity at which
    /// cycle compression operates — the reason §4.1 notes that "benefits
    /// may be higher for wider datatypes … and lower for narrow datatypes":
    /// a dead wave requires a whole *group* of this many contiguous
    /// channels to be disabled.
    pub fn elements_per_wave(self) -> u32 {
        16 / self.size_bytes()
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Ub => "ub",
            Self::B => "b",
            Self::Uw => "uw",
            Self::W => "w",
            Self::Hf => "hf",
            Self::Ud => "ud",
            Self::D => "d",
            Self::F => "f",
            Self::Uq => "uq",
            Self::Q => "q",
            Self::Df => "df",
        };
        f.write_str(s)
    }
}

/// A scalar value of one channel, used by immediates and by the functional
/// evaluator. All integer payloads are stored widened to 64 bits.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// Floating-point payload (used for HF/F/DF operands).
    F(f64),
    /// Signed integer payload (B/W/D/Q).
    I(i64),
    /// Unsigned integer payload (UB/UW/UD/UQ).
    U(u64),
}

impl Scalar {
    /// Interpret as f64, converting integers.
    pub fn as_f64(self) -> f64 {
        match self {
            Self::F(v) => v,
            Self::I(v) => v as f64,
            Self::U(v) => v as f64,
        }
    }

    /// Interpret as i64, truncating floats toward zero.
    pub fn as_i64(self) -> i64 {
        match self {
            Self::F(v) => v as i64,
            Self::I(v) => v,
            Self::U(v) => v as i64,
        }
    }

    /// Interpret as u64, truncating floats toward zero and wrapping negatives.
    pub fn as_u64(self) -> u64 {
        match self {
            Self::F(v) => v as u64,
            Self::I(v) => v as u64,
            Self::U(v) => v,
        }
    }

    /// True when the value is numerically zero.
    pub fn is_zero(self) -> bool {
        match self {
            Self::F(v) => v == 0.0,
            Self::I(v) => v == 0,
            Self::U(v) => v == 0,
        }
    }
}

impl From<f32> for Scalar {
    fn from(v: f32) -> Self {
        Self::F(f64::from(v))
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Self::F(v)
    }
}

impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Self::I(i64::from(v))
    }
}

impl From<u32> for Scalar {
    fn from(v: u32) -> Self {
        Self::U(u64::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DataType::F.size_bytes(), 4);
        assert_eq!(DataType::Df.size_bytes(), 8);
        assert_eq!(DataType::Hf.size_bytes(), 2);
        assert_eq!(DataType::Ub.size_bytes(), 1);
    }

    #[test]
    fn elements_per_wave_by_size() {
        assert_eq!(DataType::Df.elements_per_wave(), 2);
        assert_eq!(DataType::F.elements_per_wave(), 4);
        assert_eq!(DataType::Hf.elements_per_wave(), 8);
        assert_eq!(DataType::Ub.elements_per_wave(), 16);
    }

    #[test]
    fn alu_slots_double_pumped_for_64b() {
        assert_eq!(DataType::Df.alu_slots(), 2);
        assert_eq!(DataType::Q.alu_slots(), 2);
        assert_eq!(DataType::F.alu_slots(), 1);
        assert_eq!(DataType::W.alu_slots(), 1);
    }

    #[test]
    fn classification() {
        assert!(DataType::F.is_float());
        assert!(!DataType::Ud.is_float());
        assert!(DataType::D.is_signed_int());
        assert!(!DataType::Ud.is_signed_int());
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::from(2.5f32).as_f64(), 2.5);
        assert_eq!(Scalar::from(-3i32).as_i64(), -3);
        assert_eq!(Scalar::from(7u32).as_u64(), 7);
        assert_eq!(Scalar::F(-1.9).as_i64(), -1);
        assert!(Scalar::U(0).is_zero());
        assert!(!Scalar::F(0.1).is_zero());
    }
}
