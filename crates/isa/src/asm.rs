//! Text assembler for the kernel ISA.
//!
//! [`parse_program`] turns a small, line-oriented assembly dialect into a
//! validated [`Program`], resolving structured control flow exactly like
//! [`crate::builder::KernelBuilder`]. The syntax mirrors the
//! builder API:
//!
//! ```text
//! kernel clamp simd16
//!     cmp.gt.f0 r4:f, 1.0:f
//!     (+f0) if
//!         mov r4:f, 1.0:f
//!     endif
//! ```
//!
//! * ALU ops: `mnemonic dst, src0[, src1[, src2]]`, e.g. `mad r6:f, r4:f,
//!   2.0:f, r8:f`. Execution width defaults to the kernel width; suffix the
//!   mnemonic with `(N)` to override (`mov(1) …`).
//! * Operands: `rN:t` (vector), `rN.M:t` (broadcast scalar element),
//!   immediates `3:d`, `1.5:f`, `0xff:ud`. Types: `ub b uw w hf ud d f uq q df`.
//! * `cmp.<cond>.<flag>` writes per-channel flag bits (`eq ne lt le gt ge`).
//! * Predication prefix: `(+f0)` / `(-f1)` before any instruction.
//! * Control flow: `if` (requires predicate), `else`, `endif`, `do`,
//!   `while` (requires predicate), `break`, `continue` — structured, no
//!   explicit labels needed.
//! * Memory: `load.global dst, addr`, `store.slm addr, data`, `fence`.
//! * Misc: `barrier`, `nop`. The final `eot` is appended automatically.
//! * `;` or `//` start comments; blank lines are skipped.

use crate::builder::KernelBuilder;
use crate::insn::{CondOp, MemSpace, Opcode};
use crate::program::Program;
use crate::reg::{FlagReg, Operand, Predicate};
use crate::types::{DataType, Scalar};
use std::fmt;

/// Error produced when assembling a program from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError {
        line,
        message: message.into(),
    }
}

fn parse_dtype(s: &str, line: usize) -> Result<DataType, ParseAsmError> {
    Ok(match s {
        "ub" => DataType::Ub,
        "b" => DataType::B,
        "uw" => DataType::Uw,
        "w" => DataType::W,
        "hf" => DataType::Hf,
        "ud" => DataType::Ud,
        "d" => DataType::D,
        "f" => DataType::F,
        "uq" => DataType::Uq,
        "q" => DataType::Q,
        "df" => DataType::Df,
        other => return Err(err(line, format!("unknown type {other:?}"))),
    })
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseAsmError> {
    let tok = tok.trim();
    if tok == "null" {
        return Ok(Operand::Null);
    }
    let (body, ty) = tok
        .rsplit_once(':')
        .ok_or_else(|| err(line, format!("operand {tok:?} missing :type suffix")))?;
    let dtype = parse_dtype(ty, line)?;
    if let Some(reg_part) = body.strip_prefix('r') {
        if let Some((reg, sub)) = reg_part.split_once('.') {
            let reg: u8 = reg
                .parse()
                .map_err(|_| err(line, format!("bad register in {tok:?}")))?;
            let sub: u8 = sub
                .parse()
                .map_err(|_| err(line, format!("bad subregister in {tok:?}")))?;
            return Ok(Operand::scalar(reg, sub, dtype));
        }
        if let Ok(reg) = reg_part.parse::<u8>() {
            return Ok(Operand::reg(reg, dtype));
        }
    }
    // Immediate.
    let value = if dtype.is_float() {
        Scalar::F(
            body.parse::<f64>()
                .map_err(|_| err(line, format!("bad float {body:?}")))?,
        )
    } else if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        let v = u64::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad hex literal {body:?}")))?;
        if dtype.is_signed_int() {
            Scalar::I(v as i64)
        } else {
            Scalar::U(v)
        }
    } else if dtype.is_signed_int() {
        Scalar::I(
            body.parse()
                .map_err(|_| err(line, format!("bad int {body:?}")))?,
        )
    } else {
        Scalar::U(
            body.parse()
                .map_err(|_| err(line, format!("bad uint {body:?}")))?,
        )
    };
    Ok(Operand::Imm { value, dtype })
}

fn parse_flag(s: &str, line: usize) -> Result<FlagReg, ParseAsmError> {
    match s {
        "f0" => Ok(FlagReg::F0),
        "f1" => Ok(FlagReg::F1),
        other => Err(err(line, format!("unknown flag register {other:?}"))),
    }
}

fn parse_cond(s: &str, line: usize) -> Result<CondOp, ParseAsmError> {
    Ok(match s {
        "eq" => CondOp::Eq,
        "ne" => CondOp::Ne,
        "lt" => CondOp::Lt,
        "le" => CondOp::Le,
        "gt" => CondOp::Gt,
        "ge" => CondOp::Ge,
        other => return Err(err(line, format!("unknown condition {other:?}"))),
    })
}

fn alu_opcode(mnemonic: &str) -> Option<Opcode> {
    use Opcode::*;
    Some(match mnemonic {
        "mov" => Mov,
        "not" => Not,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "shr" => Shr,
        "asr" => Asr,
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "mad" => Mad,
        "min" => Min,
        "max" => Max,
        "abs" => Abs,
        "frc" => Frc,
        "rndd" => Rndd,
        "rndu" => Rndu,
        "inv" => Inv,
        "log" => Log,
        "exp" => Exp,
        "sqrt" => Sqrt,
        "rsqrt" => Rsqrt,
        "pow" => Pow,
        "sin" => Sin,
        "cos" => Cos,
        "idiv" => Idiv,
        "irem" => Irem,
        "fdiv" => Fdiv,
        _ => return None,
    })
}

/// Assembles a program from the textual dialect described in the module
/// docs.
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending source line on any lexical,
/// syntactic, or structural problem (including unbalanced control flow,
/// reported by the underlying builder validation).
pub fn parse_program(text: &str) -> Result<Program, ParseAsmError> {
    let mut builder: Option<KernelBuilder> = None;
    let mut kernel_width = 16u32;

    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let code = raw.split(';').next().unwrap_or("");
        let code = code.split("//").next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }

        // Header: kernel <name> simd<N>
        if let Some(rest) = code.strip_prefix("kernel ") {
            if builder.is_some() {
                return Err(err(line, "duplicate kernel header"));
            }
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(line, "kernel header missing name"))?;
            let width = parts
                .next()
                .and_then(|w| w.strip_prefix("simd"))
                .and_then(|w| w.parse::<u32>().ok())
                .ok_or_else(|| err(line, "kernel header missing simd<N>"))?;
            if !matches!(width, 1 | 4 | 8 | 16 | 32) {
                return Err(err(line, format!("illegal SIMD width {width}")));
            }
            kernel_width = width;
            builder = Some(KernelBuilder::new(name, width));
            continue;
        }
        let b = builder
            .as_mut()
            .ok_or_else(|| err(line, "missing kernel header"))?;

        // Optional predicate prefix.
        let (pred, code) = if let Some(rest) = code.strip_prefix('(') {
            let (inside, after) = rest
                .split_once(')')
                .ok_or_else(|| err(line, "unterminated predicate prefix"))?;
            let inside = inside.trim();
            let (invert, flag) = match inside.as_bytes().first() {
                Some(b'+') => (false, &inside[1..]),
                Some(b'-') => (true, &inside[1..]),
                _ => return Err(err(line, "predicate must start with + or -")),
            };
            let flag = parse_flag(flag.trim(), line)?;
            (Some(Predicate { flag, invert }), after.trim())
        } else {
            (None, code)
        };

        let (head, rest) = match code.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (code, ""),
        };

        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').collect()
        };

        // Control flow and memory first.
        match head {
            "if" => {
                let p = pred.ok_or_else(|| err(line, "if requires a predicate prefix"))?;
                b.if_(p);
                continue;
            }
            "else" => {
                b.else_();
                continue;
            }
            "endif" => {
                b.end_if();
                continue;
            }
            "do" => {
                b.do_();
                continue;
            }
            "while" => {
                let p = pred.ok_or_else(|| err(line, "while requires a predicate prefix"))?;
                b.while_(p);
                continue;
            }
            "break" => {
                let p = pred.ok_or_else(|| err(line, "break requires a predicate prefix"))?;
                b.break_(p);
                continue;
            }
            "continue" => {
                let p = pred.ok_or_else(|| err(line, "continue requires a predicate prefix"))?;
                b.continue_(p);
                continue;
            }
            "barrier" => {
                b.barrier();
                continue;
            }
            "fence" => {
                b.fence();
                continue;
            }
            "nop" => {
                b.op(Opcode::Nop, Operand::Null, &[]);
                continue;
            }
            _ => {}
        }

        if let Some(space_str) = head.strip_prefix("load.") {
            let space = match space_str {
                "global" => MemSpace::Global,
                "slm" => MemSpace::Slm,
                other => return Err(err(line, format!("unknown memory space {other:?}"))),
            };
            if operands.len() != 2 {
                return Err(err(line, "load expects `dst, addr`"));
            }
            let dst = parse_operand(operands[0], line)?;
            let addr = parse_operand(operands[1], line)?;
            if let Some(p) = pred {
                b.pred(p);
            }
            b.load(space, dst, addr);
            continue;
        }
        if let Some(space_str) = head.strip_prefix("store.") {
            let space = match space_str {
                "global" => MemSpace::Global,
                "slm" => MemSpace::Slm,
                other => return Err(err(line, format!("unknown memory space {other:?}"))),
            };
            if operands.len() != 2 {
                return Err(err(line, "store expects `addr, data`"));
            }
            let addr = parse_operand(operands[0], line)?;
            let data = parse_operand(operands[1], line)?;
            if let Some(p) = pred {
                b.pred(p);
            }
            b.store(space, addr, data);
            continue;
        }

        // cmp.<cond>.<flag>
        if let Some(rest_head) = head.strip_prefix("cmp.") {
            let (cond_s, flag_s) = rest_head
                .split_once('.')
                .ok_or_else(|| err(line, "cmp syntax is cmp.<cond>.<flag>"))?;
            let cond = parse_cond(cond_s, line)?;
            let flag = parse_flag(flag_s, line)?;
            if operands.len() != 2 {
                return Err(err(line, "cmp expects two sources"));
            }
            let a = parse_operand(operands[0], line)?;
            let c = parse_operand(operands[1], line)?;
            if let Some(p) = pred {
                b.pred(p);
            }
            b.cmp(cond, flag, a, c);
            continue;
        }

        // sel.<flag>
        if let Some(flag_s) = head.strip_prefix("sel.") {
            let flag = parse_flag(flag_s, line)?;
            if operands.len() != 3 {
                return Err(err(line, "sel expects `dst, a, b`"));
            }
            let dst = parse_operand(operands[0], line)?;
            let a = parse_operand(operands[1], line)?;
            let c = parse_operand(operands[2], line)?;
            b.sel(flag, dst, a, c);
            continue;
        }

        // Plain ALU op, optional (N) width suffix.
        let (mnemonic, width) = if let Some((m, w)) = head.split_once('(') {
            let w = w
                .strip_suffix(')')
                .and_then(|w| w.parse::<u32>().ok())
                .ok_or_else(|| err(line, format!("bad width suffix in {head:?}")))?;
            (m, Some(w))
        } else {
            (head, None)
        };
        let op = alu_opcode(mnemonic)
            .ok_or_else(|| err(line, format!("unknown mnemonic {mnemonic:?}")))?;
        let want = op.src_count() + 1;
        if operands.len() != want {
            return Err(err(
                line,
                format!(
                    "{mnemonic} expects {want} operands (dst + {} src)",
                    want - 1
                ),
            ));
        }
        let dst = parse_operand(operands[0], line)?;
        let mut srcs = Vec::with_capacity(want - 1);
        for o in &operands[1..] {
            srcs.push(parse_operand(o, line)?);
        }
        if let Some(p) = pred {
            b.pred(p);
        }
        match width {
            Some(w) if w != kernel_width => b.op_w(op, w, dst, &srcs),
            _ => b.op(op, dst, &srcs),
        };
    }

    let b = builder.ok_or_else(|| err(1, "empty source: missing kernel header"))?;
    b.finish().map_err(|e| err(0, e.to_string()))
}

/// Formats a [`Program`] back into the assembly dialect accepted by
/// [`parse_program`]. Structured control flow is emitted as its mnemonics
/// (jump targets are re-derived on parse), so `parse_program(&to_asm(p))`
/// reproduces `p` exactly — a property the test suite checks.
pub fn to_asm(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kernel {} simd{}",
        program.name(),
        program.simd_width()
    );
    let mut indent = 1usize;
    for insn in program.insns() {
        if matches!(insn.op, Opcode::Else | Opcode::EndIf | Opcode::While) {
            indent = indent.saturating_sub(1);
        }
        if insn.op == Opcode::Eot {
            break; // re-appended by the parser
        }
        let pad = "    ".repeat(indent);
        let pred = match insn.pred {
            // `sel` consumes its predicate as a selector, printed as part of
            // the mnemonic instead.
            Some(p) if insn.op != Opcode::Sel => {
                format!("({}{}) ", if p.invert { '-' } else { '+' }, p.flag)
            }
            _ => String::new(),
        };
        let operand = |o: &Operand| o.to_string();
        let line = match insn.op {
            Opcode::If => "if".to_string(),
            Opcode::Else => "else".to_string(),
            Opcode::EndIf => "endif".to_string(),
            Opcode::Do => "do".to_string(),
            Opcode::While => "while".to_string(),
            Opcode::Break => "break".to_string(),
            Opcode::Continue => "continue".to_string(),
            Opcode::Barrier => "barrier".to_string(),
            Opcode::Nop => "nop".to_string(),
            Opcode::Jmpi => panic!("jmpi has no structured asm form"),
            Opcode::Eot => unreachable!(),
            Opcode::Send => match insn.msg.expect("send carries a message") {
                crate::insn::SendMessage::Fence => "fence".to_string(),
                crate::insn::SendMessage::Load { space, addr, .. } => format!(
                    "load.{} {}, {}",
                    space_name(space),
                    operand(&insn.dst),
                    operand(&addr)
                ),
                crate::insn::SendMessage::Store {
                    space, addr, data, ..
                } => format!(
                    "store.{} {}, {}",
                    space_name(space),
                    operand(&addr),
                    operand(&data)
                ),
            },
            Opcode::Cmp => {
                let cm = insn.cond_mod.expect("cmp has a condition modifier");
                format!(
                    "cmp.{}.{} {}, {}",
                    cm.cond,
                    cm.flag,
                    operand(&insn.srcs[0]),
                    operand(&insn.srcs[1])
                )
            }
            Opcode::Sel => {
                let p = insn.pred.expect("sel has a selector predicate");
                format!(
                    "sel.{} {}, {}, {}",
                    p.flag,
                    operand(&insn.dst),
                    operand(&insn.srcs[0]),
                    operand(&insn.srcs[1])
                )
            }
            op => {
                let width = if insn.exec_width != program.simd_width() {
                    format!("({})", insn.exec_width)
                } else {
                    String::new()
                };
                let mut line = format!("{}{} {}", op.mnemonic(), width, operand(&insn.dst));
                for srcv in insn.used_srcs() {
                    let _ = write!(line, ", {}", operand(srcv));
                }
                line
            }
        };
        let _ = writeln!(out, "{pad}{pred}{line}");
        if matches!(insn.op, Opcode::If | Opcode::Else | Opcode::Do) {
            indent += 1;
        }
    }
    out
}

fn space_name(space: MemSpace) -> &'static str {
    match space {
        MemSpace::Global => "global",
        MemSpace::Slm => "slm",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_divergent_kernel() {
        let src = r"
            kernel clamp simd16
                ; clamp r4 to 1.0 where it exceeds it
                cmp.gt.f0 r4:f, 1.0:f
                (+f0) if
                    mov r4:f, 1.0:f
                endif
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.name(), "clamp");
        assert_eq!(p.simd_width(), 16);
        assert_eq!(p.len(), 5); // cmp, if, mov, endif, eot
        assert_eq!(p.insns()[1].jip, Some(3));
    }

    #[test]
    fn matches_builder_output() {
        let src = r"
            kernel axpy simd16
                mul r8:f, r4:f, 3.0:f
                add r8:f, r8:f, r6:f
        ";
        let from_asm = parse_program(src).unwrap();
        let mut b = KernelBuilder::new("axpy", 16);
        b.mul(Operand::rf(8), Operand::rf(4), Operand::imm_f(3.0));
        b.add(Operand::rf(8), Operand::rf(8), Operand::rf(6));
        let from_builder = b.finish().unwrap();
        assert_eq!(from_asm.insns(), from_builder.insns());
    }

    #[test]
    fn loops_and_memory() {
        let src = r"
            kernel scan simd8
                mov r6:ud, 0:ud
                do
                    shl r8:ud, r6:ud, 2:ud
                    add r8:ud, r8:ud, r3.0:ud
                    load.global r10:f, r8:ud
                    store.slm r8:ud, r10:f
                    add r6:ud, r6:ud, 1:ud
                    cmp.lt.f0 r6:ud, 16:ud
                (+f0) while
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.simd_width(), 8);
        let whiles: Vec<_> = p.insns().iter().filter(|i| i.op == Opcode::While).collect();
        assert_eq!(whiles.len(), 1);
        assert_eq!(whiles[0].jip, Some(2), "while loops to first body insn");
    }

    #[test]
    fn scalar_and_hex_operands() {
        let src = r"
            kernel k simd16
                and r6:ud, r1:ud, 0xff:ud
                add r6:ud, r6:ud, r3.2:ud
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.insns()[0].srcs[1],
            Operand::Imm {
                value: Scalar::U(255),
                dtype: DataType::Ud
            }
        );
        assert_eq!(p.insns()[1].srcs[1], Operand::scalar(3, 2, DataType::Ud));
    }

    #[test]
    fn width_override() {
        let src = r"
            kernel k simd16
                mov(1) r6:ud, 7:ud
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.insns()[0].exec_width, 1);
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let e = parse_program("kernel k simd16\n frobnicate r1:f, r2:f").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn rejects_missing_header() {
        let e = parse_program("mov r1:f, r2:f").unwrap_err();
        assert!(e.message.contains("missing kernel header"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let e = parse_program("kernel k simd16\n add r1:f, r2:f").unwrap_err();
        assert!(e.message.contains("expects 3 operands"), "{e}");
    }

    #[test]
    fn rejects_if_without_predicate() {
        let e = parse_program("kernel k simd16\n if\n endif").unwrap_err();
        assert!(e.message.contains("requires a predicate"));
    }

    #[test]
    fn predicated_alu() {
        let src = r"
            kernel k simd16
                cmp.lt.f1 r4:f, 0.0:f
                (-f1) mov r4:f, 0.0:f
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.insns()[1].pred, Some(Predicate::inverted(FlagReg::F1)));
    }

    #[test]
    fn disassembly_round_trips() {
        let src = r"
            kernel round simd16
                and r6:ud, r1:ud, 15:ud
                cmp.lt.f0 r6:ud, 8:ud
                (+f0) if
                    mov r8:f, 1.0:f
                    do
                        mad r8:f, r8:f, 1.5:f, 0.25:f
                        add r6:ud, r6:ud, 1:ud
                        cmp.lt.f1 r6:ud, 20:ud
                        (-f1) break
                        cmp.lt.f0 r6:ud, 32:ud
                    (+f0) while
                else
                    sel.f1 r8:f, 2.0:f, 3.0:f
                endif
                shl r10:ud, r1:ud, 2:ud
                store.global r10:ud, r8:f
                fence
                barrier
                mov(1) r12:ud, 0xff:ud
        ";
        let p = parse_program(src).unwrap();
        let text = to_asm(&p);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(
            p.insns(),
            p2.insns(),
            "round trip differs:
{text}"
        );
        assert_eq!(p.name(), p2.name());
        assert_eq!(p.simd_width(), p2.simd_width());
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "kernel k simd16\n\n// full-line comment\n mov r6:f, 1.0:f ; trailing\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 2);
    }
}
