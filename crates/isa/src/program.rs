//! Kernel programs: validated instruction sequences.

use crate::insn::{Instruction, Opcode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when validating a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateProgramError {
    /// Index of the offending instruction.
    pub index: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction at {}: {}", self.index, self.message)
    }
}

impl std::error::Error for ValidateProgramError {}

/// A complete, validated kernel program.
///
/// Programs are immutable once built; construct them with
/// [`KernelBuilder`](crate::builder::KernelBuilder).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    simd_width: u32,
    insns: Vec<Instruction>,
}

impl Program {
    /// Creates a program from raw parts, validating structural invariants:
    /// the program must end with `eot`, every branch must carry a resolved
    /// in-range target, and control-flow regions must nest properly.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateProgramError`] describing the first violation.
    pub fn from_parts(
        name: impl Into<String>,
        simd_width: u32,
        insns: Vec<Instruction>,
    ) -> Result<Self, ValidateProgramError> {
        let err = |index: usize, message: &str| ValidateProgramError {
            index,
            message: message.to_string(),
        };
        if insns.is_empty() {
            return Err(err(0, "program is empty"));
        }
        if insns.last().map(|i| i.op) != Some(Opcode::Eot) {
            return Err(err(insns.len() - 1, "program must end with eot"));
        }
        let mut depth = 0i32;
        for (i, insn) in insns.iter().enumerate() {
            if insn.op.is_branch() && insn.jip.is_none() {
                return Err(err(i, "branch with unresolved jip"));
            }
            for t in [insn.jip, insn.uip].into_iter().flatten() {
                if t >= insns.len() {
                    return Err(err(i, "jump target out of range"));
                }
            }
            match insn.op {
                Opcode::If | Opcode::Do => depth += 1,
                Opcode::EndIf | Opcode::While => {
                    depth -= 1;
                    if depth < 0 {
                        return Err(err(i, "unmatched region close"));
                    }
                }
                _ => {}
            }
            if insn.op == Opcode::Send && insn.msg.is_none() {
                return Err(err(i, "send without message descriptor"));
            }
        }
        if depth != 0 {
            return Err(err(insns.len() - 1, "unclosed control-flow region"));
        }
        Ok(Self {
            name: name.into(),
            simd_width,
            insns,
        })
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compiled SIMD width of the kernel (channels per EU thread).
    pub fn simd_width(&self) -> u32 {
        self.simd_width
    }

    /// The instruction sequence.
    pub fn insns(&self) -> &[Instruction] {
        &self.insns
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when the program has no instructions (never true for validated
    /// programs, which contain at least `eot`).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Static basic blocks as half-open instruction ranges, in program
    /// order.
    ///
    /// Leaders are the entry instruction, every branch target (`jip`/`uip`),
    /// and every instruction following a branch; each block runs from its
    /// leader to the next leader (or the end of the program). Divergence
    /// profiles aggregate per-instruction statistics over these ranges.
    ///
    /// # Examples
    ///
    /// ```
    /// use iwc_isa::{KernelBuilder, Operand};
    ///
    /// let mut b = KernelBuilder::new("straightline", 8);
    /// b.add(Operand::rud(6), Operand::rud(1), Operand::imm_ud(1));
    /// let p = b.finish()?;
    /// assert_eq!(p.basic_blocks(), vec![0..p.len()]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn basic_blocks(&self) -> Vec<std::ops::Range<usize>> {
        let mut leader = vec![false; self.insns.len()];
        leader[0] = true;
        for (i, insn) in self.insns.iter().enumerate() {
            let targets = [insn.jip, insn.uip].into_iter().flatten();
            let mut jumps = false;
            for t in targets {
                leader[t] = true;
                jumps = true;
            }
            if (jumps || insn.op.is_branch()) && i + 1 < self.insns.len() {
                leader[i + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0usize;
        for (i, &lead) in leader.iter().enumerate().skip(1) {
            if lead {
                blocks.push(start..i);
                start = i;
            }
        }
        blocks.push(start..self.insns.len());
        blocks
    }

    /// Highest GRF register referenced plus one (register pressure estimate).
    pub fn grf_high_water(&self) -> u32 {
        let mut hi = 0u32;
        for insn in &self.insns {
            let mut ops: Vec<_> = insn.read_operands();
            ops.push(insn.dst);
            for op in ops {
                if let Some((_, end)) = op.grf_byte_range(insn.exec_width) {
                    hi = hi.max(end.div_ceil(crate::reg::GRF_BYTES));
                }
            }
        }
        hi
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} (simd{}):", self.name, self.simd_width)?;
        for (i, insn) in self.insns.iter().enumerate() {
            writeln!(f, "  {i:4}: {insn}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instruction;
    use crate::reg::Operand;
    use crate::types::DataType;

    fn eot() -> Instruction {
        Instruction::alu(Opcode::Eot, 1, DataType::Ud, Operand::Null, &[])
    }

    #[test]
    fn rejects_empty() {
        assert!(Program::from_parts("k", 16, vec![]).is_err());
    }

    #[test]
    fn rejects_missing_eot() {
        let add = Instruction::alu(
            Opcode::Add,
            16,
            DataType::F,
            Operand::rf(2),
            &[Operand::rf(4), Operand::rf(6)],
        );
        let e = Program::from_parts("k", 16, vec![add]).unwrap_err();
        assert!(e.to_string().contains("eot"));
    }

    #[test]
    fn rejects_unresolved_branch() {
        let mut iff = Instruction::alu(Opcode::If, 16, DataType::Ud, Operand::Null, &[]);
        iff.jip = None;
        let e = Program::from_parts("k", 16, vec![iff, eot()]).unwrap_err();
        assert!(e.to_string().contains("unresolved"));
    }

    #[test]
    fn rejects_unbalanced_regions() {
        let endif = Instruction::alu(Opcode::EndIf, 16, DataType::Ud, Operand::Null, &[]);
        let e = Program::from_parts("k", 16, vec![endif, eot()]).unwrap_err();
        assert!(e.to_string().contains("unmatched"));
    }

    #[test]
    fn accepts_minimal_program() {
        let p = Program::from_parts("k", 8, vec![eot()]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.simd_width(), 8);
        assert_eq!(p.name(), "k");
    }

    #[test]
    fn grf_high_water_tracks_spans() {
        let add = Instruction::alu(
            Opcode::Add,
            16,
            DataType::F,
            Operand::rf(10), // r10-r11 at SIMD16
            &[Operand::rf(4), Operand::rf(6)],
        );
        let p = Program::from_parts("k", 16, vec![add, eot()]).unwrap();
        assert_eq!(p.grf_high_water(), 12);
    }
}
