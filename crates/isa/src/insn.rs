//! Instructions: opcodes, condition codes, memory messages.

use crate::reg::{FlagReg, Operand, Predicate};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Instruction opcode.
///
/// Opcodes are grouped by the execution pipe that consumes them: most integer
/// and FP arithmetic issues to the 4-wide FPU pipe, extended math to the
/// 4-wide EM pipe, memory operations to the SEND pipe, and control flow is
/// resolved at issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // --- FPU pipe ---
    /// Copy / type-convert.
    Mov,
    /// Per-channel select: `dst = pred ? src0 : src1` (predicate from flag).
    Sel,
    /// Bitwise NOT.
    Not,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left logical.
    Shl,
    /// Shift right logical.
    Shr,
    /// Shift right arithmetic.
    Asr,
    /// Add.
    Add,
    /// Subtract (`src0 - src1`).
    Sub,
    /// Multiply.
    Mul,
    /// Multiply-add: `dst = src0 * src1 + src2`.
    Mad,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Fractional part (`x - floor(x)`).
    Frc,
    /// Round down (floor).
    Rndd,
    /// Round up (ceil).
    Rndu,
    /// Compare; writes per-channel flag bits via the condition modifier.
    Cmp,
    // --- EM (extended math) pipe ---
    /// Reciprocal.
    Inv,
    /// Base-2 logarithm.
    Log,
    /// Base-2 exponential.
    Exp,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Power (`src0 ^ src1`).
    Pow,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Integer divide (quotient).
    Idiv,
    /// Integer remainder.
    Irem,
    /// FP divide.
    Fdiv,
    // --- control flow (resolved at issue, no execution pipe occupancy) ---
    /// Begin a divergent `if` region.
    If,
    /// Begin the `else` half of an `if` region.
    Else,
    /// Reconverge an `if` region.
    EndIf,
    /// Mark the head of a loop.
    Do,
    /// Loop back-edge; channels whose predicate holds iterate again.
    While,
    /// Remove channels from the enclosing loop.
    Break,
    /// Send channels to the loop back-edge early.
    Continue,
    /// Unconditional scalar jump (uniform; asserts non-divergent use).
    Jmpi,
    // --- SEND pipe ---
    /// Memory access (see [`SendMessage`]).
    Send,
    // --- misc ---
    /// Workgroup barrier.
    Barrier,
    /// No operation.
    Nop,
    /// End of thread.
    Eot,
}

/// Which EU pipe an opcode occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pipe {
    /// 4-wide main ALU (int + FP + FMA).
    Fpu,
    /// 4-wide extended-math ALU.
    Em,
    /// Memory/sampler message pipe.
    Send,
    /// Resolved in the front end; occupies no execution pipe.
    Control,
}

impl Opcode {
    /// The pipe this opcode issues to.
    pub fn pipe(self) -> Pipe {
        use Opcode::*;
        match self {
            Mov | Sel | Not | And | Or | Xor | Shl | Shr | Asr | Add | Sub | Mul | Mad | Min
            | Max | Abs | Frc | Rndd | Rndu | Cmp => Pipe::Fpu,
            Inv | Log | Exp | Sqrt | Rsqrt | Pow | Sin | Cos | Idiv | Irem | Fdiv => Pipe::Em,
            Send => Pipe::Send,
            If | Else | EndIf | Do | While | Break | Continue | Jmpi | Barrier | Nop | Eot => {
                Pipe::Control
            }
        }
    }

    /// Number of source operands the opcode consumes.
    pub fn src_count(self) -> usize {
        use Opcode::*;
        match self {
            Mov | Not | Abs | Frc | Rndd | Rndu | Inv | Log | Exp | Sqrt | Rsqrt | Sin | Cos => 1,
            Sel | And | Or | Xor | Shl | Shr | Asr | Add | Sub | Mul | Min | Max | Cmp | Pow
            | Idiv | Irem | Fdiv => 2,
            Mad => 3,
            If | Else | EndIf | Do | While | Break | Continue | Jmpi | Send | Barrier | Nop
            | Eot => 0,
        }
    }

    /// True for control-flow opcodes that carry a jump target.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::If
                | Opcode::Else
                | Opcode::While
                | Opcode::Break
                | Opcode::Continue
                | Opcode::Jmpi
        )
    }

    /// Lower-case mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Mov => "mov",
            Sel => "sel",
            Not => "not",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Asr => "asr",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Mad => "mad",
            Min => "min",
            Max => "max",
            Abs => "abs",
            Frc => "frc",
            Rndd => "rndd",
            Rndu => "rndu",
            Cmp => "cmp",
            Inv => "inv",
            Log => "log",
            Exp => "exp",
            Sqrt => "sqrt",
            Rsqrt => "rsqrt",
            Pow => "pow",
            Sin => "sin",
            Cos => "cos",
            Idiv => "idiv",
            Irem => "irem",
            Fdiv => "fdiv",
            If => "if",
            Else => "else",
            EndIf => "endif",
            Do => "do",
            While => "while",
            Break => "break",
            Continue => "cont",
            Jmpi => "jmpi",
            Send => "send",
            Barrier => "barrier",
            Nop => "nop",
            Eot => "eot",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison condition for `cmp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CondOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl fmt::Display for CondOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Eq => "eq",
            Self::Ne => "ne",
            Self::Lt => "lt",
            Self::Le => "le",
            Self::Gt => "gt",
            Self::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Condition modifier: `cmp` writes the per-channel result of `cond` into
/// `flag`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CondMod {
    /// Comparison performed per channel.
    pub cond: CondOp,
    /// Destination flag register.
    pub flag: FlagReg,
}

/// Memory space addressed by a `send`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Global memory, backed by the L3 → LLC → DRAM hierarchy.
    Global,
    /// Shared local memory (per workgroup, highly banked).
    Slm,
}

/// Message descriptor of a `send` instruction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SendMessage {
    /// Per-channel gather load: channel `i` loads `dtype` from the byte
    /// address in channel `i` of `addr`; the result is written to the
    /// instruction destination.
    Load {
        /// Target memory space.
        space: MemSpace,
        /// Per-channel byte addresses (UD vector operand).
        addr: Operand,
        /// Element type loaded.
        dtype: DataType,
    },
    /// Per-channel scatter store of `data` to the addresses in `addr`.
    Store {
        /// Target memory space.
        space: MemSpace,
        /// Per-channel byte addresses (UD vector operand).
        addr: Operand,
        /// Per-channel data to store.
        data: Operand,
        /// Element type stored.
        dtype: DataType,
    },
    /// Memory fence; completes when all prior memory operations of the
    /// thread are globally visible.
    Fence,
}

impl SendMessage {
    /// The memory space accessed, if any.
    pub fn space(&self) -> Option<MemSpace> {
        match self {
            Self::Load { space, .. } | Self::Store { space, .. } => Some(*space),
            Self::Fence => None,
        }
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Self::Store { .. })
    }
}

/// One decoded instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// SIMD execution width (1, 4, 8, 16, or 32 channels).
    pub exec_width: u32,
    /// Execution data type (type of the destination / the ALU operation).
    pub dtype: DataType,
    /// Destination operand ([`Operand::Null`] when unused).
    pub dst: Operand,
    /// Source operands; only the first [`Opcode::src_count`] entries are used.
    pub srcs: [Operand; 3],
    /// Optional predicate gating per-channel execution.
    pub pred: Option<Predicate>,
    /// Optional condition modifier (flag write), used by `cmp`.
    pub cond_mod: Option<CondMod>,
    /// Jump target (instruction index) for branch opcodes, resolved by the
    /// program builder.
    pub jip: Option<usize>,
    /// Secondary jump target (`if` → `endif` when no `else`; `break` → loop
    /// exit), resolved by the program builder.
    pub uip: Option<usize>,
    /// Message descriptor for `send`.
    pub msg: Option<SendMessage>,
}

impl Instruction {
    /// Creates a basic ALU instruction with no predication.
    pub fn alu(
        op: Opcode,
        exec_width: u32,
        dtype: DataType,
        dst: Operand,
        srcs: &[Operand],
    ) -> Self {
        assert!(
            srcs.len() == op.src_count(),
            "{op} expects {} sources, got {}",
            op.src_count(),
            srcs.len()
        );
        let mut s = [Operand::Null; 3];
        s[..srcs.len()].copy_from_slice(srcs);
        Self {
            op,
            exec_width,
            dtype,
            dst,
            srcs: s,
            pred: None,
            cond_mod: None,
            jip: None,
            uip: None,
            msg: None,
        }
    }

    /// The pipe the instruction occupies.
    pub fn pipe(&self) -> Pipe {
        self.op.pipe()
    }

    /// Source operands actually used by the opcode.
    pub fn used_srcs(&self) -> &[Operand] {
        &self.srcs[..self.op.src_count()]
    }

    /// All register operands read by this instruction, including address and
    /// data operands of a `send` message.
    pub fn read_operands(&self) -> Vec<Operand> {
        let mut out: Vec<Operand> = self
            .used_srcs()
            .iter()
            .copied()
            .filter(|o| o.grf_reg().is_some())
            .collect();
        if let Some(msg) = &self.msg {
            match msg {
                SendMessage::Load { addr, .. } => out.push(*addr),
                SendMessage::Store { addr, data, .. } => {
                    out.push(*addr);
                    out.push(*data);
                }
                SendMessage::Fence => {}
            }
        }
        out
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.pred {
            write!(f, "{p} ")?;
        }
        write!(f, "{}({})", self.op, self.exec_width)?;
        if let Some(cm) = self.cond_mod {
            write!(f, ".{}.{}", cm.cond, cm.flag)?;
        }
        if !self.dst.is_null() {
            write!(f, " {}", self.dst)?;
        }
        for s in self.used_srcs() {
            write!(f, ", {s}")?;
        }
        if let Some(j) = self.jip {
            write!(f, " jip={j}")?;
        }
        if let Some(u) = self.uip {
            write!(f, " uip={u}")?;
        }
        if let Some(m) = &self.msg {
            write!(f, " {m:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    #[test]
    fn pipes_classified() {
        assert_eq!(Opcode::Mad.pipe(), Pipe::Fpu);
        assert_eq!(Opcode::Sqrt.pipe(), Pipe::Em);
        assert_eq!(Opcode::Send.pipe(), Pipe::Send);
        assert_eq!(Opcode::EndIf.pipe(), Pipe::Control);
    }

    #[test]
    fn src_counts() {
        assert_eq!(Opcode::Mov.src_count(), 1);
        assert_eq!(Opcode::Add.src_count(), 2);
        assert_eq!(Opcode::Mad.src_count(), 3);
        assert_eq!(Opcode::Send.src_count(), 0);
    }

    #[test]
    #[should_panic(expected = "expects 2 sources")]
    fn alu_validates_src_count() {
        let _ = Instruction::alu(
            Opcode::Add,
            16,
            DataType::F,
            Operand::rf(1),
            &[Operand::rf(2)],
        );
    }

    #[test]
    fn read_operands_include_send_payload() {
        let mut insn = Instruction::alu(Opcode::Send, 16, DataType::F, Operand::rf(10), &[]);
        insn.msg = Some(SendMessage::Store {
            space: MemSpace::Global,
            addr: Operand::rud(4),
            data: Operand::rf(6),
            dtype: DataType::F,
        });
        let reads = insn.read_operands();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].grf_reg(), Some(4));
        assert_eq!(reads[1].grf_reg(), Some(6));
    }

    #[test]
    fn display_round_trip_contains_parts() {
        let mut insn = Instruction::alu(
            Opcode::Add,
            16,
            DataType::F,
            Operand::rf(12),
            &[Operand::rf(8), Operand::rf(10)],
        );
        insn.pred = Some(Predicate::normal(FlagReg::F0));
        let text = insn.to_string();
        assert!(text.contains("add(16)"), "{text}");
        assert!(text.contains("(+f0)"), "{text}");
        assert!(text.contains("r12:f"), "{text}");
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::If.is_branch());
        assert!(Opcode::While.is_branch());
        assert!(!Opcode::EndIf.is_branch());
        assert!(!Opcode::Add.is_branch());
    }
}
