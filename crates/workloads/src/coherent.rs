//! Coherent (high SIMD-efficiency) workloads.
//!
//! These kernels contain no data-dependent branches (edge handling uses
//! branch-free `min`/`max`/`sel`), so their SIMD efficiency is ~100 % and
//! intra-warp compaction must leave both results and timing unchanged —
//! the left block of Fig. 3.

use crate::util::{emit_addr, gid, RegAlloc, XorShift};
use crate::Built;
use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::CondOp;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::{MemSpace, Opcode};
use iwc_sim::{Launch, MemoryImage};

const SIMD: u32 = 16;
const WG: u32 = 64;

fn f0() -> Predicate {
    Predicate::normal(FlagReg::F0)
}

/// `VA`: `out[i] = a[i] + b[i]`.
pub fn vecadd(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let mut b = KernelBuilder::new("vecadd", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (pa, pb, po) = (ra.vud(), ra.vud(), ra.vud());
    let (va, vb) = (ra.vf(), ra.vf());
    emit_addr(&mut b, pa, gid(), 0, 4);
    emit_addr(&mut b, pb, gid(), 1, 4);
    emit_addr(&mut b, po, gid(), 2, 4);
    b.load(MemSpace::Global, va, pa);
    b.load(MemSpace::Global, vb, pb);
    b.add(va, va, vb);
    b.store(MemSpace::Global, po, va);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(11);
    let a_data: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let b_data: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let a = img.alloc_f32(&a_data);
    let bb = img.alloc_f32(&b_data);
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[a, bb, out]);
    let expect: Vec<f32> = a_data.iter().zip(&b_data).map(|(x, y)| x + y).collect();
    Built {
        name: "VA".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for (i, &want) in expect.iter().enumerate() {
                let got = img.read_f32(out + 4 * i as u32);
                if got != want {
                    return Err(format!("out[{i}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `DP`: `out[i] = a[i] * b[i]` (host reduces the partial products).
pub fn dot_product(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let mut b = KernelBuilder::new("dot", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (pa, pb, po) = (ra.vud(), ra.vud(), ra.vud());
    let (va, vb) = (ra.vf(), ra.vf());
    emit_addr(&mut b, pa, gid(), 0, 4);
    emit_addr(&mut b, pb, gid(), 1, 4);
    emit_addr(&mut b, po, gid(), 2, 4);
    b.load(MemSpace::Global, va, pa);
    b.load(MemSpace::Global, vb, pb);
    b.mul(va, va, vb);
    b.store(MemSpace::Global, po, va);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(12);
    let a_data: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 2.0)).collect();
    let b_data: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 2.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let a = img.alloc_f32(&a_data);
    let bb = img.alloc_f32(&b_data);
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[a, bb, out]);
    let expect: Vec<f32> = a_data.iter().zip(&b_data).map(|(x, y)| x * y).collect();
    Built {
        name: "DP".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for (i, &want) in expect.iter().enumerate() {
                let got = img.read_f32(out + 4 * i as u32);
                if (got - want).abs() > 1e-5 {
                    return Err(format!("out[{i}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `MVM`: `y[row] = Σ_k A[row,k] · x[k]`, 64 columns per row.
pub fn mvm(scale: u32) -> Built {
    let rows = 256 * scale.max(1);
    let cols = 64u32;
    let mut b = KernelBuilder::new("mvm", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (rowbase, k, pa, px) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (acc, va, vx, po) = (ra.vf(), ra.vf(), ra.vf(), ra.vud());
    // rowbase = gid * cols
    b.mul(rowbase, gid(), Operand::imm_ud(cols));
    b.mov(k, Operand::imm_ud(0));
    b.mov(acc, Operand::imm_f(0.0));
    b.do_();
    {
        b.add(pa, rowbase, k);
        emit_addr(&mut b, pa, pa, 0, 4);
        b.load(MemSpace::Global, va, pa);
        emit_addr(&mut b, px, k, 1, 4);
        b.load(MemSpace::Global, vx, px);
        b.mad(acc, va, vx, acc);
        b.add(k, k, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, k, Operand::imm_ud(cols));
    }
    b.while_(f0());
    emit_addr(&mut b, po, gid(), 2, 4);
    b.store(MemSpace::Global, po, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(13);
    let a_data: Vec<f32> = (0..rows * cols).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let x_data: Vec<f32> = (0..cols).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(8 * rows * cols + (1 << 16));
    let a = img.alloc_f32(&a_data);
    let x = img.alloc_f32(&x_data);
    let out = img.alloc(4 * rows);
    let launch = Launch::new(program, rows, WG).with_args(&[a, x, out]);
    Built {
        name: "MVM".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for row in 0..rows {
                let want: f32 = (0..cols)
                    .map(|c| a_data[(row * cols + c) as usize] * x_data[c as usize])
                    .sum();
                let got = img.read_f32(out + 4 * row);
                if (got - want).abs() > 1e-2 {
                    return Err(format!("y[{row}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `MM`: C = A · B over N×N f32 matrices (N = 32·scale-rounded).
pub fn matmul(scale: u32) -> Built {
    let n = 32 * scale.max(1).next_power_of_two().min(4); // power of two, quadratic cost bounded
    let mut b = KernelBuilder::new("matmul", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (i, j, k) = (ra.vud(), ra.vud(), ra.vud());
    let (pa, pb, po) = (ra.vud(), ra.vud(), ra.vud());
    let (acc, va, vb) = (ra.vf(), ra.vf(), ra.vf());
    let logn = n.trailing_zeros();
    b.shr(i, gid(), Operand::imm_ud(logn));
    b.and(j, gid(), Operand::imm_ud(n - 1));
    b.mov(k, Operand::imm_ud(0));
    b.mov(acc, Operand::imm_f(0.0));
    b.do_();
    {
        // A[i*n + k]
        b.shl(pa, i, Operand::imm_ud(logn));
        b.add(pa, pa, k);
        emit_addr(&mut b, pa, pa, 0, 4);
        b.load(MemSpace::Global, va, pa);
        // B[k*n + j]
        b.shl(pb, k, Operand::imm_ud(logn));
        b.add(pb, pb, j);
        emit_addr(&mut b, pb, pb, 1, 4);
        b.load(MemSpace::Global, vb, pb);
        b.mad(acc, va, vb, acc);
        b.add(k, k, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, k, Operand::imm_ud(n));
    }
    b.while_(f0());
    emit_addr(&mut b, po, gid(), 2, 4);
    b.store(MemSpace::Global, po, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(14);
    let a_data: Vec<f32> = (0..n * n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let b_data: Vec<f32> = (0..n * n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n * n + (1 << 16));
    let a = img.alloc_f32(&a_data);
    let bb = img.alloc_f32(&b_data);
    let out = img.alloc(4 * n * n);
    let launch = Launch::new(program, n * n, WG).with_args(&[a, bb, out]);
    Built {
        name: "MM".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for i in 0..n {
                for j in 0..n {
                    let want: f32 = (0..n)
                        .map(|k| a_data[(i * n + k) as usize] * b_data[(k * n + j) as usize])
                        .sum();
                    let got = img.read_f32(out + 4 * (i * n + j));
                    if (got - want).abs() > 1e-2 {
                        return Err(format!("C[{i},{j}] = {got}, want {want}"));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// `Trans-N`: `out[j·N+i] = in[i·N+j]` for an N×N matrix.
pub fn transpose(scale: u32) -> Built {
    let n = 64 * scale.max(1).next_power_of_two().min(4);
    let mut b = KernelBuilder::new("transpose", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (i, j, pi, po, v) = (ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vf());
    let logn = n.trailing_zeros();
    b.shr(i, gid(), Operand::imm_ud(logn));
    b.and(j, gid(), Operand::imm_ud(n - 1));
    emit_addr(&mut b, pi, gid(), 0, 4);
    b.load(MemSpace::Global, v, pi);
    b.shl(po, j, Operand::imm_ud(logn));
    b.add(po, po, i);
    emit_addr(&mut b, po, po, 1, 4);
    b.store(MemSpace::Global, po, v);
    let program = b.finish().expect("valid kernel");

    let data: Vec<f32> = (0..n * n).map(|x| x as f32).collect();
    let mut img = MemoryImage::new(16 * n * n + (1 << 16));
    let a = img.alloc_f32(&data);
    let out = img.alloc(4 * n * n);
    let launch = Launch::new(program, n * n, WG).with_args(&[a, out]);
    Built {
        name: "Trans-N".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for i in 0..n {
                for j in 0..n {
                    let got = img.read_u32(out + 4 * (j * n + i));
                    let want = ((i * n + j) as f32).to_bits();
                    if got != want {
                        return Err(format!("T[{j},{i}] wrong"));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// `Bscholes-N`: branch-free Black-Scholes call pricing with a polynomial
/// cumulative-normal approximation (`sel` handles the sign, no divergence).
pub fn blackscholes(scale: u32) -> Built {
    let n = 512 * scale.max(1);
    const RATE: f32 = 0.02;
    const VOL: f32 = 0.30;
    const T: f32 = 1.0;

    let mut b = KernelBuilder::new("bscholes", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (ps, pk, po) = (ra.vud(), ra.vud(), ra.vud());
    let (s, kk, d1, d2, t0, t1) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let (nd1, nd2, price) = (ra.vf(), ra.vf(), ra.vf());
    emit_addr(&mut b, ps, gid(), 0, 4);
    emit_addr(&mut b, pk, gid(), 1, 4);
    emit_addr(&mut b, po, gid(), 2, 4);
    b.load(MemSpace::Global, s, ps);
    b.load(MemSpace::Global, kk, pk);
    // d1 = (ln(S/K) + (r + v^2/2) T) / (v sqrt(T)); ln x = log2(x) * ln2.
    b.op(Opcode::Fdiv, t0, &[s, kk]);
    b.math(Opcode::Log, t0, t0);
    b.mul(t0, t0, Operand::imm_f(std::f32::consts::LN_2));
    b.add(t0, t0, Operand::imm_f((RATE + VOL * VOL / 2.0) * T));
    b.mov(t1, Operand::imm_f(VOL * T.sqrt()));
    b.op(Opcode::Fdiv, d1, &[t0, t1]);
    b.sub(d2, d1, t1);
    // Logistic approximation of the CND: N(x) ≈ 1 / (1 + exp2(-2.3 x)).
    for (x, nd) in [(d1, nd1), (d2, nd2)] {
        b.mul(t0, x, Operand::imm_f(-2.3));
        b.math(Opcode::Exp, t0, t0);
        b.add(t0, t0, Operand::imm_f(1.0));
        b.math(Opcode::Inv, nd, t0);
    }
    // price = S·N(d1) − K·e^{−rT}·N(d2)
    b.mul(t0, kk, Operand::imm_f((-RATE * T).exp()));
    b.mul(t0, t0, nd2);
    b.mul(price, s, nd1);
    b.sub(price, price, t0);
    emit_addr(&mut b, po, gid(), 2, 4);
    b.store(MemSpace::Global, po, price);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(15);
    let s_data: Vec<f32> = (0..n).map(|_| rng.range_f32(20.0, 120.0)).collect();
    let k_data: Vec<f32> = (0..n).map(|_| rng.range_f32(20.0, 120.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let sp = img.alloc_f32(&s_data);
    let kp = img.alloc_f32(&k_data);
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[sp, kp, out]);
    Built {
        name: "Bscholes-N".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for i in 0..n as usize {
                let (s, k) = (f64::from(s_data[i]), f64::from(k_data[i]));
                let (r, v, t) = (f64::from(RATE), f64::from(VOL), f64::from(T));
                let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
                let d2 = d1 - v * t.sqrt();
                let nd = |x: f64| 1.0 / (1.0 + (2.0f64.powf(-2.3 * x)));
                let want = s * nd(d1) - k * (-r * t).exp() * nd(d2);
                let got = f64::from(img.read_f32(out + 4 * i as u32));
                if (got - want).abs() > 0.05 * want.abs().max(1.0) {
                    return Err(format!("price[{i}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `DCT8`: one 8-point DCT coefficient per work-item.
pub fn dct8(scale: u32) -> Built {
    let rows = 128 * scale.max(1);
    let n = rows * 8;
    let mut b = KernelBuilder::new("dct8", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (u, row, k, pa) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (acc, v, angle, c, kf, uf, po) = (
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vud(),
    );
    b.and(u, gid(), Operand::imm_ud(7));
    b.shr(row, gid(), Operand::imm_ud(3));
    b.mov(k, Operand::imm_ud(0));
    b.mov(acc, Operand::imm_f(0.0));
    b.mov(uf, u); // u as float via mov conversion? dst type f, src ud
    b.do_();
    {
        b.shl(pa, row, Operand::imm_ud(3));
        b.add(pa, pa, k);
        emit_addr(&mut b, pa, pa, 0, 4);
        b.load(MemSpace::Global, v, pa);
        // angle = (2k+1) u π / 16
        b.mov(kf, k);
        b.mad(angle, kf, Operand::imm_f(2.0), Operand::imm_f(1.0));
        b.mul(angle, angle, uf);
        b.mul(angle, angle, Operand::imm_f(std::f32::consts::PI / 16.0));
        b.math(Opcode::Cos, c, angle);
        b.mad(acc, v, c, acc);
        b.add(k, k, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, k, Operand::imm_ud(8));
    }
    b.while_(f0());
    emit_addr(&mut b, po, gid(), 1, 4);
    b.store(MemSpace::Global, po, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(16);
    let data: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let a = img.alloc_f32(&data);
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[a, out]);
    Built {
        name: "DCT8".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let (row, u) = (g / 8, g % 8);
                let want: f64 = (0..8)
                    .map(|k| {
                        f64::from(data[(row * 8 + k) as usize])
                            * (f64::from((2 * k + 1) as f32)
                                * f64::from(u as f32)
                                * std::f64::consts::PI
                                / 16.0)
                                .cos()
                    })
                    .sum();
                let got = f64::from(img.read_f32(out + 4 * g));
                if (got - want).abs() > 1e-2 {
                    return Err(format!("dct[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `MT`: Mersenne-Twister-style integer tempering (10 mixing rounds).
pub fn mersenne(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let mut b = KernelBuilder::new("mersenne", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (p, x, t) = (ra.vud(), ra.vud(), ra.vud());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, x, p);
    for _ in 0..10 {
        b.shr(t, x, Operand::imm_ud(11));
        b.xor(x, x, t);
        b.shl(t, x, Operand::imm_ud(7));
        b.and(t, t, Operand::imm_ud(0x9D2C_5680));
        b.xor(x, x, t);
        b.shl(t, x, Operand::imm_ud(15));
        b.and(t, t, Operand::imm_ud(0xEFC6_0000));
        b.xor(x, x, t);
        b.shr(t, x, Operand::imm_ud(18));
        b.xor(x, x, t);
    }
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, x);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(17);
    let data: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let a = img.alloc_u32(&data);
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[a, out]);
    let temper = |mut x: u32| {
        for _ in 0..10 {
            x ^= x >> 11;
            x ^= (x << 7) & 0x9D2C_5680;
            x ^= (x << 15) & 0xEFC6_0000;
            x ^= x >> 18;
        }
        x
    };
    let expect: Vec<u32> = data.iter().map(|&x| temper(x)).collect();
    Built {
        name: "MT".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for (i, &want) in expect.iter().enumerate() {
                let got = img.read_u32(out + 4 * i as u32);
                if got != want {
                    return Err(format!("mt[{i}] = {got:#x}, want {want:#x}"));
                }
            }
            Ok(())
        })),
    }
}

/// `SCnv`: 5-tap 1-D convolution with branch-free (clamped) edges.
pub fn convolution(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let taps: [f32; 5] = [0.1, 0.2, 0.4, 0.2, 0.1];
    let mut b = KernelBuilder::new("convolution", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (idx, p, po) = (ra.vd(), ra.vud(), ra.vud());
    let (acc, v) = (ra.vf(), ra.vf());
    b.mov(acc, Operand::imm_f(0.0));
    for (ti, &t) in taps.iter().enumerate() {
        let off = ti as i32 - 2;
        // idx = clamp(gid + off, 0, n-1), branch-free via min/max.
        b.add(idx, gid(), Operand::imm_d(off));
        b.max(idx, idx, Operand::imm_d(0));
        b.min(idx, idx, Operand::imm_d(n as i32 - 1));
        b.mov(p, idx);
        emit_addr(&mut b, p, p, 0, 4);
        b.load(MemSpace::Global, v, p);
        b.mad(acc, v, Operand::imm_f(t), acc);
    }
    emit_addr(&mut b, po, gid(), 1, 4);
    b.store(MemSpace::Global, po, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(18);
    let data: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let a = img.alloc_f32(&data);
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[a, out]);
    Built {
        name: "SCnv".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as i32 {
                let want: f32 = taps
                    .iter()
                    .enumerate()
                    .map(|(ti, &t)| {
                        let idx = (g + ti as i32 - 2).clamp(0, n as i32 - 1) as usize;
                        data[idx] * t
                    })
                    .sum();
                let got = img.read_f32(out + 4 * g as u32);
                if (got - want).abs() > 1e-4 {
                    return Err(format!("conv[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `BP`: back-propagation weight update, `w += lr · δ · a` elementwise.
pub fn backprop(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    const LR: f32 = 0.05;
    let mut b = KernelBuilder::new("backprop", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (pw, pd, paq) = (ra.vud(), ra.vud(), ra.vud());
    let (w, d, a) = (ra.vf(), ra.vf(), ra.vf());
    emit_addr(&mut b, pw, gid(), 0, 4);
    emit_addr(&mut b, pd, gid(), 1, 4);
    emit_addr(&mut b, paq, gid(), 2, 4);
    b.load(MemSpace::Global, w, pw);
    b.load(MemSpace::Global, d, pd);
    b.load(MemSpace::Global, a, paq);
    b.mul(d, d, a);
    b.mad(w, d, Operand::imm_f(LR), w);
    b.store(MemSpace::Global, pw, w);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(19);
    let w_data: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let d_data: Vec<f32> = (0..n).map(|_| rng.range_f32(-0.5, 0.5)).collect();
    let a_data: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let wp = img.alloc_f32(&w_data);
    let dp = img.alloc_f32(&d_data);
    let ap = img.alloc_f32(&a_data);
    let launch = Launch::new(program, n, WG).with_args(&[wp, dp, ap]);
    Built {
        name: "BP".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for i in 0..n as usize {
                let want = w_data[i] + LR * (d_data[i] * a_data[i]);
                let got = img.read_f32(wp + 4 * i as u32);
                if (got - want).abs() > 1e-4 {
                    return Err(format!("w[{i}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_sim::GpuConfig;

    fn check(b: Built) {
        let r = b
            .run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            r.simd_efficiency() > 0.95,
            "{:?} efficiency {:.3} should be coherent",
            b.name,
            r.simd_efficiency()
        );
    }

    #[test]
    fn vecadd_correct_and_coherent() {
        check(vecadd(1));
    }

    #[test]
    fn dot_correct() {
        check(dot_product(1));
    }

    #[test]
    fn mvm_correct() {
        check(mvm(1));
    }

    #[test]
    fn matmul_correct() {
        check(matmul(1));
    }

    #[test]
    fn transpose_correct() {
        check(transpose(1));
    }

    #[test]
    fn blackscholes_correct() {
        check(blackscholes(1));
    }

    #[test]
    fn dct8_correct() {
        check(dct8(1));
    }

    #[test]
    fn mersenne_correct() {
        check(mersenne(1));
    }

    #[test]
    fn convolution_correct() {
        check(convolution(1));
    }

    #[test]
    fn backprop_correct() {
        check(backprop(1));
    }
}
