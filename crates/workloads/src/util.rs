//! Common kernel-construction helpers.

use iwc_isa::builder::KernelBuilder;
use iwc_isa::reg::Operand;
use iwc_isa::types::DataType;

/// Register allocator for kernel scratch space.
///
/// A 32-bit vector value at SIMD16 spans two GRF registers, at SIMD8 one.
/// The allocator hands out correctly-spaced register numbers starting after
/// the dispatch ABI area (r0 header, r1-r2 global ids, r3-r4 arguments).
#[derive(Clone, Debug)]
pub struct RegAlloc {
    next: u32,
    step: u32,
}

impl RegAlloc {
    /// Creates an allocator for the given kernel SIMD width, starting at r6.
    pub fn new(simd_width: u32) -> Self {
        Self {
            next: 6,
            step: (simd_width * 4).div_ceil(32).max(1),
        }
    }

    /// Allocates a 32-bit vector register; returns its base GRF number.
    ///
    /// # Panics
    ///
    /// Panics when the 128-register file is exhausted.
    pub fn alloc(&mut self) -> u8 {
        let r = self.next;
        self.next += self.step;
        assert!(self.next <= 128, "register file exhausted");
        r as u8
    }

    /// Allocates a vector of f32.
    pub fn vf(&mut self) -> Operand {
        Operand::rf(self.alloc())
    }

    /// Allocates a vector of u32.
    pub fn vud(&mut self) -> Operand {
        Operand::rud(self.alloc())
    }

    /// Allocates a vector of i32.
    pub fn vd(&mut self) -> Operand {
        Operand::rd(self.alloc())
    }
}

/// Kernel argument `i` as a broadcast scalar u32 (from the dispatch ABI's
/// r3/r4 area).
pub fn arg(i: u8) -> Operand {
    Operand::scalar(3, i, DataType::Ud)
}

/// Kernel argument `i` reinterpreted as a broadcast scalar f32.
pub fn arg_f(i: u8) -> Operand {
    Operand::scalar(3, i, DataType::F)
}

/// The per-channel global work-item id (u32).
pub fn gid() -> Operand {
    Operand::rud(1)
}

/// Emits `dst = arg(base_arg) + index * elem_bytes` — the byte address of
/// element `index` in the buffer passed as argument `base_arg`.
///
/// `elem_bytes` must be a power of two.
pub fn emit_addr(
    b: &mut KernelBuilder,
    dst: Operand,
    index: Operand,
    base_arg: u8,
    elem_bytes: u32,
) {
    assert!(
        elem_bytes.is_power_of_two(),
        "element size must be a power of two"
    );
    let shift = elem_bytes.trailing_zeros();
    if shift == 0 {
        b.add(dst, index, arg(base_arg));
    } else {
        b.shl(dst, index, Operand::imm_ud(shift));
        b.add(dst, dst, arg(base_arg));
    }
}

/// Converts an f32 bit pattern to a u32 kernel argument.
pub fn f32_arg(v: f32) -> u32 {
    v.to_bits()
}

/// Deterministic xorshift for reproducible input generation.
#[derive(Clone, Debug)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform u32 in `[0, bound)`.
    pub fn below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % u64::from(bound.max(1))) as u32
    }

    /// Uniform f32 in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regalloc_simd16_steps_by_two() {
        let mut ra = RegAlloc::new(16);
        assert_eq!(ra.alloc(), 6);
        assert_eq!(ra.alloc(), 8);
        let mut ra8 = RegAlloc::new(8);
        assert_eq!(ra8.alloc(), 6);
        assert_eq!(ra8.alloc(), 7);
    }

    #[test]
    #[should_panic(expected = "register file exhausted")]
    fn regalloc_bounds() {
        let mut ra = RegAlloc::new(16);
        for _ in 0..62 {
            ra.alloc();
        }
    }

    #[test]
    fn emit_addr_shifts() {
        let mut b = KernelBuilder::new("k", 16);
        let mut ra = RegAlloc::new(16);
        let a = ra.vud();
        emit_addr(&mut b, a, gid(), 0, 4);
        let p = b.finish().unwrap();
        assert_eq!(p.len(), 3); // shl, add, eot
    }

    #[test]
    fn xorshift_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = a.unit_f32();
        assert!((0.0..1.0).contains(&v));
        assert!(a.below(10) < 10);
    }
}
