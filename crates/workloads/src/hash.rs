//! Stable content hashing for kernel programs and mask traces.
//!
//! The serve path caches decoded programs across requests, so it needs a
//! key that (a) is identical for identical kernels however they were
//! built, (b) changes whenever any instruction, operand, or immediate
//! changes, and (c) is computable offline with std only. This module
//! provides 64-bit FNV-1a over a canonical byte encoding:
//!
//! * [`program_hash`] — over the SIMD width and the full instruction
//!   stream (every field of every [`Instruction`], via the derived,
//!   field-complete `Debug` encoding — deterministic and exhaustive, so
//!   any operand/immediate/flag difference reaches the hash). The program
//!   *name* is deliberately excluded: two identically-encoded kernels are
//!   the same content whatever they are called.
//! * [`trace_hash`] — over the record stream of an execution-mask
//!   [`Trace`] (mask bits, SIMD width, dtype per record), again excluding
//!   the name.
//!
//! FNV-1a is not collision-resistant against adversaries; the serve cache
//! treats a hash hit as identity for *well-behaved* clients and the tests
//! below pin the sensitivity properties the cache relies on.

use iwc_isa::insn::Instruction;
use iwc_isa::program::Program;
use iwc_trace::Trace;
use std::io::Write as _;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = iwc_trace::hash::FNV_OFFSET;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = iwc_trace::hash::FNV_PRIME;

/// Incremental 64-bit FNV-1a hasher (re-exported from the canonical
/// implementation in `iwc_trace::hash` — the corpus pack index and the
/// results cache key on the identical primitive).
pub use iwc_trace::hash::{fnv1a, Fnv1a};

/// Canonical byte encoding of one instruction, appended to `buf`.
///
/// The derived `Debug` format prints every field (opcode, exec width,
/// dtype, all operands with their immediates, predicate, cond-mod, jump
/// targets, send message), so it is a complete — if verbose — encoding;
/// a `0xff` terminator keeps adjacent instructions from aliasing.
fn encode_insn(buf: &mut Vec<u8>, insn: &Instruction) {
    write!(buf, "{insn:?}").expect("writing to a Vec cannot fail");
    buf.push(0xff);
}

/// Stable content hash of a kernel program: SIMD width plus the encoded
/// instruction stream, name excluded.
pub fn program_hash(program: &Program) -> u64 {
    let mut buf = Vec::with_capacity(program.len() * 64 + 8);
    buf.extend_from_slice(&program.simd_width().to_le_bytes());
    for insn in program.insns() {
        encode_insn(&mut buf, insn);
    }
    fnv1a(&buf)
}

/// Stable content hash of an execution-mask trace: the record stream
/// (mask bits, width, dtype), name excluded. Delegates to the canonical
/// implementation next to the trace format (`iwc_trace::hash`), which
/// keeps this byte encoding — so hashes computed before the pack format
/// existed stay valid.
pub fn trace_hash(trace: &Trace) -> u64 {
    iwc_trace::hash::trace_hash(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::mask::ExecMask;
    use iwc_isa::{DataType, KernelBuilder, Operand};

    fn kernel(imm: u32, dst: u8) -> Program {
        let mut b = KernelBuilder::new("k", 8);
        b.mul(Operand::rud(dst), Operand::rud(1), Operand::imm_ud(imm));
        b.add(Operand::rud(6), Operand::rud(dst), Operand::imm_ud(1));
        b.finish().expect("valid kernel")
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn equal_programs_collide() {
        assert_eq!(program_hash(&kernel(3, 5)), program_hash(&kernel(3, 5)));
    }

    #[test]
    fn name_is_excluded() {
        let mut a = KernelBuilder::new("alpha", 8);
        a.mul(Operand::rud(5), Operand::rud(1), Operand::imm_ud(3));
        let mut b = KernelBuilder::new("beta", 8);
        b.mul(Operand::rud(5), Operand::rud(1), Operand::imm_ud(3));
        assert_eq!(
            program_hash(&a.finish().expect("valid")),
            program_hash(&b.finish().expect("valid"))
        );
    }

    #[test]
    fn immediate_change_diverges() {
        assert_ne!(program_hash(&kernel(3, 5)), program_hash(&kernel(4, 5)));
    }

    #[test]
    fn operand_change_diverges() {
        assert_ne!(program_hash(&kernel(3, 5)), program_hash(&kernel(3, 7)));
    }

    #[test]
    fn simd_width_reaches_the_hash() {
        let mut a = KernelBuilder::new("k", 8);
        a.mul(Operand::rud(5), Operand::rud(1), Operand::imm_ud(3));
        let mut b = KernelBuilder::new("k", 16);
        b.mul(Operand::rud(5), Operand::rud(1), Operand::imm_ud(3));
        assert_ne!(
            program_hash(&a.finish().expect("valid")),
            program_hash(&b.finish().expect("valid"))
        );
    }

    #[test]
    fn catalog_builds_hash_reproducibly_and_consistently() {
        let entries = crate::catalog();
        let built: Vec<_> = entries.iter().map(|e| (e.build)(1)).collect();
        let hashes: Vec<u64> = built
            .iter()
            .map(|b| program_hash(&b.launch.program))
            .collect();
        let again: Vec<u64> = entries
            .iter()
            .map(|e| program_hash(&(e.build)(1).launch.program))
            .collect();
        assert_eq!(hashes, again, "catalog builds must hash deterministically");
        // Some catalog entries deliberately share a kernel (e.g. ray-tracing
        // scene variants differ only in input data), so equal hashes are
        // fine — but only when the instruction streams really are equal.
        for i in 0..built.len() {
            for j in i + 1..built.len() {
                if hashes[i] == hashes[j] {
                    assert_eq!(
                        built[i].launch.program.insns(),
                        built[j].launch.program.insns(),
                        "{} and {} hash-collide with different programs",
                        built[i].name,
                        built[j].name
                    );
                }
            }
        }
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(
            uniq.len() >= built.len() / 2,
            "suspiciously many shared kernels: {} unique of {}",
            uniq.len(),
            built.len()
        );
    }

    #[test]
    fn trace_hash_tracks_records_not_name() {
        let mut a = Trace::new("a");
        a.push(ExecMask::new(0b1010, 4), DataType::F);
        a.push(ExecMask::new(0b1111, 4), DataType::Ud);
        let mut b = Trace::new("b");
        b.push(ExecMask::new(0b1010, 4), DataType::F);
        b.push(ExecMask::new(0b1111, 4), DataType::Ud);
        assert_eq!(trace_hash(&a), trace_hash(&b), "name must not matter");

        let mut c = Trace::new("a");
        c.push(ExecMask::new(0b1011, 4), DataType::F);
        c.push(ExecMask::new(0b1111, 4), DataType::Ud);
        assert_ne!(trace_hash(&a), trace_hash(&c), "mask bits must matter");

        let mut d = Trace::new("a");
        d.push(ExecMask::new(0b1010, 4), DataType::D);
        d.push(ExecMask::new(0b1111, 4), DataType::Ud);
        assert_ne!(trace_hash(&a), trace_hash(&d), "dtype must matter");
    }
}
