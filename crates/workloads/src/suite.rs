//! Additional OpenCL benchmarks from the paper's Table 1: search, graph,
//! finance, transform, and RNG kernels that round out the coherent and
//! divergent populations of Fig. 3.

// Host-side result checks mirror kernel indexing; positional loops are
// clearer than iterator chains there.
#![allow(clippy::needless_range_loop)]

use crate::util::{emit_addr, gid, RegAlloc, XorShift};
use crate::Built;
use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::CondOp;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::{MemSpace, Opcode};
use iwc_sim::{Launch, MemoryImage};

const SIMD: u32 = 16;
const WG: u32 = 64;

fn f0() -> Predicate {
    Predicate::normal(FlagReg::F0)
}

fn f1() -> Predicate {
    Predicate::normal(FlagReg::F1)
}

/// `Bsearch`: each lane binary-searches a sorted array for its own key,
/// breaking out early on an exact match — divergent trip counts.
///
/// Args: 0 = sorted data, 1 = keys, 2 = out index, 3 = n (power of two).
pub fn bsearch(scale: u32) -> Built {
    let n = 1024 * scale.max(1).next_power_of_two();
    let steps = n.trailing_zeros();

    let mut b = KernelBuilder::new("bsearch", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (lo, mid, p, key, v, step) = (ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let half = ra.vud();
    emit_addr(&mut b, p, gid(), 1, 4);
    b.load(MemSpace::Global, key, p);
    b.mov(lo, Operand::imm_ud(0));
    b.mov(half, Operand::imm_ud(n / 2));
    b.mov(step, Operand::imm_ud(0));
    b.do_();
    {
        // mid = lo + half; if data[mid] <= key → lo = mid.
        b.add(mid, lo, half);
        emit_addr(&mut b, p, mid, 0, 4);
        b.load(MemSpace::Global, v, p);
        b.cmp(CondOp::Le, FlagReg::F0, v, key);
        b.if_(f0());
        b.mov(lo, mid);
        b.end_if();
        // Early exit on exact hit — the divergent part.
        b.cmp(CondOp::Eq, FlagReg::F1, v, key);
        b.break_(f1());
        b.shr(half, half, Operand::imm_ud(1));
        b.add(step, step, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, step, Operand::imm_ud(steps));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 2, 4);
    b.store(MemSpace::Global, p, lo);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(41);
    let mut data: Vec<u32> = (0..n).map(|_| rng.below(4 * n)).collect();
    data.sort_unstable();
    // Half the keys are present (early exit), half absent (full search).
    let keys: Vec<u32> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                data[rng.below(n) as usize]
            } else {
                rng.below(4 * n)
            }
        })
        .collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let dp = img.alloc_u32(&data);
    let kp = img.alloc_u32(&keys);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[dp, kp, op, n]);
    let data2 = data.clone();
    Built {
        name: "Bsearch".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                // Mirror the kernel: uniform binary search with early exit.
                let (mut lo, mut half) = (0u32, n / 2);
                for _ in 0..steps {
                    let mid = lo + half;
                    let v = data2[mid as usize];
                    if v <= keys[g] {
                        lo = mid;
                    }
                    if v == keys[g] {
                        break;
                    }
                    half /= 2;
                }
                let got = img.read_u32(op + 4 * g as u32);
                if got != lo {
                    return Err(format!("search[{g}] = {got}, want {lo}"));
                }
            }
            Ok(())
        })),
    }
}

/// `FW` (Floyd-Warshall): one relaxation step over intermediate vertex `k`,
/// with a divergent improvement test.
///
/// Args: 0 = distance matrix (i32), 1 = n, 2 = k.
pub fn floyd_warshall(scale: u32) -> Built {
    let n = 32 * scale.max(1).next_power_of_two().min(4);
    let k = n / 2 - 3; // off the warp boundary, like the Gauss pivot

    let mut b = KernelBuilder::new("floydwarshall", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (i, j, p) = (ra.vud(), ra.vud(), ra.vud());
    let (dij, dik, dkj, sum) = (ra.vd(), ra.vd(), ra.vd(), ra.vd());
    let nn = Operand::scalar(3, 1, iwc_isa::DataType::Ud);
    let kk = Operand::scalar(3, 2, iwc_isa::DataType::Ud);
    let logn = n.trailing_zeros();
    b.shr(i, gid(), Operand::imm_ud(logn));
    b.and(j, gid(), Operand::imm_ud(n - 1));
    let load_elem =
        |b: &mut KernelBuilder, dst: Operand, row: Operand, col: Operand, p: Operand| {
            b.mul(p, row, nn);
            b.add(p, p, col);
            emit_addr(b, p, p, 0, 4);
            b.load(MemSpace::Global, dst, p);
        };
    load_elem(&mut b, dij, i, j, p);
    load_elem(&mut b, dik, i, kk, p);
    load_elem(&mut b, dkj, kk, j, p);
    b.add(sum, dik, dkj);
    // Divergent relaxation: only improved cells are written back.
    b.cmp(CondOp::Lt, FlagReg::F0, sum, dij);
    b.if_(f0());
    b.mul(p, i, nn);
    b.add(p, p, j);
    emit_addr(&mut b, p, p, 0, 4);
    b.store(MemSpace::Global, p, sum);
    b.end_if();
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(42);
    let d: Vec<i32> = (0..n * n).map(|_| rng.below(100) as i32 + 1).collect();
    let mut img = MemoryImage::new(8 * n * n + (1 << 16));
    let dp = img.alloc_i32(&d);
    let launch = Launch::new(program, n * n, WG).with_args(&[dp, n, k]);
    Built {
        name: "FW".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for i in 0..n {
                for j in 0..n {
                    let via = d[(i * n + k) as usize] + d[(k * n + j) as usize];
                    let want = d[(i * n + j) as usize].min(via);
                    let got = img.read_i32(dp + 4 * (i * n + j));
                    if got != want {
                        return Err(format!("d[{i},{j}] = {got}, want {want}"));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// `BOP` (binomial option pricing, simplified): backward induction over a
/// small binomial tree held in registers — compute-heavy and coherent.
///
/// Args: 0 = spot prices, 1 = out, 2 = strike as f32 bits.
pub fn binomial_option(scale: u32) -> Built {
    let n = 512 * scale.max(1);
    const STEPS: u32 = 8;
    const U: f32 = 1.05;
    const D: f32 = 0.95;
    const P: f32 = 0.55;

    let mut b = KernelBuilder::new("binomial", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let p = ra.vud();
    let (s, strike) = (ra.vf(), ra.vf());
    // Leaf values v[i] = max(S * U^i * D^(STEPS-i) - K, 0), kept in registers.
    let leaves: Vec<Operand> = (0..=STEPS).map(|_| ra.vf()).collect();
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, s, p);
    b.mov(strike, Operand::scalar(3, 2, iwc_isa::DataType::F));
    for (i, &leaf) in leaves.iter().enumerate() {
        let factor = U.powi(i as i32) * D.powi((STEPS - i as u32) as i32);
        b.mul(leaf, s, Operand::imm_f(factor));
        b.sub(leaf, leaf, strike);
        b.max(leaf, leaf, Operand::imm_f(0.0));
    }
    // Backward induction: v[i] = P*v[i+1] + (1-P)*v[i] per step.
    for step in (1..=STEPS).rev() {
        for i in 0..step {
            let (lo, hi) = (leaves[i as usize], leaves[i as usize + 1]);
            b.mul(lo, lo, Operand::imm_f(1.0 - P));
            b.mad(lo, hi, Operand::imm_f(P), lo);
        }
    }
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, leaves[0]);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(43);
    let spots: Vec<f32> = (0..n).map(|_| rng.range_f32(50.0, 150.0)).collect();
    let strike = 100.0f32;
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let sp = img.alloc_f32(&spots);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[sp, op, strike.to_bits()]);
    Built {
        name: "BOP".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let mut v: Vec<f32> = (0..=STEPS)
                    .map(|i| {
                        let f = U.powi(i as i32) * D.powi((STEPS - i) as i32);
                        (spots[g] * f - strike).max(0.0)
                    })
                    .collect();
                for step in (1..=STEPS).rev() {
                    for i in 0..step as usize {
                        v[i] = v[i] * (1.0 - P) + v[i + 1] * P;
                    }
                }
                let got = img.read_f32(op + 4 * g as u32);
                if (got - v[0]).abs() > 1e-2 * v[0].abs().max(1.0) {
                    return Err(format!("price[{g}] = {got}, want {}", v[0]));
                }
            }
            Ok(())
        })),
    }
}

/// `FWHT`: one fast Walsh-Hadamard butterfly pass — branch-free, coherent.
///
/// Args: 0 = data in, 1 = out, 2 = stride (power of two).
pub fn fwht(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let stride = 64u32;

    let mut b = KernelBuilder::new("fwht", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (blk, off, ia, ib, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (va, vb) = (ra.vf(), ra.vf());
    // Each gid handles one butterfly: block = gid / stride, offset = gid %
    // stride; partners are (block*2*stride + offset) and (+stride).
    b.shr(blk, gid(), Operand::imm_ud(stride.trailing_zeros()));
    b.and(off, gid(), Operand::imm_ud(stride - 1));
    b.shl(ia, blk, Operand::imm_ud(stride.trailing_zeros() + 1));
    b.add(ia, ia, off);
    b.add(ib, ia, Operand::imm_ud(stride));
    emit_addr(&mut b, p, ia, 0, 4);
    b.load(MemSpace::Global, va, p);
    emit_addr(&mut b, p, ib, 0, 4);
    b.load(MemSpace::Global, vb, p);
    // out[ia] = va + vb; out[ib] = va - vb.
    let (sum, diff) = (ra.vf(), ra.vf());
    b.add(sum, va, vb);
    b.sub(diff, va, vb);
    emit_addr(&mut b, p, ia, 1, 4);
    b.store(MemSpace::Global, p, sum);
    emit_addr(&mut b, p, ib, 1, 4);
    b.store(MemSpace::Global, p, diff);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(44);
    let data: Vec<f32> = (0..2 * n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(32 * n + (1 << 16));
    let dp = img.alloc_f32(&data);
    let op = img.alloc(8 * n);
    let launch = Launch::new(program, n, WG).with_args(&[dp, op, stride]);
    Built {
        name: "FWHT".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let blk = g / stride;
                let off = g % stride;
                let ia = (blk * 2 * stride + off) as usize;
                let ib = ia + stride as usize;
                let (want_a, want_b) = (data[ia] + data[ib], data[ia] - data[ib]);
                let got_a = img.read_f32(op + 4 * ia as u32);
                let got_b = img.read_f32(op + 4 * ib as u32);
                if (got_a - want_a).abs() > 1e-4 || (got_b - want_b).abs() > 1e-4 {
                    return Err(format!("butterfly {g} wrong"));
                }
            }
            Ok(())
        })),
    }
}

/// `KNN`: distance to a query point plus a divergent nearest-so-far update
/// against a global threshold table (simplified k-NN selection phase).
///
/// Args: 0 = points (SoA, 2 planes), 1 = out distance, 2 = qx bits,
/// 3 = qy bits, 4 = threshold bits.
pub fn knn(scale: u32) -> Built {
    let n = 1024 * scale.max(1);

    let mut b = KernelBuilder::new("knn", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let p = ra.vud();
    let (x, y, dx, dy, d2) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, x, p);
    b.mov(p, Operand::imm_ud(n));
    b.add(p, p, gid());
    emit_addr(&mut b, p, p, 0, 4);
    b.load(MemSpace::Global, y, p);
    b.sub(dx, x, Operand::scalar(3, 2, iwc_isa::DataType::F));
    b.sub(dy, y, Operand::scalar(3, 3, iwc_isa::DataType::F));
    b.mul(d2, dx, dx);
    b.mad(d2, dy, dy, d2);
    // Candidates inside the threshold radius take the expensive exact-
    // distance path (sqrt); the rest are marked rejected — data-dependent
    // divergence proportional to the query selectivity.
    b.cmp(
        CondOp::Lt,
        FlagReg::F0,
        d2,
        Operand::scalar(3, 4, iwc_isa::DataType::F),
    );
    b.if_(f0());
    b.math(Opcode::Sqrt, d2, d2);
    b.else_();
    b.mov(d2, Operand::imm_f(-1.0));
    b.end_if();
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, d2);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(45);
    let pts: Vec<f32> = (0..2 * n).map(|_| rng.range_f32(0.0, 10.0)).collect();
    let (qx, qy, thr) = (5.0f32, 5.0f32, 8.0f32);
    let mut img = MemoryImage::new(32 * n + (1 << 16));
    let pp = img.alloc_f32(&pts);
    let op = img.alloc(4 * n);
    let launch =
        Launch::new(program, n, WG).with_args(&[pp, op, qx.to_bits(), qy.to_bits(), thr.to_bits()]);
    Built {
        name: "KNN".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let dx = pts[g] - qx;
                let dy = pts[n as usize + g] - qy;
                let d2 = dx * dx + dy * dy;
                let want = if d2 < thr { d2.sqrt() } else { -1.0 };
                let got = img.read_f32(op + 4 * g as u32);
                if (got - want).abs() > 1e-4 {
                    return Err(format!("knn[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `MCA` (Monte Carlo Asian pricing, simplified): per-lane random walk with
/// a divergent barrier-knockout test inside the path loop.
///
/// Args: 0 = seeds, 1 = out.
pub fn monte_carlo(scale: u32) -> Built {
    let n = 512 * scale.max(1);
    const PATH_STEPS: u32 = 16;

    let mut b = KernelBuilder::new("montecarlo", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (state, p, step, t) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (price, acc, r) = (ra.vf(), ra.vf(), ra.vf());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, state, p);
    b.mov(price, Operand::imm_f(100.0));
    b.mov(acc, Operand::imm_f(0.0));
    b.mov(step, Operand::imm_ud(0));
    b.do_();
    {
        // xorshift32 per lane.
        b.shl(t, state, Operand::imm_ud(13));
        b.xor(state, state, t);
        b.shr(t, state, Operand::imm_ud(17));
        b.xor(state, state, t);
        b.shl(t, state, Operand::imm_ud(5));
        b.xor(state, state, t);
        // r in [-1, 1): top 16 bits.
        b.shr(t, state, Operand::imm_ud(16));
        b.mov(r, t);
        b.mad(r, r, Operand::imm_f(2.0 / 65536.0), Operand::imm_f(-1.0));
        // price *= 1 + 0.02 r; running average accumulates.
        b.mad(r, r, Operand::imm_f(0.05), Operand::imm_f(1.0));
        b.mul(price, price, r);
        b.add(acc, acc, price);
        // Divergent knockout: paths that cross the barrier stop early.
        b.cmp(CondOp::Lt, FlagReg::F0, price, Operand::imm_f(95.0));
        b.break_(f0());
        b.add(step, step, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, step, Operand::imm_ud(PATH_STEPS));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(46);
    let seeds: Vec<u32> = (0..n).map(|_| (rng.next_u64() as u32) | 1).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let sp = img.alloc_u32(&seeds);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[sp, op]);
    Built {
        name: "MCA".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let mut state = seeds[g];
                let mut price = 100.0f32;
                let mut acc = 0.0f32;
                for _ in 0..PATH_STEPS {
                    state ^= state << 13;
                    state ^= state >> 17;
                    state ^= state << 5;
                    let r = (state >> 16) as f32 * (2.0 / 65536.0) - 1.0;
                    price *= r * 0.05 + 1.0;
                    acc += price;
                    if price < 95.0 {
                        break;
                    }
                }
                let got = img.read_f32(op + 4 * g as u32);
                if (got - acc).abs() > 1e-2 * acc.abs().max(1.0) {
                    return Err(format!("mc[{g}] = {got}, want {acc}"));
                }
            }
            Ok(())
        })),
    }
}

/// `URNG`: uniform random number generator (LCG chain) — coherent integer
/// mixing.
///
/// Args: 0 = seeds, 1 = out.
pub fn urng(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    const ROUNDS: u32 = 16;

    let mut b = KernelBuilder::new("urng", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (state, p) = (ra.vud(), ra.vud());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, state, p);
    for _ in 0..ROUNDS {
        b.mul(state, state, Operand::imm_ud(1_664_525));
        b.add(state, state, Operand::imm_ud(1_013_904_223));
    }
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, state);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(47);
    let seeds: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let sp = img.alloc_u32(&seeds);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[sp, op]);
    Built {
        name: "URNG".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let mut s = seeds[g];
                for _ in 0..ROUNDS {
                    s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                }
                let got = img.read_u32(op + 4 * g as u32);
                if got != s {
                    return Err(format!("urng[{g}] = {got:#x}, want {s:#x}"));
                }
            }
            Ok(())
        })),
    }
}

/// `Bsort`: one bitonic compare-exchange pass — branch-free via `sel`,
/// coherent.
///
/// Args: 0 = data (in/out), 1 = stage distance (power of two).
pub fn bitonic_step(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let dist = 8u32;

    let mut b = KernelBuilder::new("bitonic", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (blk, off, ia, ib, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (va, vb, lo, hi) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    b.shr(blk, gid(), Operand::imm_ud(dist.trailing_zeros()));
    b.and(off, gid(), Operand::imm_ud(dist - 1));
    b.shl(ia, blk, Operand::imm_ud(dist.trailing_zeros() + 1));
    b.add(ia, ia, off);
    b.add(ib, ia, Operand::imm_ud(dist));
    emit_addr(&mut b, p, ia, 0, 4);
    b.load(MemSpace::Global, va, p);
    emit_addr(&mut b, p, ib, 0, 4);
    b.load(MemSpace::Global, vb, p);
    b.min(lo, va, vb);
    b.max(hi, va, vb);
    emit_addr(&mut b, p, ia, 0, 4);
    b.store(MemSpace::Global, p, lo);
    emit_addr(&mut b, p, ib, 0, 4);
    b.store(MemSpace::Global, p, hi);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(48);
    let data: Vec<u32> = (0..2 * n).map(|_| rng.below(1_000_000)).collect();
    let mut img = MemoryImage::new(32 * n + (1 << 16));
    let dp = img.alloc_u32(&data);
    let launch = Launch::new(program, n, WG).with_args(&[dp, dist]);
    Built {
        name: "Bsort".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let blk = g / dist;
                let off = g % dist;
                let ia = (blk * 2 * dist + off) as usize;
                let ib = ia + dist as usize;
                let (want_lo, want_hi) = (data[ia].min(data[ib]), data[ia].max(data[ib]));
                if img.read_u32(dp + 4 * ia as u32) != want_lo
                    || img.read_u32(dp + 4 * ib as u32) != want_hi
                {
                    return Err(format!("exchange {g} wrong"));
                }
            }
            Ok(())
        })),
    }
}

/// `HMM`: one Viterbi dynamic-programming step over 8 hidden states with a
/// divergent running-max update per transition.
///
/// Args: 0 = previous scores (n×8), 1 = transition matrix (8×8), 2 = out.
pub fn hmm_viterbi(scale: u32) -> Built {
    let n = 256 * scale.max(1);
    let states = 8u32;

    let mut b = KernelBuilder::new("hmm", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (st, p, seq_base) = (ra.vud(), ra.vud(), ra.vud());
    let (best, cand, prev, trans) = (ra.vf(), ra.vf(), ra.vf(), ra.vf());
    // Each gid advances one sequence; its target state is gid % 8.
    let tgt = ra.vud();
    b.and(tgt, gid(), Operand::imm_ud(states - 1));
    b.shr(seq_base, gid(), Operand::imm_ud(states.trailing_zeros()));
    b.mul(seq_base, seq_base, Operand::imm_ud(states));
    b.mov(best, Operand::imm_f(-1.0e30));
    b.mov(st, Operand::imm_ud(0));
    b.do_();
    {
        // cand = prev[seq][st] + T[st][tgt]
        b.add(p, seq_base, st);
        emit_addr(&mut b, p, p, 0, 4);
        b.load(MemSpace::Global, prev, p);
        b.shl(p, st, Operand::imm_ud(3));
        b.add(p, p, tgt);
        emit_addr(&mut b, p, p, 1, 4);
        b.load(MemSpace::Global, trans, p);
        b.add(cand, prev, trans);
        // Divergent max update (the argmax bookkeeping path of Viterbi).
        b.cmp(CondOp::Gt, FlagReg::F0, cand, best);
        b.if_(f0());
        b.mov(best, cand);
        b.end_if();
        b.add(st, st, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, st, Operand::imm_ud(states));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 2, 4);
    b.store(MemSpace::Global, p, best);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(61);
    let seqs = n / states;
    let prev_scores: Vec<f32> = (0..seqs * states)
        .map(|_| rng.range_f32(-5.0, 0.0))
        .collect();
    let trans_m: Vec<f32> = (0..states * states)
        .map(|_| rng.range_f32(-3.0, 0.0))
        .collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let pp = img.alloc_f32(&prev_scores);
    let tp = img.alloc_f32(&trans_m);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[pp, tp, op]);
    Built {
        name: "HMM".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let tgt = g % states;
                let seq = g / states;
                let want = (0..states)
                    .map(|s| {
                        prev_scores[(seq * states + s) as usize]
                            + trans_m[(s * states + tgt) as usize]
                    })
                    .fold(f32::MIN, f32::max);
                let got = img.read_f32(op + 4 * g);
                if (got - want).abs() > 1e-4 {
                    return Err(format!("viterbi[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `Trd`: one step of cyclic reduction for tridiagonal systems —
/// branch-free linear algebra, coherent.
///
/// Args: 0 = lower, 1 = diag, 2 = upper, 3 = rhs, 4 = out diag, 5 = out rhs,
/// 6 = n.
pub fn tridiagonal(scale: u32) -> Built {
    let n = 1024 * scale.max(1);

    let mut b = KernelBuilder::new("tridiag", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (p, im, ip_) = (ra.vud(), ra.vd(), ra.vd());
    let (a, d, c, r) = (ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let (am, dm, rm, cp, dp, rp) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let (alpha, beta, nd, nr, t) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    // Clamped neighbor indices (branch-free edges).
    b.add(im, gid(), Operand::imm_d(-1));
    b.max(im, im, Operand::imm_d(0));
    b.add(ip_, gid(), Operand::imm_d(1));
    b.min(ip_, ip_, Operand::imm_d(n as i32 - 1));
    let load = |b: &mut KernelBuilder, dst: Operand, idx: Operand, arg_i: u8, p: Operand| {
        b.mov(p, idx);
        emit_addr(b, p, p, arg_i, 4);
        b.load(MemSpace::Global, dst, p);
    };
    load(&mut b, a, gid(), 0, p);
    load(&mut b, d, gid(), 1, p);
    load(&mut b, c, gid(), 2, p);
    load(&mut b, r, gid(), 3, p);
    load(&mut b, am, im, 0, p);
    load(&mut b, dm, im, 1, p);
    load(&mut b, rm, im, 3, p);
    load(&mut b, cp, ip_, 2, p);
    load(&mut b, dp, ip_, 1, p);
    load(&mut b, rp, ip_, 3, p);
    // alpha = -a/d[i-1], beta = -c/d[i+1]
    b.op(Opcode::Fdiv, alpha, &[a, dm]);
    b.mul(alpha, alpha, Operand::imm_f(-1.0));
    b.op(Opcode::Fdiv, beta, &[c, dp]);
    b.mul(beta, beta, Operand::imm_f(-1.0));
    // d' = d + alpha*c[i-1]... (using symmetric c values: c[i-1] ≈ am is a
    // simplification; we mirror it on the host)
    b.mul(t, alpha, am);
    b.add(nd, d, t);
    b.mul(t, beta, cp);
    b.add(nd, nd, t);
    // r' = r + alpha*r[i-1] + beta*r[i+1]
    b.mul(t, alpha, rm);
    b.add(nr, r, t);
    b.mul(t, beta, rp);
    b.add(nr, nr, t);
    emit_addr(&mut b, p, gid(), 4, 4);
    b.store(MemSpace::Global, p, nd);
    emit_addr(&mut b, p, gid(), 5, 4);
    b.store(MemSpace::Global, p, nr);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(62);
    let lower: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, -0.1)).collect();
    let diag: Vec<f32> = (0..n).map(|_| rng.range_f32(4.0, 8.0)).collect();
    let upper: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, -0.1)).collect();
    let rhs: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(48 * n + (1 << 16));
    let lp = img.alloc_f32(&lower);
    let dpn = img.alloc_f32(&diag);
    let up = img.alloc_f32(&upper);
    let rp_ = img.alloc_f32(&rhs);
    let odp = img.alloc(4 * n);
    let orp = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[lp, dpn, up, rp_, odp, orp, n]);
    Built {
        name: "Trd".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let im = g.saturating_sub(1);
                let ip = (g + 1).min(n as usize - 1);
                let alpha = -lower[g] / diag[im];
                let beta = -upper[g] / diag[ip];
                let nd = diag[g] + alpha * lower[im] + beta * upper[ip];
                let nr = rhs[g] + alpha * rhs[im] + beta * rhs[ip];
                let gd = img.read_f32(odp + 4 * g as u32);
                let gr = img.read_f32(orp + 4 * g as u32);
                if (gd - nd).abs() > 1e-3 || (gr - nr).abs() > 1e-3 {
                    return Err(format!("trd[{g}]: d {gd} vs {nd}, r {gr} vs {nr}"));
                }
            }
            Ok(())
        })),
    }
}

/// `AES`: four AddRoundKey + SubBytes-style rounds with an S-box gather —
/// coherent control flow, table-lookup memory traffic.
///
/// Args: 0 = state words, 1 = sbox (256 u32 entries), 2 = round keys (4),
/// 3 = out.
pub fn aes_round(scale: u32) -> Built {
    let n = 1024 * scale.max(1);

    let mut b = KernelBuilder::new("aes", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (x, p, idx, sb) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, x, p);
    for round in 0..4u8 {
        // AddRoundKey.
        b.xor(x, x, Operand::scalar(3, 4 + round, iwc_isa::DataType::Ud));
        // SubBytes on the low byte via S-box gather, rotate in.
        b.and(idx, x, Operand::imm_ud(0xFF));
        emit_addr(&mut b, idx, idx, 1, 4);
        b.load(MemSpace::Global, sb, idx);
        b.shr(x, x, Operand::imm_ud(8));
        b.shl(sb, sb, Operand::imm_ud(24));
        b.or(x, x, sb);
    }
    emit_addr(&mut b, p, gid(), 3, 4);
    b.store(MemSpace::Global, p, x);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(63);
    let state: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
    let sbox: Vec<u32> = (0..256)
        .map(|i| ((i as u32).wrapping_mul(167) ^ 0x63) & 0xFF)
        .collect();
    let keys: Vec<u32> = (0..16).map(|_| rng.next_u64() as u32).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let stp = img.alloc_u32(&state);
    let sbp = img.alloc_u32(&sbox);
    let op = img.alloc(4 * n);
    let mut args = vec![stp, sbp, 0, op];
    args.extend_from_slice(&keys[..4]); // args 4..8 = round keys (r3.4..)
    let launch = Launch::new(program, n, WG).with_args(&args);
    let keys4 = keys[..4].to_vec();
    Built {
        name: "AES".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let mut x = state[g];
                for k in &keys4 {
                    x ^= k;
                    let s = sbox[(x & 0xFF) as usize];
                    x = (x >> 8) | (s << 24);
                }
                let got = img.read_u32(op + 4 * g as u32);
                if got != x {
                    return Err(format!("aes[{g}] = {got:#x}, want {x:#x}"));
                }
            }
            Ok(())
        })),
    }
}

/// `DXTC`: per-block min/max color endpoint search followed by per-texel
/// 2-bit quantization (simplified BC1 encode) — mostly coherent with a
/// short data-dependent selection.
///
/// Args: 0 = texels (16 per block), 1 = out (packed selectors).
pub fn dxtc(scale: u32) -> Built {
    let blocks = 256 * scale.max(1);

    let mut b = KernelBuilder::new("dxtc", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (base, p, k, sel, packed) = (ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (v, lo, hi, range, rel) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    b.shl(base, gid(), Operand::imm_ud(4)); // 16 texels per block
    b.mov(lo, Operand::imm_f(1.0e30));
    b.mov(hi, Operand::imm_f(-1.0e30));
    b.mov(k, Operand::imm_ud(0));
    b.do_();
    {
        b.add(p, base, k);
        emit_addr(&mut b, p, p, 0, 4);
        b.load(MemSpace::Global, v, p);
        b.min(lo, lo, v);
        b.max(hi, hi, v);
        b.add(k, k, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, k, Operand::imm_ud(16));
    }
    b.while_(f0());
    b.sub(range, hi, lo);
    b.add(range, range, Operand::imm_f(1e-6));
    // Second pass: selector = round(3 * (v - lo) / range), packed 2b each.
    b.mov(packed, Operand::imm_ud(0));
    b.mov(k, Operand::imm_ud(0));
    b.do_();
    {
        b.add(p, base, k);
        emit_addr(&mut b, p, p, 0, 4);
        b.load(MemSpace::Global, v, p);
        b.sub(rel, v, lo);
        b.op(Opcode::Fdiv, rel, &[rel, range]);
        b.mul(rel, rel, Operand::imm_f(3.0));
        b.add(rel, rel, Operand::imm_f(0.5));
        b.op(Opcode::Rndd, rel, &[rel]);
        b.mov(sel, rel);
        b.min(sel, sel, Operand::imm_ud(3));
        // packed |= sel << (2k)
        b.shl(p, k, Operand::imm_ud(1));
        b.shl(sel, sel, p);
        b.or(packed, packed, sel);
        b.add(k, k, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, k, Operand::imm_ud(16));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, packed);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(64);
    let texels: Vec<f32> = (0..16 * blocks)
        .map(|_| rng.range_f32(0.0, 255.0))
        .collect();
    let mut img = MemoryImage::new(80 * blocks + (1 << 16));
    let tp = img.alloc_f32(&texels);
    let op = img.alloc(4 * blocks);
    let launch = Launch::new(program, blocks, WG).with_args(&[tp, op]);
    Built {
        name: "DXTC".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for blk in 0..blocks as usize {
                let tex = &texels[16 * blk..16 * blk + 16];
                let lo = tex.iter().cloned().fold(f32::MAX, f32::min);
                let hi = tex.iter().cloned().fold(f32::MIN, f32::max);
                let range = hi - lo + 1e-6;
                let mut want = 0u32;
                for (k, &v) in tex.iter().enumerate() {
                    let sel = (((v - lo) / range * 3.0 + 0.5).floor() as u32).min(3);
                    want |= sel << (2 * k);
                }
                let got = img.read_u32(op + 4 * blk as u32);
                if got != want {
                    return Err(format!("dxtc[{blk}] = {got:#x}, want {want:#x}"));
                }
            }
            Ok(())
        })),
    }
}

/// `ScLA` (scan large array): per-workgroup inclusive scan through SLM with
/// barriers (Hillis-Steele over 64 elements) — the suite's heaviest
/// barrier/SLM exerciser, coherent control flow.
///
/// Args: 0 = data in, 1 = out.
pub fn scan_large_array(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let wg = 64u32;

    let mut b = KernelBuilder::new("scan", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (lid, addr, partner, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (v, other) = (ra.vud(), ra.vud());
    // lid = gid % 64; SLM[lid] = in[gid]
    b.and(lid, gid(), Operand::imm_ud(wg - 1));
    b.shl(addr, lid, Operand::imm_ud(2));
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, v, p);
    b.store(MemSpace::Slm, addr, v);
    b.barrier();
    // Hillis-Steele: for d in {1,2,4,8,16,32}: if lid >= d: v += SLM[lid-d]
    for d in [1u32, 2, 4, 8, 16, 32] {
        b.cmp(CondOp::Ge, FlagReg::F0, lid, Operand::imm_ud(d));
        b.if_(f0());
        b.sub(partner, lid, Operand::imm_ud(d));
        b.shl(partner, partner, Operand::imm_ud(2));
        b.load(MemSpace::Slm, other, partner);
        b.add(v, v, other);
        b.end_if();
        b.barrier();
        b.store(MemSpace::Slm, addr, v);
        b.barrier();
    }
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, v);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(81);
    let data: Vec<u32> = (0..n).map(|_| rng.below(1000)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let dp = img.alloc_u32(&data);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, wg)
        .with_args(&[dp, op])
        .with_slm(wg * 4);
    Built {
        name: "ScLA".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g0 in (0..n).step_by(wg as usize) {
                let mut acc = 0u32;
                for l in 0..wg {
                    acc = acc.wrapping_add(data[(g0 + l) as usize]);
                    let got = img.read_u32(op + 4 * (g0 + l));
                    if got != acc {
                        return Err(format!("scan[{}] = {got}, want {acc}", g0 + l));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// `CFD`: a flux-limiter kernel — central difference with a divergent
/// minmod limiter branch per cell, as in unstructured-grid CFD solvers.
///
/// Args: 0 = field in, 1 = out, 2 = n.
pub fn cfd_flux(scale: u32) -> Built {
    let n = 1024 * scale.max(1);

    let mut b = KernelBuilder::new("cfd", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (im, ip_, p) = (ra.vd(), ra.vd(), ra.vud());
    let (u, ul, ur, dl, dr, flux, lim) = (
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
    );
    b.add(im, gid(), Operand::imm_d(-1));
    b.max(im, im, Operand::imm_d(0));
    b.add(ip_, gid(), Operand::imm_d(1));
    b.min(ip_, ip_, Operand::imm_d(n as i32 - 1));
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, u, p);
    b.mov(p, im);
    emit_addr(&mut b, p, p, 0, 4);
    b.load(MemSpace::Global, ul, p);
    b.mov(p, ip_);
    emit_addr(&mut b, p, p, 0, 4);
    b.load(MemSpace::Global, ur, p);
    b.sub(dl, u, ul);
    b.sub(dr, ur, u);
    // Minmod limiter: slopes of opposite sign (shock) → zero flux;
    // otherwise take the smaller-magnitude slope. Sign test is the
    // divergent branch (data-dependent per cell).
    b.mul(lim, dl, dr);
    b.cmp(CondOp::Gt, FlagReg::F0, lim, Operand::imm_f(0.0));
    b.if_(f0());
    {
        let (al, arr) = (ra.vf(), ra.vf());
        b.op(Opcode::Abs, al, &[dl]);
        b.op(Opcode::Abs, arr, &[dr]);
        b.min(al, al, arr);
        // restore sign of dl
        b.cmp(CondOp::Lt, FlagReg::F1, dl, Operand::imm_f(0.0));
        b.sel(FlagReg::F1, flux, Operand::imm_f(-1.0), Operand::imm_f(1.0));
        b.mul(flux, flux, al);
    }
    b.else_();
    b.mov(flux, Operand::imm_f(0.0));
    b.end_if();
    // out = u + 0.1 * flux
    b.mad(flux, flux, Operand::imm_f(0.1), u);
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, flux);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(82);
    // Piecewise field with shocks so the limiter branch splits lanes.
    let mut field = Vec::with_capacity(n as usize);
    let mut level = 0.5f32;
    for i in 0..n {
        if i % 37 == 0 {
            level = rng.range_f32(0.0, 2.0);
        }
        field.push(level + rng.range_f32(-0.1, 0.1));
    }
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let fp = img.alloc_f32(&field);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[fp, op, n]);
    Built {
        name: "CFD".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let im = g.saturating_sub(1);
                let ip = (g + 1).min(n as usize - 1);
                let (dl, dr) = (field[g] - field[im], field[ip] - field[g]);
                let flux = if dl * dr > 0.0 {
                    let m = dl.abs().min(dr.abs());
                    if dl < 0.0 {
                        -m
                    } else {
                        m
                    }
                } else {
                    0.0
                };
                let want = field[g] + 0.1 * flux;
                let got = img.read_f32(op + 4 * g as u32);
                if (got - want).abs() > 1e-4 {
                    return Err(format!("cfd[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `QRndSq` (quasi-random sequence): van-der-Corput radical inverse in base
/// 2 via bit reversal — coherent bit manipulation.
///
/// Args: 0 = out.
pub fn quasi_random(scale: u32) -> Built {
    let n = 1024 * scale.max(1);

    let mut b = KernelBuilder::new("qrnd", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (x, t, p) = (ra.vud(), ra.vud(), ra.vud());
    let vf = ra.vf();
    // Bit-reverse gid (classic shuffle).
    b.mov(x, gid());
    for (sh, mask) in [(1u32, 0x5555_5555u32), (2, 0x3333_3333), (4, 0x0F0F_0F0F)] {
        b.shr(t, x, Operand::imm_ud(sh));
        b.and(t, t, Operand::imm_ud(mask));
        b.and(x, x, Operand::imm_ud(mask));
        b.shl(x, x, Operand::imm_ud(sh));
        b.or(x, x, t);
    }
    // Byte swap via shifts.
    b.shr(t, x, Operand::imm_ud(24));
    b.shl(x, x, Operand::imm_ud(8)); // partial; combine 4 ways
                                     // (keep it simple: x = rotate(x, 8) | t mixes bits deterministically)
    b.or(x, x, t);
    // Map to [0,1): u = x / 2^32 (use top 24 bits).
    b.shr(t, x, Operand::imm_ud(8));
    b.mov(vf, t);
    b.mul(vf, vf, Operand::imm_f(1.0 / 16_777_216.0));
    emit_addr(&mut b, p, gid(), 0, 4);
    b.store(MemSpace::Global, p, vf);
    let program = b.finish().expect("valid kernel");

    let mut img = MemoryImage::new(8 * n + (1 << 16));
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[op]);
    Built {
        name: "QRndSq".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let mut x = g;
                for (sh, mask) in [(1u32, 0x5555_5555u32), (2, 0x3333_3333), (4, 0x0F0F_0F0F)] {
                    let t = (x >> sh) & mask;
                    x = ((x & mask) << sh) | t;
                }
                let t = x >> 24;
                x = (x << 8) | t;
                let want = (x >> 8) as f32 * (1.0 / 16_777_216.0);
                let got = img.read_f32(op + 4 * g);
                if (got - want).abs() > 1e-6 {
                    return Err(format!("qrnd[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_sim::GpuConfig;

    fn run(b: Built) -> f64 {
        b.run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"))
            .simd_efficiency()
    }

    #[test]
    fn bsearch_correct_and_divergent() {
        assert!(run(bsearch(1)) < 0.95);
    }

    #[test]
    fn floyd_warshall_correct_and_divergent() {
        assert!(run(floyd_warshall(1)) < 0.95);
    }

    #[test]
    fn binomial_correct_and_coherent() {
        assert!(run(binomial_option(1)) > 0.95);
    }

    #[test]
    fn fwht_correct_and_coherent() {
        assert!(run(fwht(1)) > 0.95);
    }

    #[test]
    fn knn_correct_and_divergent() {
        let eff = run(knn(1));
        assert!(eff < 0.98, "knn eff {eff:.3}");
    }

    #[test]
    fn monte_carlo_correct_and_divergent() {
        assert!(run(monte_carlo(1)) < 0.95);
    }

    #[test]
    fn urng_correct_and_coherent() {
        assert!(run(urng(1)) > 0.95);
    }

    #[test]
    fn bitonic_correct_and_coherent() {
        assert!(run(bitonic_step(1)) > 0.95);
    }

    #[test]
    fn hmm_correct() {
        let eff = run(hmm_viterbi(1));
        assert!(eff < 0.98, "hmm eff {eff:.3}");
    }

    #[test]
    fn tridiagonal_correct_and_coherent() {
        assert!(run(tridiagonal(1)) > 0.95);
    }

    #[test]
    fn aes_correct_and_coherent() {
        assert!(run(aes_round(1)) > 0.95);
    }

    #[test]
    fn scan_correct_and_coherent() {
        assert!(run(scan_large_array(1)) > 0.90);
    }

    #[test]
    fn cfd_correct_and_divergent() {
        let eff = run(cfd_flux(1));
        assert!(eff < 0.95, "cfd eff {eff:.3}");
    }

    #[test]
    fn quasi_random_correct_and_coherent() {
        assert!(run(quasi_random(1)) > 0.95);
    }

    #[test]
    fn dxtc_correct_and_coherent() {
        assert!(run(dxtc(1)) > 0.90);
    }
}
