//! Divergence micro-benchmarks (§5.2: Fig. 8 and Table 2).
//!
//! [`mask_pattern`] builds the balanced if/else micro-benchmark whose taken
//! mask is an arbitrary 16-bit pattern over `lane = gid & 15` — the Fig. 8
//! experiment (patterns FFFF, F0F0, 00FF, FF0F, AAAA).
//!
//! [`nested_branches`] builds the L1–L4 nested-branch micro-benchmark of
//! Table 2: level *k* branches on bit *k−1* of the lane id, so the leaf
//! paths execute with masks 5555/AAAA (L1), 1111/4444/8888/2222 (L2), the
//! eight two-bit masks (L3), and the sixteen one-bit masks (L4).

use crate::util::{emit_addr, gid, RegAlloc};
use crate::Built;
use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::CondOp;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::MemSpace;
use iwc_sim::{Launch, MemoryImage};

fn f0() -> Predicate {
    Predicate::normal(FlagReg::F0)
}

/// Number of FP operations in each branch body.
pub const BODY_OPS: u32 = 32;

/// Loop trips of the measurement loop.
pub const TRIPS: u32 = 16;

fn emit_body(b: &mut KernelBuilder, acc: Operand, ops: u32) {
    for _ in 0..ops {
        b.mad(acc, acc, Operand::imm_f(1.0001), Operand::imm_f(0.5));
    }
}

/// The Fig. 8 micro-benchmark: a loop around a balanced if/else whose taken
/// channels are exactly `pattern` (over `lane = gid & 15`).
///
/// Args: 0 = out buffer.
pub fn mask_pattern(pattern: u16, scale: u32) -> Built {
    mask_pattern_width(pattern, 16, scale)
}

/// [`mask_pattern`] at an explicit SIMD width (8, 16 or 32); the pattern is
/// taken over `lane = gid mod width` using its low `width` bits.
pub fn mask_pattern_width(pattern: u16, simd: u32, scale: u32) -> Built {
    assert!(
        matches!(simd, 8 | 16 | 32),
        "SIMD width must be 8, 16 or 32"
    );
    let n = 256 * scale.max(1);
    let mut b = KernelBuilder::new(format!("maskpat-{pattern:04x}-s{simd}"), simd);
    let mut ra = RegAlloc::new(simd);
    let (lane, bit, trip, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let acc = ra.vf();
    // bit = (pattern >> lane) & 1
    b.and(lane, gid(), Operand::imm_ud(simd.min(16) - 1));
    b.shr(bit, Operand::imm_ud(u32::from(pattern)), lane);
    b.and(bit, bit, Operand::imm_ud(1));
    b.mov(acc, Operand::imm_f(1.0));
    b.mov(trip, Operand::imm_ud(0));
    b.do_();
    {
        b.cmp(CondOp::Ne, FlagReg::F0, bit, Operand::imm_ud(0));
        b.if_(f0());
        emit_body(&mut b, acc, BODY_OPS);
        b.else_();
        emit_body(&mut b, acc, BODY_OPS);
        b.end_if();
        b.add(trip, trip, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, trip, Operand::imm_ud(TRIPS));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.store(MemSpace::Global, p, acc);
    let program = b.finish().expect("valid kernel");

    let mut img = MemoryImage::new(8 * n + (1 << 16));
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, simd * 4).with_args(&[out]);
    Built {
        name: format!("maskpat-{pattern:04X}-s{simd}"),
        launch,
        img,
        check: Some(Box::new(move |img| {
            // Both branch bodies are identical, so every lane computes the
            // same value; verify against a host replay (f32-narrowed mad
            // chain like the kernel's).
            let mut want = 1f32;
            for _ in 0..TRIPS * BODY_OPS {
                want = want * 1.0001 + 0.5;
            }
            for g in 0..n {
                let got = img.read_f32(out + 4 * g);
                if (got - want).abs() > 1e-3 * want.abs() {
                    return Err(format!("acc[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// The Fig. 8 pattern sweep, in presentation order.
pub const FIG8_PATTERNS: [u16; 5] = [0xFFFF, 0xF0F0, 0x00FF, 0xFF0F, 0xAAAA];

/// A dual-pipe divergence micro-benchmark: the branch bodies interleave
/// *independent* FPU (mad) and EM (inv) chains across four accumulators, so
/// a compressed instruction stream can demand more than one issue slot per
/// cycle — the §4.3 front-end-bandwidth stressor used by the
/// `ablation_frontend` harness.
///
/// Args: 0 = out buffer.
pub fn pipe_mix(pattern: u16, simd: u32, scale: u32) -> Built {
    assert!(
        matches!(simd, 8 | 16 | 32),
        "SIMD width must be 8, 16 or 32"
    );
    let n = 256 * scale.max(1);
    let mut b = KernelBuilder::new(format!("pipemix-{pattern:04x}-s{simd}"), simd);
    let mut ra = RegAlloc::new(simd);
    let (lane, bit, trip, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let accs: Vec<Operand> = (0..4).map(|_| ra.vf()).collect();
    b.and(lane, gid(), Operand::imm_ud(simd.min(16) - 1));
    b.shr(bit, Operand::imm_ud(u32::from(pattern)), lane);
    b.and(bit, bit, Operand::imm_ud(1));
    for &a in &accs {
        b.mov(a, Operand::imm_f(2.0));
    }
    b.mov(trip, Operand::imm_ud(0));
    let body = |b: &mut KernelBuilder| {
        for k in 0..16usize {
            let a = accs[k % 4];
            if k % 2 == 0 {
                b.mad(a, a, Operand::imm_f(0.999), Operand::imm_f(0.01));
            } else {
                // Self-inverse-ish EM op keeps values bounded.
                b.math(iwc_isa::Opcode::Rsqrt, a, a);
                b.mad(a, a, Operand::imm_f(0.5), Operand::imm_f(0.75));
            }
        }
    };
    b.do_();
    {
        b.cmp(CondOp::Ne, FlagReg::F0, bit, Operand::imm_ud(0));
        b.if_(f0());
        body(&mut b);
        b.else_();
        body(&mut b);
        b.end_if();
        b.add(trip, trip, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, trip, Operand::imm_ud(TRIPS));
    }
    b.while_(f0());
    b.add(accs[0], accs[0], accs[1]);
    b.add(accs[2], accs[2], accs[3]);
    b.add(accs[0], accs[0], accs[2]);
    emit_addr(&mut b, p, gid(), 0, 4);
    b.store(MemSpace::Global, p, accs[0]);
    let program = b.finish().expect("valid kernel");

    let mut img = MemoryImage::new(8 * n + (1 << 16));
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, simd * 4).with_args(&[out]);
    Built {
        name: format!("pipemix-{pattern:04X}-s{simd}"),
        launch,
        img,
        check: Some(Box::new(move |img| {
            // Mirror the f32-narrowed computation.
            let mut accs = [2.0f32; 4];
            for _ in 0..TRIPS {
                for k in 0..16usize {
                    let a = &mut accs[k % 4];
                    if k % 2 == 0 {
                        *a = *a * 0.999 + 0.01;
                    } else {
                        *a = (1.0 / a.sqrt()) * 0.5 + 0.75;
                    }
                }
            }
            let want = accs[0] + accs[1] + accs[2] + accs[3];
            for g in 0..n {
                let got = img.read_f32(out + 4 * g);
                if (got - want).abs() > 1e-3 * want.abs() {
                    return Err(format!("acc[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// The Table 2 nested-branch micro-benchmark at nesting level `levels`
/// (1–4): a binary tree of if/else on lane-id bits with a body at each leaf.
///
/// Args: 0 = out buffer.
pub fn nested_branches(levels: u32, scale: u32) -> Built {
    assert!((1..=4).contains(&levels), "nesting level must be 1-4");
    let n = 256 * scale.max(1);
    let mut b = KernelBuilder::new(format!("nested-l{levels}"), 16);
    let mut ra = RegAlloc::new(16);
    let (lane, bit, trip, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let acc = ra.vf();
    b.and(lane, gid(), Operand::imm_ud(15));
    b.mov(acc, Operand::imm_f(1.0));
    b.mov(trip, Operand::imm_ud(0));

    // Recursive emission of the branch tree.
    fn tree(
        b: &mut KernelBuilder,
        lane: Operand,
        bit: Operand,
        acc: Operand,
        level: u32,
        levels: u32,
    ) {
        if level == levels {
            emit_body(b, acc, BODY_OPS / (1 << (levels - 1)).max(1));
            return;
        }
        b.and(bit, lane, Operand::imm_ud(1 << level));
        b.cmp(CondOp::Eq, FlagReg::F0, bit, Operand::imm_ud(0));
        b.if_(f0());
        tree(b, lane, bit, acc, level + 1, levels);
        b.else_();
        tree(b, lane, bit, acc, level + 1, levels);
        b.end_if();
    }

    b.do_();
    {
        tree(&mut b, lane, bit, acc, 0, levels);
        b.add(trip, trip, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, trip, Operand::imm_ud(TRIPS));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.store(MemSpace::Global, p, acc);
    let program = b.finish().expect("valid kernel");

    let mut img = MemoryImage::new(8 * n + (1 << 16));
    let out = img.alloc(4 * n);
    let launch = Launch::new(program, n, 64).with_args(&[out]);
    Built {
        name: format!("nested-L{levels}"),
        launch,
        img,
        check: Some(Box::new(move |img| {
            let body = BODY_OPS / (1u32 << (levels - 1)).max(1);
            let mut want = 1f32;
            for _ in 0..TRIPS * body {
                want = want * 1.0001 + 0.5;
            }
            for g in 0..n {
                let got = img.read_f32(out + 4 * g);
                if (got - want).abs() > 1e-3 * want.abs() {
                    return Err(format!("acc[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_compaction::CompactionMode;
    use iwc_sim::GpuConfig;

    #[test]
    fn maskpat_full_mask_is_coherent() {
        let b = mask_pattern(0xFFFF, 1);
        let r = b
            .run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(r.simd_efficiency() > 0.95);
    }

    #[test]
    fn maskpat_aaaa_divergence() {
        let b = mask_pattern(0xAAAA, 1);
        let r = b
            .run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"));
        // Both sides of the branch run at half occupancy.
        assert!(r.simd_efficiency() < 0.7, "eff {:.3}", r.simd_efficiency());
        // SCC halves the branch-body cycles; BCC can't touch 0xAAAA/0x5555.
        let t = r.compute_tally();
        assert!(t.reduction_vs_ivb(CompactionMode::Scc) > 0.3);
        assert!(t.reduction_vs_ivb(CompactionMode::Bcc) < 0.05);
    }

    #[test]
    fn fig8_pattern_relative_times_match_paper() {
        // Fig. 8 under the Ivy Bridge optimization: FFFF=1.0, F0F0=2.0,
        // 00FF=1.0, FF0F=1.5, AAAA=2.0 (relative if/else body cycles).
        let cfg = GpuConfig::single_eu(); // IVB mode is the default
        let cycles: Vec<f64> = FIG8_PATTERNS
            .iter()
            .map(|&pat| {
                let b = mask_pattern(pat, 1);
                b.run_checked(&cfg).unwrap_or_else(|e| panic!("{e}")).cycles as f64
            })
            .collect();
        let rel: Vec<f64> = cycles.iter().map(|&c| c / cycles[0]).collect();
        let want = [1.0, 2.0, 1.0, 1.5, 2.0];
        for ((&got, &want), pat) in rel.iter().zip(&want).zip(&FIG8_PATTERNS) {
            assert!(
                (got - want).abs() < 0.25,
                "pattern {pat:04X}: relative time {got:.2}, paper {want}"
            );
        }
    }

    #[test]
    fn nested_levels_valid() {
        for l in 1..=4 {
            let b = nested_branches(l, 1);
            let r = b
                .run_checked(&GpuConfig::paper_default())
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(r.cycles > 0, "L{l}");
        }
    }

    #[test]
    #[should_panic(expected = "nesting level must be 1-4")]
    fn nested_rejects_level_5() {
        let _ = nested_branches(5, 1);
    }
}
