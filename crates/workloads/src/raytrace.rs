//! Ray-tracing workloads (Fig. 11): primary rays and ambient occlusion over
//! synthetic sphere scenes, in SIMD8 and SIMD16 kernel variants.
//!
//! The paper's scenes (alien, bulldozer, windmill, conference) are
//! proprietary; the substitution (DESIGN.md §3) generates sphere fields with
//! different clustering so that the *ray-coherence structure* — and hence
//! the divergence behavior — differs per scene:
//!
//! * `AL` (alien): a few tight clusters → coherent tiles, divergent edges;
//! * `BL` (bulldozer): uniform mid-density field;
//! * `WM` (windmill): sparse large spheres → long misses, early hits;
//! * `Conf` (conference): dense field → most rays hit early.
//!
//! Primary rays are orthographic along +z with a sorted front-to-back
//! early-exit loop (divergence from hit distance). Ambient occlusion shoots
//! per-lane pseudo-random secondary rays with an any-hit break — the most
//! divergent workload in the suite, matching Fig. 9/10 where the RT-AO bars
//! dominate.

use crate::util::{emit_addr, gid, RegAlloc, XorShift};
use crate::Built;
use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::CondOp;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::{MemSpace, Opcode};
use iwc_sim::{Launch, MemoryImage};

fn f0() -> Predicate {
    Predicate::normal(FlagReg::F0)
}

fn f1() -> Predicate {
    Predicate::normal(FlagReg::F1)
}

/// Scene kind, controlling sphere clustering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SceneKind {
    /// Clustered (alien).
    Al,
    /// Uniform (bulldozer).
    Bl,
    /// Sparse large (windmill).
    Wm,
    /// Dense (conference).
    Conf,
}

/// A sphere field: SoA arrays of centers and radii.
#[derive(Clone, Debug)]
pub struct Scene {
    /// Center x coordinates.
    pub cx: Vec<f32>,
    /// Center y coordinates.
    pub cy: Vec<f32>,
    /// Center z coordinates (positive, in front of the image plane).
    pub cz: Vec<f32>,
    /// Radii.
    pub r: Vec<f32>,
}

impl Scene {
    /// Generates the scene for `kind` (world is x,y ∈ [0, 16)).
    pub fn generate(kind: SceneKind) -> Self {
        let mut rng = XorShift::new(match kind {
            SceneKind::Al => 101,
            SceneKind::Bl => 202,
            SceneKind::Wm => 303,
            SceneKind::Conf => 404,
        });
        let (count, rad_lo, rad_hi, clusters) = match kind {
            SceneKind::Al => (24usize, 0.4f32, 1.0f32, 4u32),
            SceneKind::Bl => (24, 0.5, 1.2, 0),
            SceneKind::Wm => (10, 1.5, 3.0, 0),
            SceneKind::Conf => (40, 0.8, 2.0, 0),
        };
        let mut s = Scene {
            cx: vec![],
            cy: vec![],
            cz: vec![],
            r: vec![],
        };
        for i in 0..count {
            let (x, y) = if clusters > 0 {
                let c = i as u32 % clusters;
                let base_x = 2.0 + 12.0 * (c % 2) as f32 / 2.0 + 2.0;
                let base_y = 2.0 + 12.0 * (c / 2) as f32 / 2.0 + 2.0;
                (
                    base_x + rng.range_f32(-1.5, 1.5),
                    base_y + rng.range_f32(-1.5, 1.5),
                )
            } else {
                (rng.range_f32(0.0, 16.0), rng.range_f32(0.0, 16.0))
            };
            s.cx.push(x);
            s.cy.push(y);
            s.cz.push(rng.range_f32(4.0, 12.0));
            s.r.push(rng.range_f32(rad_lo, rad_hi));
        }
        // Sort front-to-back so the early-exit loop approximates first-hit.
        let mut order: Vec<usize> = (0..count).collect();
        order.sort_by(|&a, &b| s.cz[a].partial_cmp(&s.cz[b]).expect("finite z"));
        Scene {
            cx: order.iter().map(|&i| s.cx[i]).collect(),
            cy: order.iter().map(|&i| s.cy[i]).collect(),
            cz: order.iter().map(|&i| s.cz[i]).collect(),
            r: order.iter().map(|&i| s.r[i]).collect(),
        }
    }

    /// Number of spheres.
    pub fn len(&self) -> usize {
        self.cx.len()
    }

    /// True when the scene has no spheres.
    pub fn is_empty(&self) -> bool {
        self.cx.is_empty()
    }

    /// Host-side orthographic first-hit test at pixel center (px, py):
    /// returns the nearest front-sphere index.
    pub fn first_hit(&self, px: f32, py: f32) -> Option<usize> {
        // Spheres are sorted by z; the kernel takes the first sphere whose
        // silhouette contains the pixel (an approximation of first-hit).
        (0..self.len()).find(|&i| self.contains(i, px, py))
    }

    /// First hit when the sphere list is visited starting at index `rot`
    /// and wrapping — the per-ray traversal order the kernel uses.
    pub fn first_hit_rotated(&self, px: f32, py: f32, rot: u32) -> Option<usize> {
        let n = self.len();
        (0..n)
            .map(|k| (rot as usize + k) % n)
            .find(|&i| self.contains(i, px, py))
    }

    fn contains(&self, i: usize, px: f32, py: f32) -> bool {
        let dx = px - self.cx[i];
        let dy = py - self.cy[i];
        dx * dx + dy * dy < self.r[i] * self.r[i]
    }
}

/// Image side length (pixels) at scale 1.
const IMG_SIDE: u32 = 64;

/// Emits the pixel-coordinate setup: px = (gid % side) · 16/side + 0.5·step,
/// py likewise, into `px`/`py` f32 registers.
fn emit_pixel_coords(
    b: &mut KernelBuilder,
    ra: &mut RegAlloc,
    side: u32,
    px: Operand,
    py: Operand,
) {
    let t = ra.vud();
    let step = 16.0 / side as f32;
    b.and(t, gid(), Operand::imm_ud(side - 1));
    b.mov(px, t);
    b.mad(px, px, Operand::imm_f(step), Operand::imm_f(step * 0.5));
    b.shr(t, gid(), Operand::imm_ud(side.trailing_zeros()));
    b.and(t, t, Operand::imm_ud(side - 1));
    b.mov(py, t);
    b.mad(py, py, Operand::imm_f(step), Operand::imm_f(step * 0.5));
}

/// Emits the sphere-intersection loop: each lane visits the sphere list in
/// its own rotated order (starting at `rot`, wrapping), breaking at the
/// first sphere whose silhouette contains (px, py). This models the
/// per-ray traversal orders of an acceleration structure: neighboring rays
/// fetch *different* sphere records in the same cycle, producing the memory
/// divergence real ray tracers exhibit. Afterwards `hitidx` holds the hit
/// sphere index (valid where `found` != 0).
///
/// Scene buffer args: 0 = cx, 1 = cy, 2 = cz, 3 = r. `count` is arg 4.
#[allow(clippy::too_many_arguments)]
fn emit_first_hit_loop(
    b: &mut KernelBuilder,
    ra: &mut RegAlloc,
    px: Operand,
    py: Operand,
    rot: Operand,
    hitidx: Operand,
    found: Operand,
) {
    let (p, trip) = (ra.vud(), ra.vud());
    let (cx, cy, rr, dx, dy, d2) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let count = Operand::scalar(3, 4, iwc_isa::DataType::Ud);
    b.mov(trip, Operand::imm_ud(0));
    b.mov(found, Operand::imm_ud(0));
    b.do_();
    {
        // hitidx = (trip + rot) % count — per-lane visit order.
        b.add(hitidx, trip, rot);
        b.op(Opcode::Irem, hitidx, &[hitidx, count]);
        emit_addr(b, p, hitidx, 0, SPHERE_STRIDE);
        b.load(MemSpace::Global, cx, p);
        emit_addr(b, p, hitidx, 1, SPHERE_STRIDE);
        b.load(MemSpace::Global, cy, p);
        emit_addr(b, p, hitidx, 3, SPHERE_STRIDE);
        b.load(MemSpace::Global, rr, p);
        b.sub(dx, px, cx);
        b.sub(dy, py, cy);
        b.mul(d2, dx, dx);
        b.mad(d2, dy, dy, d2);
        b.mul(rr, rr, rr);
        b.cmp(CondOp::Lt, FlagReg::F0, d2, rr);
        b.if_(f0());
        b.mov(found, Operand::imm_ud(1));
        b.end_if();
        b.break_(f0());
        b.add(trip, trip, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, trip, count);
    }
    b.while_(f0());
}

/// Width of the per-lane traversal-rotation window. Neighboring rays start
/// their sphere walk within a window of this many records, bounding the
/// per-message line count (full-random order would peg the data cluster at
/// its limit; real traversals are partially coherent).
pub const ROTATION_WINDOW: u32 = 8;

/// Emits `rot = hash(seed_reg) % ROTATION_WINDOW` — the per-lane traversal
/// rotation.
fn emit_rotation(b: &mut KernelBuilder, rot: Operand, seed: Operand) {
    b.mul(rot, seed, Operand::imm_ud(0x9E37_79B9));
    b.shr(rot, rot, Operand::imm_ud(16));
    b.and(rot, rot, Operand::imm_ud(ROTATION_WINDOW - 1));
}

/// Byte stride between consecutive sphere records in each scene array: one
/// cache line, modeling the AoS node layout of real acceleration structures
/// (a BVH node easily spans a line). Divergent per-lane sphere indices thus
/// touch distinct lines — the memory-divergence load that makes the paper's
/// ray tracers data-cluster-bandwidth-bound at DC1 (Fig. 11).
pub const SPHERE_STRIDE: u32 = 64;

fn scene_image(scene: &Scene, extra: u32) -> (MemoryImage, [u32; 4]) {
    let n = scene.len() as u32;
    let mut img = MemoryImage::new(4 * SPHERE_STRIDE * n + extra + (1 << 16));
    let mut padded = |vals: &[f32]| {
        let base = img.alloc(SPHERE_STRIDE * vals.len() as u32);
        for (i, &v) in vals.iter().enumerate() {
            img.write_f32(base + SPHERE_STRIDE * i as u32, v);
        }
        base
    };
    let cx = padded(&scene.cx);
    let cy = padded(&scene.cy);
    let cz = padded(&scene.cz);
    let r = padded(&scene.r);
    (img, [cx, cy, cz, r])
}

/// Builds a primary-ray workload for `kind` at SIMD16.
pub fn primary(kind: SceneKind, scale: u32) -> Built {
    let side = IMG_SIDE * scale.max(1).next_power_of_two().min(4);
    let pixels = side * side;
    let scene = Scene::generate(kind);
    let count = scene.len() as u32;

    let mut b = KernelBuilder::new("rt-primary", 16);
    let mut ra = RegAlloc::new(16);
    let (px, py) = (ra.vf(), ra.vf());
    let (rot, hit, found, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let shade = ra.vf();
    emit_pixel_coords(&mut b, &mut ra, side, px, py);
    emit_rotation(&mut b, rot, gid());
    emit_first_hit_loop(&mut b, &mut ra, px, py, rot, hit, found);
    // Divergent shading: hits compute a fake lambert term; misses get sky.
    b.cmp(CondOp::Ne, FlagReg::F1, found, Operand::imm_ud(0));
    b.if_(f1());
    {
        let zr = ra.vf();
        emit_addr(&mut b, p, hit, 2, SPHERE_STRIDE);
        b.load(MemSpace::Global, zr, p);
        b.math(Opcode::Inv, zr, zr);
        b.mul(shade, zr, Operand::imm_f(4.0));
        b.min(shade, shade, Operand::imm_f(1.0));
    }
    b.else_();
    b.mov(shade, Operand::imm_f(0.1));
    b.end_if();
    emit_addr(&mut b, p, gid(), 5, 4);
    b.store(MemSpace::Global, p, shade);
    let program = b.finish().expect("valid kernel");

    let (mut img, bufs) = scene_image(&scene, 4 * pixels);
    let out = img.alloc(4 * pixels);
    let launch = Launch::new(program, pixels, 64)
        .with_args(&[bufs[0], bufs[1], bufs[2], bufs[3], count, out]);
    let scene2 = scene.clone();
    Built {
        name: format!("RT-PR-{kind:?}"),
        launch,
        img,
        check: Some(Box::new(move |img| {
            let step = 16.0 / side as f32;
            for g in 0..pixels {
                let pxv = (g % side) as f32 * step + step * 0.5;
                let pyv = (g / side) as f32 * step + step * 0.5;
                let got = img.read_f32(out + 4 * g);
                let rot = (g.wrapping_mul(0x9E37_79B9) >> 16) & (ROTATION_WINDOW - 1);
                match scene2.first_hit_rotated(pxv, pyv, rot) {
                    Some(i) => {
                        let want = (4.0 / scene2.cz[i]).min(1.0);
                        if (got - want).abs() > 1e-3 {
                            return Err(format!("pixel {g}: {got} vs hit {want}"));
                        }
                    }
                    None => {
                        if (got - 0.1).abs() > 1e-6 {
                            return Err(format!("pixel {g}: {got} vs sky"));
                        }
                    }
                }
            }
            Ok(())
        })),
    }
}

/// Builds an ambient-occlusion workload for `kind` at the given SIMD width.
///
/// Each pixel that hits geometry shoots `SAMPLES` jittered occlusion probes;
/// each probe walks the sphere list with an any-hit break. Misses skip the
/// whole sampling loop — two nested levels of divergence.
pub fn ambient_occlusion(kind: SceneKind, simd: u32, scale: u32) -> Built {
    const SAMPLES: u32 = 4;
    let side = IMG_SIDE * scale.max(1).next_power_of_two().min(4);
    let pixels = side * side;
    let scene = Scene::generate(kind);
    let count = scene.len() as u32;

    let mut b = KernelBuilder::new("rt-ao", simd);
    let mut ra = RegAlloc::new(simd);
    let (px, py) = (ra.vf(), ra.vf());
    let (rot, hit, found, p) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    emit_pixel_coords(&mut b, &mut ra, side, px, py);
    emit_rotation(&mut b, rot, gid());
    emit_first_hit_loop(&mut b, &mut ra, px, py, rot, hit, found);
    let (occ, qx, qy, h) = (ra.vf(), ra.vf(), ra.vf(), ra.vud());
    let (s, j) = (ra.vud(), ra.vud());
    let (cx2, cy2, rr2, dx2, dy2, d22) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let sf = ra.vf();
    b.mov(occ, Operand::imm_f(0.0));
    b.cmp(CondOp::Ne, FlagReg::F1, found, Operand::imm_ud(0));
    b.if_(f1());
    {
        b.mov(s, Operand::imm_ud(0));
        b.do_();
        {
            // Jittered probe position: hash(gid, s) → offset in [-1, 1).
            b.mul(h, gid(), Operand::imm_ud(0x9E37_79B9));
            b.add(h, h, s);
            b.mul(h, h, Operand::imm_ud(0x85EB_CA6B));
            b.shr(h, h, Operand::imm_ud(16));
            b.and(h, h, Operand::imm_ud(0xFFFF));
            b.mov(sf, h);
            b.mad(qx, sf, Operand::imm_f(2.0 / 65536.0), Operand::imm_f(-1.0));
            b.add(qx, qx, px);
            b.mul(h, h, Operand::imm_ud(0x27D4_EB2F));
            b.and(h, h, Operand::imm_ud(0xFFFF));
            b.mov(sf, h);
            b.mad(qy, sf, Operand::imm_f(2.0 / 65536.0), Operand::imm_f(-1.0));
            b.add(qy, qy, py);
            // Any-hit probe: walk spheres in a per-lane rotated order,
            // breaking on the first silhouette hit (occlusion is
            // order-independent, trip counts are not — that is the point).
            b.and(h, h, Operand::imm_ud(ROTATION_WINDOW - 1));
            b.mov(j, Operand::imm_ud(0));
            b.do_();
            {
                b.add(p, j, h);
                b.op(
                    Opcode::Irem,
                    p,
                    &[p, Operand::scalar(3, 4, iwc_isa::DataType::Ud)],
                );
                b.shl(p, p, Operand::imm_ud(6)); // × SPHERE_STRIDE
                b.add(p, p, Operand::scalar(3, 0, iwc_isa::DataType::Ud));
                b.load(MemSpace::Global, cx2, p);
                b.add(p, j, h);
                b.op(
                    Opcode::Irem,
                    p,
                    &[p, Operand::scalar(3, 4, iwc_isa::DataType::Ud)],
                );
                b.shl(p, p, Operand::imm_ud(6));
                b.add(p, p, Operand::scalar(3, 1, iwc_isa::DataType::Ud));
                b.load(MemSpace::Global, cy2, p);
                b.add(p, j, h);
                b.op(
                    Opcode::Irem,
                    p,
                    &[p, Operand::scalar(3, 4, iwc_isa::DataType::Ud)],
                );
                b.shl(p, p, Operand::imm_ud(6));
                b.add(p, p, Operand::scalar(3, 3, iwc_isa::DataType::Ud));
                b.load(MemSpace::Global, rr2, p);
                b.sub(dx2, qx, cx2);
                b.sub(dy2, qy, cy2);
                b.mul(d22, dx2, dx2);
                b.mad(d22, dy2, dy2, d22);
                b.mul(rr2, rr2, rr2);
                b.cmp(CondOp::Lt, FlagReg::F0, d22, rr2);
                b.if_(f0());
                b.add(occ, occ, Operand::imm_f(1.0 / SAMPLES as f32));
                b.end_if();
                b.break_(f0());
                b.add(j, j, Operand::imm_ud(1));
                b.cmp(
                    CondOp::Lt,
                    FlagReg::F0,
                    j,
                    Operand::scalar(3, 4, iwc_isa::DataType::Ud),
                );
            }
            b.while_(f0());
            b.add(s, s, Operand::imm_ud(1));
            b.cmp(CondOp::Lt, FlagReg::F0, s, Operand::imm_ud(SAMPLES));
        }
        b.while_(f0());
    }
    b.end_if();
    // ao = 1 - occlusion
    b.sub(occ, Operand::imm_f(1.0), occ);
    emit_addr(&mut b, p, gid(), 5, 4);
    b.store(MemSpace::Global, p, occ);
    let program = b.finish().expect("valid kernel");

    let (mut img, bufs) = scene_image(&scene, 4 * pixels);
    let out = img.alloc(4 * pixels);
    let launch = Launch::new(program, pixels, simd * 4)
        .with_args(&[bufs[0], bufs[1], bufs[2], bufs[3], count, out]);
    Built {
        name: format!("RT-AO-{kind:?}{simd}"),
        launch,
        img,
        check: Some(Box::new(move |img| {
            // AO values must be in [0, 1]; miss pixels exactly 1.
            for g in 0..pixels {
                let v = img.read_f32(out + 4 * g);
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("ao[{g}] = {v} out of range"));
                }
            }
            Ok(())
        })),
    }
}

/// RT-PR on the conference scene.
pub fn primary_conf(scale: u32) -> Built {
    primary(SceneKind::Conf, scale)
}

/// RT-PR on the alien scene.
pub fn primary_al(scale: u32) -> Built {
    primary(SceneKind::Al, scale)
}

/// RT-PR on the bulldozer scene.
pub fn primary_bl(scale: u32) -> Built {
    primary(SceneKind::Bl, scale)
}

/// RT-PR on the windmill scene.
pub fn primary_wm(scale: u32) -> Built {
    primary(SceneKind::Wm, scale)
}

/// RT-AO alien, SIMD8.
pub fn ao_al8(scale: u32) -> Built {
    ambient_occlusion(SceneKind::Al, 8, scale)
}

/// RT-AO bulldozer, SIMD8.
pub fn ao_bl8(scale: u32) -> Built {
    ambient_occlusion(SceneKind::Bl, 8, scale)
}

/// RT-AO windmill, SIMD8.
pub fn ao_wm8(scale: u32) -> Built {
    ambient_occlusion(SceneKind::Wm, 8, scale)
}

/// RT-AO alien, SIMD16.
pub fn ao_al16(scale: u32) -> Built {
    ambient_occlusion(SceneKind::Al, 16, scale)
}

/// RT-AO bulldozer, SIMD16.
pub fn ao_bl16(scale: u32) -> Built {
    ambient_occlusion(SceneKind::Bl, 16, scale)
}

/// RT-AO windmill, SIMD16.
pub fn ao_wm16(scale: u32) -> Built {
    ambient_occlusion(SceneKind::Wm, 16, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_sim::GpuConfig;

    #[test]
    fn scenes_differ() {
        let al = Scene::generate(SceneKind::Al);
        let wm = Scene::generate(SceneKind::Wm);
        assert_ne!(al.len(), wm.len());
        assert!(
            wm.r.iter().sum::<f32>() / wm.len() as f32 > al.r.iter().sum::<f32>() / al.len() as f32
        );
        // Front-to-back ordering.
        for s in [&al, &wm] {
            assert!(s.cz.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn primary_rays_correct_and_divergent() {
        let b = primary(SceneKind::Conf, 1);
        let r = b
            .run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"));
        let eff = r.simd_efficiency();
        assert!(eff < 0.95, "RT-PR efficiency {eff:.3} should be divergent");
    }

    #[test]
    fn ao_more_divergent_than_primary() {
        let cfg = GpuConfig::paper_default();
        let pr = primary(SceneKind::Bl, 1).run_checked(&cfg).unwrap();
        let ao = ambient_occlusion(SceneKind::Bl, 16, 1)
            .run_checked(&cfg)
            .unwrap();
        assert!(
            ao.simd_efficiency() < pr.simd_efficiency(),
            "AO ({:.3}) should diverge more than PR ({:.3})",
            ao.simd_efficiency(),
            pr.simd_efficiency()
        );
    }

    #[test]
    fn ao_simd8_variant_runs() {
        let b = ambient_occlusion(SceneKind::Wm, 8, 1);
        let r = b
            .run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(r.cycles > 0);
    }
}
