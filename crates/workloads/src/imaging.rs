//! Image-processing workloads from Table 1: box filter (`BF`), Sobel
//! filter (`SblFr`), Haar discrete wavelet transform (`DWTH`), Gaussian
//! noise (`Gnoise`), and recursive Gaussian (`RGauss`). All use branch-free
//! edge handling and land in the coherent block of Fig. 3, like their
//! counterparts in the paper.

// Host-side result checks mirror kernel indexing; positional loops are
// clearer than iterator chains there.
#![allow(clippy::needless_range_loop)]

use crate::util::{emit_addr, gid, RegAlloc, XorShift};
use crate::Built;
use iwc_isa::builder::KernelBuilder;
use iwc_isa::reg::Operand;
use iwc_isa::MemSpace;
use iwc_sim::{Launch, MemoryImage};

const SIMD: u32 = 16;
const WG: u32 = 64;

/// `BF`: 3×3 box filter over a `w`-wide image with clamped edges.
///
/// Args: 0 = image in, 1 = out, 2 = width (power of two).
pub fn box_filter(scale: u32) -> Built {
    let w = 64u32;
    let h = 16 * scale.max(1);
    let n = w * h;

    let mut b = KernelBuilder::new("boxfilter", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (x, y, cx, cy, p) = (ra.vd(), ra.vd(), ra.vd(), ra.vd(), ra.vud());
    let (acc, v) = (ra.vf(), ra.vf());
    let logw = w.trailing_zeros();
    b.and(x, gid(), Operand::imm_ud(w - 1));
    b.shr(y, gid(), Operand::imm_ud(logw));
    b.mov(acc, Operand::imm_f(0.0));
    for dy in -1i32..=1 {
        for dx in -1i32..=1 {
            // Clamped coordinates, branch-free.
            b.add(cx, x, Operand::imm_d(dx));
            b.max(cx, cx, Operand::imm_d(0));
            b.min(cx, cx, Operand::imm_d(w as i32 - 1));
            b.add(cy, y, Operand::imm_d(dy));
            b.max(cy, cy, Operand::imm_d(0));
            b.min(cy, cy, Operand::imm_d(h as i32 - 1));
            b.shl(p, cy, Operand::imm_ud(logw));
            b.add(p, p, cx);
            emit_addr(&mut b, p, p, 0, 4);
            b.load(MemSpace::Global, v, p);
            b.add(acc, acc, v);
        }
    }
    b.mul(acc, acc, Operand::imm_f(1.0 / 9.0));
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(51);
    let im: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let ip = img.alloc_f32(&im);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[ip, op, w]);
    Built {
        name: "BF".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let (x, y) = ((g % w) as i32, (g / w) as i32);
                let mut want = 0f32;
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let cx = (x + dx).clamp(0, w as i32 - 1);
                        let cy = (y + dy).clamp(0, h as i32 - 1);
                        want += im[(cy * w as i32 + cx) as usize];
                    }
                }
                want /= 9.0;
                let got = img.read_f32(op + 4 * g);
                if (got - want).abs() > 1e-4 {
                    return Err(format!("bf[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `SblFr`: Sobel gradient magnitude (squared, to stay in the FPU pipe).
///
/// Args: 0 = image in, 1 = out, 2 = width.
pub fn sobel(scale: u32) -> Built {
    let w = 64u32;
    let h = 16 * scale.max(1);
    let n = w * h;
    const KX: [[f32; 3]; 3] = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
    const KY: [[f32; 3]; 3] = [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]];

    let mut b = KernelBuilder::new("sobel", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (x, y, cx, cy, p) = (ra.vd(), ra.vd(), ra.vd(), ra.vd(), ra.vud());
    let (gx, gy, v, mag) = (ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let logw = w.trailing_zeros();
    b.and(x, gid(), Operand::imm_ud(w - 1));
    b.shr(y, gid(), Operand::imm_ud(logw));
    b.mov(gx, Operand::imm_f(0.0));
    b.mov(gy, Operand::imm_f(0.0));
    for (dy, row) in KX.iter().enumerate() {
        for (dx, &kx) in row.iter().enumerate() {
            let ky = KY[dy][dx];
            if kx == 0.0 && ky == 0.0 {
                continue;
            }
            b.add(cx, x, Operand::imm_d(dx as i32 - 1));
            b.max(cx, cx, Operand::imm_d(0));
            b.min(cx, cx, Operand::imm_d(w as i32 - 1));
            b.add(cy, y, Operand::imm_d(dy as i32 - 1));
            b.max(cy, cy, Operand::imm_d(0));
            b.min(cy, cy, Operand::imm_d(h as i32 - 1));
            b.shl(p, cy, Operand::imm_ud(logw));
            b.add(p, p, cx);
            emit_addr(&mut b, p, p, 0, 4);
            b.load(MemSpace::Global, v, p);
            if kx != 0.0 {
                b.mad(gx, v, Operand::imm_f(kx), gx);
            }
            if ky != 0.0 {
                b.mad(gy, v, Operand::imm_f(ky), gy);
            }
        }
    }
    b.mul(mag, gx, gx);
    b.mad(mag, gy, gy, mag);
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, mag);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(52);
    let im: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let ip = img.alloc_f32(&im);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[ip, op, w]);
    Built {
        name: "SblFr".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let (x, y) = ((g % w) as i32, (g / w) as i32);
                let at = |cx: i32, cy: i32| {
                    im[(cy.clamp(0, h as i32 - 1) * w as i32 + cx.clamp(0, w as i32 - 1)) as usize]
                };
                let mut gx = 0f32;
                let mut gy = 0f32;
                for dy in 0..3 {
                    for dx in 0..3 {
                        let v = at(x + dx as i32 - 1, y + dy as i32 - 1);
                        gx += v * KX[dy][dx];
                        gy += v * KY[dy][dx];
                    }
                }
                let want = gx * gx + gy * gy;
                let got = img.read_f32(op + 4 * g);
                if (got - want).abs() > 1e-3 {
                    return Err(format!("sobel[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `DWTH`: one level of the Haar discrete wavelet transform.
///
/// Args: 0 = signal in, 1 = approximations out, 2 = details out, 3 = n/2.
pub fn haar_dwt(scale: u32) -> Built {
    let half = 512 * scale.max(1);

    let mut b = KernelBuilder::new("haar", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (p, ia) = (ra.vud(), ra.vud());
    let (a, d, va, vb) = (ra.vf(), ra.vf(), ra.vf(), ra.vf());
    const INV_SQRT2: f32 = std::f32::consts::FRAC_1_SQRT_2;
    // Load the even/odd pair.
    b.shl(ia, gid(), Operand::imm_ud(1));
    emit_addr(&mut b, p, ia, 0, 4);
    b.load(MemSpace::Global, va, p);
    b.add(p, p, Operand::imm_ud(4));
    b.load(MemSpace::Global, vb, p);
    b.add(a, va, vb);
    b.mul(a, a, Operand::imm_f(INV_SQRT2));
    b.sub(d, va, vb);
    b.mul(d, d, Operand::imm_f(INV_SQRT2));
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, a);
    emit_addr(&mut b, p, gid(), 2, 4);
    b.store(MemSpace::Global, p, d);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(53);
    let sig: Vec<f32> = (0..2 * half).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let mut img = MemoryImage::new(32 * half + (1 << 16));
    let sp = img.alloc_f32(&sig);
    let ap = img.alloc(4 * half);
    let dp = img.alloc(4 * half);
    let launch = Launch::new(program, half, WG).with_args(&[sp, ap, dp, half]);
    Built {
        name: "DWTH".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..half as usize {
                let (va, vb) = (sig[2 * g], sig[2 * g + 1]);
                let want_a = (va + vb) * INV_SQRT2;
                let want_d = (va - vb) * INV_SQRT2;
                if (img.read_f32(ap + 4 * g as u32) - want_a).abs() > 1e-4
                    || (img.read_f32(dp + 4 * g as u32) - want_d).abs() > 1e-4
                {
                    return Err(format!("haar pair {g} wrong"));
                }
            }
            Ok(())
        })),
    }
}

/// `Gnoise`: Gaussian noise via the sum of four uniform variates (central
/// limit), seeded per element — coherent integer + FP mixing.
///
/// Args: 0 = seeds, 1 = out.
pub fn gaussian_noise(scale: u32) -> Built {
    let n = 1024 * scale.max(1);

    let mut b = KernelBuilder::new("gnoise", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (state, p, t) = (ra.vud(), ra.vud(), ra.vud());
    let (acc, u) = (ra.vf(), ra.vf());
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, state, p);
    b.mov(acc, Operand::imm_f(-2.0)); // sum of 4 uniforms − mean (4·0.5)
    for _ in 0..4 {
        b.mul(state, state, Operand::imm_ud(1_664_525));
        b.add(state, state, Operand::imm_ud(1_013_904_223));
        b.shr(t, state, Operand::imm_ud(8));
        b.mov(u, t);
        b.mul(u, u, Operand::imm_f(1.0 / 16_777_216.0));
        b.add(acc, acc, u);
    }
    // Scale to unit-ish variance (var of sum of 4 U(0,1) = 1/3).
    b.mul(acc, acc, Operand::imm_f(1.732_050_8));
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(54);
    let seeds: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let sp = img.alloc_u32(&seeds);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[sp, op]);
    Built {
        name: "Gnoise".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let mut s = seeds[g];
                let mut acc = -2.0f32;
                for _ in 0..4 {
                    s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    acc += (s >> 8) as f32 * (1.0 / 16_777_216.0);
                }
                let want = acc * 1.732_050_8;
                let got = img.read_f32(op + 4 * g as u32);
                if (got - want).abs() > 1e-3 {
                    return Err(format!("gnoise[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `RGauss`: recursive Gaussian (one IIR pass over short rows kept in the
/// loop, 16 taps) — serial per row, coherent across rows.
///
/// Args: 0 = image in, 1 = out, 2 = row length.
pub fn recursive_gaussian(scale: u32) -> Built {
    let row = 16u32;
    let rows = 256 * scale.max(1);
    let n = row * rows;
    const A: f32 = 0.7;

    let mut b = KernelBuilder::new("rgauss", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (base, p, k) = (ra.vud(), ra.vud(), ra.vud());
    let (y, v) = (ra.vf(), ra.vf());
    use iwc_isa::insn::CondOp;
    use iwc_isa::reg::{FlagReg, Predicate};
    b.mul(base, gid(), Operand::imm_ud(row));
    b.mov(y, Operand::imm_f(0.0));
    b.mov(k, Operand::imm_ud(0));
    b.do_();
    {
        b.add(p, base, k);
        emit_addr(&mut b, p, p, 0, 4);
        b.load(MemSpace::Global, v, p);
        // y = (1-A) v + A y
        b.mul(y, y, Operand::imm_f(A));
        b.mad(y, v, Operand::imm_f(1.0 - A), y);
        b.add(p, base, k);
        emit_addr(&mut b, p, p, 1, 4);
        b.store(MemSpace::Global, p, y);
        b.add(k, k, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, k, Operand::imm_ud(row));
    }
    b.while_(Predicate::normal(FlagReg::F0));
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(55);
    let im: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let ip = img.alloc_f32(&im);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, rows, WG).with_args(&[ip, op, row]);
    Built {
        name: "RGauss".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for r in 0..rows {
                let mut y = 0f32;
                for k in 0..row {
                    let v = im[(r * row + k) as usize];
                    y = y * A + v * (1.0 - A);
                    let got = img.read_f32(op + 4 * (r * row + k));
                    if (got - y).abs() > 1e-3 {
                        return Err(format!("rgauss[{r},{k}] = {got}, want {y}"));
                    }
                }
            }
            Ok(())
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_sim::GpuConfig;

    fn run_coherent(b: Built) {
        let r = b
            .run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            r.simd_efficiency() > 0.95,
            "{:?}: eff {:.3}",
            b.name,
            r.simd_efficiency()
        );
    }

    #[test]
    fn box_filter_correct() {
        run_coherent(box_filter(1));
    }

    #[test]
    fn sobel_correct() {
        run_coherent(sobel(1));
    }

    #[test]
    fn haar_correct() {
        run_coherent(haar_dwt(1));
    }

    #[test]
    fn gnoise_correct() {
        run_coherent(gaussian_noise(1));
    }

    #[test]
    fn rgauss_correct() {
        run_coherent(recursive_gaussian(1));
    }
}
