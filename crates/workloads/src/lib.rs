//! # iwc-workloads
//!
//! The workload suite of the paper (Table 1), expressed as kernels in the
//! `iwc-isa` DSL with host-side input generation and result checking:
//!
//! * [`coherent`] — high-SIMD-efficiency kernels (vector add, SAXPY, matrix
//!   multiply, transpose, Black-Scholes, DCT, …) that intra-warp compaction
//!   must leave untouched;
//! * [`rodinia`] — the divergent Rodinia-class kernels of Fig. 12 (BFS,
//!   HotSpot, LavaMD, Needleman-Wunsch, particle filter, …);
//! * [`raytrace`] — primary-ray and ambient-occlusion ray tracing over
//!   synthetic scenes, in SIMD8 and SIMD16 variants (Fig. 11);
//! * [`micro`] — the divergence micro-benchmarks of Fig. 8 and Table 2.
//!
//! Every workload builds into a [`Built`]: a launch plus its initialized
//! memory image and an optional functional check, so the same workload can
//! be replayed under every compaction mode.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coherent;
pub mod hash;
pub mod imaging;
pub mod micro;
pub mod raytrace;
pub mod rodinia;
pub mod suite;
pub mod util;

use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage, SimResult, SimulateError};

/// A functional result check run against the post-simulation memory image.
pub type Check = Box<dyn Fn(&MemoryImage) -> Result<(), String> + Send + Sync>;

/// A fully prepared workload: kernel launch, initialized inputs, optional
/// output check.
pub struct Built {
    /// Workload name (Table 1 style).
    pub name: String,
    /// The kernel launch.
    pub launch: Launch,
    /// Initialized global memory.
    pub img: MemoryImage,
    /// Optional functional check.
    pub check: Option<Check>,
}

impl std::fmt::Debug for Built {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Built({}, global={}, wg={}, simd={})",
            self.name,
            self.launch.global_size,
            self.launch.wg_size,
            self.launch.program.simd_width()
        )
    }
}

impl Built {
    /// Runs the workload on a fresh copy of its memory image.
    ///
    /// # Errors
    ///
    /// Propagates [`SimulateError`] from the simulator.
    pub fn run(&self, cfg: &GpuConfig) -> Result<(SimResult, MemoryImage), SimulateError> {
        let mut img = self.img.clone();
        let r = simulate(cfg, &self.launch, &mut img)?;
        Ok((r, img))
    }

    /// Runs the workload and applies its functional check.
    ///
    /// # Errors
    ///
    /// Returns the simulator error or the check failure message.
    pub fn run_checked(&self, cfg: &GpuConfig) -> Result<SimResult, String> {
        let (r, img) = self.run(cfg).map_err(|e| e.to_string())?;
        if let Some(check) = &self.check {
            check(&img).map_err(|e| format!("{}: {e}", self.name))?;
        }
        Ok(r)
    }

    /// Sweeps the workload across compaction engines (checked variant of
    /// [`iwc_sim::Gpu::run_modes`]; accepts [`iwc_compaction::CompactionMode`]s
    /// or registry [`iwc_compaction::EngineId`]s): every engine runs cold
    /// against a fresh copy of the inputs and must pass the functional
    /// check, so a mode can never *look* faster by computing the wrong
    /// answer.
    ///
    /// # Errors
    ///
    /// Returns the first simulator error or check failure.
    pub fn run_modes<M: Into<iwc_compaction::EngineId> + Copy>(
        &self,
        cfg: &GpuConfig,
        modes: &[M],
    ) -> Result<Vec<SimResult>, String> {
        modes
            .iter()
            .map(|&m| self.run_checked(&cfg.with_compaction(m)))
            .collect()
    }
}

/// Workload category for reporting (the paper's coherent / divergent split,
/// Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// SIMD efficiency ≥ 95 %.
    Coherent,
    /// SIMD efficiency < 95 %.
    Divergent,
}

/// An entry in the simulated-workload catalog.
pub struct CatalogEntry {
    /// Table 1 name.
    pub name: &'static str,
    /// Expected category.
    pub category: Category,
    /// Builder (scale ≈ problem-size knob; 1 = test-sized).
    pub build: fn(u32) -> Built,
}

/// All simulated workloads, in Fig. 3 presentation order (coherent block
/// first, then divergent).
pub fn catalog() -> Vec<CatalogEntry> {
    use Category::*;
    vec![
        // ---- coherent ----
        CatalogEntry {
            name: "VA",
            category: Coherent,
            build: coherent::vecadd,
        },
        CatalogEntry {
            name: "DP",
            category: Coherent,
            build: coherent::dot_product,
        },
        CatalogEntry {
            name: "MVM",
            category: Coherent,
            build: coherent::mvm,
        },
        CatalogEntry {
            name: "MM",
            category: Coherent,
            build: coherent::matmul,
        },
        CatalogEntry {
            name: "Trans-N",
            category: Coherent,
            build: coherent::transpose,
        },
        CatalogEntry {
            name: "Bscholes-N",
            category: Coherent,
            build: coherent::blackscholes,
        },
        CatalogEntry {
            name: "DCT8",
            category: Coherent,
            build: coherent::dct8,
        },
        CatalogEntry {
            name: "MT",
            category: Coherent,
            build: coherent::mersenne,
        },
        CatalogEntry {
            name: "SCnv",
            category: Coherent,
            build: coherent::convolution,
        },
        CatalogEntry {
            name: "BP",
            category: Coherent,
            build: coherent::backprop,
        },
        CatalogEntry {
            name: "BF",
            category: Coherent,
            build: imaging::box_filter,
        },
        CatalogEntry {
            name: "SblFr",
            category: Coherent,
            build: imaging::sobel,
        },
        CatalogEntry {
            name: "DWTH",
            category: Coherent,
            build: imaging::haar_dwt,
        },
        CatalogEntry {
            name: "Gnoise",
            category: Coherent,
            build: imaging::gaussian_noise,
        },
        CatalogEntry {
            name: "RGauss",
            category: Coherent,
            build: imaging::recursive_gaussian,
        },
        CatalogEntry {
            name: "BOP",
            category: Coherent,
            build: suite::binomial_option,
        },
        CatalogEntry {
            name: "FWHT",
            category: Coherent,
            build: suite::fwht,
        },
        CatalogEntry {
            name: "URNG",
            category: Coherent,
            build: suite::urng,
        },
        CatalogEntry {
            name: "Bsort",
            category: Coherent,
            build: suite::bitonic_step,
        },
        CatalogEntry {
            name: "Trd",
            category: Coherent,
            build: suite::tridiagonal,
        },
        CatalogEntry {
            name: "ScLA",
            category: Coherent,
            build: suite::scan_large_array,
        },
        CatalogEntry {
            name: "QRndSq",
            category: Coherent,
            build: suite::quasi_random,
        },
        CatalogEntry {
            name: "AES",
            category: Coherent,
            build: suite::aes_round,
        },
        CatalogEntry {
            name: "DXTC",
            category: Coherent,
            build: suite::dxtc,
        },
        // ---- divergent ----
        CatalogEntry {
            name: "BFS",
            category: Divergent,
            build: rodinia::bfs,
        },
        CatalogEntry {
            name: "HtS",
            category: Divergent,
            build: rodinia::hotspot,
        },
        CatalogEntry {
            name: "LavaMD",
            category: Divergent,
            build: rodinia::lavamd,
        },
        CatalogEntry {
            name: "NW",
            category: Divergent,
            build: rodinia::needleman_wunsch,
        },
        CatalogEntry {
            name: "Part",
            category: Divergent,
            build: rodinia::particle_filter,
        },
        CatalogEntry {
            name: "Kmeans",
            category: Divergent,
            build: rodinia::kmeans,
        },
        CatalogEntry {
            name: "Path",
            category: Divergent,
            build: rodinia::pathfinder,
        },
        CatalogEntry {
            name: "Gauss",
            category: Divergent,
            build: rodinia::gaussian,
        },
        CatalogEntry {
            name: "SRD",
            category: Divergent,
            build: rodinia::srad,
        },
        CatalogEntry {
            name: "EV",
            category: Divergent,
            build: rodinia::eigenvalue,
        },
        CatalogEntry {
            name: "Bsearch",
            category: Divergent,
            build: suite::bsearch,
        },
        CatalogEntry {
            name: "FW",
            category: Divergent,
            build: suite::floyd_warshall,
        },
        CatalogEntry {
            name: "KNN",
            category: Divergent,
            build: suite::knn,
        },
        CatalogEntry {
            name: "MCA",
            category: Divergent,
            build: suite::monte_carlo,
        },
        CatalogEntry {
            name: "HMM",
            category: Divergent,
            build: suite::hmm_viterbi,
        },
        CatalogEntry {
            name: "CFD",
            category: Divergent,
            build: suite::cfd_flux,
        },
        CatalogEntry {
            name: "RT-PR-Conf",
            category: Divergent,
            build: raytrace::primary_conf,
        },
        CatalogEntry {
            name: "RT-PR-AL",
            category: Divergent,
            build: raytrace::primary_al,
        },
        CatalogEntry {
            name: "RT-PR-BL",
            category: Divergent,
            build: raytrace::primary_bl,
        },
        CatalogEntry {
            name: "RT-PR-WM",
            category: Divergent,
            build: raytrace::primary_wm,
        },
        CatalogEntry {
            name: "RT-AO-AL8",
            category: Divergent,
            build: raytrace::ao_al8,
        },
        CatalogEntry {
            name: "RT-AO-BL8",
            category: Divergent,
            build: raytrace::ao_bl8,
        },
        CatalogEntry {
            name: "RT-AO-WM8",
            category: Divergent,
            build: raytrace::ao_wm8,
        },
        CatalogEntry {
            name: "RT-AO-AL16",
            category: Divergent,
            build: raytrace::ao_al16,
        },
        CatalogEntry {
            name: "RT-AO-BL16",
            category: Divergent,
            build: raytrace::ao_bl16,
        },
        CatalogEntry {
            name: "RT-AO-WM16",
            category: Divergent,
            build: raytrace::ao_wm16,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_unique() {
        let c = catalog();
        let mut names: Vec<_> = c.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate catalog names");
        assert!(n >= 30, "catalog should cover the paper's workload classes");
    }
}
