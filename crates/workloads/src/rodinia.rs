//! Divergent Rodinia-class workloads (the Fig. 12 set plus friends).
//!
//! Each kernel reproduces the divergence-generating control structure of its
//! Rodinia namesake: sparse frontier tests (BFS), boundary conditions
//! (HotSpot, pathfinder, SRAD), cutoff tests inside neighbor loops (LavaMD),
//! data-dependent scan/trip counts (particle filter, eigenvalue), and guard
//! predicates (Gaussian elimination, k-means, Needleman-Wunsch).

// Host-side result checks mirror kernel indexing; positional loops are
// clearer than iterator chains there.
#![allow(clippy::needless_range_loop)]

use crate::util::{emit_addr, gid, RegAlloc, XorShift};
use crate::Built;
use iwc_isa::builder::KernelBuilder;
use iwc_isa::insn::CondOp;
use iwc_isa::reg::{FlagReg, Operand, Predicate};
use iwc_isa::{MemSpace, Opcode};
use iwc_sim::{Launch, MemoryImage};

const SIMD: u32 = 16;
const WG: u32 = 64;

fn f0() -> Predicate {
    Predicate::normal(FlagReg::F0)
}

fn f1() -> Predicate {
    Predicate::normal(FlagReg::F1)
}

/// `BFS`: one frontier-expansion level over a random sparse graph (CSR).
///
/// Args: 0 = frontier, 1 = row offsets, 2 = column indices, 3 = visited,
/// 4 = new frontier.
pub fn bfs(scale: u32) -> Built {
    let n = 1024 * scale.max(1);
    let avg_degree = 4u32;

    let mut b = KernelBuilder::new("bfs", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (p, f, start, end, idx, nb, vis) = (
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
    );
    let one = Operand::imm_ud(1);
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, f, p);
    b.cmp(CondOp::Ne, FlagReg::F0, f, Operand::imm_ud(0));
    b.if_(f0());
    {
        emit_addr(&mut b, p, gid(), 1, 4);
        b.load(MemSpace::Global, start, p);
        b.add(p, p, Operand::imm_ud(4));
        b.load(MemSpace::Global, end, p);
        b.mov(idx, start);
        b.cmp(CondOp::Lt, FlagReg::F1, idx, end);
        b.if_(f1());
        b.do_();
        {
            emit_addr(&mut b, p, idx, 2, 4);
            b.load(MemSpace::Global, nb, p);
            emit_addr(&mut b, p, nb, 3, 4);
            b.load(MemSpace::Global, vis, p);
            b.cmp(CondOp::Eq, FlagReg::F1, vis, Operand::imm_ud(0));
            b.if_(f1());
            {
                b.store(MemSpace::Global, p, one); // visited[nb] = 1
                emit_addr(&mut b, p, nb, 4, 4);
                b.store(MemSpace::Global, p, one); // newfrontier[nb] = 1
            }
            b.end_if();
            b.add(idx, idx, one);
            b.cmp(CondOp::Lt, FlagReg::F1, idx, end);
        }
        b.while_(f1());
        b.end_if();
    }
    b.end_if();
    let program = b.finish().expect("valid kernel");

    // Random graph + ~10% frontier.
    let mut rng = XorShift::new(21);
    let mut row = Vec::with_capacity(n as usize + 1);
    let mut col = Vec::new();
    row.push(0u32);
    for _ in 0..n {
        let deg = rng.below(2 * avg_degree);
        for _ in 0..deg {
            col.push(rng.below(n));
        }
        row.push(col.len() as u32);
    }
    let frontier: Vec<u32> = (0..n).map(|_| u32::from(rng.below(10) == 0)).collect();
    let visited = frontier.clone();

    let mut img = MemoryImage::new(8 * (n + col.len() as u32) + 24 * n + (1 << 16));
    let fp = img.alloc_u32(&frontier);
    let rp = img.alloc_u32(&row);
    let cp = img.alloc_u32(&col);
    let vp = img.alloc_u32(&visited);
    let nfp = img.alloc_u32(&vec![0u32; n as usize]);
    let launch = Launch::new(program, n, WG).with_args(&[fp, rp, cp, vp, nfp]);

    // Expected: a neighbor enters the new frontier iff it was unvisited.
    let mut nf_want = vec![0u32; n as usize];
    for v in 0..n as usize {
        if frontier[v] == 1 {
            for e in row[v]..row[v + 1] {
                let nb = col[e as usize] as usize;
                if visited[nb] == 0 {
                    nf_want[nb] = 1;
                }
            }
        }
    }
    Built {
        name: "BFS".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for v in 0..n as usize {
                let got = img.read_u32(nfp + 4 * v as u32);
                if got != nf_want[v] {
                    return Err(format!("newfrontier[{v}] = {got}, want {}", nf_want[v]));
                }
            }
            Ok(())
        })),
    }
}

/// `HtS` (HotSpot): 2-D thermal stencil with divergent boundary handling.
///
/// Args: 0 = temperature in, 1 = power, 2 = temperature out.
pub fn hotspot(scale: u32) -> Built {
    let w = 64u32;
    let h = 16 * scale.max(1);
    let n = w * h;
    const K: f32 = 0.2;
    const CAP: f32 = 0.5;

    let mut b = KernelBuilder::new("hotspot", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (x, y, p, q) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (c, pw, l, r, t, bo, acc) = (
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
    );
    b.and(x, gid(), Operand::imm_ud(w - 1));
    b.shr(y, gid(), Operand::imm_ud(w.trailing_zeros()));
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, c, p);
    emit_addr(&mut b, q, gid(), 1, 4);
    b.load(MemSpace::Global, pw, q);
    // Each neighbor defaults to the center value (adiabatic boundary) and is
    // only loaded when in range — a divergent branch per side.
    for (dst, cond_reg, cond, bound, offs) in [
        (l, x, CondOp::Gt, 0u32, -4i32),
        (r, x, CondOp::Lt, w - 1, 4),
        (t, y, CondOp::Gt, 0, -(4 * w as i32)),
        (bo, y, CondOp::Lt, h - 1, 4 * w as i32),
    ] {
        b.mov(dst, c);
        b.cmp(cond, FlagReg::F0, cond_reg, Operand::imm_ud(bound));
        b.if_(f0());
        b.add(q, p, Operand::imm_d(offs));
        b.load(MemSpace::Global, dst, q);
        b.end_if();
    }
    // out = c + CAP * (pw + K * (l + r + t + bo - 4c))
    b.add(acc, l, r);
    b.add(acc, acc, t);
    b.add(acc, acc, bo);
    b.mad(acc, c, Operand::imm_f(-4.0), acc);
    b.mad(acc, acc, Operand::imm_f(K), pw);
    b.mad(acc, acc, Operand::imm_f(CAP), c);
    // Hot cells (about half, data-dependent) take a long refinement path;
    // cool cells take a short damping path — the per-cell divergence of the
    // Rodinia kernel's sub-stepping.
    b.cmp(CondOp::Gt, FlagReg::F0, pw, Operand::imm_f(1.0));
    b.if_(f0());
    for _ in 0..8 {
        b.sub(l, acc, c);
        b.mad(acc, l, Operand::imm_f(0.5 * K), acc);
    }
    b.else_();
    b.sub(l, acc, c);
    b.mad(acc, l, Operand::imm_f(-0.25 * K), acc);
    b.end_if();
    emit_addr(&mut b, q, gid(), 2, 4);
    b.store(MemSpace::Global, q, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(22);
    let temp: Vec<f32> = (0..n).map(|_| rng.range_f32(40.0, 90.0)).collect();
    let power: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 2.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let tp = img.alloc_f32(&temp);
    let pp = img.alloc_f32(&power);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[tp, pp, op]);
    Built {
        name: "HtS".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let (x, y) = (g % w, g / w);
                let c = temp[g as usize];
                let at = |gx: u32, gy: u32| temp[(gy * w + gx) as usize];
                let l = if x > 0 { at(x - 1, y) } else { c };
                let r = if x < w - 1 { at(x + 1, y) } else { c };
                let t = if y > 0 { at(x, y - 1) } else { c };
                let bo = if y < h - 1 { at(x, y + 1) } else { c };
                let mut want = c + CAP * (power[g as usize] + K * (l + r + t + bo - 4.0 * c));
                if power[g as usize] > 1.0 {
                    for _ in 0..8 {
                        want += (want - c) * (0.5 * K);
                    }
                } else {
                    want += (want - c) * (-0.25 * K);
                }
                let got = img.read_f32(op + 4 * g);
                if (got - want).abs() > 1e-2 {
                    return Err(format!("out[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `LavaMD`: per-particle force accumulation over its 64-particle box with a
/// divergent cutoff test inside the neighbor loop.
///
/// Args: 0 = x, 1 = y, 2 = z, 3 = out.
pub fn lavamd(scale: u32) -> Built {
    let n = 512 * scale.max(1);
    const CUTOFF2: f32 = 0.25;

    let mut b = KernelBuilder::new("lavamd", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (boxbase, j, p, cnt) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (xi, yi, zi, xj, yj, zj) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let (dx, dy, dz, d2, inv, acc) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    // Own position.
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, xi, p);
    emit_addr(&mut b, p, gid(), 1, 4);
    b.load(MemSpace::Global, yi, p);
    emit_addr(&mut b, p, gid(), 2, 4);
    b.load(MemSpace::Global, zi, p);
    // Box = 64-particle neighborhood.
    b.and(boxbase, gid(), Operand::imm_ud(!63u32));
    b.mov(j, boxbase);
    b.mov(acc, Operand::imm_f(0.0));
    b.mov(cnt, Operand::imm_ud(0));
    b.do_();
    {
        emit_addr(&mut b, p, j, 0, 4);
        b.load(MemSpace::Global, xj, p);
        emit_addr(&mut b, p, j, 1, 4);
        b.load(MemSpace::Global, yj, p);
        emit_addr(&mut b, p, j, 2, 4);
        b.load(MemSpace::Global, zj, p);
        b.sub(dx, xi, xj);
        b.sub(dy, yi, yj);
        b.sub(dz, zi, zj);
        b.mul(d2, dx, dx);
        b.mad(d2, dy, dy, d2);
        b.mad(d2, dz, dz, d2);
        // Divergent cutoff: only nearby pairs contribute.
        b.cmp(CondOp::Lt, FlagReg::F0, d2, Operand::imm_f(CUTOFF2));
        b.if_(f0());
        {
            b.add(d2, d2, Operand::imm_f(0.01)); // softening
            b.math(Opcode::Inv, inv, d2);
            b.add(acc, acc, inv);
        }
        b.end_if();
        b.add(j, j, Operand::imm_ud(1));
        b.add(cnt, cnt, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, cnt, Operand::imm_ud(64));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 3, 4);
    b.store(MemSpace::Global, p, acc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(23);
    let x: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 2.0)).collect();
    let y: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 2.0)).collect();
    let z: Vec<f32> = (0..n).map(|_| rng.range_f32(0.0, 2.0)).collect();
    let mut img = MemoryImage::new(32 * n + (1 << 16));
    let xp = img.alloc_f32(&x);
    let yp = img.alloc_f32(&y);
    let zp = img.alloc_f32(&z);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[xp, yp, zp, op]);
    Built {
        name: "LavaMD".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for i in 0..n as usize {
                let base = i & !63;
                let mut want = 0f64;
                for j in base..base + 64 {
                    let d2 = f64::from(x[i] - x[j]).powi(2)
                        + f64::from(y[i] - y[j]).powi(2)
                        + f64::from(z[i] - z[j]).powi(2);
                    if (d2 as f32) < CUTOFF2 {
                        want += 1.0 / (f64::from(d2 as f32 + 0.01));
                    }
                }
                let got = f64::from(img.read_f32(op + 4 * i as u32));
                if (got - want).abs() > 1e-2 * want.abs().max(1.0) {
                    return Err(format!("force[{i}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `NW` (Needleman-Wunsch): recompute one anti-diagonal of the alignment DP
/// matrix, with divergent bounds checks.
///
/// Args: 0 = matrix F, 1 = sequence a, 2 = sequence b, 3 = output diag copy,
/// 4 = diagonal index d, 5 = N.
pub fn needleman_wunsch(scale: u32) -> Built {
    let n = 64 * scale.max(1).next_power_of_two().min(4);
    let d = n; // center anti-diagonal of the processed band
    let band = 8u32; // diagonals d-4 .. d+4 are active
    const GAP: i32 = -2;

    let mut b = KernelBuilder::new("nw", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (i, j, p, ai, bj, diag) = (ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (fd, fu, fl, s, m, best, po) = (
        ra.vd(),
        ra.vd(),
        ra.vd(),
        ra.vd(),
        ra.vd(),
        ra.vd(),
        ra.vud(),
    );
    let nn = Operand::scalar(3, 5, iwc_isa::DataType::Ud);
    let dd = Operand::scalar(3, 4, iwc_isa::DataType::Ud);
    // One work-item per matrix cell: i = gid / n, j = gid % n. Only cells in
    // the anti-diagonal band i + j in [d-band/2, d+band/2) and strictly
    // inside the matrix are computed — the wavefront divergence of NW.
    let logn = n.trailing_zeros();
    b.shr(i, gid(), Operand::imm_ud(logn));
    b.and(j, gid(), Operand::imm_ud(n - 1));
    b.add(diag, i, j);
    b.sub(diag, diag, dd);
    b.add(diag, diag, Operand::imm_ud(band / 2)); // in [0, band) when active
    b.cmp(CondOp::Lt, FlagReg::F0, diag, Operand::imm_ud(band));
    b.if_(f0());
    b.cmp(CondOp::Ge, FlagReg::F1, i, Operand::imm_ud(1));
    b.if_(f1());
    b.cmp(CondOp::Ge, FlagReg::F1, j, Operand::imm_ud(1));
    b.if_(f1());
    {
        // F indices: (i-1, j-1), (i-1, j), (i, j-1).
        let idx =
            |b: &mut KernelBuilder, dst: Operand, bi: Operand, bj_: Operand, di: i32, dj: i32| {
                b.add(p, bi, Operand::imm_d(di));
                b.mul(p, p, nn);
                b.add(p, p, bj_);
                b.add(p, p, Operand::imm_d(dj));
                emit_addr(b, p, p, 0, 4);
                b.load(MemSpace::Global, dst, p);
            };
        idx(&mut b, fd, i, j, -1, -1);
        idx(&mut b, fu, i, j, -1, 0);
        idx(&mut b, fl, i, j, 0, -1);
        // Match score: +2 when a[i] == b[j], else -1.
        emit_addr(&mut b, ai, i, 1, 4);
        b.load(MemSpace::Global, ai, ai);
        emit_addr(&mut b, bj, j, 2, 4);
        b.load(MemSpace::Global, bj, bj);
        b.cmp(CondOp::Eq, FlagReg::F1, ai, bj);
        b.sel(FlagReg::F1, s, Operand::imm_d(2), Operand::imm_d(-1));
        b.add(m, fd, s);
        b.max(best, fu, fl);
        b.add(best, best, Operand::imm_d(GAP));
        b.max(best, best, m);
        // Write to the output matrix copy at (i, j).
        b.shl(po, i, Operand::imm_ud(logn));
        b.add(po, po, j);
        emit_addr(&mut b, po, po, 3, 4);
        b.store(MemSpace::Global, po, best);
    }
    b.end_if();
    b.end_if();
    b.end_if();
    let program = b.finish().expect("valid kernel");

    // Host: fill the full DP matrix, then check the kernel's diagonal.
    let mut rng = XorShift::new(24);
    let a_seq: Vec<u32> = (0..n).map(|_| rng.below(4)).collect();
    let b_seq: Vec<u32> = (0..n).map(|_| rng.below(4)).collect();
    let mut f = vec![0i32; (n * n) as usize];
    for k in 0..n {
        f[k as usize] = GAP * k as i32;
        f[(k * n) as usize] = GAP * k as i32;
    }
    for i in 1..n {
        for j in 1..n {
            let s = if a_seq[i as usize] == b_seq[j as usize] {
                2
            } else {
                -1
            };
            let m = f[((i - 1) * n + j - 1) as usize] + s;
            let up = f[((i - 1) * n + j) as usize] + GAP;
            let left = f[(i * n + j - 1) as usize] + GAP;
            f[(i * n + j) as usize] = m.max(up).max(left);
        }
    }
    let mut img = MemoryImage::new(8 * n * n + (1 << 16));
    let fp = img.alloc_i32(&f);
    let ap = img.alloc_u32(&a_seq);
    let bp = img.alloc_u32(&b_seq);
    let op = img.alloc(4 * n * n);
    let launch = Launch::new(program, n * n, WG).with_args(&[fp, ap, bp, op, d, n]);
    let f_host = f.clone();
    Built {
        name: "NW".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for i in 0..n {
                for j in 0..n {
                    let in_band = (i + j + band / 2).checked_sub(d).is_some_and(|v| v < band);
                    let active = in_band && i >= 1 && j >= 1;
                    let got = img.read_i32(op + 4 * (i * n + j));
                    let want = if active {
                        f_host[(i * n + j) as usize]
                    } else {
                        0
                    };
                    if got != want {
                        return Err(format!("cell ({i},{j}) = {got}, want {want}"));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// `Part` (particle filter): systematic resampling — each lane scans the CDF
/// until it exceeds its threshold, a classically divergent loop.
///
/// Args: 0 = cdf, 1 = out, 2 = n particles, 3 = 1/n as f32 bits.
pub fn particle_filter(scale: u32) -> Built {
    let n = 512 * scale.max(1);

    let mut b = KernelBuilder::new("particlefilter", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (j, p, h) = (ra.vud(), ra.vud(), ra.vud());
    let (u, c) = (ra.vf(), ra.vf());
    // u = hash(gid) / 2^24 — independent per lane, so neighboring lanes scan
    // very different CDF prefixes (stratified multinomial resampling).
    b.mul(h, gid(), Operand::imm_ud(0x9E37_79B9));
    b.shr(h, h, Operand::imm_ud(8));
    b.and(h, h, Operand::imm_ud(0xFF_FFFF));
    b.mov(u, h);
    b.mul(u, u, Operand::imm_f(1.0 / 16_777_216.0));
    b.mov(j, Operand::imm_ud(0));
    b.do_();
    {
        emit_addr(&mut b, p, j, 0, 4);
        b.load(MemSpace::Global, c, p);
        b.cmp(CondOp::Ge, FlagReg::F0, c, u);
        b.break_(f0());
        b.add(j, j, Operand::imm_ud(1));
        b.cmp(
            CondOp::Lt,
            FlagReg::F0,
            j,
            Operand::scalar(3, 2, iwc_isa::DataType::Ud),
        );
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 1, 4);
    b.store(MemSpace::Global, p, j);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(25);
    let weights: Vec<f32> = (0..n).map(|_| rng.range_f32(0.01, 1.0)).collect();
    let total: f32 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n as usize);
    let mut accum = 0f32;
    for w in &weights {
        accum += w / total;
        cdf.push(accum);
    }
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let cp = img.alloc_f32(&cdf);
    let op = img.alloc(4 * n);
    let inv_n = (1.0f32 / n as f32).to_bits();
    let launch = Launch::new(program, n, WG).with_args(&[cp, op, n, inv_n]);
    Built {
        name: "Part".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let h = (g.wrapping_mul(0x9E37_79B9) >> 8) & 0xFF_FFFF;
                let u = h as f32 * (1.0 / 16_777_216.0);
                let want = cdf.iter().position(|&c| c >= u).unwrap_or(n as usize) as u32;
                let got = img.read_u32(op + 4 * g);
                if got != want {
                    return Err(format!("resample[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `Kmeans`: nearest-centroid assignment (8 centroids, 4-D points) with a
/// divergent running-minimum update.
///
/// Args: 0 = points (SoA, 4 planes of n), 1 = centroids (8×4), 2 = out.
pub fn kmeans(scale: u32) -> Built {
    let n = 512 * scale.max(1);
    let k = 8u32;

    let mut b = KernelBuilder::new("kmeans", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (c, p, bestc) = (ra.vud(), ra.vud(), ra.vud());
    let (dist, best, x, cx, diff) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    b.mov(best, Operand::imm_f(1.0e30));
    b.mov(bestc, Operand::imm_ud(0));
    b.mov(c, Operand::imm_ud(0));
    b.do_();
    {
        b.mov(dist, Operand::imm_f(0.0));
        for dim in 0..4u32 {
            // x = points[dim*n + gid]
            b.mov(p, Operand::imm_ud(dim * n));
            b.add(p, p, gid());
            emit_addr(&mut b, p, p, 0, 4);
            b.load(MemSpace::Global, x, p);
            // cx = centroids[c*4 + dim]
            b.shl(p, c, Operand::imm_ud(2));
            b.add(p, p, Operand::imm_ud(dim));
            emit_addr(&mut b, p, p, 1, 4);
            b.load(MemSpace::Global, cx, p);
            b.sub(diff, x, cx);
            b.mad(dist, diff, diff, dist);
        }
        // Divergent argmin update: winners also refresh the normalized
        // membership weight (sqrt + reciprocal), as the full Rodinia kernel
        // does when it updates its membership array.
        b.cmp(CondOp::Lt, FlagReg::F0, dist, best);
        b.if_(f0());
        b.mov(best, dist);
        b.mov(bestc, c);
        b.math(Opcode::Sqrt, x, dist);
        b.add(x, x, Operand::imm_f(1.0));
        b.math(Opcode::Inv, x, x);
        b.mul(x, x, Operand::imm_f(2.0));
        b.mad(x, x, x, x);
        b.end_if();
        b.add(c, c, Operand::imm_ud(1));
        b.cmp(CondOp::Lt, FlagReg::F0, c, Operand::imm_ud(k));
    }
    b.while_(f0());
    emit_addr(&mut b, p, gid(), 2, 4);
    b.store(MemSpace::Global, p, bestc);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(26);
    let points: Vec<f32> = (0..4 * n).map(|_| rng.range_f32(0.0, 10.0)).collect();
    let centroids: Vec<f32> = (0..4 * k).map(|_| rng.range_f32(0.0, 10.0)).collect();
    let mut img = MemoryImage::new(32 * n + (1 << 16));
    let pp = img.alloc_f32(&points);
    let cp = img.alloc_f32(&centroids);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[pp, cp, op]);
    Built {
        name: "Kmeans".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let mut best = f32::MAX;
                let mut bestc = 0u32;
                for c in 0..k {
                    let d: f32 = (0..4)
                        .map(|dim| {
                            let x = points[(dim * n + g) as usize];
                            let cx = centroids[(c * 4 + dim) as usize];
                            (x - cx) * (x - cx)
                        })
                        .sum();
                    if d < best {
                        best = d;
                        bestc = c;
                    }
                }
                let got = img.read_u32(op + 4 * g);
                if got != bestc {
                    return Err(format!("assign[{g}] = {got}, want {bestc}"));
                }
            }
            Ok(())
        })),
    }
}

/// `Path` (pathfinder): one dynamic-programming row with divergent edge
/// handling.
///
/// Args: 0 = previous row, 1 = wall row, 2 = out, 3 = n.
pub fn pathfinder(scale: u32) -> Built {
    let n = 1024 * scale.max(1);

    let mut b = KernelBuilder::new("pathfinder", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (m, side, w) = (ra.vd(), ra.vd(), ra.vd());
    let q = ra.vud();
    emit_addr(&mut b, q, gid(), 0, 4);
    b.load(MemSpace::Global, m, q);
    // Left neighbor: the running-min update is a *divergent* branch (as in
    // the Rodinia kernel), taken only where the neighbor is cheaper.
    b.cmp(CondOp::Gt, FlagReg::F0, gid(), Operand::imm_ud(0));
    b.if_(f0());
    b.add(q, q, Operand::imm_d(-4));
    b.load(MemSpace::Global, side, q);
    b.cmp(CondOp::Lt, FlagReg::F1, side, m);
    b.if_(f1());
    b.mov(m, side);
    b.end_if();
    b.end_if();
    // Right neighbor.
    b.cmp(CondOp::Lt, FlagReg::F0, gid(), Operand::imm_ud(n - 1));
    b.if_(f0());
    emit_addr(&mut b, q, gid(), 0, 4);
    b.add(q, q, Operand::imm_d(4));
    b.load(MemSpace::Global, side, q);
    b.cmp(CondOp::Lt, FlagReg::F1, side, m);
    b.if_(f1());
    b.mov(m, side);
    b.end_if();
    b.end_if();
    emit_addr(&mut b, q, gid(), 1, 4);
    b.load(MemSpace::Global, w, q);
    b.add(m, m, w);
    emit_addr(&mut b, q, gid(), 2, 4);
    b.store(MemSpace::Global, q, m);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(27);
    let prev: Vec<i32> = (0..n).map(|_| rng.below(100) as i32).collect();
    let wall: Vec<i32> = (0..n).map(|_| rng.below(10) as i32).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let pp = img.alloc_i32(&prev);
    let wp = img.alloc_i32(&wall);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[pp, wp, op, n]);
    Built {
        name: "Path".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let mut m = prev[g];
                if g > 0 {
                    m = m.min(prev[g - 1]);
                }
                if g < n as usize - 1 {
                    m = m.min(prev[g + 1]);
                }
                let want = m + wall[g];
                let got = img.read_i32(op + 4 * g as u32);
                if got != want {
                    return Err(format!("row[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `Gauss`: one Gaussian-elimination update step with a divergent
/// active-region guard.
///
/// Args: 0 = matrix (N×N f32), 1 = N, 2 = pivot index.
pub fn gaussian(scale: u32) -> Built {
    let n = 32 * scale.max(1).next_power_of_two().min(4);
    let pivot = n / 2 - 3; // off the SIMD16 boundary so the guard diverges within warps

    let mut b = KernelBuilder::new("gaussian", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (r, c, p, q) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (arp, app, apc, arc, mul) = (ra.vf(), ra.vf(), ra.vf(), ra.vf(), ra.vf());
    let nn = Operand::scalar(3, 1, iwc_isa::DataType::Ud);
    let pv = Operand::scalar(3, 2, iwc_isa::DataType::Ud);
    let logn = n.trailing_zeros();
    b.shr(r, gid(), Operand::imm_ud(logn));
    b.and(c, gid(), Operand::imm_ud(n - 1));
    // Guard: r > pivot && c >= pivot — a divergent triangular active region.
    b.cmp(CondOp::Gt, FlagReg::F0, r, pv);
    b.if_(f0());
    b.cmp(CondOp::Ge, FlagReg::F1, c, pv);
    b.if_(f1());
    {
        let load_elem = |b: &mut KernelBuilder, dst: Operand, row: Operand, col: Operand| {
            b.mul(p, row, nn);
            b.add(p, p, col);
            emit_addr(b, p, p, 0, 4);
            b.load(MemSpace::Global, dst, p);
        };
        load_elem(&mut b, arp, r, pv);
        load_elem(&mut b, app, pv, pv);
        load_elem(&mut b, apc, pv, c);
        load_elem(&mut b, arc, r, c);
        b.op(Opcode::Fdiv, mul, &[arp, app]);
        b.mul(mul, mul, apc);
        b.sub(arc, arc, mul);
        // Store back to A[r][c]; recompute the address (p was clobbered).
        b.mul(q, r, nn);
        b.add(q, q, c);
        emit_addr(&mut b, q, q, 0, 4);
        b.store(MemSpace::Global, q, arc);
    }
    b.end_if();
    b.end_if();
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(28);
    let a: Vec<f32> = (0..n * n).map(|_| rng.range_f32(1.0, 5.0)).collect();
    let mut img = MemoryImage::new(8 * n * n + (1 << 16));
    let ap = img.alloc_f32(&a);
    let launch = Launch::new(program, n * n, WG).with_args(&[ap, n, pivot]);
    Built {
        name: "Gauss".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for r in 0..n {
                for c in 0..n {
                    let orig = a[(r * n + c) as usize];
                    let want = if r > pivot && c >= pivot {
                        let m = a[(r * n + pivot) as usize] / a[(pivot * n + pivot) as usize];
                        orig - m * a[(pivot * n + c) as usize]
                    } else {
                        orig
                    };
                    let got = img.read_f32(ap + 4 * (r * n + c));
                    if (got - want).abs() > 1e-3 {
                        return Err(format!("A[{r},{c}] = {got}, want {want}"));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// `SRD` (SRAD): diffusion-coefficient stencil with divergent clamping.
///
/// Args: 0 = image in, 1 = out, 2 = width (power of two).
pub fn srad(scale: u32) -> Built {
    let w = 64u32;
    let h = 16 * scale.max(1);
    let n = w * h;

    let mut b = KernelBuilder::new("srad", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (x, y, p, q) = (ra.vud(), ra.vud(), ra.vud(), ra.vud());
    let (c, nb, g2, coef) = (ra.vf(), ra.vf(), ra.vf(), ra.vf());
    b.and(x, gid(), Operand::imm_ud(w - 1));
    b.shr(y, gid(), Operand::imm_ud(w.trailing_zeros()));
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, c, p);
    b.mov(g2, Operand::imm_f(0.0));
    for (cond_reg, cond, bound, offs) in [
        (x, CondOp::Gt, 0u32, -4i32),
        (x, CondOp::Lt, w - 1, 4),
        (y, CondOp::Gt, 0, -(4 * w as i32)),
        (y, CondOp::Lt, h - 1, 4 * w as i32),
    ] {
        b.cmp(cond, FlagReg::F0, cond_reg, Operand::imm_ud(bound));
        b.if_(f0());
        b.add(q, p, Operand::imm_d(offs));
        b.load(MemSpace::Global, nb, q);
        b.sub(nb, nb, c);
        b.mad(g2, nb, nb, g2);
        b.end_if();
    }
    // coef = 1 / (1 + g2 / (c² + 1e-3)), then divergent clamp to [0, 1].
    b.mul(coef, c, c);
    b.add(coef, coef, Operand::imm_f(1e-3));
    b.op(Opcode::Fdiv, coef, &[g2, coef]);
    b.add(coef, coef, Operand::imm_f(1.0));
    b.math(Opcode::Inv, coef, coef);
    // Edge pixels (coef below threshold) take a smoothing path; flat pixels
    // take an exponential sharpening path — balanced data-dependent
    // divergence, as in the SRAD coefficient clamp.
    b.cmp(CondOp::Lt, FlagReg::F0, coef, Operand::imm_f(0.5));
    b.if_(f0());
    b.max(coef, coef, Operand::imm_f(0.2));
    b.mul(coef, coef, Operand::imm_f(0.9));
    b.end_if();
    b.cmp(CondOp::Ge, FlagReg::F0, coef, Operand::imm_f(0.5));
    b.if_(f0());
    b.math(Opcode::Log, nb, coef);
    b.mad(coef, nb, Operand::imm_f(0.05), coef);
    b.end_if();
    b.mul(coef, coef, c);
    emit_addr(&mut b, q, gid(), 1, 4);
    b.store(MemSpace::Global, q, coef);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(29);
    let im: Vec<f32> = (0..n).map(|_| rng.range_f32(0.1, 1.0)).collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let ip = img.alloc_f32(&im);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[ip, op, w]);
    Built {
        name: "SRD".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n {
                let (x, y) = (g % w, g / w);
                let c = im[g as usize];
                let mut g2 = 0f32;
                let mut add = |gx: i64, gy: i64| {
                    if gx >= 0 && gx < i64::from(w) && gy >= 0 && gy < i64::from(h) {
                        let d = im[(gy * i64::from(w) + gx) as usize] - c;
                        g2 += d * d;
                    }
                };
                add(i64::from(x) - 1, i64::from(y));
                add(i64::from(x) + 1, i64::from(y));
                add(i64::from(x), i64::from(y) - 1);
                add(i64::from(x), i64::from(y) + 1);
                let mut coef = 1.0 / (1.0 + g2 / (c * c + 1e-3));
                if coef < 0.5 {
                    coef = coef.max(0.2) * 0.9;
                }
                if coef >= 0.5 {
                    coef += coef.log2() * 0.05;
                }
                let want = coef * c;
                let got = img.read_f32(op + 4 * g);
                if (got - want).abs() > 1e-3 {
                    return Err(format!("srad[{g}] = {got}, want {want}"));
                }
            }
            Ok(())
        })),
    }
}

/// `EV` (eigenvalue-style bisection): per-lane bisection with data-dependent
/// trip counts (each lane refines to its own tolerance).
///
/// Args: 0 = targets, 1 = tolerances, 2 = out.
pub fn eigenvalue(scale: u32) -> Built {
    let n = 512 * scale.max(1);

    let mut b = KernelBuilder::new("eigenvalue", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let p = ra.vud();
    let (lo, hi, mid, fm, target, eps, width) = (
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
        ra.vf(),
    );
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, target, p);
    emit_addr(&mut b, p, gid(), 1, 4);
    b.load(MemSpace::Global, eps, p);
    b.mov(lo, Operand::imm_f(0.0));
    b.mov(hi, Operand::imm_f(10.0));
    b.do_();
    {
        b.add(mid, lo, hi);
        b.mul(mid, mid, Operand::imm_f(0.5));
        // f(mid) = mid³ − target
        b.mul(fm, mid, mid);
        b.mul(fm, fm, mid);
        b.sub(fm, fm, target);
        // Divergent interval update.
        b.cmp(CondOp::Lt, FlagReg::F0, fm, Operand::imm_f(0.0));
        b.if_(f0());
        b.mov(lo, mid);
        b.else_();
        b.mov(hi, mid);
        b.end_if();
        b.sub(width, hi, lo);
        b.cmp(CondOp::Gt, FlagReg::F0, width, eps);
    }
    b.while_(f0());
    b.add(mid, lo, hi);
    b.mul(mid, mid, Operand::imm_f(0.5));
    emit_addr(&mut b, p, gid(), 2, 4);
    b.store(MemSpace::Global, p, mid);
    let program = b.finish().expect("valid kernel");

    let mut rng = XorShift::new(30);
    let targets: Vec<f32> = (0..n).map(|_| rng.range_f32(1.0, 900.0)).collect();
    let tols: Vec<f32> = (0..n)
        .map(|_| 10f32.powi(-(rng.below(5) as i32 + 2)))
        .collect();
    let mut img = MemoryImage::new(16 * n + (1 << 16));
    let tp = img.alloc_f32(&targets);
    let ep = img.alloc_f32(&tols);
    let op = img.alloc(4 * n);
    let launch = Launch::new(program, n, WG).with_args(&[tp, ep, op]);
    Built {
        name: "EV".into(),
        launch,
        img,
        check: Some(Box::new(move |img| {
            for g in 0..n as usize {
                let got = img.read_f32(op + 4 * g as u32);
                let want = f64::from(targets[g]).cbrt();
                if (f64::from(got) - want).abs() > f64::from(tols[g]) + 1e-3 {
                    return Err(format!("root[{g}] = {got}, want ≈{want}"));
                }
            }
            Ok(())
        })),
    }
}

/// Full multi-level BFS driven from the host through a persistent
/// [`iwc_sim::Gpu`]: one kernel launch per frontier level against warm
/// caches, exactly how the Rodinia host code drives its kernel. Returns the
/// per-level [`iwc_sim::SimResult`]s and verifies distances against a host
/// BFS.
///
/// # Errors
///
/// Returns an error string when simulation fails or the computed distances
/// do not match the host reference.
pub fn bfs_full(scale: u32, cfg: &iwc_sim::GpuConfig) -> Result<Vec<iwc_sim::SimResult>, String> {
    let n = 512 * scale.max(1);
    let avg_degree = 4u32;
    const INF: u32 = u32::MAX;

    // Level kernel: expand `frontier` into `next`, setting distances.
    // Args: 0 = frontier, 1 = row, 2 = col, 3 = dist, 4 = next, 5 = level+1.
    let mut b = KernelBuilder::new("bfs-level", SIMD);
    let mut ra = RegAlloc::new(SIMD);
    let (p, f, start, end, idx, nb, dv) = (
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
        ra.vud(),
    );
    let one = Operand::imm_ud(1);
    emit_addr(&mut b, p, gid(), 0, 4);
    b.load(MemSpace::Global, f, p);
    b.cmp(CondOp::Ne, FlagReg::F0, f, Operand::imm_ud(0));
    b.if_(f0());
    {
        emit_addr(&mut b, p, gid(), 1, 4);
        b.load(MemSpace::Global, start, p);
        b.add(p, p, Operand::imm_ud(4));
        b.load(MemSpace::Global, end, p);
        b.mov(idx, start);
        b.cmp(CondOp::Lt, FlagReg::F1, idx, end);
        b.if_(f1());
        b.do_();
        {
            emit_addr(&mut b, p, idx, 2, 4);
            b.load(MemSpace::Global, nb, p);
            emit_addr(&mut b, p, nb, 3, 4);
            b.load(MemSpace::Global, dv, p);
            b.cmp(CondOp::Eq, FlagReg::F1, dv, Operand::imm_ud(INF));
            b.if_(f1());
            {
                b.store(
                    MemSpace::Global,
                    p,
                    Operand::scalar(3, 5, iwc_isa::DataType::Ud),
                );
                emit_addr(&mut b, p, nb, 4, 4);
                b.store(MemSpace::Global, p, one);
            }
            b.end_if();
            b.add(idx, idx, one);
            b.cmp(CondOp::Lt, FlagReg::F1, idx, end);
        }
        b.while_(f1());
        b.end_if();
    }
    b.end_if();
    let program = b.finish().expect("valid kernel");

    // Graph + host reference BFS from node 0.
    let mut rng = XorShift::new(71);
    let mut row = vec![0u32];
    let mut col = Vec::new();
    for _ in 0..n {
        for _ in 0..rng.below(2 * avg_degree) {
            col.push(rng.below(n));
        }
        row.push(col.len() as u32);
    }
    let mut want = vec![INF; n as usize];
    want[0] = 0;
    let mut frontier_h = vec![0u32];
    let mut level = 0;
    while !frontier_h.is_empty() {
        let mut next_h = Vec::new();
        for &v in &frontier_h {
            for e in row[v as usize]..row[v as usize + 1] {
                let nbr = col[e as usize] as usize;
                if want[nbr] == INF {
                    want[nbr] = level + 1;
                    next_h.push(nbr as u32);
                }
            }
        }
        frontier_h = next_h;
        level += 1;
    }

    // Device buffers.
    let mut img = MemoryImage::new(8 * (n + col.len() as u32) + 24 * n + (1 << 16));
    let mut frontier0 = vec![0u32; n as usize];
    frontier0[0] = 1;
    let fa = img.alloc_u32(&frontier0);
    let rp = img.alloc_u32(&row);
    let cp = img.alloc_u32(&col);
    let mut dist0 = vec![INF; n as usize];
    dist0[0] = 0;
    let dp = img.alloc_u32(&dist0);
    let fb = img.alloc_u32(&vec![0u32; n as usize]);

    let mut gpu = iwc_sim::Gpu::new(*cfg);
    let mut results = Vec::new();
    let (mut cur, mut next) = (fa, fb);
    for lvl in 0..n {
        let launch =
            Launch::new(program.clone(), n, WG).with_args(&[cur, rp, cp, dp, next, lvl + 1]);
        let r = gpu.run(&launch, &mut img).map_err(|e| e.to_string())?;
        results.push(r);
        // Host side: check whether the next frontier is non-empty, clear the
        // old one, and swap.
        let mut any = false;
        for v in 0..n {
            if img.read_u32(next + 4 * v) != 0 {
                any = true;
            }
            img.write_u32(cur + 4 * v, 0);
        }
        std::mem::swap(&mut cur, &mut next);
        if !any {
            break;
        }
    }

    for v in 0..n as usize {
        let got = img.read_u32(dp + 4 * v as u32);
        if got != want[v] {
            return Err(format!("dist[{v}] = {got}, want {}", want[v]));
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_sim::GpuConfig;

    fn check_divergent(b: Built) -> f64 {
        let r = b
            .run_checked(&GpuConfig::paper_default())
            .unwrap_or_else(|e| panic!("{e}"));
        r.simd_efficiency()
    }

    #[test]
    fn bfs_correct_and_divergent() {
        let eff = check_divergent(bfs(1));
        assert!(eff < 0.95, "BFS efficiency {eff:.3} should be divergent");
    }

    #[test]
    fn hotspot_correct() {
        check_divergent(hotspot(1));
    }

    #[test]
    fn lavamd_correct_and_divergent() {
        let eff = check_divergent(lavamd(1));
        assert!(eff < 0.95, "LavaMD efficiency {eff:.3}");
    }

    #[test]
    fn nw_correct() {
        check_divergent(needleman_wunsch(1));
    }

    #[test]
    fn particle_filter_correct_and_divergent() {
        let eff = check_divergent(particle_filter(1));
        assert!(eff < 0.95, "Part efficiency {eff:.3}");
    }

    #[test]
    fn kmeans_correct() {
        check_divergent(kmeans(1));
    }

    #[test]
    fn pathfinder_correct() {
        check_divergent(pathfinder(1));
    }

    #[test]
    fn gaussian_correct_and_divergent() {
        let eff = check_divergent(gaussian(1));
        assert!(eff < 0.95, "Gauss efficiency {eff:.3}");
    }

    #[test]
    fn srad_correct() {
        check_divergent(srad(1));
    }

    #[test]
    fn bfs_full_matches_host_reference() {
        let results = bfs_full(1, &GpuConfig::paper_default()).unwrap_or_else(|e| panic!("{e}"));
        assert!(results.len() >= 2, "graph should need multiple levels");
    }

    #[test]
    fn eigenvalue_correct_and_divergent() {
        let eff = check_divergent(eigenvalue(1));
        assert!(eff < 0.95, "EV efficiency {eff:.3}");
    }
}
